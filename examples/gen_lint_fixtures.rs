//! Regenerates the checked-in lint fixtures under `examples/graphs/`:
//! the paper's figure graphs in the text interchange format, plus their
//! level-assignment policies. CI lints these with `tgq lint`.
//!
//! Run with: `cargo run --example gen_lint_fixtures`

use std::fs;
use std::path::Path;

use take_grant::graph::render_graph;
use take_grant::hierarchy::policy::render_policy;
use take_grant::sim::scenarios;

fn main() {
    let dir = Path::new("examples/graphs");
    fs::create_dir_all(dir).expect("create examples/graphs");
    let mut written = Vec::new();
    let mut put = |name: &str, contents: String| {
        let path = dir.join(name);
        fs::write(&path, contents).expect("write fixture");
        written.push(path.display().to_string());
    };

    let f22 = scenarios::fig_2_2();
    put("fig_2_2.tg", render_graph(&f22.graph));

    let f41 = scenarios::fig_4_1();
    put("fig_4_1.tg", render_graph(&f41.graph));
    put("fig_4_1.pol", render_policy(&f41.assignment, &f41.graph));

    let f42 = scenarios::fig_4_2();
    put("fig_4_2.tg", render_graph(&f42.graph));
    put("fig_4_2.pol", render_policy(&f42.assignment, &f42.graph));

    let f51 = scenarios::fig_5_1();
    put("fig_5_1.tg", render_graph(&f51.graph));
    put("fig_5_1.pol", render_policy(&f51.assignment, &f51.graph));

    let f61 = scenarios::fig_6_1();
    put("fig_6_1.tg", render_graph(&f61.graph));
    put("fig_6_1.pol", render_policy(&f61.assignment, &f61.graph));

    for path in written {
        println!("wrote {path}");
    }
}
