//! Regenerates the checked-in lint fixtures under `examples/graphs/`:
//! the paper's figure graphs in the text interchange format, plus their
//! level-assignment policies. CI lints these with `tgq lint`.
//!
//! Run with: `cargo run --example gen_lint_fixtures`

use std::fs;
use std::path::Path;

use take_grant::graph::{render_graph, ProtectionGraph, Rights, VertexId};
use take_grant::hierarchy::policy::render_policy;
use take_grant::hierarchy::LevelAssignment;
use take_grant::rules::codec::encode_derivation;
use take_grant::rules::{DeJureRule, Derivation};
use take_grant::sim::scenarios;

/// The TG010 exemplar: `server` legitimately reads `secret` at its own
/// level, and `spy` below reads the server — the server's read is the
/// sole conduit through which the spy can come to know the secret.
fn laundering() -> (ProtectionGraph, LevelAssignment) {
    let mut g = ProtectionGraph::new();
    let server = g.add_subject("server");
    let spy = g.add_subject("spy");
    let secret = g.add_object("secret");
    g.add_edge(server, secret, Rights::R).expect("edge");
    g.add_edge(spy, server, Rights::R).expect("edge");
    let mut levels = LevelAssignment::linear(&["low", "high"]);
    levels.assign(server, 1).expect("assign");
    levels.assign(spy, 0).expect("assign");
    levels.assign(secret, 1).expect("assign");
    (g, levels)
}

/// Traces for `tgq plan` against Figure 6.1 (`x -t-> s -r-> y`, `x` low,
/// `s`/`y` high): the refused one has `x` take `r` over `y` — the de
/// jure preconditions hold but the combined restriction refuses the
/// read-up; the accepted one merely removes `x`'s own `t` right.
fn plan_traces() -> (String, String) {
    let mut refused = Derivation::new();
    refused.push(DeJureRule::Take {
        actor: VertexId::from_index(0),
        via: VertexId::from_index(1),
        target: VertexId::from_index(2),
        rights: Rights::R,
    });
    let mut ok = Derivation::new();
    ok.push(DeJureRule::Remove {
        actor: VertexId::from_index(0),
        target: VertexId::from_index(1),
        rights: Rights::T,
    });
    (encode_derivation(&refused), encode_derivation(&ok))
}

fn main() {
    let dir = Path::new("examples/graphs");
    fs::create_dir_all(dir).expect("create examples/graphs");
    let mut written = Vec::new();
    let mut put = |name: &str, contents: String| {
        let path = dir.join(name);
        fs::write(&path, contents).expect("write fixture");
        written.push(path.display().to_string());
    };

    let f22 = scenarios::fig_2_2();
    put("fig_2_2.tg", render_graph(&f22.graph));

    let f41 = scenarios::fig_4_1();
    put("fig_4_1.tg", render_graph(&f41.graph));
    put("fig_4_1.pol", render_policy(&f41.assignment, &f41.graph));

    let f42 = scenarios::fig_4_2();
    put("fig_4_2.tg", render_graph(&f42.graph));
    put("fig_4_2.pol", render_policy(&f42.assignment, &f42.graph));

    let f51 = scenarios::fig_5_1();
    put("fig_5_1.tg", render_graph(&f51.graph));
    put("fig_5_1.pol", render_policy(&f51.assignment, &f51.graph));

    let f61 = scenarios::fig_6_1();
    put("fig_6_1.tg", render_graph(&f61.graph));
    put("fig_6_1.pol", render_policy(&f61.assignment, &f61.graph));

    let (graph, levels) = laundering();
    put("laundering.tg", render_graph(&graph));
    put("laundering.pol", render_policy(&levels, &graph));

    let (refused, ok) = plan_traces();
    put("plan_refused.tr", refused);
    put("plan_ok.tr", ok);

    for path in written {
        println!("wrote {path}");
    }
}
