//! Quickstart: build a two-level hierarchy, ask the three questions the
//! model answers, and watch the reference monitor stop an attack.
//!
//! Run with: `cargo run --example quickstart`

use take_grant::analysis::{can_know, can_know_f, can_share, synthesis};
use take_grant::graph::{ProtectionGraph, Right, Rights};
use take_grant::hierarchy::{CombinedRestriction, LevelAssignment, Monitor};
use take_grant::rules::{DeJureRule, Rule};

fn main() {
    // A tiny installation: one cleared analyst, one uncleared clerk, a
    // classified report, and a take right the clerk holds over a courier
    // object that can read the report.
    let mut g = ProtectionGraph::new();
    let analyst = g.add_subject("analyst");
    let clerk = g.add_subject("clerk");
    let courier = g.add_object("courier");
    let report = g.add_object("report");
    g.add_edge(analyst, report, Rights::RW).unwrap();
    g.add_edge(clerk, courier, Rights::T).unwrap();
    g.add_edge(courier, report, Rights::R).unwrap();

    println!("== the three questions ==");
    println!(
        "can_share(r, clerk, report) = {}",
        can_share(&g, Right::Read, clerk, report)
    );
    println!(
        "can_know_f(clerk, report)   = {} (no de facto flow yet)",
        can_know_f(&g, clerk, report)
    );
    println!(
        "can_know(clerk, report)     = {} (the take rule opens a channel)",
        can_know(&g, clerk, report)
    );

    // The decision is constructive: here is the actual attack.
    let witness = synthesis::share_witness(&g, Right::Read, clerk, report).unwrap();
    println!("\n== the clerk's attack, step by step ==\n{witness}");
    let after = witness.replayed(&g).unwrap();
    assert!(after.has_explicit(clerk, report, Right::Read));

    // Classify everyone and put the combined restriction in front.
    let mut levels = LevelAssignment::linear(&["public", "classified"]);
    levels.assign(analyst, 1).unwrap();
    levels.assign(clerk, 0).unwrap();
    levels.assign(courier, 1).unwrap();
    levels.assign(report, 1).unwrap();

    let mut monitor = Monitor::new(g, levels, Box::new(CombinedRestriction));
    let attack = Rule::DeJure(DeJureRule::Take {
        actor: clerk,
        via: courier,
        target: report,
        rights: Rights::R,
    });
    println!("== the same attack, monitored ==");
    match monitor.try_apply(&attack) {
        Ok(_) => println!("the monitor permitted it (bug!)"),
        Err(e) => println!("denied: {e}"),
    }
    assert_eq!(monitor.stats().denied, 1);
    println!(
        "audit after the attempt: {} violation(s)",
        monitor.audit().len()
    );
}
