//! Figure 2.1: why earlier hierarchical Take-Grant models fall to a
//! two-subject conspiracy, and why the paper's structures do not.
//!
//! Run with: `cargo run --example conspiracy`

use take_grant::analysis::can_know;
use take_grant::graph::{Right, Rights};
use take_grant::hierarchy::structure::linear_hierarchy;
use take_grant::hierarchy::wu;

fn main() {
    println!("== Wu's model: hierarchy by edge direction ==");
    let (hierarchy, derivation, (conspirator, victim)) = wu::figure_2_1();
    println!(
        "a 3-level tree, each superior holds t over its inferiors ({} subjects)",
        hierarchy.graph.vertex_count()
    );
    println!(
        "the conspirator ({}) holds nothing over its sibling ({}) — yet:",
        hierarchy.graph.vertex(conspirator).name,
        hierarchy.graph.vertex(victim).name
    );
    println!("\n{derivation}");
    let after = derivation.replayed(&hierarchy.graph).unwrap();
    assert!(after.has_explicit(conspirator, victim, Right::Take));
    println!(
        "after the conspiracy, {} holds t over {} — Lemma 2.1 moved \
         authority *against* the hierarchy's edges.",
        after.vertex(conspirator).name,
        after.vertex(victim).name
    );
    assert!(wu::wu_invariant_violated(&after, &hierarchy.assignment));

    println!("\n== the paper's structures: hierarchy by information flow ==");
    let built = linear_hierarchy(&["L1", "L2", "L3"], 2);
    let mut g = built.graph.clone();
    let top = built.subjects[2][0];
    let bottom = built.subjects[0][0];
    let secret = g.add_object("secret");
    g.add_edge(top, secret, Rights::R).unwrap();
    println!(
        "every subject may be corrupt; still can_know(bottom, secret) = {}",
        can_know(&g, bottom, secret)
    );
    assert!(!can_know(&g, bottom, secret));
    println!(
        "Theorem 4.3: with no t/g edges between levels there is nothing \
         for a conspiracy to grip — no number of corrupt subjects moves \
         information down."
    );
}
