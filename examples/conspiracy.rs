//! Conspiracy analysis: why earlier hierarchical Take-Grant models fall
//! to a two-subject conspiracy, and how the whole-graph flow closure
//! (`tg_flow`) measures exactly how much cooperation every flow needs.
//!
//! Run with: `cargo run --example conspiracy`

use take_grant::flow::{min_flow_conspirators, FlowClosure};
use take_grant::graph::{Right, Rights};
use take_grant::hierarchy::structure::linear_hierarchy;
use take_grant::hierarchy::wu;
use take_grant::sim::scenarios;

fn main() {
    println!("== Wu's model: hierarchy by edge direction ==");
    let (hierarchy, derivation, (conspirator, victim)) = wu::figure_2_1();
    println!(
        "a 3-level tree, each superior holds t over its inferiors ({} subjects)",
        hierarchy.graph.vertex_count()
    );
    println!(
        "the conspirator ({}) holds nothing over its sibling ({}) — yet:",
        hierarchy.graph.vertex(conspirator).name,
        hierarchy.graph.vertex(victim).name
    );
    println!("\n{derivation}");
    let after = derivation.replayed(&hierarchy.graph).unwrap();
    assert!(after.has_explicit(conspirator, victim, Right::Take));
    println!(
        "after the conspiracy, {} holds t over {} — Lemma 2.1 moved \
         authority *against* the hierarchy's edges.",
        after.vertex(conspirator).name,
        after.vertex(victim).name
    );
    assert!(wu::wu_invariant_violated(&after, &hierarchy.assignment));

    println!("\n== the paper's structures: hierarchy by information flow ==");
    let built = linear_hierarchy(&["L1", "L2", "L3"], 2);
    let mut g = built.graph.clone();
    let top = built.subjects[2][0];
    let bottom = built.subjects[0][0];
    let secret = g.add_object("secret");
    g.add_edge(top, secret, Rights::R).unwrap();
    // One island-local fixpoint answers every can_know pair at once —
    // no per-pair search.
    let closure = FlowClosure::compute(&g);
    let n = g.vertex_count();
    let flowing = g
        .vertex_ids()
        .flat_map(|x| g.vertex_ids().map(move |y| (x, y)))
        .filter(|&(x, y)| x != y && closure.can_know(x, y))
        .count();
    println!(
        "flow closure: {flowing} of {} ordered pairs can flow",
        n * (n - 1)
    );
    println!(
        "every subject may be corrupt; still can_know(bottom, secret) = {}",
        closure.can_know(bottom, secret)
    );
    assert!(!closure.can_know(bottom, secret));
    println!(
        "Theorem 4.3: with no t/g edges between levels there is nothing \
         for a conspiracy to grip — no number of corrupt subjects moves \
         information down."
    );

    println!("\n== minimum conspirator sets: Figure 5.1 ==");
    let fig = scenarios::fig_5_1();
    let g = fig.graph;
    let find = |name: &str| {
        g.vertex_ids()
            .find(|&v| g.vertex(v).name == name)
            .expect("figure vertex")
    };
    let (x, y) = (find("x"), find("y"));
    let closure = FlowClosure::compute(&g);
    assert!(closure.can_know(y, x));
    let conspiracy = min_flow_conspirators(&g, y, x).expect("the closure says the flow exists");
    let names: Vec<&str> = conspiracy
        .subjects
        .iter()
        .map(|&s| g.vertex(s).name.as_str())
        .collect();
    println!("can_know(y, x): the low subject can learn the high one's secrets,");
    println!(
        "but only if {} cooperate(s): conspirators {{{}}}, bridge word {}",
        conspiracy.subjects.len(),
        names.join(", "),
        conspiracy.bridge_word()
    );
    println!(
        "the conspirator count is the price of the leak — `tgq lint` \
         reports it as TG009."
    );
}
