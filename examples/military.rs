//! The military classification system of Figure 4.2: authority levels ×
//! category compartments, with incomparable levels, classified documents,
//! and the declassification pitfalls of §6.
//!
//! Run with: `cargo run --example military`

use take_grant::analysis::can_know_f;
use take_grant::hierarchy::declass::{lower_classification, raise_classification};
use take_grant::hierarchy::structure::military_hierarchy;
use take_grant::hierarchy::{secure_policy, secure_structural};

fn main() {
    // Authority {unclassified, confidential, secret, top-secret} crossed
    // with categories {A, B}: sixteen levels, many incomparable.
    let mut built = military_hierarchy(&["A", "B"], 2);
    let assignment = &built.assignment;
    let level = |name: &str| {
        (0..assignment.len())
            .find(|&i| assignment.name(i) == name)
            .expect("level exists")
    };

    let secret_a = level("secret.{A}");
    let secret_b = level("secret.{B}");
    let conf_a = level("confidential.{A}");
    let ts_ab = level("top-secret.{A,B}");

    println!("== the lattice ==");
    println!(
        "secret.{{A}} > confidential.{{A}}  : {}",
        assignment.higher(secret_a, conf_a)
    );
    println!(
        "secret.{{A}} ? secret.{{B}}        : incomparable = {}",
        assignment.incomparable(secret_a, secret_b)
    );
    println!(
        "top-secret.{{A,B}} > secret.{{A}}  : {}",
        assignment.higher(ts_ab, secret_a)
    );

    println!("\n== information flow follows clearance ==");
    let crypto_officer = built.subjects[secret_a][0];
    let nuclear_officer = built.subjects[secret_b][0];
    let clerk = built.subjects[conf_a][0];
    println!(
        "secret.{{A}} officer can learn confidential.{{A}}: {}",
        can_know_f(&built.graph, crypto_officer, clerk)
    );
    println!(
        "secret.{{A}} officer can learn secret.{{B}}:      {}",
        can_know_f(&built.graph, crypto_officer, nuclear_officer)
    );

    // Classify a war plan at top-secret.{A,B}.
    let war_plan = built.attach_object(ts_ab, "war-plan");
    println!("\n== the war plan ==");
    println!(
        "clerk can ever learn it: {}",
        can_know_f(&built.graph, clerk, war_plan)
    );
    assert!(secure_policy(&built.graph, &built.assignment).is_ok());
    assert!(secure_structural(&built.graph, &built.assignment).is_ok());
    println!("installation is secure (definitional and structural checks agree)");

    println!("\n== declassification pitfalls (§6) ==");
    // Raising a document someone already reads: refused.
    match raise_classification(&built.graph, &mut built.assignment, war_plan, ts_ab) {
        Ok(()) => println!("re-raising to the same level trivially succeeds"),
        Err(e) => println!("raise refused: {e}"),
    }
    let err = lower_classification(&built.graph, &mut built.assignment, war_plan, conf_a)
        .expect_err("the top-secret owner holds w — lowering must fail");
    println!("lowering the war plan refused: {err}");
}
