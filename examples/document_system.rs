//! The §6 correspondence: a Take-Grant document system under the combined
//! restriction behaves exactly like a Bell–LaPadula system with
//! write-as-append — restriction (a) is the simple security property and
//! restriction (b) the *-property.
//!
//! Run with: `cargo run --example document_system`

use take_grant::blp::{AccessMode, BlpState};
use take_grant::graph::{ProtectionGraph, Right, Rights};
use take_grant::hierarchy::{CombinedRestriction, LevelAssignment, Monitor};
use take_grant::rules::{DeJureRule, Rule};

fn main() {
    // A registry: every document is reachable through a directory object
    // each clerk holds t over, so acquisition attempts are take rules.
    let mut g = ProtectionGraph::new();
    let mut levels = LevelAssignment::linear(&["public", "internal", "secret"]);

    let clerks: Vec<_> = (0..3)
        .map(|i| {
            let s = g.add_subject(format!("clerk{i}"));
            levels.assign(s, i).unwrap();
            s
        })
        .collect();
    let directory = g.add_object("directory");
    levels.assign(directory, 2).unwrap();
    let docs: Vec<_> = (0..3)
        .map(|i| {
            let o = g.add_object(format!("doc-{}", levels.name(i)));
            levels.assign(o, i).unwrap();
            g.add_edge(directory, o, Rights::RW).unwrap();
            o
        })
        .collect();
    for &c in &clerks {
        g.add_edge(c, directory, Rights::T).unwrap();
    }

    let monitor = Monitor::new(g, levels.clone(), Box::new(CombinedRestriction));
    let blp = BlpState::new(levels);

    println!("take-grant monitor vs Bell-LaPadula, decision by decision:\n");
    println!("{:<28}{:<14}{:<14}", "request", "take-grant", "blp");
    let mut agreements = 0;
    let mut total = 0;
    for &clerk in &clerks {
        for &doc in &docs {
            for (right, mode) in [
                (Right::Read, AccessMode::Read),
                (Right::Write, AccessMode::Append),
            ] {
                let rule = Rule::DeJure(DeJureRule::Take {
                    actor: clerk,
                    via: directory,
                    target: doc,
                    rights: Rights::singleton(right),
                });
                let tg = monitor.check(&rule).is_ok();
                let bl = blp.permitted(clerk, doc, mode).is_ok();
                let request = format!(
                    "{} {} {}",
                    monitor.graph().vertex(clerk).name,
                    match mode {
                        AccessMode::Read => "reads",
                        AccessMode::Append => "appends",
                    },
                    monitor.graph().vertex(doc).name
                );
                println!(
                    "{:<28}{:<14}{:<14}",
                    request,
                    if tg { "permit" } else { "deny" },
                    if bl { "grant" } else { "refuse" }
                );
                total += 1;
                if tg == bl {
                    agreements += 1;
                }
                assert_eq!(tg, bl, "the §6 correspondence must hold");
            }
        }
    }
    println!("\nagreement: {agreements}/{total} decisions identical");
}
