//! A reference monitor under fire: a fuzzing adversary throws random rules
//! at a classified hierarchy under each of the paper's restrictions, and
//! the audit (Corollary 5.6) verifies the combined restriction held the
//! line. Also replays Figure 5.1's execute-versus-write distinction.
//!
//! Run with: `cargo run --example audit_monitor`

use take_grant::graph::{Right, Rights};
use take_grant::hierarchy::{
    ApplicationRestriction, CombinedRestriction, DirectionRestriction, Monitor, Restriction,
    Unrestricted,
};
use take_grant::rules::{DeJureRule, Rule};
use take_grant::sim::gen::{random_trace, HierarchyGen};

fn main() {
    let mut built = HierarchyGen {
        levels: 4,
        per_level: 5,
        noise_edges: 0,
        seed: 42,
    }
    .build();
    // Give the adversary something to grip: one registry per level holding
    // rw over that level's document (same-level edges, so the initial
    // graph is clean), with every subject holding a take right over every
    // registry — the acquisition surface of a real document system.
    let subjects: Vec<_> = built.graph.subjects().collect();
    for level in 0..4 {
        let registry = built.graph.add_object(format!("registry{level}"));
        built.assignment.assign(registry, level).unwrap();
        let doc = built.attach_object(level, &format!("reg-doc{level}"));
        built.graph.add_edge(registry, doc, Rights::RW).unwrap();
        for &s in &subjects {
            built.graph.add_edge(s, registry, Rights::T).unwrap();
        }
    }
    // The adversary: every subject systematically tries to take r, w and e
    // over every document through its registry, plus random fuzzing.
    let mut trace: Vec<Rule> = Vec::new();
    let docs: Vec<_> = (0..4)
        .map(|l| built.graph.find_by_name(&format!("reg-doc{l}")).unwrap())
        .collect();
    let registries: Vec<_> = (0..4)
        .map(|l| built.graph.find_by_name(&format!("registry{l}")).unwrap())
        .collect();
    for &s in &subjects {
        for level in 0..4 {
            for right in [Rights::R, Rights::W, Rights::E] {
                trace.push(Rule::DeJure(DeJureRule::Take {
                    actor: s,
                    via: registries[level],
                    target: docs[level],
                    rights: right,
                }));
            }
        }
    }
    trace.extend(random_trace(&built.graph, 4000, 1));

    println!(
        "{} targeted acquisitions + 4000 random rules against a 4-level hierarchy:\n",
        trace.len() - 4000
    );
    println!(
        "{:<16}{:>10}{:>10}{:>12}{:>12}",
        "restriction", "permitted", "denied", "malformed", "violations"
    );
    let restrictions: Vec<(&str, Box<dyn Restriction>)> = vec![
        ("unrestricted", Box::new(Unrestricted)),
        ("direction", Box::new(DirectionRestriction)),
        (
            "application",
            Box::new(ApplicationRestriction {
                immovable: Rights::RW,
            }),
        ),
        ("combined", Box::new(CombinedRestriction)),
    ];
    for (label, restriction) in restrictions {
        let mut monitor = Monitor::new(built.graph.clone(), built.assignment.clone(), restriction);
        for rule in &trace {
            let _ = monitor.try_apply(rule);
        }
        // Judge every outcome with the combined invariant (the security
        // meaning of "violation" is the same for all rows).
        let violations = take_grant::hierarchy::monitor::audit_graph(
            monitor.graph(),
            monitor.levels(),
            &CombinedRestriction,
        );
        let stats = monitor.stats();
        println!(
            "{:<16}{:>10}{:>10}{:>12}{:>12}",
            label,
            stats.permitted,
            stats.denied,
            stats.malformed,
            violations.len()
        );
        if label == "combined" {
            assert!(violations.is_empty(), "Theorem 5.5 soundness");
        }
    }

    println!("\nFigure 5.1 — execute crosses levels, write does not:");
    let fig = take_grant::sim::scenarios::fig_5_1();
    let mut monitor = Monitor::new(
        fig.graph.clone(),
        fig.assignment.clone(),
        Box::new(CombinedRestriction),
    );
    for (right, label) in [(Rights::W, "w"), (Rights::E, "e")] {
        let rule = Rule::DeJure(DeJureRule::Take {
            actor: fig.x,
            via: fig.s,
            target: fig.y,
            rights: right,
        });
        match monitor.try_apply(&rule) {
            Ok(_) => println!("  x takes ({label} to y): permitted"),
            Err(e) => println!("  x takes ({label} to y): {e}"),
        }
    }
    assert!(monitor.graph().has_explicit(fig.x, fig.y, Right::Execute));
    assert!(!monitor.graph().has_explicit(fig.x, fig.y, Right::Write));
}
