//! An insider-threat assessment: who can steal what, how many
//! conspirators does each attack need, and what exactly would each denied
//! request have enabled? Exercises the theft/conspiracy analyses and the
//! monitor's counterfactual explanations.
//!
//! Run with: `cargo run --example insider_threat`

use take_grant::analysis::{can_steal, min_conspirators, synthesis};
use take_grant::graph::{Right, Rights};
use take_grant::hierarchy::{CombinedRestriction, LevelAssignment, Monitor};
use take_grant::rules::{DeJureRule, Rule};

fn main() {
    // A small firm. The vault object holds read rights over the ledger;
    // the ops subject administers the vault (t); the intern can reach ops
    // through the ticket queue; the auditor holds its own read.
    let (g, [ops, intern, auditor, vault, queue, ledger]) = take_grant::graph::graph! {
        subjects: ops, intern, auditor;
        objects: vault, queue, ledger;
        ops => vault: t;
        vault => ledger: r;
        auditor => ledger: r;
        intern => queue: t;
        queue => ops: t;
    };
    let names = |v| g.vertex(v).name.clone();

    println!("== theft assessment: who can steal (r to ledger)? ==");
    for &subject in &[ops, intern, auditor] {
        let steals = can_steal(&g, Right::Read, subject, ledger);
        let conspiracy = min_conspirators(&g, Right::Read, subject, ledger);
        let chain = match &conspiracy {
            None => "-".to_string(),
            Some(c) if c.is_empty() => "already holds it".to_string(),
            Some(c) => c.iter().map(|&v| names(v)).collect::<Vec<_>>().join(" -> "),
        };
        println!(
            "{:<10} can_steal = {:<5} conspirators = {}",
            names(subject),
            steals,
            chain
        );
    }

    // The intern's full attack, synthesized: take along the queue to ops,
    // pull ops' vault authority backwards, read the ledger.
    println!("\n== the intern's attack plan ==");
    match synthesis::steal_witness(&g, Right::Read, intern, ledger) {
        Ok(d) => {
            println!("{d}");
            let after = d.replayed(&g).unwrap();
            assert!(after.has_explicit(intern, ledger, Right::Read));
        }
        Err(e) => println!("(no theft possible: {e})"),
    }

    // Classify and monitor. The intern is below the ledger.
    let mut levels = LevelAssignment::linear(&["staff", "finance"]);
    for v in [intern, queue] {
        levels.assign(v, 0).unwrap();
    }
    for v in [ops, auditor, vault, ledger] {
        levels.assign(v, 1).unwrap();
    }
    let monitor = Monitor::new(g.clone(), levels, Box::new(CombinedRestriction));

    println!("== the same request, monitored and explained ==");
    let request = Rule::DeJure(DeJureRule::Take {
        actor: intern,
        via: queue,
        target: ops,
        rights: Rights::T,
    });
    // Taking t over ops is permitted (t is inert)...
    match monitor.check(&request) {
        Ok(_) => println!("intern takes (t to ops): permitted — t is not a flow right"),
        Err(e) => println!("intern takes (t to ops): {e}"),
    }
    // ...but the read acquisition at the end of the chain is not.
    let final_step = Rule::DeJure(DeJureRule::Take {
        actor: intern,
        via: vault,
        target: ledger,
        rights: Rights::R,
    });
    // Give the intern the prefix of its attack so the final step is
    // well-formed, then ask the monitor to explain its denial.
    let mut armed = g.clone();
    armed.add_edge(intern, vault, Rights::T).unwrap();
    let mut levels = monitor.levels().clone();
    levels.assign(intern, 0).unwrap();
    let monitor = Monitor::new(armed, levels, Box::new(CombinedRestriction));
    match monitor.explain(&final_step).unwrap() {
        None => println!("final step: permitted (bug!)"),
        Some(explanation) => {
            println!("final step denied: {}", explanation.reason);
            println!(
                "permitting it would create {} new forbidden flow(s):",
                explanation.enabled_breaches.len()
            );
            for b in &explanation.enabled_breaches {
                println!("  {} would come to know {}", names(b.x), names(b.y));
            }
            assert!(!explanation.enabled_breaches.is_empty());
        }
    }
}
