//! The trojan laundering campaign, step by step: a grant the policy
//! permits, a corrupt take the monitor has no grounds to refuse, and the
//! write-down that Theorem 5.5 finally stops.
//!
//! This is the generated counterpart of `examples/graphs/corpus/
//! trojan-chain.*` (same family, scale, seed): `tg-gen` plants a corrupt
//! service at the high level, a spy below the boundary, and a dead-drop
//! courier — then scripts the laundering attempt as a rule trace whose
//! prefix is level-respecting and whose final step is not. The linter
//! sees the latent channel statically (TG010, pinned as a golden in
//! `crates/cli/tests/golden/corpus/trojan-chain.txt`); the monitor
//! refuses the channel dynamically. Both halves are Theorem 5.5.
//!
//! Run with: `cargo run --example trojan`

use take_grant::gen::{generate, CampaignKind, Family, GenConfig, Verdict};
use take_grant::graph::Right;
use take_grant::hierarchy::{CombinedRestriction, Monitor};
use take_grant::lint::{LintContext, Registry};

fn main() {
    // The committed corpus fixture's exact configuration.
    let config = GenConfig::new(Family::Chain, 12, 1).with_campaign(CampaignKind::Trojan);
    let scenario = generate(&config);
    let campaign = scenario.campaign.as_ref().expect("campaign requested");
    let g = &scenario.graph;
    let name = |v| &g.vertex(v).name;

    println!("== the stage ==");
    println!(
        "a {}-level chain ({} vertices, {} edges), plus the campaign cast:",
        scenario.levels.len(),
        g.vertex_count(),
        g.edge_count()
    );
    println!(
        "  `trojan-secret` (high) is read-writable by its owning user;\n  \
         `trojan-srv` is a corrupt high-level service the user can grant to;\n  \
         `trojan-spy` (low) holds t over the service;\n  \
         `trojan-courier` (low) is the service's handle to the low side;\n  \
         `trojan-dropbox` (low) is where the secret is meant to land."
    );

    // The pure rule system — no monitor — would leak: that latent
    // channel is exactly what the TG010 lint flags statically.
    assert!(take_grant::analysis::can_know(
        g,
        campaign.knower,
        campaign.secret
    ));
    println!("\n== the linter's verdict, before anything runs ==");
    let registry = Registry::with_default_lints();
    let cx = LintContext::new(g, Some(&scenario.levels), None);
    let diagnostics = registry.run(&cx);
    let tg010 = diagnostics.iter().filter(|d| d.code == "TG010").count();
    println!(
        "{} diagnostics, {tg010} of them rights-laundering (TG010): the \
         spy CAN come to know the secret under the unrestricted rules.",
        diagnostics.len()
    );
    assert!(tg010 > 0, "the laundering conduit is flagged");

    println!("\n== the campaign, replayed through the monitor ==");
    let mut monitor = Monitor::new(
        g.clone(),
        scenario.levels.clone(),
        Box::new(CombinedRestriction),
    );
    for (i, rule) in campaign.trace.steps.iter().enumerate() {
        let verdict = monitor.try_apply(rule);
        match &verdict {
            Ok(_) => println!("  step {}: {rule}\n          permitted", i + 1),
            Err(e) => println!("  step {}: {rule}\n          REFUSED: {e}", i + 1),
        }
        let expected = campaign.expected[i];
        assert_eq!(
            verdict.is_ok(),
            expected == Verdict::Permit,
            "step {} verdict must match the campaign script",
            i + 1
        );
    }
    println!(
        "\nthe grant and the corrupt take were level-respecting — the \
         monitor had no grounds to refuse them. The write-down was not."
    );

    // The acquisition never happened: the spy's view of the secret is
    // exactly what it was before the campaign.
    assert!(!monitor
        .graph()
        .has_any(campaign.knower, campaign.secret, Right::Read));
    println!(
        "after the campaign, {} holds no read over {} — the flow the \
         linter predicted is the flow the monitor refused (Theorem 5.5).",
        name(campaign.knower),
        name(campaign.secret)
    );
}
