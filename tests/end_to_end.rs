//! Cross-crate integration: build a classified installation through the
//! public facade, attack it, monitor it, audit it.

use take_grant::analysis::{can_know, can_share, synthesis};
use take_grant::graph::{Right, Rights};
use take_grant::hierarchy::declass::private_copy_attack;
use take_grant::hierarchy::monitor::audit_graph;
use take_grant::hierarchy::objects::{object_level, ObjectLevel};
use take_grant::hierarchy::structure::lattice_hierarchy;
use take_grant::hierarchy::{
    rw_levels, secure_policy, secure_structural, CombinedRestriction, Monitor,
};
use take_grant::rules::{DeJureRule, Rule};
use take_grant::sim::gen::random_trace;

#[test]
fn a_full_installation_lifecycle() {
    // 1. Build a diamond lattice with two subjects per level.
    let mut built = lattice_hierarchy(
        &["public", "engineering", "finance", "board"],
        &[(1, 0), (2, 0), (3, 1), (3, 2)],
        2,
    )
    .unwrap();
    assert!(secure_policy(&built.graph, &built.assignment).is_ok());

    // 2. Attach documents and check their derived classification.
    let ledger = built.attach_object(2, "ledger");
    let roadmap = built.attach_object(1, "roadmap");
    let derived = rw_levels(&built.graph);
    let finance_level = derived
        .level_of(built.subjects[2][0])
        .expect("subjects are classified");
    assert_eq!(
        object_level(&built.graph, &derived, ledger),
        ObjectLevel::Level(finance_level)
    );

    // 3. The static analysis confirms compartment separation.
    let engineer = built.subjects[1][0];
    let accountant = built.subjects[2][0];
    let director = built.subjects[3][0];
    assert!(!can_know(&built.graph, engineer, ledger));
    assert!(!can_know(&built.graph, accountant, roadmap));
    assert!(can_know(&built.graph, director, ledger));
    assert!(can_know(&built.graph, director, roadmap));

    // 4. Plant an attack surface and watch the analysis light up.
    let mut attacked = built.graph.clone();
    let registry = attacked.add_object("registry");
    attacked.add_edge(registry, ledger, Rights::R).unwrap();
    attacked.add_edge(engineer, registry, Rights::T).unwrap();
    assert!(can_share(&attacked, Right::Read, engineer, ledger));
    let witness = synthesis::share_witness(&attacked, Right::Read, engineer, ledger).unwrap();
    let broken = witness.replayed(&attacked).unwrap();
    assert!(broken.has_explicit(engineer, ledger, Right::Read));

    // 5. The same surface behind the monitor is harmless.
    let mut levels = built.assignment.clone();
    levels.assign(registry, 2).unwrap();
    let mut monitor = Monitor::new(attacked, levels, Box::new(CombinedRestriction));
    let steal = Rule::DeJure(DeJureRule::Take {
        actor: engineer,
        via: registry,
        target: ledger,
        rights: Rights::R,
    });
    assert!(monitor.try_apply(&steal).is_err());
    for rule in random_trace(monitor.graph(), 500, 99) {
        let _ = monitor.try_apply(&rule);
    }
    assert!(monitor.audit().is_empty());

    // 6. Structural and definitional checks agree on the clean build.
    assert!(secure_structural(&built.graph, &built.assignment).is_ok());

    // 7. And the §6 private-copy attack still works *within* clearance:
    // the director copies the ledger it legitimately reads.
    let mut g = built.graph.clone();
    g.add_edge(director, ledger, Rights::R).unwrap();
    let (copy_attack, _) = private_copy_attack(&g, director, ledger).unwrap();
    let after = copy_attack.replayed(&g).unwrap();
    let copy = after.find_by_name("private-copy").unwrap();
    assert!(take_grant::analysis::can_know_f(&after, copy, ledger));
}

#[test]
fn audit_is_equivalent_to_incremental_checking() {
    // Corollaries 5.6/5.7 consistency: a graph reached exclusively through
    // the monitor audits clean; the same rule stream applied raw audits
    // exactly the permitted-minus-denied difference.
    let built = take_grant::sim::gen::HierarchyGen {
        levels: 3,
        per_level: 3,
        noise_edges: 0,
        seed: 5,
    }
    .build();
    let trace = random_trace(&built.graph, 800, 17);
    let mut monitor = Monitor::new(
        built.graph.clone(),
        built.assignment.clone(),
        Box::new(CombinedRestriction),
    );
    for rule in &trace {
        let _ = monitor.try_apply(rule);
    }
    assert!(monitor.audit().is_empty());
    // Replaying the monitor's accepted log raw reproduces its graph.
    let replayed = monitor.log().replayed(&built.graph).unwrap();
    assert_eq!(&replayed, monitor.graph());
    assert!(audit_graph(&replayed, monitor.levels(), &CombinedRestriction).is_empty());
}
