//! Facade-level regeneration of every figure in the paper, asserting each
//! caption's headline fact. EXPERIMENTS.md indexes these.

use take_grant::analysis::{can_know, can_know_f, can_share, Islands};
use take_grant::graph::{Right, Rights};
use take_grant::hierarchy::{secure_policy, CombinedRestriction, Monitor};
use take_grant::rules::{DeJureRule, Rule};
use take_grant::sim::scenarios;

#[test]
fn figure_2_1_wu_conspiracy() {
    let fig = scenarios::fig_2_1();
    let after = fig.derivation.replayed(&fig.wu.graph).unwrap();
    assert!(after.has_explicit(fig.conspirator, fig.victim, Right::Take));
}

#[test]
fn figure_2_2_vocabulary() {
    let fig = scenarios::fig_2_2();
    let islands = Islands::compute(&fig.graph);
    assert_eq!(islands.len(), 3);
    assert!(islands.same_island(fig.p, fig.u));
    assert!(islands.same_island(fig.y, fig.s_prime));
}

#[test]
fn figure_3_1_associated_words() {
    let fig = scenarios::fig_3_1();
    let words = take_grant::paths::associated_words(&fig.graph, &fig.path, Rights::RW, false);
    assert_eq!(words.len(), 2);
}

#[test]
fn figure_4_1_linear_classification() {
    let built = scenarios::fig_4_1();
    assert!(secure_policy(&built.graph, &built.assignment).is_ok());
    assert!(can_know_f(
        &built.graph,
        built.subjects[3][0],
        built.subjects[0][0]
    ));
    assert!(!can_know_f(
        &built.graph,
        built.subjects[0][0],
        built.subjects[3][0]
    ));
}

#[test]
fn figure_4_2_military_classification() {
    let built = scenarios::fig_4_2();
    assert_eq!(built.subjects.len(), 16);
    assert!(secure_policy(&built.graph, &built.assignment).is_ok());
}

#[test]
fn figure_5_1_execute_but_not_write() {
    let fig = scenarios::fig_5_1();
    let mut monitor = Monitor::new(
        fig.graph.clone(),
        fig.assignment.clone(),
        Box::new(CombinedRestriction),
    );
    let take = |rights| {
        Rule::DeJure(DeJureRule::Take {
            actor: fig.x,
            via: fig.s,
            target: fig.y,
            rights,
        })
    };
    assert!(monitor.try_apply(&take(Rights::W)).is_err());
    assert!(monitor.try_apply(&take(Rights::E)).is_ok());
}

#[test]
fn figure_6_1_de_jure_only_breach() {
    let fig = scenarios::fig_6_1();
    assert!(!can_know_f(&fig.graph, fig.x, fig.y));
    assert!(can_share(&fig.graph, Right::Read, fig.x, fig.y));
    assert!(can_know(&fig.graph, fig.x, fig.y));
}
