//! The §6 correspondence, tested at decision level: the combined
//! restriction's judgement of an explicit `r`/`w` edge equals the
//! Bell–LaPadula judgement of the matching Read/Append access, for every
//! entity pair over random lattices — and a monitored trace bisimulates a
//! BLP access stream.

use proptest::prelude::*;
use take_grant::blp::{AccessMode, BlpState};
use take_grant::graph::{ProtectionGraph, Right, Rights};
use take_grant::hierarchy::{CombinedRestriction, LevelAssignment, Monitor, Restriction};
use take_grant::rules::{DeJureRule, Effect, Rule};

fn lattice(order_kind: usize) -> LevelAssignment {
    match order_kind {
        0 => LevelAssignment::linear(&["l0", "l1", "l2"]),
        1 => LevelAssignment::new(&["l0", "l1", "l2"], &[(1, 0), (2, 0)]).unwrap(),
        _ => LevelAssignment::new(&["l0", "l1", "l2", "l3"], &[(1, 0), (2, 0), (3, 1), (3, 2)])
            .unwrap(),
    }
}

proptest! {
    /// Restriction (a) ⟺ simple security; restriction (b) ⟺ *-property.
    #[test]
    fn edge_decisions_coincide(
        order_kind in 0usize..3,
        assignments in prop::collection::vec(0usize..4, 2..8),
    ) {
        let mut levels = lattice(order_kind);
        let count = levels.len();
        let mut g = ProtectionGraph::new();
        for (i, &l) in assignments.iter().enumerate() {
            let v = g.add_subject(format!("v{i}"));
            levels.assign(v, l % count).unwrap();
        }
        let blp = BlpState::new(levels.clone());
        for a in g.vertex_ids() {
            for b in g.vertex_ids() {
                if a == b { continue; }
                let read_denied =
                    CombinedRestriction.edge_violates(&levels, a, b, Rights::R);
                prop_assert_eq!(
                    !read_denied,
                    blp.permitted(a, b, AccessMode::Read).is_ok(),
                    "read decision diverges for {} -> {}", a, b
                );
                let write_denied =
                    CombinedRestriction.edge_violates(&levels, a, b, Rights::W);
                prop_assert_eq!(
                    !write_denied,
                    blp.permitted(a, b, AccessMode::Append).is_ok(),
                    "write/append decision diverges for {} -> {}", a, b
                );
            }
        }
    }
}

#[test]
fn monitored_trace_bisimulates_blp() {
    // A take-surface graph: each subject can attempt to take r/w over
    // every object through a same-level registry. Every monitor decision
    // on an r/w acquisition must match BLP's get-access decision.
    let mut g = ProtectionGraph::new();
    let mut levels = LevelAssignment::linear(&["l0", "l1", "l2"]);
    let mut subjects = Vec::new();
    let mut objects = Vec::new();
    let mut registries = Vec::new();
    for l in 0..3 {
        let s = g.add_subject(format!("s{l}"));
        levels.assign(s, l).unwrap();
        subjects.push(s);
        let o = g.add_object(format!("o{l}"));
        levels.assign(o, l).unwrap();
        objects.push(o);
        let r = g.add_object(format!("reg{l}"));
        levels.assign(r, l).unwrap();
        g.add_edge(r, o, Rights::RW).unwrap();
        registries.push(r);
    }
    for &s in &subjects {
        for &r in &registries {
            g.add_edge(s, r, Rights::T).unwrap();
        }
    }

    let mut monitor = Monitor::new(g, levels.clone(), Box::new(CombinedRestriction));
    let mut blp = BlpState::new(levels);
    for &s in &subjects {
        for (l, &o) in objects.iter().enumerate() {
            for (right, mode) in [
                (Right::Read, AccessMode::Read),
                (Right::Write, AccessMode::Append),
            ] {
                let rule = Rule::DeJure(DeJureRule::Take {
                    actor: s,
                    via: registries[l],
                    target: o,
                    rights: Rights::singleton(right),
                });
                let tg = monitor.try_apply(&rule);
                let bl = blp.request(s, o, mode);
                assert_eq!(
                    tg.is_ok(),
                    bl.is_ok(),
                    "decision mismatch for subject {s} on object {o} ({mode:?})"
                );
                if let Ok(Effect::ExplicitAdded { src, dst, .. }) = tg {
                    // Both systems now record the access.
                    assert!(blp.has_access(src, dst, mode));
                }
            }
        }
    }
    // Both final states are internally secure.
    assert!(blp.state_secure());
    assert!(monitor.audit().is_empty());
}
