//! Interchange-format round trips through the public facade: the text
//! format, DOT, and the rule codec behind the monitor journal.

use proptest::prelude::*;
use take_grant::graph::{parse_graph, render_graph, DotOptions, ProtectionGraph, Rights, VertexId};
use take_grant::sim::gen::GraphGen;

#[test]
fn figures_round_trip_through_the_text_format() {
    for graph in [
        take_grant::sim::scenarios::fig_2_2().graph,
        take_grant::sim::scenarios::fig_5_1().graph,
        take_grant::sim::scenarios::fig_6_1().graph,
        take_grant::sim::scenarios::fig_4_1().graph,
    ] {
        let text = render_graph(&graph);
        let back = parse_graph(&text).expect("rendered graphs parse");
        assert_eq!(graph, back);
    }
}

#[test]
fn generated_graphs_round_trip() {
    for seed in 0..10 {
        let graph = GraphGen {
            vertices: 24,
            seed,
            ..GraphGen::default()
        }
        .build();
        let back = parse_graph(&render_graph(&graph)).unwrap();
        assert_eq!(graph, back);
    }
}

#[test]
fn dot_output_mentions_every_vertex_and_edge() {
    let graph = take_grant::sim::scenarios::fig_2_2().graph;
    let dot = DotOptions::default().render(&graph);
    for (id, _) in graph.vertices() {
        assert!(dot.contains(&format!("{id} [")), "vertex {id} missing");
    }
    for edge in graph.edges() {
        assert!(
            dot.contains(&format!("{} -> {}", edge.src, edge.dst)),
            "edge {} -> {} missing",
            edge.src,
            edge.dst
        );
    }
}

#[test]
fn text_round_trips_preserve_analysis_results() {
    let graph = take_grant::sim::scenarios::fig_6_1().graph;
    let back = parse_graph(&render_graph(&graph)).unwrap();
    assert_eq!(graph, back);
    let x = back.find_by_name("x").unwrap();
    let y = back.find_by_name("y").unwrap();
    assert!(take_grant::analysis::can_know(&back, x, y));
}

proptest! {
    /// Arbitrary explicit/implicit-mixed graphs survive text round trips.
    #[test]
    fn text_format_round_trip(
        kinds in prop::collection::vec(prop::bool::ANY, 1..8),
        edges in prop::collection::vec((0usize..8, 0usize..8, 1u16..32, prop::bool::ANY), 0..16),
    ) {
        let mut g = ProtectionGraph::new();
        for (i, subject) in kinds.iter().enumerate() {
            if *subject {
                g.add_subject(format!("s{i}"));
            } else {
                g.add_object(format!("o{i}"));
            }
        }
        for &(a, b, bits, implicit) in &edges {
            let src = VertexId::from_index(a % kinds.len());
            let dst = VertexId::from_index(b % kinds.len());
            if src == dst { continue; }
            let rights = Rights::from_bits(bits & 0b11111);
            if rights.is_empty() { continue; }
            if implicit {
                g.add_implicit_edge(src, dst, rights).unwrap();
            } else {
                g.add_edge(src, dst, rights).unwrap();
            }
        }
        let back = parse_graph(&render_graph(&g)).expect("render output parses");
        prop_assert_eq!(g, back);
    }
}
