//! Hierarchical Take-Grant Protection Systems — a full reproduction of
//! Matt Bishop's SOSP 1981 paper as a Rust library.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — the protection-graph substrate (vertices, rights, explicit
//!   and implicit edges).
//! * [`paths`] — words over directed edge letters and the regular-language
//!   path machinery (spans, bridges, connections).
//! * [`rules`] — the de jure rules (take, grant, create, remove) and the de
//!   facto rules (post, pass, spy, find), with replayable derivations.
//! * [`analysis`] — the decision procedures: islands, `can_share`
//!   (Theorem 2.3), `can_know_f` (Theorem 3.1) and `can_know` (Theorem 3.2),
//!   plus constructive witness synthesis.
//! * [`flow`] — the whole-hierarchy flow closure: one island-local
//!   fixpoint answering every `can_know` pair at once, with typed bridge
//!   search, minimum conspirator sets, and generation-stamped
//!   memoization for incremental reuse.
//! * [`gen`] — the scenario corpus: seeded generators for the four
//!   order-theoretic lattice families (military compartment lattices,
//!   deep chains, wide antichains, DAGs of levels) plus adversarial
//!   conspiracy and trojan campaign traces with expected per-step
//!   monitor verdicts.
//! * [`hierarchy`] — the paper's contribution: rw-levels, rwtg-levels, the
//!   `higher` partial order, security (Theorem 5.2), the de jure rule
//!   restrictions and the reference monitor (Theorem 5.5, Corollaries
//!   5.6/5.7), the Wu-model baseline, and declassification analysis.
//! * [`lint`] — a multi-pass static analyzer: paper-grounded lints over a
//!   parsed graph and optional policy, with spanned diagnostics, fix-its,
//!   and text/JSON/SARIF rendering.
//! * [`inc`] — the incremental audit and query engine: change-logged
//!   mutation, epoch union-find islands with transactional rollback, and
//!   memoized `can_share`/`can_know` with region-stamped invalidation,
//!   attachable to the reference monitor as an observer.
//! * [`log`] — the hash-chained commit log: tamper-evident durable
//!   history with epoch snapshots, bounded-time recovery, compaction with
//!   a differential proof, and time-travel reconstruction of any past
//!   protection state.
//! * [`blp`] — a Bell–LaPadula comparator used to validate the paper's §6
//!   correspondence claim.
//! * [`sim`] — workload generators and the scenario library reconstructing
//!   every figure in the paper.
//!
//! # Quickstart
//!
//! ```
//! use take_grant::graph::{ProtectionGraph, Rights};
//! use take_grant::analysis::can_know_f;
//!
//! // A two-level hierarchy: `hi` reads `lo`; information flows up only.
//! let mut g = ProtectionGraph::new();
//! let hi = g.add_subject("hi");
//! let lo = g.add_subject("lo");
//! g.add_edge(hi, lo, Rights::R).unwrap();
//!
//! assert!(can_know_f(&g, hi, lo));  // hi can learn lo's information…
//! assert!(!can_know_f(&g, lo, hi)); // …but never the reverse.
//! ```

#![forbid(unsafe_code)]

pub use tg_analysis as analysis;
pub use tg_blp as blp;
pub use tg_flow as flow;
pub use tg_gen as gen;
pub use tg_graph as graph;
pub use tg_hierarchy as hierarchy;
pub use tg_inc as inc;
pub use tg_lint as lint;
pub use tg_log as log;
pub use tg_paths as paths;
pub use tg_rules as rules;
pub use tg_sim as sim;
