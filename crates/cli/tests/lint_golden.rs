//! Golden-file tests for `tgq lint`: text, JSON and SARIF output on the
//! paper's Figures 4.1, 4.2 (secure) and 5.1 (insecure), pinned byte-for-
//! byte. Regenerate with `UPDATE_GOLDEN=1 cargo test -p tg-cli`.

mod common;

use std::path::Path;

use common::validate_json;

fn fixture(name: &str) -> String {
    format!(
        "{}/../../examples/graphs/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn golden_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn lint(args: &[&str]) -> (u8, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    match tg_cli::run_full(&args, &mut out) {
        Ok(code) => (code, out),
        Err(e) => panic!("lint did not dispatch: {e}"),
    }
}

/// Strips the checkout-dependent directory prefix, leaving basenames.
fn normalize(output: &str, path: &str) -> String {
    let base = Path::new(path)
        .file_name()
        .expect("fixture has a name")
        .to_string_lossy();
    output.replace(path, &base)
}

fn check(golden_name: &str, actual: &str) {
    let path = golden_path(golden_name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with UPDATE_GOLDEN=1 cargo test -p tg-cli",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden mismatch for {golden_name}; bless with UPDATE_GOLDEN=1 cargo test -p tg-cli"
    );
}

fn case(fig: &str, format: &str, ext: &str, expect_exit: u8) {
    let graph = fixture(&format!("{fig}.tg"));
    let policy = fixture(&format!("{fig}.pol"));
    let (code, out) = lint(&["lint", &graph, &policy, "--format", format]);
    assert_eq!(code, expect_exit, "{fig} {format} exit code");
    if format != "text" {
        validate_json(&out).unwrap_or_else(|e| panic!("{fig} {format} is not valid JSON: {e}"));
    }
    check(&format!("{fig}.{ext}"), &normalize(&out, &graph));
}

#[test]
fn fig_4_1_is_clean_in_all_formats() {
    case("fig_4_1", "text", "txt", 0);
    case("fig_4_1", "json", "json", 0);
    case("fig_4_1", "sarif", "sarif", 0);
}

#[test]
fn fig_4_2_is_clean_in_all_formats() {
    case("fig_4_2", "text", "txt", 0);
    case("fig_4_2", "json", "json", 0);
    case("fig_4_2", "sarif", "sarif", 0);
}

#[test]
fn fig_5_1_reports_the_leak_in_all_formats() {
    case("fig_5_1", "text", "txt", 2);
    case("fig_5_1", "json", "json", 2);
    case("fig_5_1", "sarif", "sarif", 2);
    // The text golden pins the violating edge's span: the `w e` edge is
    // declared on line 5 of the rendered figure.
    let text = std::fs::read_to_string(golden_path("fig_5_1.txt")).expect("golden");
    assert!(
        text.contains("fig_5_1.tg:5:1"),
        "span points at the edge line"
    );
    assert!(text.contains("error[TG002]"), "write-down is diagnosed");
    // The flow closure finds the one-conspirator chain flow too: `x`
    // alone can take `s`'s write right and funnel itself to `y`.
    assert!(text.contains("warn[TG009]"), "conspiracy flow is diagnosed");
}

#[test]
fn laundering_reports_the_conduit_in_all_formats() {
    case("laundering", "text", "txt", 2);
    case("laundering", "json", "json", 2);
    case("laundering", "sarif", "sarif", 2);
    let text = std::fs::read_to_string(golden_path("laundering.txt")).expect("golden");
    assert!(text.contains("warn[TG010]"), "laundering is diagnosed");
    assert!(
        text.contains("sole conduit"),
        "the diagnostic names the conduit"
    );
}

#[test]
fn trojan_corpus_fixture_reports_the_laundering_in_all_formats() {
    // The generated trojan campaign (examples/graphs/corpus, pinned by
    // crates/gen/tests/fixtures.rs): the standing graph is audit-clean,
    // but the linter must flag the corrupt service's read of the secret
    // as the laundering conduit — the static half of Theorem 5.5's
    // completeness story, with the monitor's refusal as the dynamic half
    // (see examples/trojan.rs).
    case("corpus/trojan-chain", "text", "txt", 2);
    case("corpus/trojan-chain", "json", "json", 2);
    case("corpus/trojan-chain", "sarif", "sarif", 2);
    let text = std::fs::read_to_string(golden_path("corpus/trojan-chain.txt")).expect("golden");
    assert!(text.contains("warn[TG010]"), "laundering is diagnosed");
    assert!(
        text.contains("trojan-spy"),
        "the diagnostic names the uncleared candidate"
    );
    assert!(
        text.contains("error[TG003]"),
        "the cross-level take scaffolding is an error"
    );
}

fn plan_case(trace: &str, format: &str, golden: &str, expect_exit: u8) {
    let graph = fixture("fig_6_1.tg");
    let policy = fixture("fig_6_1.pol");
    let trace = fixture(trace);
    let (code, out) = lint(&["plan", &graph, &policy, &trace, "--format", format]);
    assert_eq!(code, expect_exit, "plan {format} exit code");
    if format != "text" {
        validate_json(&out).unwrap_or_else(|e| panic!("plan {format} is not valid JSON: {e}"));
    }
    check(golden, &normalize(&out, &graph));
}

#[test]
fn plan_pins_the_refused_step_in_all_formats() {
    plan_case("plan_refused.tr", "text", "plan_refused.txt", 2);
    plan_case("plan_refused.tr", "json", "plan_refused.json", 2);
    plan_case("plan_refused.tr", "sarif", "plan_refused.sarif", 2);
    let text = std::fs::read_to_string(golden_path("plan_refused.txt")).expect("golden");
    assert!(text.contains("error[TG011]"), "the refusal is diagnosed");
    assert!(
        text.contains("step 1"),
        "the first refused step is numbered"
    );
}

#[test]
fn plan_accepts_a_legal_trace() {
    plan_case("plan_ok.tr", "text", "plan_ok.txt", 0);
}

#[test]
fn lint_output_is_byte_stable_at_any_job_count() {
    // The ISSUE-5 determinism contract: `--jobs` must never change a
    // byte of lint output. Two runs at --jobs 4 are diffed against each
    // other (thread scheduling varies between them), and every width is
    // diffed against --jobs 1 (the sequential driver) — for all three
    // formats, on the figure that actually produces diagnostics.
    let graph = fixture("fig_5_1.tg");
    let policy = fixture("fig_5_1.pol");
    for format in ["text", "json", "sarif"] {
        let (code_seq, seq) = lint(&["lint", &graph, &policy, "--format", format, "--jobs", "1"]);
        for jobs in ["2", "4", "8"] {
            let (code_a, first) =
                lint(&["lint", &graph, &policy, "--format", format, "--jobs", jobs]);
            let (code_b, second) =
                lint(&["lint", &graph, &policy, "--format", format, "--jobs", jobs]);
            assert_eq!(first, second, "{format} --jobs {jobs}: two runs differ");
            assert_eq!(
                seq, first,
                "{format} --jobs {jobs}: differs from sequential"
            );
            assert_eq!(
                (code_seq, code_seq),
                (code_a, code_b),
                "{format} exit codes"
            );
        }
    }
    // And the golden itself is what every width produces.
    let (_, out) = lint(&["lint", &graph, &policy, "--format", "text", "--jobs", "4"]);
    check("fig_5_1.txt", &normalize(&out, &graph));
}
