//! `tgq serve` / `tgq client` — the documented exit codes, the
//! fail-closed error paths, and one full daemon round trip whose final
//! state is byte-identical to an offline `tgq replay` of its commit
//! log (the same check the CI `serve-smoke` job scripts via `cmp`).

use std::io::Write as _;

use tg_cli::CliError;

fn run_full(args: &[&str]) -> Result<(u8, String), CliError> {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    tg_cli::run_full(&args, &mut out).map(|code| (code, out))
}

fn temp_file(name: &str, contents: &str) -> String {
    let path = std::env::temp_dir().join(format!("tgq-serve-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents.as_bytes()).expect("write");
    path.to_string_lossy().into_owned()
}

const GRAPH: &str = "subject s1\nsubject s2\nobject doc\nedge s1 -> s2 : t\nedge s2 -> doc : r\n";
const POLICY: &str = "level only\nassign s1 only\nassign s2 only\nassign doc only\n";

fn fixture() -> (String, String) {
    (temp_file("g.tg", GRAPH), temp_file("p.pol", POLICY))
}

#[test]
fn serve_requires_exactly_one_bind() {
    let (g, p) = fixture();
    // Neither --listen nor --unix.
    let err = run_full(&["serve", &g, &p]).unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");
    // Both at once.
    let err = run_full(&[
        "serve",
        &g,
        &p,
        "--listen",
        "127.0.0.1:0",
        "--unix",
        "/tmp/x.sock",
    ])
    .unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");
    assert!(err.message().contains("usage: tgq serve"), "{err}");
}

#[test]
fn serve_rejects_bad_flag_values() {
    let (g, p) = fixture();
    let err = run_full(&[
        "serve",
        &g,
        &p,
        "--listen",
        "127.0.0.1:0",
        "--batch-window",
        "zero",
    ])
    .unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");
    let err = run_full(&[
        "serve",
        &g,
        &p,
        "--listen",
        "127.0.0.1:0",
        "--batch-window",
        "0",
    ])
    .unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");
    // --snap-interval is a --log modifier, alone it is a usage error.
    let err = run_full(&[
        "serve",
        &g,
        &p,
        "--listen",
        "127.0.0.1:0",
        "--snap-interval",
        "8",
    ])
    .unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");
}

#[test]
fn serve_fails_closed_on_an_unbindable_address() {
    let (g, p) = fixture();
    let err = run_full(&["serve", &g, &p, "--listen", "not-an-address"]).unwrap_err();
    // An input failure, not a usage error: exit 1, and the daemon never
    // started (nothing to clean up, nothing listening).
    assert!(matches!(err, CliError::Fail(_)), "{err}");
    assert!(err.message().contains("cannot bind"), "{err}");
}

#[cfg(unix)]
#[test]
fn serve_refuses_an_occupied_unix_socket_path() {
    let (g, p) = fixture();
    let sock = temp_file("occupied.sock", "not a socket");
    let err = run_full(&["serve", &g, &p, "--unix", &sock]).unwrap_err();
    assert!(matches!(err, CliError::Fail(_)), "{err}");
    assert!(err.message().contains("already exists"), "{err}");
    // The occupant was not clobbered.
    assert_eq!(std::fs::read_to_string(&sock).unwrap(), "not a socket");
}

#[test]
fn client_requires_exactly_one_target() {
    let err = run_full(&["client"]).unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");
    let err = run_full(&[
        "client",
        "--connect",
        "127.0.0.1:1",
        "--unix",
        "/tmp/x.sock",
    ])
    .unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");
}

#[test]
fn client_rejects_a_malformed_script_before_connecting() {
    // The target does not exist; a script error must surface first
    // (scripts are vetted before any socket is opened).
    let script = temp_file("bad.tgp", "ping\nfrobnicate the thing\n");
    let err = run_full(&["client", "--connect", "127.0.0.1:1", "--script", &script]).unwrap_err();
    assert!(matches!(err, CliError::Fail(_)), "{err}");
    assert!(err.message().contains("line 2"), "{err}");
}

#[test]
fn client_fails_closed_when_nothing_listens() {
    // Bind an ephemeral port, then drop it: connecting there is refused.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let script = temp_file("ping.tgp", "ping\n");
    let err = run_full(&[
        "client",
        "--connect",
        &format!("127.0.0.1:{port}"),
        "--script",
        &script,
    ])
    .unwrap_err();
    assert!(matches!(err, CliError::Fail(_)), "{err}");
    assert!(err.message().contains("cannot connect"), "{err}");
}

#[test]
fn client_fails_closed_against_a_server_that_frames_garbage() {
    // A fake "daemon" that answers any connection with 16 bytes of 0xFF:
    // the length prefix is over MAX_FRAME, so the client must refuse to
    // allocate and exit 1 rather than trust the stream.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let fake = std::thread::spawn(move || {
        if let Ok((mut sock, _)) = listener.accept() {
            let _ = sock.write_all(&[0xFF; 16]);
            // Hold the socket open (draining whatever the client sends)
            // until the client gives up, so its own writes cannot race
            // into a broken pipe before it reads the bad length prefix.
            let mut buf = [0u8; 64];
            while let Ok(n) = std::io::Read::read(&mut sock, &mut buf) {
                if n == 0 {
                    break;
                }
            }
        }
    });
    let script = temp_file("garbage.tgp", "ping\n");
    let err = run_full(&["client", "--connect", &addr, "--script", &script]).unwrap_err();
    assert!(matches!(err, CliError::Fail(_)), "{err}");
    assert!(err.message().contains("oversized-frame"), "{err}");
    fake.join().unwrap();
}

/// Full lifecycle on a Unix socket with a commit log: serve boots, one
/// client trips a documented error (exit 1), a second runs a clean
/// mixed script ending in `shutdown` (exit 0), the daemon's
/// `--dump-state` is byte-identical to `tgq replay --dump-state` of
/// the log directory it left behind.
#[cfg(unix)]
#[test]
fn serve_client_replay_round_trip() {
    let (g, p) = fixture();
    let base = std::env::temp_dir().join(format!("tgq-serve-rt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let sock = base.join("tgq.sock");
    let log_dir = base.join("log");
    std::fs::create_dir_all(&log_dir).unwrap();
    let live_dump = base.join("live.tg");
    let replay_dump = base.join("replay.tg");

    let serve_args: Vec<String> = [
        "serve",
        &g,
        &p,
        "--unix",
        sock.to_str().unwrap(),
        "--log",
        log_dir.to_str().unwrap(),
        "--snap-interval",
        "4",
        "--batch-window",
        "2",
        "--dump-state",
        live_dump.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let daemon = std::thread::spawn(move || {
        let mut out = String::new();
        tg_cli::run_full(&serve_args, &mut out).map(|code| (code, out))
    });
    // Wait for the readiness side effect: the socket path appearing.
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(sock.exists(), "daemon never bound its socket");

    // Client 1: an unknown vertex is an `error` verdict — documented
    // exit code 1, and the session (and daemon) survive it.
    let bad = temp_file("unknown.tgp", "can-share r nobody nowhere\n");
    let (code, out) =
        run_full(&["client", "--unix", sock.to_str().unwrap(), "--script", &bad]).unwrap();
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("unknown-vertex"), "{out}");

    // Client 2: a clean mixed workload, ending in shutdown.
    let script = temp_file(
        "mixed.tgp",
        "ping\n\
         apply take 0 1 2 x1\n\
         can-share r s1 doc\n\
         can-know s1 doc\n\
         same-island s1 s2\n\
         audit\n\
         stats\n\
         shutdown\n",
    );
    let (code, out) = run_full(&[
        "client",
        "--unix",
        sock.to_str().unwrap(),
        "--script",
        &script,
    ])
    .unwrap();
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("8 ok, 0 refused, 0 errors"), "{out}");
    assert!(out.contains("pong"), "{out}");
    assert!(out.contains("bye"), "{out}");

    let (code, out) = daemon.join().unwrap().unwrap();
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("commit log created"), "{out}");
    assert!(out.contains("1 permitted"), "{out}");
    assert!(!sock.exists(), "socket file must be removed on shutdown");

    // Offline recovery of the daemon's log reproduces its final state
    // byte-for-byte.
    let (code, out) = run_full(&[
        "replay",
        &g,
        &p,
        log_dir.to_str().unwrap(),
        "--dump-state",
        replay_dump.to_str().unwrap(),
    ])
    .unwrap();
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("chain verify: ok"), "{out}");
    let live = std::fs::read(&live_dump).unwrap();
    let replayed = std::fs::read(&replay_dump).unwrap();
    assert_eq!(live, replayed, "live daemon state diverged from replay");
    assert!(!live.is_empty());

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn serve_and_client_appear_in_usage() {
    let err = run_full(&[]).unwrap_err();
    assert!(
        err.message().contains("tgq serve <graph> <policy>"),
        "{err}"
    );
    assert!(err.message().contains("tgq client"), "{err}");
    assert!(err.message().contains("--batch-window <n>"), "{err}");
}
