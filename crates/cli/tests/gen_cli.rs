//! `tgq gen` and the `tgq bench --scale` knob.

use tg_cli::CliError;

fn run_full(args: &[&str]) -> Result<(u8, String), CliError> {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    tg_cli::run_full(&args, &mut out).map(|code| (code, out))
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tgq-gen-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn gen_writes_graph_and_policy() {
    let dir = scratch("plain");
    let (code, out) = run_full(&[
        "gen",
        "antichain",
        "--scale",
        "16",
        "--seed",
        "3",
        "--out",
        dir.to_str().unwrap(),
    ])
    .unwrap();
    assert_eq!(code, 0);
    let tg = dir.join("antichain-s16-seed3.tg");
    let pol = dir.join("antichain-s16-seed3.pol");
    assert!(tg.exists(), "graph file: {out}");
    assert!(pol.exists(), "policy file: {out}");
    assert!(
        !dir.join("antichain-s16-seed3.tr").exists(),
        "no campaign, no trace"
    );
    assert!(out.contains("antichain:"), "summary line: {out}");

    // The emitted artifacts feed straight back into the analyzer: a
    // campaign-free scenario is lint-clean (exit 0).
    let (lint_code, _) = run_full(&["lint", tg.to_str().unwrap(), pol.to_str().unwrap()]).unwrap();
    assert_eq!(lint_code, 0, "clean corpus scenario lints clean");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gen_campaign_emits_trace_that_plan_refuses() {
    let dir = scratch("campaign");
    let (code, out) = run_full(&[
        "gen",
        "chain",
        "--scale",
        "12",
        "--seed",
        "1",
        "--campaign",
        "trojan",
        "--out",
        dir.to_str().unwrap(),
    ])
    .unwrap();
    assert_eq!(code, 0);
    assert!(out.contains("campaign trojan: 3 steps"), "{out}");
    let tg = dir.join("chain-s12-seed1.tg");
    let pol = dir.join("chain-s12-seed1.pol");
    let tr = dir.join("chain-s12-seed1.tr");
    assert!(tr.exists(), "campaign trace: {out}");

    // Static vetting refuses the final downward-flow step (exit 2).
    let (plan_code, plan_out) = run_full(&[
        "plan",
        tg.to_str().unwrap(),
        pol.to_str().unwrap(),
        tr.to_str().unwrap(),
    ])
    .unwrap();
    assert_eq!(plan_code, 2, "{plan_out}");
    assert!(plan_out.contains("TG011"), "{plan_out}");
    assert!(plan_out.contains("refuses step 3"), "{plan_out}");

    // The campaign scaffolding is inert, so the standing state still
    // satisfies Corollary 5.6 (audit exit 0) …
    let (audit_code, _) =
        run_full(&["audit", tg.to_str().unwrap(), pol.to_str().unwrap()]).unwrap();
    assert_eq!(audit_code, 0, "campaign graphs stay audit-clean");
    // … while the deeper passes flag the latent channel (exit 2).
    let (lint_code, lint_out) =
        run_full(&["lint", tg.to_str().unwrap(), pol.to_str().unwrap()]).unwrap();
    assert_eq!(lint_code, 2, "{lint_out}");
    assert!(
        lint_out.contains("TG010"),
        "trojan laundering flagged: {lint_out}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gen_is_deterministic_across_runs() {
    let a = scratch("det-a");
    let b = scratch("det-b");
    for dir in [&a, &b] {
        run_full(&[
            "gen",
            "dag",
            "--scale",
            "20",
            "--seed",
            "9",
            "--campaign",
            "conspiracy",
            "--out",
            dir.to_str().unwrap(),
        ])
        .unwrap();
    }
    for ext in ["tg", "pol", "tr"] {
        let name = format!("dag-s20-seed9.{ext}");
        assert_eq!(
            std::fs::read_to_string(a.join(&name)).unwrap(),
            std::fs::read_to_string(b.join(&name)).unwrap(),
            "{name} differs between identical invocations"
        );
    }
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

#[test]
fn gen_usage_errors() {
    assert!(matches!(run_full(&["gen"]), Err(CliError::Usage(_))));
    match run_full(&["gen", "banana"]) {
        Err(CliError::Usage(m)) => assert!(m.contains("unknown family"), "{m}"),
        other => panic!("expected usage error, got {other:?}"),
    }
    match run_full(&["gen", "chain", "--campaign", "banana"]) {
        Err(CliError::Usage(m)) => assert!(m.contains("unknown campaign"), "{m}"),
        other => panic!("expected usage error, got {other:?}"),
    }
}

#[test]
fn bench_scale_drives_workload_and_json() {
    let json = std::env::temp_dir().join(format!("tgq-bench-scale-{}.json", std::process::id()));
    let (code, out) = run_full(&[
        "bench",
        "--scale",
        "72",
        "--ops",
        "40",
        "--jobs",
        "2",
        "--json",
        json.to_str().unwrap(),
    ])
    .unwrap();
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("scale 72"), "{out}");
    let envelope = std::fs::read_to_string(&json).unwrap();
    assert!(envelope.contains("\"scale\": 72"), "{envelope}");
    let _ = std::fs::remove_file(&json);

    // `TGQ_BENCH_SCALE` fills in when the flag is absent, and the flag
    // beats it. (This test owns the variable: nothing else in this test
    // binary reads it.)
    std::env::set_var("TGQ_BENCH_SCALE", "50");
    let (_, out) = run_full(&["bench", "--ops", "10", "--jobs", "1"]).unwrap();
    assert!(out.contains("scale 50"), "{out}");
    let (_, out) = run_full(&["bench", "--scale", "72", "--ops", "10", "--jobs", "1"]).unwrap();
    assert!(out.contains("scale 72"), "{out}");
    std::env::remove_var("TGQ_BENCH_SCALE");

    // Default scale reproduces the historical 20 × 10 workload shape.
    let (_, out) = run_full(&["bench", "--ops", "10", "--jobs", "1"]).unwrap();
    assert!(out.contains("workload: 20 levels x 10 subjects"), "{out}");
    assert!(out.contains("scale 200"), "{out}");
}
