//! End-to-end tests of every `tgq` command through the library entry
//! point, including failure modes.

use std::io::Write as _;

fn run(args: &[&str]) -> Result<String, String> {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    tg_cli::run(&args, &mut out).map(|()| out)
}

/// Writes `contents` to a fresh temp file and returns its path.
fn temp_file(name: &str, contents: &str) -> String {
    let path = std::env::temp_dir().join(format!("tgq-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents.as_bytes()).expect("write");
    path.to_string_lossy().into_owned()
}

const FIG61: &str = "subject x\nobject s\nobject y\nedge x -> s : t\nedge s -> y : r\n";

#[test]
fn show_summarizes_the_graph() {
    let path = temp_file("show.tg", FIG61);
    let out = run(&["show", &path]).unwrap();
    assert!(out.contains("3 vertices (1 subjects, 2 objects)"));
    assert!(out.contains("islands"));
}

#[test]
fn dot_emits_graphviz() {
    let path = temp_file("dot.tg", FIG61);
    let out = run(&["dot", &path]).unwrap();
    assert!(out.starts_with("digraph"));
    assert!(out.contains("label=\"t\""));
}

#[test]
fn islands_and_levels_render() {
    let path = temp_file("islands.tg", "subject a\nsubject b\nedge a -> b : tg\n");
    let out = run(&["islands", &path]).unwrap();
    assert!(out.contains("island 0: {a, b}"));
    let out = run(&["levels", &path]).unwrap();
    assert!(out.contains("rw-levels:"));
    assert!(out.contains("rwtg-levels:"));
}

#[test]
fn can_share_with_witness() {
    let path = temp_file("share.tg", FIG61);
    let out = run(&["can-share", &path, "r", "x", "y", "--witness"]).unwrap();
    assert!(out.contains("true"));
    assert!(out.contains("takes"));
    let out = run(&["can-share", &path, "w", "x", "y"]).unwrap();
    assert!(out.contains("false"));
}

#[test]
fn can_know_family() {
    let path = temp_file("know.tg", FIG61);
    assert!(run(&["can-know", &path, "x", "y"])
        .unwrap()
        .contains("true"));
    assert!(run(&["can-know-f", &path, "x", "y"])
        .unwrap()
        .contains("false"));
    let out = run(&["can-know", &path, "x", "y", "--witness"]).unwrap();
    assert!(out.contains("true"));
}

#[test]
fn can_steal_and_conspirators() {
    let path = temp_file("steal.tg", FIG61);
    let out = run(&["can-steal", &path, "r", "x", "y", "--witness"]).unwrap();
    assert!(out.contains("true"));
    let out = run(&["conspirators", &path, "r", "x", "y"]).unwrap();
    assert!(out.contains("1 conspirator(s): x"));
}

#[test]
fn secure_policy_and_audit() {
    let graph = temp_file("pol.tg", "subject hi\nsubject lo\nedge hi -> lo : r\n");
    let policy = temp_file(
        "pol.pol",
        "level low\nlevel high\ndominates high low\nassign hi high\nassign lo low\n",
    );
    let out = run(&["secure-policy", &graph, &policy]).unwrap();
    assert!(out.contains("secure"));
    assert!(run(&["audit", &graph, &policy]).unwrap().contains("clean"));

    // Plant a read-up and watch both commands fail.
    let bad_graph = temp_file("bad.tg", "subject hi\nsubject lo\nedge lo -> hi : r\n");
    let err = run(&["secure-policy", &bad_graph, &policy]).unwrap_err();
    assert!(err.contains("INSECURE"));
    let err = run(&["audit", &bad_graph, &policy]).unwrap_err();
    assert!(err.contains("violating"));
}

#[test]
fn figure_command_emits_parsable_graphs() {
    for id in ["2.1", "2.2", "3.1", "4.1", "4.2", "5.1", "6.1"] {
        let out = run(&["figure", id]).unwrap();
        assert!(
            tg_graph::parse_graph(&out).is_ok(),
            "figure {id} must round-trip"
        );
    }
}

#[test]
fn secure_derived_reports_breaches() {
    let path = temp_file("sec.tg", FIG61);
    // Fig 6.1 with derived levels: x below s/y de facto? x reads nothing,
    // so the derived order has no strict relation and the check passes or
    // fails depending on structure; assert it at least runs.
    let _ = run(&["secure", &path]);
}

const HIER_GRAPH: &str = "subject hi\nsubject lo\nobject q\nedge lo -> q : t\nedge q -> hi : rw\n";
const HIER_POLICY: &str = "level low\nlevel high\ndominates high low\nassign hi high\n\
                           assign lo low\nassign q high\n";

/// `take` rules against HIER_GRAPH (hi=0, lo=1, q=2), in trace format.
fn take_line(actor: usize, via: usize, target: usize, rights: tg_graph::Rights) -> String {
    use tg_graph::VertexId;
    tg_rules::codec::encode_rule(&tg_rules::Rule::DeJure(tg_rules::DeJureRule::Take {
        actor: VertexId::from_index(actor),
        via: VertexId::from_index(via),
        target: VertexId::from_index(target),
        rights,
    }))
}

#[test]
fn monitor_and_replay_round_trip() {
    use tg_graph::Rights;
    let graph = temp_file("mon.tg", HIER_GRAPH);
    let policy = temp_file("mon.pol", HIER_POLICY);
    // lo takes (w to hi): write-up, permitted. lo takes (r to hi): read-up,
    // denied. Both must reach the journal.
    let trace = temp_file(
        "mon.trace",
        &format!(
            "{}\n{}\n",
            take_line(1, 2, 0, Rights::W),
            take_line(1, 2, 0, Rights::R)
        ),
    );
    let journal = std::env::temp_dir()
        .join(format!("tgq-test-{}-mon.journal", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let out = run(&["monitor", &graph, &policy, &trace, "--journal", &journal]).unwrap();
    assert!(out.contains("1 permitted, 1 denied, 0 malformed, 0 refused"));
    assert!(out.contains("audit clean"));
    assert!(out.contains("journal written"));

    let out = run(&["replay", &graph, &policy, &journal]).unwrap();
    assert!(out.contains("recovered: 2 records replayed"));
    assert!(out.contains("1 permitted, 1 denied, 0 malformed, 0 refused"));
}

#[test]
fn monitor_batch_rolls_back() {
    use tg_graph::Rights;
    let graph = temp_file("batch.tg", HIER_GRAPH);
    let policy = temp_file("batch.pol", HIER_POLICY);
    let trace = temp_file(
        "batch.trace",
        &format!(
            "{}\n{}\n",
            take_line(1, 2, 0, Rights::W),
            take_line(1, 2, 0, Rights::R)
        ),
    );
    let out = run(&["monitor", &graph, &policy, &trace, "--batch"]).unwrap();
    assert!(out.contains("batch rolled back at rule 1"));
    assert!(out.contains("0 permitted, 1 denied, 0 malformed, 0 refused"));
}

#[test]
fn replay_survives_torn_tails_and_fails_closed_on_corruption() {
    use tg_graph::Rights;
    let graph = temp_file("tear.tg", HIER_GRAPH);
    let policy = temp_file("tear.pol", HIER_POLICY);
    let trace = temp_file(
        "tear.trace",
        &format!(
            "{}\n{}\n",
            take_line(1, 2, 0, Rights::W),
            take_line(1, 2, 0, Rights::R)
        ),
    );
    let journal = std::env::temp_dir()
        .join(format!("tgq-test-{}-tear.journal", std::process::id()))
        .to_string_lossy()
        .into_owned();
    run(&["monitor", &graph, &policy, &trace, "--journal", &journal]).unwrap();

    // Torn tail: drop the last few bytes — recovery truncates and reports.
    let bytes = std::fs::read(&journal).unwrap();
    let torn_path = temp_file("tear.torn", "");
    std::fs::write(&torn_path, &bytes[..bytes.len() - 5]).unwrap();
    let out = run(&["replay", &graph, &policy, &torn_path]).unwrap();
    // The torn partial line (29 bytes survive of the 34-byte record) is
    // dropped whole; only the intact prefix replays.
    assert!(out.contains("torn tail: 29 bytes truncated after 1 intact records"));
    assert!(out.contains("recovered: 1 records replayed"));

    // Mid-log corruption: damage the first record — replay refuses.
    let mut damaged = bytes.clone();
    let first_record = damaged.iter().position(|&b| b == b'\n').unwrap() + 12;
    damaged[first_record] ^= 0x20;
    let bad_path = temp_file("tear.bad", "");
    std::fs::write(&bad_path, &damaged).unwrap();
    let err = run(&["replay", &graph, &policy, &bad_path]).unwrap_err();
    assert!(err.contains("corruption"), "got: {err}");
}

/// Fresh directory path for a commit log (removed if a previous run
/// left one behind; the CLI creates it).
fn temp_dir(name: &str) -> String {
    let path = std::env::temp_dir().join(format!("tgq-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path.to_string_lossy().into_owned()
}

#[test]
fn monitor_commit_log_round_trips_with_report_at_and_diff() {
    use tg_graph::Rights;
    let graph = temp_file("log.tg", HIER_GRAPH);
    let policy = temp_file("log.pol", HIER_POLICY);
    let trace = temp_file(
        "log.trace",
        &format!(
            "{}\n{}\n",
            take_line(1, 2, 0, Rights::W),
            take_line(1, 2, 0, Rights::R)
        ),
    );
    let dir = temp_dir("log.dir");
    let out = run(&["monitor", &graph, &policy, &trace, "--log", &dir]).unwrap();
    assert!(out.contains("commit log created in"), "got: {out}");
    assert!(out.contains("1 permitted, 1 denied, 0 malformed, 0 refused"));
    assert!(
        out.contains("commit log at epoch 2 (1 snapshot(s)"),
        "got: {out}"
    );

    // Replaying the directory prints the pinned recovery report block.
    let out = run(&["replay", &graph, &policy, &dir]).unwrap();
    assert!(out.contains("recovered: 2 records replayed"), "got: {out}");
    assert!(out.contains("recovery report:"), "got: {out}");
    assert!(out.contains("  chain verify: ok (genesis "), "got: {out}");
    assert!(
        out.contains("  snapshot used: epoch 0 (0 rejected)"),
        "got: {out}"
    );
    assert!(out.contains("  records replayed: 2"), "got: {out}");
    assert!(out.contains("  torn tail: none"), "got: {out}");
    assert!(out.contains("  open batch: none"), "got: {out}");
    assert!(out.contains("  recovered epoch: 2 (base 0)"), "got: {out}");
    assert!(out.contains("1 permitted, 1 denied, 0 malformed, 0 refused"));

    // Rerunning the monitor against the same directory continues the
    // logged history instead of starting over.
    let out = run(&["monitor", &graph, &policy, &trace, "--log", &dir]).unwrap();
    assert!(
        out.contains("commit log resumed at epoch 2 (snapshot 0 + 2 replayed)"),
        "got: {out}"
    );
    assert!(out.contains("commit log at epoch 4"), "got: {out}");

    // Time travel: epoch 0 has no lo -> hi edge, epoch 2 does.
    let out = run(&["at", &dir, "0", "can-share", "w", "lo", "hi"]).unwrap();
    assert!(
        out.contains("epoch 0 (snapshot 0 + 0 replayed):"),
        "got: {out}"
    );
    let out = run(&["at", &dir, "2", "audit"]).unwrap();
    assert!(
        out.contains("epoch 2 (snapshot 0 + 2 replayed):"),
        "got: {out}"
    );
    assert!(out.contains("audit clean"), "got: {out}");

    let out = run(&["diff", &dir, "0", "2"]).unwrap();
    assert!(out.contains("diff epoch 0 -> epoch 2:"), "got: {out}");
    assert!(out.contains("  vertices: 3 -> 3"), "got: {out}");
    assert!(out.contains("  + lo -> hi : w"), "got: {out}");
    assert!(
        out.contains("  stats: +1 permitted, +1 denied, +0 malformed, +0 refused"),
        "got: {out}"
    );
    assert!(out.contains("  audit: clean -> clean"), "got: {out}");

    // Unreachable epochs refuse closed.
    let err = run(&["at", &dir, "99", "audit"]).unwrap_err();
    assert!(err.contains("future"), "got: {err}");
}

#[test]
fn corrupted_commit_logs_fail_closed_with_exit_1() {
    use tg_graph::Rights;
    let graph = temp_file("logcorrupt.tg", HIER_GRAPH);
    let policy = temp_file("logcorrupt.pol", HIER_POLICY);
    let trace = temp_file(
        "logcorrupt.trace",
        &format!(
            "{}\n{}\n",
            take_line(1, 2, 0, Rights::W),
            take_line(1, 2, 0, Rights::R)
        ),
    );
    let dir = temp_dir("logcorrupt.dir");
    run(&["monitor", &graph, &policy, &trace, "--log", &dir]).unwrap();
    let chain_path = std::path::Path::new(&dir).join("chain.tgl");
    let pristine = std::fs::read(&chain_path).unwrap();

    // Flip a byte in the FIRST record (not the tail): fails closed as a
    // Fail error — the binary maps that to exit 1.
    let mut forged = pristine.clone();
    let first_record = forged.iter().position(|&b| b == b'\n').unwrap() + 3;
    forged[first_record] ^= 0x41;
    std::fs::write(&chain_path, &forged).unwrap();
    match run_full(&["replay", &graph, &policy, &dir]) {
        Err(tg_cli::CliError::Fail(msg)) => {
            assert!(
                msg.contains("corrupt") || msg.contains("link") || msg.contains("refus"),
                "got: {msg}"
            );
        }
        other => panic!("forged chain must fail closed, got {other:?}"),
    }
    assert!(matches!(
        run_full(&["at", &dir, "1", "audit"]),
        Err(tg_cli::CliError::Fail(_))
    ));
    assert!(matches!(
        run_full(&["diff", &dir, "0", "1"]),
        Err(tg_cli::CliError::Fail(_))
    ));

    // A torn tail (truncated mid-record) is recoverable and reported.
    std::fs::write(&chain_path, &pristine[..pristine.len() - 7]).unwrap();
    let out = run(&["replay", &graph, &policy, &dir]).unwrap();
    assert!(out.contains("torn tail: "), "got: {out}");
    assert!(out.contains("recovered: 1 records replayed"), "got: {out}");

    // A wrong seed (different graph) is a genesis mismatch: fail closed.
    std::fs::write(&chain_path, &pristine).unwrap();
    let other_graph = temp_file("logcorrupt-other.tg", FIG61);
    let other_policy = temp_file(
        "logcorrupt-other.pol",
        "level low\nassign x low\nassign s low\nassign y low\n",
    );
    match run_full(&["replay", &other_graph, &other_policy, &dir]) {
        Err(tg_cli::CliError::Fail(msg)) => {
            assert!(msg.contains("genesis"), "got: {msg}");
        }
        other => panic!("wrong seed must fail closed, got {other:?}"),
    }
}

/// `tgq at` / `tgq diff` are queries: they open the log read-only, so a
/// torn chain is truncated in memory only and the on-disk bytes (the
/// forensic evidence) survive until a healing command (`replay`) runs.
#[test]
fn at_and_diff_never_rewrite_the_log_directory() {
    use tg_graph::Rights;
    let graph = temp_file("logro.tg", HIER_GRAPH);
    let policy = temp_file("logro.pol", HIER_POLICY);
    let trace = temp_file(
        "logro.trace",
        &format!(
            "{}\n{}\n",
            take_line(1, 2, 0, Rights::W),
            take_line(1, 2, 0, Rights::R)
        ),
    );
    let dir = temp_dir("logro.dir");
    run(&["monitor", &graph, &policy, &trace, "--log", &dir]).unwrap();
    let chain_path = std::path::Path::new(&dir).join("chain.tgl");
    let pristine = std::fs::read(&chain_path).unwrap();

    // Tear the tail (drops record 2): queries answer from the committed
    // prefix without rewriting the chain file.
    let torn = pristine[..pristine.len() - 7].to_vec();
    std::fs::write(&chain_path, &torn).unwrap();
    let out = run(&["at", &dir, "1", "audit"]).unwrap();
    assert!(out.contains("epoch 1"), "got: {out}");
    assert_eq!(
        std::fs::read(&chain_path).unwrap(),
        torn,
        "tgq at rewrote the chain file"
    );
    let out = run(&["diff", &dir, "0", "1"]).unwrap();
    assert!(out.contains("diff epoch 0 -> epoch 1:"), "got: {out}");
    assert_eq!(
        std::fs::read(&chain_path).unwrap(),
        torn,
        "tgq diff rewrote the chain file"
    );

    // `tgq replay` is the healing command: afterwards the torn tail is
    // gone from disk.
    let out = run(&["replay", &graph, &policy, &dir]).unwrap();
    assert!(out.contains("torn tail: "), "got: {out}");
    assert_ne!(
        std::fs::read(&chain_path).unwrap(),
        torn,
        "replay heals the persisted chain"
    );
}

#[test]
fn monitor_and_replay_error_paths() {
    let graph = temp_file("err2.tg", HIER_GRAPH);
    let policy = temp_file("err2.pol", HIER_POLICY);
    // Unreadable inputs.
    assert!(run(&["monitor", &graph, &policy, "/nonexistent/trace"]).is_err());
    assert!(run(&["replay", &graph, &policy, "/nonexistent/journal"]).is_err());
    // Unparsable trace and journal.
    let bad_trace = temp_file("err2.trace", "levitate 0 1 2 x1\n");
    assert!(run(&["monitor", &graph, &policy, &bad_trace]).is_err());
    let bad_journal = temp_file("err2.journal", "not a journal\n");
    let err = run(&["replay", &graph, &policy, &bad_journal]).unwrap_err();
    assert!(err.contains("TGJ1"), "got: {err}");
    // A dangling --journal flag.
    let trace = temp_file("err2.ok-trace", "");
    assert!(run(&["monitor", &graph, &policy, &trace, "--journal"]).is_err());
    // Bad arity.
    assert!(run(&["monitor", &graph, &policy]).is_err());
    assert!(run(&["replay", &graph]).is_err());
}

#[test]
fn errors_are_reported_not_panicked() {
    assert!(run(&[]).is_err());
    assert!(run(&["bogus"]).is_err());
    assert!(run(&["show"]).is_err());
    assert!(run(&["show", "/nonexistent/file.tg"]).is_err());
    let bad = temp_file("bad-syntax.tg", "vertex a\n");
    assert!(run(&["show", &bad]).is_err());
    let path = temp_file("err.tg", FIG61);
    assert!(run(&["can-share", &path, "zz", "x", "y"]).is_err());
    assert!(run(&["can-share", &path, "r", "nobody", "y"]).is_err());
    assert!(run(&["figure", "9.9"]).is_err());
}

fn run_full(args: &[&str]) -> Result<(u8, String), tg_cli::CliError> {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    tg_cli::run_full(&args, &mut out).map(|code| (code, out))
}

#[test]
fn usage_errors_carry_the_per_command_usage_string() {
    // Unknown subcommand: a usage error listing every command.
    match run_full(&["frobnicate"]) {
        Err(tg_cli::CliError::Usage(msg)) => {
            assert!(msg.contains("unknown command \"frobnicate\""), "got: {msg}");
            assert!(msg.contains("tgq lint <graph>"), "lists commands: {msg}");
        }
        other => panic!("expected usage error, got {other:?}"),
    }
    // Bad arity: exactly that command's generated usage line.
    match run_full(&["can-share"]) {
        Err(tg_cli::CliError::Usage(msg)) => {
            assert_eq!(
                msg,
                "usage: tgq can-share <file> <right> <x> <y> [--witness] [--jobs <n>] [--stats]"
            )
        }
        other => panic!("expected usage error, got {other:?}"),
    }
    match run_full(&["lint"]) {
        Err(tg_cli::CliError::Usage(msg)) => assert!(msg.starts_with("usage: tgq lint")),
        other => panic!("expected usage error, got {other:?}"),
    }
    // A dangling flag value is a usage error too.
    match run_full(&["lint", "g.tg", "--deny"]) {
        Err(tg_cli::CliError::Usage(msg)) => assert!(msg.contains("--deny requires a value")),
        other => panic!("expected usage error, got {other:?}"),
    }
    // But a missing input file is an analysis failure, not a usage error.
    match run_full(&["show", "/nonexistent/file.tg"]) {
        Err(tg_cli::CliError::Fail(msg)) => assert!(msg.contains("cannot read")),
        other => panic!("expected failure, got {other:?}"),
    }
}

#[test]
fn usage_lines_mention_every_accepted_flag() {
    // Hand-maintained mirror of the flags each subcommand's parser
    // actually pulls out (the split_flag/split_opt/split_multi calls in
    // dispatch). Usage lines are generated from the COMMANDS table;
    // comparing against this independent list catches a flag added to
    // the parser but forgotten in the table — the drift that left
    // `bench` and `watch` flags undocumented before the table existed.
    let accepted: &[(&str, &[&str])] = &[
        ("can-share", &["--witness"]),
        ("can-know", &["--witness"]),
        ("can-steal", &["--witness"]),
        (
            "monitor",
            &["--journal", "--batch", "--log", "--snap-interval"],
        ),
        ("lint", &["--format", "--fix", "--deny"]),
        ("trace", &["--out", "--format"]),
        (
            "bench",
            &["--levels", "--per-level", "--ops", "--seed", "--json"],
        ),
    ];
    let mut seen = Vec::new();
    for spec in tg_cli::COMMANDS {
        seen.push(spec.name);
        let line = tg_cli::usage_line(spec.name);
        let flags = accepted
            .iter()
            .find(|(name, _)| *name == spec.name)
            .map_or(&[][..], |(_, flags)| flags);
        for flag in flags {
            assert!(
                line.contains(flag),
                "usage for {} omits {flag}: {line}",
                spec.name
            );
        }
        // Every command takes the globals --jobs and --stats (except
        // stats itself).
        if spec.name != "stats" {
            assert!(line.contains("[--stats]"), "{}: {line}", spec.name);
            assert!(line.contains("[--jobs <n>]"), "{}: {line}", spec.name);
        }
    }
    // Every parser entry above corresponds to a real subcommand.
    for (name, _) in accepted {
        assert!(seen.contains(name), "{name} is not in COMMANDS");
    }
}

#[test]
fn stats_flag_appends_the_metrics_table() {
    let path = temp_file("stats-flag.tg", FIG61);
    let (code, out) = run_full(&["show", &path, "--stats"]).unwrap();
    assert_eq!(code, 0);
    assert!(out.contains("3 vertices"), "command output first: {out}");
    assert!(out.contains("cli.command"), "span table follows: {out}");
    assert!(out.contains("counter"), "counter table follows: {out}");
}

#[test]
fn stats_subcommand_prints_the_catalog() {
    let (code, out) = run_full(&["stats"]).unwrap();
    assert_eq!(code, 0);
    assert!(out.contains("monitor.apply"));
    assert!(out.contains("inc.memo_hits"));
    assert!(out.contains("Cor 5.6"), "docs cite the paper: {out}");
    assert!(out.contains("Thm 5.2"), "docs cite the paper: {out}");
    // Arguments are a usage error.
    assert!(matches!(
        run_full(&["stats", "extra"]),
        Err(tg_cli::CliError::Usage(_))
    ));
}

#[test]
fn trace_emits_chrome_and_jsonl_renderings() {
    use tg_graph::Rights;
    let graph = temp_file("trace-cmd.tg", HIER_GRAPH);
    let policy = temp_file("trace-cmd.pol", HIER_POLICY);
    let trace = temp_file(
        "trace-cmd.trace",
        &format!(
            "{}\n{}\n",
            take_line(1, 2, 0, Rights::W),
            take_line(1, 2, 0, Rights::R)
        ),
    );
    let (code, out) = run_full(&["trace", &graph, &policy, &trace]).unwrap();
    assert_eq!(code, 0);
    assert!(out.starts_with("{\"traceEvents\":["), "got: {out}");
    assert!(out.contains("\"monitor.apply\""), "got: {out}");
    assert!(out.contains("\"ph\":\"C\""), "counter events too: {out}");

    let (_, out) = run_full(&["trace", &graph, &policy, &trace, "--format", "jsonl"]).unwrap();
    assert!(out.lines().count() > 2, "one event per line: {out}");
    assert!(out.lines().all(|l| l.starts_with('{') && l.ends_with('}')));

    // --out writes the document and prints a summary instead.
    let out_path = temp_file("trace-cmd.json", "");
    let (_, out) = run_full(&["trace", &graph, &policy, &trace, "--out", &out_path]).unwrap();
    assert!(out.contains("events written to"), "got: {out}");
    assert!(out.contains("1 rules applied, 1 refused"), "got: {out}");
    let written = std::fs::read_to_string(&out_path).unwrap();
    assert!(written.starts_with("{\"traceEvents\":["));

    // Unknown formats and bad arity are usage errors.
    assert!(matches!(
        run_full(&["trace", &graph, &policy, &trace, "--format", "xml"]),
        Err(tg_cli::CliError::Usage(_))
    ));
    assert!(matches!(
        run_full(&["trace", &graph]),
        Err(tg_cli::CliError::Usage(_))
    ));
}

#[test]
fn bench_stats_prints_nonzero_incremental_counters() {
    let (code, out) = run_full(&[
        "bench",
        "--levels",
        "6",
        "--per-level",
        "4",
        "--ops",
        "60",
        "--stats",
    ])
    .unwrap();
    assert_eq!(code, 0);
    assert!(out.contains("inc.edge_checks"), "got: {out}");
    assert!(out.contains("inc.memo_hits"), "got: {out}");
    assert!(out.contains("inc.memo_misses"), "got: {out}");
}

#[test]
fn parse_errors_report_line_and_column() {
    // The rights list of line 2 starts at column 15: `q` is not a right.
    let path = temp_file("span-err.tg", "subject a\nedge a -> a : q\n");
    let err = run(&["show", &path]).unwrap_err();
    assert!(err.contains("line 2"), "got: {err}");
    assert!(err.contains("column 15"), "got: {err}");
}

#[test]
fn lint_exit_codes_are_severity_keyed() {
    // Figure 6.1's shape: no policy, one theft warning, no errors.
    let graph = temp_file("lint-61.tg", FIG61);
    let (code, out) = run_full(&["lint", &graph]).unwrap();
    assert_eq!(code, 1, "warnings exit 1: {out}");
    assert!(out.contains("warn[TG006]"), "got: {out}");
    // Denying the warning promotes it to an error and exit 2.
    let (code, out) = run_full(&["lint", &graph, "--deny", "TG006"]).unwrap();
    assert_eq!(code, 2, "denied warnings exit 2: {out}");
    assert!(out.contains("error[TG006]"), "got: {out}");
    // An isolated vertex alone is informational: exit 0.
    let clean = temp_file("lint-clean.tg", "subject a\nobject b\n");
    let (code, out) = run_full(&["lint", &clean]).unwrap();
    assert_eq!(code, 0, "info-only exits 0: {out}");
    assert!(out.contains("info[TG008]"), "got: {out}");
    // Unknown format is a usage error.
    assert!(matches!(
        run_full(&["lint", &clean, "--format", "yaml"]),
        Err(tg_cli::CliError::Usage(_))
    ));
}

#[test]
fn lint_rejects_unknown_deny_entries() {
    let graph = temp_file("lint-deny.tg", FIG61);
    // A typo'd code used to be silently ignored; now it is a usage error
    // (exit 2), before any file is even read.
    match run_full(&["lint", &graph, "--deny", "TG099"]) {
        Err(tg_cli::CliError::Usage(msg)) => {
            assert!(msg.contains("TG099"), "names the bad entry: {msg}");
            assert!(msg.contains("TG006"), "lists the real codes: {msg}");
        }
        other => panic!("expected usage error, got {other:?}"),
    }
    match run_full(&["lint", &graph, "--deny", "sevère"]) {
        Err(tg_cli::CliError::Usage(_)) => {}
        other => panic!("expected usage error, got {other:?}"),
    }
    // Every legitimate shape still passes: a code (any case), a
    // severity, and `all`.
    for deny in ["tg006", "TG006", "warn", "info", "all"] {
        assert!(
            run_full(&["lint", &graph, "--deny", deny]).is_ok(),
            "--deny {deny} should be accepted"
        );
    }
}

#[test]
fn plan_vets_a_trace_without_applying_it() {
    let graph = temp_file("plan.tg", FIG61);
    let policy = temp_file(
        "plan.pol",
        "level low\nlevel high\ndominates high low\nassign x low\nassign s high\nassign y high\n",
    );
    let before = std::fs::read_to_string(&graph).unwrap();
    // `x` (low) takes `r` over `y` (high): preconditions hold, the
    // restriction refuses the read-up.
    let refused = temp_file("plan-refused.tr", "take 0 1 2 x1\n");
    let (code, out) = run_full(&["plan", &graph, &policy, &refused]).unwrap();
    assert_eq!(code, 2, "a refused step exits 2: {out}");
    assert!(out.contains("error[TG011]"), "got: {out}");
    assert!(out.contains("step 1"), "got: {out}");
    // `x` removing its own `t` right is fine.
    let ok = temp_file("plan-ok.tr", "remove 0 1 x4\n");
    let (code, out) = run_full(&["plan", &graph, &policy, &ok]).unwrap();
    assert_eq!(code, 0, "a legal trace exits 0: {out}");
    assert!(out.contains("statically accepted"), "got: {out}");
    // Vetting never mutates the graph file.
    assert_eq!(std::fs::read_to_string(&graph).unwrap(), before);
    // Usage errors: missing arguments, unknown format, bad deny entry.
    assert!(matches!(
        run_full(&["plan", &graph, &policy]),
        Err(tg_cli::CliError::Usage(_))
    ));
    assert!(matches!(
        run_full(&["plan", &graph, &policy, &ok, "--format", "yaml"]),
        Err(tg_cli::CliError::Usage(_))
    ));
    assert!(matches!(
        run_full(&["plan", &graph, &policy, &ok, "--deny", "TG0XX"]),
        Err(tg_cli::CliError::Usage(_))
    ));
}

#[test]
fn lint_fix_rewrites_the_graph_to_a_clean_state() {
    // Figure 5.1: x (high) -t-> s (high) -w,e-> y (low).
    let graph = temp_file(
        "lint-fix.tg",
        "subject x\nobject s\nsubject y\nedge x -> s : t\nedge s -> y : w e\n",
    );
    let policy = temp_file(
        "lint-fix.pol",
        "level low\nlevel high\ndominates high low\nassign x high\nassign s high\nassign y low\n",
    );
    let (code, _) = run_full(&["lint", &graph, &policy]).unwrap();
    assert_eq!(code, 2, "the unrestricted figure is insecure");
    let (_, out) = run_full(&["lint", &graph, &policy, "--fix"]).unwrap();
    assert!(out.contains("applied"), "got: {out}");
    // The rewritten file now lints clean of errors…
    let (code, out) = run_full(&["lint", &graph, &policy]).unwrap();
    assert!(code < 2, "no errors remain: {out}");
    // …and passes the derived security check.
    let out = run(&["secure", &graph]).unwrap();
    assert!(out.contains("secure"), "got: {out}");
}
