//! End-to-end tests of every `tgq` command through the library entry
//! point, including failure modes.

use std::io::Write as _;

fn run(args: &[&str]) -> Result<String, String> {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    tg_cli::run(&args, &mut out).map(|()| out)
}

/// Writes `contents` to a fresh temp file and returns its path.
fn temp_file(name: &str, contents: &str) -> String {
    let path = std::env::temp_dir().join(format!("tgq-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents.as_bytes()).expect("write");
    path.to_string_lossy().into_owned()
}

const FIG61: &str = "subject x\nobject s\nobject y\nedge x -> s : t\nedge s -> y : r\n";

#[test]
fn show_summarizes_the_graph() {
    let path = temp_file("show.tg", FIG61);
    let out = run(&["show", &path]).unwrap();
    assert!(out.contains("3 vertices (1 subjects, 2 objects)"));
    assert!(out.contains("islands"));
}

#[test]
fn dot_emits_graphviz() {
    let path = temp_file("dot.tg", FIG61);
    let out = run(&["dot", &path]).unwrap();
    assert!(out.starts_with("digraph"));
    assert!(out.contains("label=\"t\""));
}

#[test]
fn islands_and_levels_render() {
    let path = temp_file("islands.tg", "subject a\nsubject b\nedge a -> b : tg\n");
    let out = run(&["islands", &path]).unwrap();
    assert!(out.contains("island 0: {a, b}"));
    let out = run(&["levels", &path]).unwrap();
    assert!(out.contains("rw-levels:"));
    assert!(out.contains("rwtg-levels:"));
}

#[test]
fn can_share_with_witness() {
    let path = temp_file("share.tg", FIG61);
    let out = run(&["can-share", &path, "r", "x", "y", "--witness"]).unwrap();
    assert!(out.contains("true"));
    assert!(out.contains("takes"));
    let out = run(&["can-share", &path, "w", "x", "y"]).unwrap();
    assert!(out.contains("false"));
}

#[test]
fn can_know_family() {
    let path = temp_file("know.tg", FIG61);
    assert!(run(&["can-know", &path, "x", "y"]).unwrap().contains("true"));
    assert!(run(&["can-know-f", &path, "x", "y"])
        .unwrap()
        .contains("false"));
    let out = run(&["can-know", &path, "x", "y", "--witness"]).unwrap();
    assert!(out.contains("true"));
}

#[test]
fn can_steal_and_conspirators() {
    let path = temp_file("steal.tg", FIG61);
    let out = run(&["can-steal", &path, "r", "x", "y", "--witness"]).unwrap();
    assert!(out.contains("true"));
    let out = run(&["conspirators", &path, "r", "x", "y"]).unwrap();
    assert!(out.contains("1 conspirator(s): x"));
}

#[test]
fn secure_policy_and_audit() {
    let graph = temp_file(
        "pol.tg",
        "subject hi\nsubject lo\nedge hi -> lo : r\n",
    );
    let policy = temp_file(
        "pol.pol",
        "level low\nlevel high\ndominates high low\nassign hi high\nassign lo low\n",
    );
    let out = run(&["secure-policy", &graph, &policy]).unwrap();
    assert!(out.contains("secure"));
    assert!(run(&["audit", &graph, &policy]).unwrap().contains("clean"));

    // Plant a read-up and watch both commands fail.
    let bad_graph = temp_file(
        "bad.tg",
        "subject hi\nsubject lo\nedge lo -> hi : r\n",
    );
    let err = run(&["secure-policy", &bad_graph, &policy]).unwrap_err();
    assert!(err.contains("INSECURE"));
    let err = run(&["audit", &bad_graph, &policy]).unwrap_err();
    assert!(err.contains("violating"));
}

#[test]
fn figure_command_emits_parsable_graphs() {
    for id in ["2.1", "2.2", "3.1", "4.1", "4.2", "5.1", "6.1"] {
        let out = run(&["figure", id]).unwrap();
        assert!(
            tg_graph::parse_graph(&out).is_ok(),
            "figure {id} must round-trip"
        );
    }
}

#[test]
fn secure_derived_reports_breaches() {
    let path = temp_file("sec.tg", FIG61);
    // Fig 6.1 with derived levels: x below s/y de facto? x reads nothing,
    // so the derived order has no strict relation and the check passes or
    // fails depending on structure; assert it at least runs.
    let _ = run(&["secure", &path]);
}

#[test]
fn errors_are_reported_not_panicked() {
    assert!(run(&[]).is_err());
    assert!(run(&["bogus"]).is_err());
    assert!(run(&["show"]).is_err());
    assert!(run(&["show", "/nonexistent/file.tg"]).is_err());
    let bad = temp_file("bad-syntax.tg", "vertex a\n");
    assert!(run(&["show", &bad]).is_err());
    let path = temp_file("err.tg", FIG61);
    assert!(run(&["can-share", &path, "zz", "x", "y"]).is_err());
    assert!(run(&["can-share", &path, "r", "nobody", "y"]).is_err());
    assert!(run(&["figure", "9.9"]).is_err());
}
