//! Golden-file test for the Chrome `trace_event` JSON that `tgq trace`
//! emits: the event sequence over a fixed rule trace against Figure 5.1
//! is deterministic, so everything except the wall-clock `ts`/`dur`
//! numbers (normalized to `0.000` before comparison) is pinned
//! byte-for-byte. Regenerate with `UPDATE_GOLDEN=1 cargo test -p tg-cli`.

mod common;

use std::path::Path;

use common::validate_json;

fn fixture(name: &str) -> String {
    format!(
        "{}/../../examples/graphs/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn golden_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Replaces every `"ts":`/`"dur":` value with `0.000`: the event
/// *sequence* is deterministic, the timings are not.
fn normalize_times(json: &str) -> String {
    let bytes = json.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        let key = ["\"ts\":", "\"dur\":"]
            .into_iter()
            .find(|k| json[i..].starts_with(k));
        if let Some(key) = key {
            out.push_str(key);
            i += key.len();
            while i < bytes.len() && matches!(bytes[i], b'0'..=b'9' | b'.') {
                i += 1;
            }
            out.push_str("0.000");
        } else {
            out.push(bytes[i] as char); // the renderer emits ASCII only
            i += 1;
        }
    }
    out
}

/// Figure 5.1 is x(0) -t-> s(1) -w,e-> y(2); both takes go through the
/// monitor, whatever their verdicts, producing a fixed event stream.
fn rule_trace() -> String {
    use tg_graph::{Rights, VertexId};
    let take = |rights| {
        tg_rules::codec::encode_rule(&tg_rules::Rule::DeJure(tg_rules::DeJureRule::Take {
            actor: VertexId::from_index(0),
            via: VertexId::from_index(1),
            target: VertexId::from_index(2),
            rights,
        }))
    };
    format!("{}\n{}\n", take(Rights::W), take(Rights::E))
}

#[test]
fn trace_chrome_json_is_stable_and_valid() {
    let graph = fixture("fig_5_1.tg");
    let policy = fixture("fig_5_1.pol");
    let trace_path = std::env::temp_dir().join(format!(
        "tgq-test-{}-trace-golden.trace",
        std::process::id()
    ));
    std::fs::write(&trace_path, rule_trace()).expect("write trace");

    let args: Vec<String> = ["trace", &graph, &policy, &trace_path.to_string_lossy()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = String::new();
    let code = tg_cli::run_full(&args, &mut out).expect("trace dispatches");
    assert_eq!(code, 0);

    // Chrome-loadable: syntactically valid RFC 8259 with the trace_event
    // envelope and both event phases.
    validate_json(&out).unwrap_or_else(|e| panic!("trace output is not valid JSON: {e}\n{out}"));
    assert!(out.starts_with("{\"traceEvents\":["));
    assert!(out.contains("\"ph\":\"X\""), "complete events: {out}");
    assert!(out.contains("\"ph\":\"C\""), "counter events: {out}");

    let actual = normalize_times(&out);
    let path = golden_path("trace_fig_5_1.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with UPDATE_GOLDEN=1 cargo test -p tg-cli",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden mismatch; bless with UPDATE_GOLDEN=1 cargo test -p tg-cli"
    );
}

#[test]
fn normalization_only_touches_timings() {
    let input = "{\"name\":\"x\",\"ts\":12.345,\"dur\":6.789,\"args\":{\"total\":42}}";
    let normalized = normalize_times(input);
    assert_eq!(
        normalized,
        "{\"name\":\"x\",\"ts\":0.000,\"dur\":0.000,\"args\":{\"total\":42}}"
    );
}
