//! Helpers shared by the CLI integration tests.
//!
//! The JSON validator is a minimal RFC 8259 syntax checker (the
//! workspace has no serde): enough to guarantee the hand-rolled emitters
//! — lint JSON/SARIF, `tg-obs` trace renderings — stay well-formed.

pub fn validate_json(s: &str) -> Result<(), String> {
    let b: Vec<char> = s.chars().collect();
    let mut i = 0usize;
    skip_ws(&b, &mut i);
    value(&b, &mut i)?;
    skip_ws(&b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at char {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[char], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], ' ' | '\t' | '\n' | '\r') {
        *i += 1;
    }
}

fn value(b: &[char], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some('{') => object(b, i),
        Some('[') => array(b, i),
        Some('"') => string(b, i),
        Some('t') => literal(b, i, "true"),
        Some('f') => literal(b, i, "false"),
        Some('n') => literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == '-' => number(b, i),
        other => Err(format!("unexpected {other:?} at char {i}")),
    }
}

fn literal(b: &[char], i: &mut usize, lit: &str) -> Result<(), String> {
    for c in lit.chars() {
        if b.get(*i) != Some(&c) {
            return Err(format!("bad literal at char {i}"));
        }
        *i += 1;
    }
    Ok(())
}

fn number(b: &[char], i: &mut usize) -> Result<(), String> {
    if b.get(*i) == Some(&'-') {
        *i += 1;
    }
    let start = *i;
    while *i < b.len() && (b[*i].is_ascii_digit() || matches!(b[*i], '.' | 'e' | 'E' | '+' | '-')) {
        *i += 1;
    }
    if *i == start {
        return Err(format!("empty number at char {i}"));
    }
    Ok(())
}

fn string(b: &[char], i: &mut usize) -> Result<(), String> {
    *i += 1; // opening quote
    while let Some(&c) = b.get(*i) {
        match c {
            '"' => {
                *i += 1;
                return Ok(());
            }
            '\\' => {
                *i += 1;
                match b.get(*i) {
                    Some('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') => *i += 1,
                    Some('u') => {
                        for k in 1..=4 {
                            if !b.get(*i + k).is_some_and(|c| c.is_ascii_hexdigit()) {
                                return Err(format!("bad \\u escape at char {i}"));
                            }
                        }
                        *i += 5;
                    }
                    other => return Err(format!("bad escape {other:?} at char {i}")),
                }
            }
            c if (c as u32) < 0x20 => return Err(format!("raw control char at {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn object(b: &[char], i: &mut usize) -> Result<(), String> {
    *i += 1;
    skip_ws(b, i);
    if b.get(*i) == Some(&'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&'"') {
            return Err(format!("expected key at char {i}"));
        }
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&':') {
            return Err(format!("expected ':' at char {i}"));
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(',') => *i += 1,
            Some('}') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at char {i}")),
        }
    }
}

fn array(b: &[char], i: &mut usize) -> Result<(), String> {
    *i += 1;
    skip_ws(b, i);
    if b.get(*i) == Some(&']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(',') => *i += 1,
            Some(']') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?} at char {i}")),
        }
    }
}
