//! The `tgq bench` driver: incremental engine vs. from-scratch recompute
//! over one mixed mutate-then-query workload.
//!
//! Both sides replay the *same* deterministic [`MixedOp`] trace against
//! the same starting hierarchy; the incremental side answers every audit
//! and query from the maintained [`tg_inc`] index, the full side
//! recomputes each answer from scratch (Corollary 5.6 audit,
//! `tg_analysis` decisions, a fresh island decomposition). Every answer
//! pair is compared — a run whose answers diverge is an error, so the
//! benchmark doubles as a coarse differential test.

use std::fmt::Write as _;
use std::time::Instant;

use tg_analysis::Islands;
use tg_hierarchy::{audit_graph, CombinedRestriction, Monitor};
use tg_inc::{IncStats, SharedIndex};
use tg_par::{par_audit, par_queries, seq_queries, Pool, Query};
use tg_sim::workload::{hierarchy, mixed_trace, MixedOp};

/// Integer square root (floor), matching `tg_gen`'s bit-exact mapping.
fn isqrt(n: usize) -> usize {
    if n < 2 {
        return n;
    }
    let mut x = n;
    let mut y = n.div_ceil(2);
    while y < x {
        x = y;
        y = (y + n / y) / 2;
    }
    x
}

/// Derived `(levels, per_level)` defaults for a target vertex count:
/// one `--scale` knob (or `TGQ_BENCH_SCALE`) sweeps the workload while
/// keeping the historical 20 × 10 shape at the default scale of 200.
pub fn dims_for_scale(scale: usize) -> (usize, usize) {
    let per_level = isqrt(scale / 2).max(2);
    ((scale / per_level).max(2), per_level)
}

/// Workload parameters for one `tgq bench` run.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// The requested vertex scale the level shape was derived from
    /// (recorded in the JSON envelope so swept runs are comparable).
    pub scale: usize,
    /// Hierarchy levels.
    pub levels: usize,
    /// Subjects per level.
    pub per_level: usize,
    /// Mixed-trace length.
    pub ops: usize,
    /// Trace seed.
    pub seed: u64,
    /// Worker count for the parallel leg (the CLI passes its `--jobs`).
    pub jobs: usize,
}

/// Measured results of one run.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// The configuration measured.
    pub config: BenchConfig,
    /// Vertices in the starting graph.
    pub vertices: usize,
    /// Edges in the starting graph.
    pub edges: usize,
    /// Audit/query answers compared between the two sides.
    pub answers: usize,
    /// Wall time of the incremental side, nanoseconds (includes the one
    /// up-front index build).
    pub incremental_ns: u128,
    /// Wall time of the recompute side, nanoseconds.
    pub full_ns: u128,
    /// Queries in the post-trace batch the parallel leg evaluates.
    pub batch_queries: usize,
    /// Wall time of the sequential batch evaluation, nanoseconds.
    pub seq_batch_ns: u128,
    /// Wall time of the parallel batch evaluation (audit plus queries)
    /// at [`BenchConfig::jobs`] workers, nanoseconds.
    pub par_batch_ns: u128,
    /// The incremental index's work counters after the run.
    pub stats: IncStats,
}

impl BenchReport {
    /// `full_ns / incremental_ns`.
    pub fn speedup(&self) -> f64 {
        self.full_ns as f64 / (self.incremental_ns.max(1)) as f64
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "workload: {} levels x {} subjects ({} vertices, {} edges), scale {}, {} ops, seed {}",
            self.config.levels,
            self.config.per_level,
            self.vertices,
            self.edges,
            self.config.scale,
            self.config.ops,
            self.config.seed
        );
        let _ = writeln!(
            out,
            "incremental: {:.3} ms   full recompute: {:.3} ms   speedup: {:.1}x",
            self.incremental_ns as f64 / 1e6,
            self.full_ns as f64 / 1e6,
            self.speedup()
        );
        let _ = writeln!(
            out,
            "batch ({} queries + audit, {} jobs): sequential {:.3} ms   parallel {:.3} ms",
            self.batch_queries,
            self.config.jobs,
            self.seq_batch_ns as f64 / 1e6,
            self.par_batch_ns as f64 / 1e6,
        );
        let _ = writeln!(
            out,
            "answers compared: {} (identical)   index: {} edge checks, {} unions, {} rebuilds, {} memo hits / {} misses",
            self.answers,
            self.stats.edge_checks,
            self.stats.island_unions,
            self.stats.island_rebuilds,
            self.stats.memo_hits,
            self.stats.memo_misses
        );
        out
    }

    /// Machine-readable summary (hand-rolled JSON; the workspace has no
    /// serde).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"tgq-bench\",\n",
                "  \"scale\": {},\n",
                "  \"levels\": {},\n  \"per_level\": {},\n  \"ops\": {},\n  \"seed\": {},\n",
                "  \"jobs\": {},\n  \"host_parallelism\": {},\n",
                "  \"vertices\": {},\n  \"edges\": {},\n  \"answers\": {},\n",
                "  \"incremental_ns\": {},\n  \"full_ns\": {},\n  \"speedup\": {:.3},\n",
                "  \"batch_queries\": {},\n  \"seq_batch_ns\": {},\n  \"par_batch_ns\": {},\n",
                "  \"stats\": {{ \"edge_checks\": {}, \"island_unions\": {}, \"island_rebuilds\": {}, ",
                "\"memo_hits\": {}, \"memo_misses\": {}, \"rollbacks\": {} }}\n",
                "}}\n"
            ),
            self.config.scale,
            self.config.levels,
            self.config.per_level,
            self.config.ops,
            self.config.seed,
            self.config.jobs,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
            self.vertices,
            self.edges,
            self.answers,
            self.incremental_ns,
            self.full_ns,
            self.speedup(),
            self.batch_queries,
            self.seq_batch_ns,
            self.par_batch_ns,
            self.stats.edge_checks,
            self.stats.island_unions,
            self.stats.island_rebuilds,
            self.stats.memo_hits,
            self.stats.memo_misses,
            self.stats.rollbacks,
        )
    }
}

/// Runs the workload through both sides and compares every answer.
///
/// # Errors
///
/// Returns a message if the two sides ever disagree on an answer — which
/// would mean the incremental index is unsound, so the benchmark refuses
/// to report timings for it.
pub fn run(config: &BenchConfig) -> Result<BenchReport, String> {
    let built = hierarchy(config.levels, config.per_level);
    let trace = mixed_trace(&built.graph, config.ops, config.seed);
    let vertices = built.graph.vertex_count();
    let edges = built.graph.edge_count();

    let inc_start = Instant::now();
    let index = SharedIndex::new(&built.graph, &built.assignment, &CombinedRestriction);
    let mut monitor = Monitor::new(
        built.graph.clone(),
        built.assignment.clone(),
        Box::new(CombinedRestriction),
    );
    monitor.attach_observer(index.observer());
    let mut inc_answers: Vec<bool> = Vec::new();
    for op in &trace {
        match op {
            MixedOp::Apply(rule) => {
                let _ = monitor.try_apply(rule);
            }
            MixedOp::Audit => inc_answers.push(index.audit_clean()),
            MixedOp::CanShare(right, x, y) => {
                inc_answers.push(index.can_share(monitor.graph(), *right, *x, *y));
            }
            MixedOp::CanKnow(x, y) => inc_answers.push(index.can_know(monitor.graph(), *x, *y)),
            MixedOp::SameIsland(a, b) => {
                inc_answers.push(index.same_island(monitor.graph(), *a, *b));
            }
        }
    }
    // Hot re-query phase: every query op again, twice, against the now
    // quiescent index. The first round repopulates memo entries that
    // later mutations invalidated; the second measures the pure memo-hit
    // path (two union-find finds per Theorem 2.3/3.2 answer).
    for _ in 0..2 {
        for op in &trace {
            match op {
                MixedOp::Apply(_) => {}
                MixedOp::Audit => inc_answers.push(index.audit_clean()),
                MixedOp::CanShare(right, x, y) => {
                    inc_answers.push(index.can_share(monitor.graph(), *right, *x, *y));
                }
                MixedOp::CanKnow(x, y) => inc_answers.push(index.can_know(monitor.graph(), *x, *y)),
                MixedOp::SameIsland(a, b) => {
                    inc_answers.push(index.same_island(monitor.graph(), *a, *b));
                }
            }
        }
    }
    let incremental_ns = inc_start.elapsed().as_nanos();
    let stats = index.stats();

    let full_start = Instant::now();
    let mut monitor = Monitor::new(
        built.graph.clone(),
        built.assignment.clone(),
        Box::new(CombinedRestriction),
    );
    let mut full_answers: Vec<bool> = Vec::new();
    for op in &trace {
        match op {
            MixedOp::Apply(rule) => {
                let _ = monitor.try_apply(rule);
            }
            MixedOp::Audit => full_answers.push(
                audit_graph(monitor.graph(), monitor.levels(), &CombinedRestriction).is_empty(),
            ),
            MixedOp::CanShare(right, x, y) => {
                full_answers.push(tg_analysis::can_share(monitor.graph(), *right, *x, *y));
            }
            MixedOp::CanKnow(x, y) => {
                full_answers.push(tg_analysis::can_know(monitor.graph(), *x, *y));
            }
            MixedOp::SameIsland(a, b) => {
                full_answers.push(Islands::compute(monitor.graph()).same_island(*a, *b));
            }
        }
    }
    // The same re-query rounds, recomputed from scratch each time, so
    // the answer comparison below stays one-to-one.
    for _ in 0..2 {
        for op in &trace {
            match op {
                MixedOp::Apply(_) => {}
                MixedOp::Audit => full_answers.push(
                    audit_graph(monitor.graph(), monitor.levels(), &CombinedRestriction).is_empty(),
                ),
                MixedOp::CanShare(right, x, y) => {
                    full_answers.push(tg_analysis::can_share(monitor.graph(), *right, *x, *y));
                }
                MixedOp::CanKnow(x, y) => {
                    full_answers.push(tg_analysis::can_know(monitor.graph(), *x, *y));
                }
                MixedOp::SameIsland(a, b) => {
                    full_answers.push(Islands::compute(monitor.graph()).same_island(*a, *b));
                }
            }
        }
    }
    let full_ns = full_start.elapsed().as_nanos();

    if inc_answers != full_answers {
        let first = inc_answers
            .iter()
            .zip(&full_answers)
            .position(|(a, b)| a != b);
        return Err(format!(
            "incremental and full answers diverged (first at query {:?} of {})",
            first,
            inc_answers.len()
        ));
    }

    // Parallel leg: the trace's query mix as one batch against the final
    // graph (plus a whole-graph audit), evaluated sequentially and then
    // across the pool. Answer divergence is an error, like above — the
    // leg doubles as a coarse differential test of `tg_par`.
    let queries: Vec<Query> = trace
        .iter()
        .filter_map(|op| match op {
            MixedOp::CanShare(right, x, y) => Some(Query::CanShare(*right, *x, *y)),
            MixedOp::CanKnow(x, y) => Some(Query::CanKnow(*x, *y)),
            _ => None,
        })
        .collect();
    let graph = monitor.graph();
    let levels_now = monitor.levels();
    let seq_start = Instant::now();
    let seq_answers = seq_queries(graph, &queries);
    let seq_violations = audit_graph(graph, levels_now, &CombinedRestriction);
    let seq_batch_ns = seq_start.elapsed().as_nanos();
    let pool = Pool::new(config.jobs);
    let par_start = Instant::now();
    let par_answers = par_queries(graph, &queries, &pool);
    let par_violations = par_audit(graph, levels_now, &CombinedRestriction, &pool);
    let par_batch_ns = par_start.elapsed().as_nanos();
    if par_answers != seq_answers || par_violations != seq_violations {
        return Err(format!(
            "parallel and sequential batch answers diverged at {} jobs",
            config.jobs
        ));
    }

    Ok(BenchReport {
        config: *config,
        vertices,
        edges,
        answers: inc_answers.len(),
        incremental_ns,
        full_ns,
        batch_queries: queries.len(),
        seq_batch_ns,
        par_batch_ns,
        stats,
    })
}
