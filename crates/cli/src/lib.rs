//! `tgq` — a command-line analyzer for Take-Grant protection graphs.
//!
//! ```text
//! tgq show <file>                      summary: vertices, edges, islands, levels
//! tgq dot <file>                       Graphviz DOT on stdout
//! tgq islands <file>                   island decomposition
//! tgq levels <file>                    derived rw- and rwtg-levels
//! tgq secure <file>                    derived security check (§5)
//! tgq can-share <file> <right> <x> <y> [--witness]
//! tgq can-know <file> <x> <y> [--witness]
//! tgq can-know-f <file> <x> <y>
//! tgq figure <2.1|2.2|3.1|4.1|4.2|5.1|6.1>
//! tgq monitor <graph> <policy> <trace> [--journal <file>] [--batch] [--log <dir>]
//! tgq replay <graph> <policy> <journal|log-dir> [--dump-state <file>]
//! tgq serve <graph> <policy> --listen <addr>|--unix <path>   the TGP1 daemon
//! tgq client --connect <addr>|--unix <path> [--script <file>]
//! tgq at <log-dir> <epoch> <query...>     query a reconstructed historical state
//! tgq diff <log-dir> <epoch1> <epoch2>    edge/verdict delta between two epochs
//! tgq lint <graph> [<policy>] [--format text|json|sarif] [--fix] [--deny <code>]
//! tgq plan <graph> <policy> <trace>    vet a trace statically, without applying it
//! tgq watch <graph> <policy> <trace>   incremental per-rule audit of a trace
//! tgq trace <graph> <policy> <trace> [--out <file>] [--format chrome|jsonl]
//! tgq stats                            the span/counter catalog with paper refs
//! tgq gen <family> [--scale N] [--seed N] [--campaign conspiracy|trojan|none] [--out dir]
//! tgq bench [--scale N] [--levels N] [--per-level N] [--ops N] [--seed N] [--json <file>]
//! ```
//!
//! Every subcommand also accepts two global flags. `--stats` runs the
//! command inside a `tg-obs` recording session and appends the aggregate
//! span/counter table (`tgq stats` lists what each row measures).
//! `--jobs <n>` sets the worker count for the commands that evaluate in
//! parallel (`audit`, `lint`, `bench`, `watch`); the default is the
//! `TGQ_JOBS` environment variable if set, else the machine's available
//! parallelism, and `--jobs 1` is exactly the sequential path. Parallel
//! output is byte-identical at any job count (see `tg-par`).
//! `tgq trace` replays a rule trace through the journaled monitor with
//! an attached incremental index and emits the captured event stream as
//! Chrome `trace_event` JSON (load it in `chrome://tracing` or
//! <https://ui.perfetto.dev>) or JSONL.
//!
//! Exit codes: `0` success (for `lint`: no diagnostics above info), `1`
//! analysis failure or negative verdict (for `lint`: warnings), `2` usage
//! error (for `lint`: error-severity diagnostics).
//!
//! Graph files use the `tg-graph` text format (`subject`/`object`/`edge`
//! lines); vertices are referred to by name. Rule traces use the
//! `tg-rules` codec (one rule per line); journals are the `TGJ1`
//! write-ahead format produced by `tgq monitor --journal`.
//!
//! `tgq monitor --log <dir>` additionally commits every journaled event
//! through the hash-chained `tg-log` commit log in `<dir>`, writing an
//! epoch snapshot every `--snap-interval <n>` commits (default 64;
//! `0` disables). Rerunning against the same directory *continues* the
//! logged history: the prior state is recovered from the newest valid
//! snapshot plus a verified chain-suffix replay. `tgq replay` accepts
//! either a `TGJ1` journal file or a commit-log directory and prints a
//! recovery report (snapshot used, records replayed, torn-tail bytes,
//! chain-verify result). `tgq at` and `tgq diff` reconstruct committed
//! historical states by epoch, opening the log **read-only**: a query
//! never rewrites the log directory (only `monitor` and `replay` heal a
//! torn chain on disk). A forged, reordered, spliced or
//! mid-chain-corrupted log **fails closed** (exit `1`) on every one of
//! these commands; only a torn tail (a crashed append) is truncated,
//! and that truncation is reported.
//!
//! `tgq serve` boots the same monitor as a resident daemon speaking the
//! TGP1 wire protocol (normative spec: `docs/PROTOCOL.md`) over TCP
//! (`--listen`) or a Unix socket (`--unix`), with every mutation
//! admission-batched through one gateway and, with `--log <dir>`,
//! committed through the hash-chained log before the verdict is sent.
//! `tgq client` drives a running daemon with a line-oriented script
//! (`ping`, `apply <rule>`, `can-share <right> <x> <y>`, `can-know`,
//! `same-island`, `audit`, `stats`, `shutdown`); it exits `1` if any
//! request was answered with an `error` frame. `--dump-state <file>` on
//! `serve` and `replay` writes the final graph in `tg-graph` text form,
//! so CI can check a daemon's end state is byte-identical to an offline
//! recovery of its commit log.

#![forbid(unsafe_code)]

pub mod bench;
mod serve;

use std::fmt::Write as _;

use tg_analysis::{
    can_know, can_know_f, can_share, can_steal, min_conspirators, synthesis, Islands,
};
use tg_graph::{
    parse_graph, parse_graph_with_spans, render_graph, DotOptions, ProtectionGraph, Right, VertexId,
};
use tg_hierarchy::policy::parse_policy;
use tg_hierarchy::{rw_levels, rwtg_levels, secure_derived, secure_policy, CombinedRestriction};
use tg_lint::{apply_deny, apply_fixes, render, Diagnostic, LintContext, Registry, Severity};

/// How a `tgq` invocation failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CliError {
    /// The command line itself is wrong (unknown subcommand, bad arity,
    /// malformed flag). The binary exits `2`.
    Usage(String),
    /// The inputs or the analysis failed (unreadable file, parse error,
    /// negative verdict). The binary exits `1`.
    Fail(String),
}

impl CliError {
    /// The message, regardless of kind.
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Fail(m) => m,
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Fail(m)
    }
}

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.message())
    }
}

/// One `tgq` subcommand: its positional signature and every optional
/// flag it accepts. Usage lines are **generated** from this table
/// ([`usage_line`]), so a flag added to the parser cannot silently go
/// missing from the help text — the hand-written strings this replaces
/// had drifted from what `bench` and `watch` actually accepted.
pub struct CommandSpec {
    /// Subcommand name as typed.
    pub name: &'static str,
    /// Positional arguments, rendered verbatim (empty for none).
    pub args: &'static str,
    /// Optional flags with their value shapes, e.g. `"--journal <file>"`;
    /// each renders bracketed after the positionals.
    pub flags: &'static [&'static str],
}

/// Every subcommand, in help order.
pub const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "show",
        args: "<file>",
        flags: &[],
    },
    CommandSpec {
        name: "dot",
        args: "<file>",
        flags: &[],
    },
    CommandSpec {
        name: "islands",
        args: "<file>",
        flags: &[],
    },
    CommandSpec {
        name: "levels",
        args: "<file>",
        flags: &[],
    },
    CommandSpec {
        name: "secure",
        args: "<file>",
        flags: &[],
    },
    CommandSpec {
        name: "secure-policy",
        args: "<graph-file> <policy-file>",
        flags: &[],
    },
    CommandSpec {
        name: "audit",
        args: "<graph-file> <policy-file>",
        flags: &[],
    },
    CommandSpec {
        name: "explain",
        args: "<graph> <policy> take|grant <actor> <via> <target> <right>",
        flags: &[],
    },
    CommandSpec {
        name: "can-share",
        args: "<file> <right> <x> <y>",
        flags: &["--witness"],
    },
    CommandSpec {
        name: "can-know",
        args: "<file> <x> <y>",
        flags: &["--witness"],
    },
    CommandSpec {
        name: "can-know-f",
        args: "<file> <x> <y>",
        flags: &[],
    },
    CommandSpec {
        name: "can-steal",
        args: "<file> <right> <x> <y>",
        flags: &["--witness"],
    },
    CommandSpec {
        name: "conspirators",
        args: "<file> <right> <x> <y>",
        flags: &[],
    },
    CommandSpec {
        name: "figure",
        args: "<2.1|2.2|3.1|4.1|4.2|5.1|6.1>",
        flags: &[],
    },
    CommandSpec {
        name: "monitor",
        args: "<graph> <policy> <trace>",
        flags: &[
            "--journal <file>",
            "--batch",
            "--log <dir>",
            "--snap-interval <n>",
        ],
    },
    CommandSpec {
        name: "replay",
        args: "<graph> <policy> <journal|log-dir>",
        flags: &["--dump-state <file>"],
    },
    CommandSpec {
        name: "serve",
        args: "<graph> <policy>",
        flags: &[
            "--listen <addr>",
            "--unix <path>",
            "--batch-window <n>",
            "--log <dir>",
            "--snap-interval <n>",
            "--dump-state <file>",
        ],
    },
    CommandSpec {
        name: "client",
        args: "",
        flags: &["--connect <addr>", "--unix <path>", "--script <file>"],
    },
    CommandSpec {
        name: "at",
        args: "<log-dir> <epoch> can-share <right> <x> <y> | can-know <x> <y> | can-steal <right> <x> <y> | audit",
        flags: &[],
    },
    CommandSpec {
        name: "diff",
        args: "<log-dir> <epoch1> <epoch2>",
        flags: &[],
    },
    CommandSpec {
        name: "lint",
        args: "<graph> [<policy>]",
        flags: &[
            "--format text|json|sarif",
            "--fix",
            "--deny <code|warn|info|all>",
        ],
    },
    CommandSpec {
        name: "plan",
        args: "<graph> <policy> <trace>",
        flags: &["--format text|json|sarif", "--deny <code|warn|info|all>"],
    },
    CommandSpec {
        name: "watch",
        args: "<graph> <policy> <trace>",
        flags: &[],
    },
    CommandSpec {
        name: "trace",
        args: "<graph> <policy> <trace>",
        flags: &["--out <file>", "--format chrome|jsonl"],
    },
    CommandSpec {
        name: "stats",
        args: "",
        flags: &[],
    },
    CommandSpec {
        name: "gen",
        args: "<military|chain|antichain|dag>",
        flags: &[
            "--scale <n>",
            "--seed <n>",
            "--campaign conspiracy|trojan|none",
            "--out <dir>",
        ],
    },
    CommandSpec {
        name: "bench",
        args: "",
        flags: &[
            "--scale <n>",
            "--levels <n>",
            "--per-level <n>",
            "--ops <n>",
            "--seed <n>",
            "--json <file>",
        ],
    },
];

/// The generated usage line for `command`: positionals, then each flag
/// bracketed, then the globals `[--jobs <n>] [--stats]` every command
/// accepts (except `stats` itself, which *is* the metrics surface).
pub fn usage_line(command: &str) -> String {
    let spec = COMMANDS
        .iter()
        .find(|c| c.name == command)
        .expect("every dispatched command has a table entry");
    let mut line = format!("tgq {}", spec.name);
    if !spec.args.is_empty() {
        let _ = write!(line, " {}", spec.args);
    }
    for flag in spec.flags {
        let _ = write!(line, " [{flag}]");
    }
    if spec.name != "stats" {
        line.push_str(" [--jobs <n>] [--stats]");
    }
    line
}

/// The usage error for one command.
fn usage_of(command: &str) -> CliError {
    CliError::Usage(format!("usage: {}", usage_line(command)))
}

fn usage() -> String {
    let mut out = String::from("usage: tgq <command> ...\n");
    for spec in COMMANDS {
        let _ = writeln!(out, "  {}", usage_line(spec.name));
    }
    out.push_str("run with a command name for details");
    out
}

fn load(path: &str) -> Result<ProtectionGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_graph(&text).map_err(|e| format!("{path}: {e}"))
}

fn vertex(graph: &ProtectionGraph, name: &str) -> Result<VertexId, String> {
    graph
        .find_by_name(name)
        .ok_or_else(|| format!("no vertex named {name:?}"))
}

fn name(graph: &ProtectionGraph, v: VertexId) -> String {
    graph.vertex(v).name.clone()
}

/// Opens the commit log in `dir` **read-only** (self-anchored: the
/// epoch-0 snapshot validates the chain's genesis digest) and
/// reconstructs the committed state at `epoch`. Queries never rewrite
/// the log directory: a torn tail is truncated in memory only, leaving
/// the on-disk bytes for `tgq replay` to heal. Any verification failure
/// — forged hash link, mid-chain corruption, unusable snapshots, replay
/// divergence — fails closed as a [`CliError::Fail`] (exit `1`).
fn state_at(
    dir: &str,
    epoch: u64,
) -> Result<(tg_hierarchy::Monitor, tg_log::TravelInfo), CliError> {
    let store = tg_log::DirStore::open(dir).map_err(|e| e.to_string())?;
    let (log, _) = tg_log::CommitLog::open_read_only(
        Box::new(store),
        Box::new(CombinedRestriction),
        tg_log::LogConfig::default(),
        None,
    )
    .map_err(|e| CliError::Fail(format!("{dir}: {e}")))?;
    log.state_at(epoch, Box::new(CombinedRestriction))
        .map_err(|e| CliError::Fail(format!("{dir}: {e}")))
}

/// Every edge keyed by endpoint indices, with its explicit and implicit
/// labels rendered, for epoch-to-epoch diffing (vertex ids are stable
/// across epochs: replaying a longer prefix only appends vertices).
fn edge_map(
    graph: &ProtectionGraph,
) -> std::collections::BTreeMap<(usize, usize), (String, String)> {
    graph
        .edges()
        .map(|e| {
            (
                (e.src.index(), e.dst.index()),
                (
                    e.rights.explicit().to_string(),
                    e.rights.implicit().to_string(),
                ),
            )
        })
        .collect()
}

fn rights_text(rights: &(String, String)) -> String {
    let (explicit, implicit) = rights;
    if implicit == "∅" {
        explicit.clone()
    } else {
        format!("{explicit} [de facto: {implicit}]")
    }
}

fn edge_label(graph: &ProtectionGraph, key: (usize, usize), rights: &(String, String)) -> String {
    format!(
        "{} -> {} : {}",
        name(graph, VertexId::from_index(key.0)),
        name(graph, VertexId::from_index(key.1)),
        rights_text(rights)
    )
}

/// Executes one `tgq` invocation, writing human-readable output to `out`.
/// Returns `Err` with a message for usage errors, unparsable inputs and
/// negative `secure`-family verdicts, and `Err` with a short summary when
/// a command (such as `lint`) asks for a nonzero exit despite producing
/// output. Compatibility wrapper over [`run_full`].
pub fn run(args: &[String], out: &mut String) -> Result<(), String> {
    match run_full(args, out) {
        Ok(0) => Ok(()),
        Ok(code) => Err(format!("exit code {code}")),
        Err(e) => Err(e.message().to_string()),
    }
}

/// Executes one `tgq` invocation, writing human-readable output to `out`.
/// `Ok(code)` is the process exit status a successful dispatch asks for
/// (nonzero for `lint` findings); [`CliError`] distinguishes usage errors
/// (exit `2`) from input/analysis failures (exit `1`).
///
/// The global `--stats` flag (accepted by every subcommand, stripped
/// here before dispatch) wraps the run in a [`tg_obs::Session`] and
/// appends the aggregate span/counter table to `out`.
pub fn run_full(args: &[String], out: &mut String) -> Result<u8, CliError> {
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    let (stats, args) = split_flag(&args, "--stats");
    // Global `--jobs <n>`: the worker pool handed to every subcommand
    // that evaluates in parallel. Flag beats `TGQ_JOBS` beats available
    // parallelism; `--jobs 1` runs inline on this thread.
    let (jobs, args) = split_opt(&args, "--jobs")?;
    let pool = match jobs {
        Some(raw) => {
            let n: usize = raw
                .parse()
                .map_err(|_| CliError::Usage(format!("--jobs expects a number, got {raw:?}")))?;
            if n == 0 {
                return Err(CliError::Usage("--jobs must be at least 1".to_string()));
            }
            tg_par::Pool::new(n)
        }
        None => tg_par::Pool::from_env_or_available(),
    };
    // `trace` needs event capture; one session serves both it and
    // `--stats` (tg_obs sessions are exclusive, so nesting would
    // deadlock).
    let capture_events = args.first() == Some(&"trace");
    let session = if stats || capture_events {
        Some(tg_obs::Session::start(true, capture_events))
    } else {
        None
    };
    let result = {
        let _span = tg_obs::span(tg_obs::SpanKind::CliCommand);
        dispatch(&args, out, session.as_ref(), &pool)
    };
    if stats {
        if let Some(session) = &session {
            let _ = writeln!(out);
            out.push_str(&session.snapshot().render_table());
        }
    }
    result
}

fn dispatch(
    args: &[&str],
    out: &mut String,
    session: Option<&tg_obs::Session>,
    pool: &tg_par::Pool,
) -> Result<u8, CliError> {
    let mut iter = args.iter().copied();
    let command = iter.next().ok_or_else(|| CliError::Usage(usage()))?;
    let rest: Vec<&str> = iter.collect();
    match command {
        "show" => {
            let [path] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(path)?;
            let _ = writeln!(
                out,
                "{} vertices ({} subjects, {} objects), {} edges ({} explicit)",
                g.vertex_count(),
                g.subjects().count(),
                g.objects().count(),
                g.edge_count(),
                g.explicit_edge_count()
            );
            let stats = tg_graph::stats::stats(&g);
            let _ = writeln!(out, "rights histogram: {}", stats.rights_histogram());
            let _ = writeln!(
                out,
                "max out-degree {}, max in-degree {}",
                stats.max_out_degree, stats.max_in_degree
            );
            let islands = Islands::compute(&g);
            let _ = writeln!(out, "{} islands", islands.len());
            let rw = rw_levels(&g);
            let rwtg = rwtg_levels(&g);
            let _ = writeln!(out, "{} rw-levels, {} rwtg-levels", rw.len(), rwtg.len());
            Ok(0)
        }
        "dot" => {
            let [path] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(path)?;
            let _ = write!(out, "{}", DotOptions::default().render(&g));
            Ok(0)
        }
        "islands" => {
            let [path] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(path)?;
            let islands = Islands::compute(&g);
            for (i, island) in islands.iter().enumerate() {
                let names: Vec<String> = island.iter().map(|&v| name(&g, v)).collect();
                let _ = writeln!(out, "island {i}: {{{}}}", names.join(", "));
            }
            Ok(0)
        }
        "levels" => {
            let [path] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(path)?;
            for (title, levels) in [("rw", rw_levels(&g)), ("rwtg", rwtg_levels(&g))] {
                let _ = writeln!(out, "{title}-levels:");
                for i in 0..levels.len() {
                    let names: Vec<String> =
                        levels.members(i).iter().map(|&v| name(&g, v)).collect();
                    let above: Vec<String> = (0..levels.len())
                        .filter(|&j| levels.higher(i, j))
                        .map(|j| format!("{j}"))
                        .collect();
                    if above.is_empty() {
                        let _ = writeln!(out, "  level {i}: {{{}}}", names.join(", "));
                    } else {
                        let _ = writeln!(
                            out,
                            "  level {i}: {{{}}} (higher than {})",
                            names.join(", "),
                            above.join(", ")
                        );
                    }
                }
            }
            Ok(0)
        }
        "secure" => {
            let [path] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(path)?;
            match secure_derived(&g) {
                Ok(()) => {
                    let _ = writeln!(
                        out,
                        "secure: the de jure rules cannot invert the de facto hierarchy"
                    );
                    Ok(0)
                }
                Err(breach) => Err(format!(
                    "INSECURE: {} can come to know {} ({})",
                    name(&g, breach.x),
                    name(&g, breach.y),
                    breach.reason
                )
                .into()),
            }
        }
        "can-share" => {
            let (witness, rest): (bool, Vec<&str>) = split_flag(&rest, "--witness");
            let [path, right, x, y] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(path)?;
            let right = Right::parse(right).ok_or_else(|| format!("unknown right {right:?}"))?;
            let vx = vertex(&g, x)?;
            let vy = vertex(&g, y)?;
            if can_share(&g, right, vx, vy) {
                let _ = writeln!(out, "true: {x} can acquire {right} to {y}");
                if witness {
                    let d = synthesis::share_witness(&g, right, vx, vy)
                        .map_err(|e| format!("witness synthesis failed: {e}"))?;
                    let _ = write!(out, "{d}");
                }
                Ok(0)
            } else {
                let _ = writeln!(out, "false: {x} can never acquire {right} to {y}");
                Ok(0)
            }
        }
        "can-know" | "can-know-f" => {
            let (witness, rest): (bool, Vec<&str>) = split_flag(&rest, "--witness");
            let [path, x, y] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(path)?;
            let vx = vertex(&g, x)?;
            let vy = vertex(&g, y)?;
            let result = if command == "can-know" {
                can_know(&g, vx, vy)
            } else {
                can_know_f(&g, vx, vy)
            };
            if result {
                let _ = writeln!(out, "true: {x} can come to know {y}'s information");
                if witness && command == "can-know" {
                    let d = synthesis::know_witness(&g, vx, vy)
                        .map_err(|e| format!("witness synthesis failed: {e}"))?;
                    let _ = write!(out, "{d}");
                }
            } else {
                let _ = writeln!(out, "false: information cannot flow from {y} to {x}");
            }
            Ok(0)
        }
        "secure-policy" | "audit" => {
            let [graph_path, policy_path] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(graph_path)?;
            let policy_text = std::fs::read_to_string(policy_path)
                .map_err(|e| format!("cannot read {policy_path}: {e}"))?;
            let levels =
                parse_policy(&policy_text, &g).map_err(|e| format!("{policy_path}: {e}"))?;
            if command == "audit" {
                // Island-sharded parallel Corollary 5.6 scan; with
                // `--jobs 1` this is the sequential edge walk, and the
                // output is byte-identical at any width.
                let violations = tg_par::par_audit(&g, &levels, &CombinedRestriction, pool);
                if violations.is_empty() {
                    let _ = writeln!(out, "audit clean: no r/w edge crosses levels");
                    Ok(0)
                } else {
                    for v in &violations {
                        let _ = writeln!(
                            out,
                            "violation: {} -> {} : {}",
                            name(&g, v.src),
                            name(&g, v.dst),
                            v.rights
                        );
                    }
                    Err(format!("{} violating edge(s)", violations.len()).into())
                }
            } else {
                match secure_policy(&g, &levels) {
                    Ok(()) => {
                        let _ = writeln!(out, "secure: every knowable pair respects dominance");
                        Ok(0)
                    }
                    Err(breach) => Err(format!(
                        "INSECURE: {} can come to know {}",
                        name(&g, breach.x),
                        name(&g, breach.y)
                    )
                    .into()),
                }
            }
        }
        "can-steal" => {
            let (witness, rest): (bool, Vec<&str>) = split_flag(&rest, "--witness");
            let [path, right, x, y] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(path)?;
            let right = Right::parse(right).ok_or_else(|| format!("unknown right {right:?}"))?;
            let vx = vertex(&g, x)?;
            let vy = vertex(&g, y)?;
            if can_steal(&g, right, vx, vy) {
                let _ = writeln!(
                    out,
                    "true: {x} can steal {right} to {y} (no owner grants it)"
                );
                if witness {
                    let d = synthesis::steal_witness(&g, right, vx, vy)
                        .map_err(|e| format!("witness synthesis failed: {e}"))?;
                    let _ = write!(out, "{d}");
                }
            } else {
                let _ = writeln!(out, "false: {x} cannot steal {right} to {y}");
            }
            Ok(0)
        }
        "conspirators" => {
            let [path, right, x, y] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(path)?;
            let right = Right::parse(right).ok_or_else(|| format!("unknown right {right:?}"))?;
            let vx = vertex(&g, x)?;
            let vy = vertex(&g, y)?;
            match min_conspirators(&g, right, vx, vy) {
                None => {
                    let _ = writeln!(out, "can_share is false: no conspiracy suffices");
                }
                Some(chain) if chain.is_empty() => {
                    let _ = writeln!(out, "0 conspirators: {x} already holds {right} to {y}");
                }
                Some(chain) => {
                    let names: Vec<String> = chain.iter().map(|&v| name(&g, v)).collect();
                    let _ = writeln!(
                        out,
                        "{} conspirator(s): {}",
                        chain.len(),
                        names.join(" -> ")
                    );
                }
            }
            Ok(0)
        }
        "explain" => {
            let [graph_path, policy_path, verb, actor, via, target, right] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(graph_path)?;
            let policy_text = std::fs::read_to_string(policy_path)
                .map_err(|e| format!("cannot read {policy_path}: {e}"))?;
            let levels =
                parse_policy(&policy_text, &g).map_err(|e| format!("{policy_path}: {e}"))?;
            let rights = tg_graph::Rights::singleton(
                Right::parse(right).ok_or_else(|| format!("unknown right {right:?}"))?,
            );
            let (actor, via, target) = (vertex(&g, actor)?, vertex(&g, via)?, vertex(&g, target)?);
            let rule = match *verb {
                "take" => tg_rules::Rule::DeJure(tg_rules::DeJureRule::Take {
                    actor,
                    via,
                    target,
                    rights,
                }),
                "grant" => tg_rules::Rule::DeJure(tg_rules::DeJureRule::Grant {
                    actor,
                    via,
                    target,
                    rights,
                }),
                other => return Err(format!("unknown rule verb {other:?} (take|grant)").into()),
            };
            let monitor =
                tg_hierarchy::Monitor::new(g.clone(), levels, Box::new(CombinedRestriction));
            match monitor.explain(&rule).map_err(|e| e.to_string())? {
                None => {
                    let _ = writeln!(out, "permitted: the combined restriction allows this rule");
                }
                Some(explanation) => {
                    let _ = writeln!(out, "denied: {}", explanation.reason);
                    if explanation.enabled_breaches.is_empty() {
                        let _ = writeln!(
                            out,
                            "permitting it creates no immediate de facto breach (the \
                             restriction is conservative about edges)"
                        );
                    } else {
                        let _ = writeln!(out, "permitting it would create:");
                        for b in &explanation.enabled_breaches {
                            let _ = writeln!(
                                out,
                                "  {} would come to know {}",
                                name(&g, b.x),
                                name(&g, b.y)
                            );
                        }
                    }
                }
            }
            Ok(0)
        }
        "monitor" => {
            let (batch, rest) = split_flag(&rest, "--batch");
            let (journal_out, rest) = split_opt(&rest, "--journal")?;
            let (log_dir, rest) = split_opt(&rest, "--log")?;
            let (snap_interval, rest) = split_opt(&rest, "--snap-interval")?;
            let [graph_path, policy_path, trace_path] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            if snap_interval.is_some() && log_dir.is_none() {
                return Err(CliError::Usage(
                    "--snap-interval only makes sense with --log <dir>".to_string(),
                ));
            }
            let interval: u64 = match snap_interval {
                None => 64,
                Some(raw) => raw.parse().map_err(|_| {
                    CliError::Usage(format!("--snap-interval expects a number, got {raw:?}"))
                })?,
            };
            let g = load(graph_path)?;
            let policy_text = std::fs::read_to_string(policy_path)
                .map_err(|e| format!("cannot read {policy_path}: {e}"))?;
            let levels =
                parse_policy(&policy_text, &g).map_err(|e| format!("{policy_path}: {e}"))?;
            let trace_text = std::fs::read_to_string(trace_path)
                .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
            let trace = tg_rules::codec::decode_derivation(&trace_text)
                .map_err(|e| format!("{trace_path}: {e}"))?;
            // With --log, the monitor commits every journaled event
            // through the hash-chained log in <dir>; an existing chain
            // there is recovered and continued (its genesis must match
            // the seed files, so a directory from another system is
            // rejected).
            let (log, mut monitor) = match log_dir {
                None => (
                    None,
                    tg_hierarchy::Monitor::new(g, levels, Box::new(CombinedRestriction)),
                ),
                Some(dir) => {
                    let config = tg_log::LogConfig {
                        snapshot_interval: interval,
                        write_through: true,
                    };
                    let store = tg_log::DirStore::open(dir).map_err(|e| e.to_string())?;
                    let fresh = !store.dir().join(tg_log::CHAIN_FILE).exists();
                    if fresh {
                        let (log, monitor) = tg_log::CommitLog::create(
                            Box::new(store),
                            g,
                            levels,
                            Box::new(CombinedRestriction),
                            config,
                        )
                        .map_err(|e| format!("{dir}: {e}"))?;
                        let _ = writeln!(out, "commit log created in {dir}");
                        (Some(log), monitor)
                    } else {
                        let genesis = tg_log::seed_digest(&g, &levels);
                        let (log, monitor, report) = tg_log::CommitLog::open(
                            Box::new(store),
                            Box::new(CombinedRestriction),
                            config,
                            Some(genesis),
                        )
                        .map_err(|e| format!("{dir}: {e}"))?;
                        let _ = writeln!(
                            out,
                            "commit log resumed at epoch {} (snapshot {} + {} replayed)",
                            report.end_epoch, report.snapshot_epoch, report.replayed
                        );
                        (Some(log), monitor)
                    }
                }
            };
            monitor.enable_journal();
            if batch {
                match monitor.try_apply_all(&trace.steps) {
                    Ok(effects) => {
                        let _ = writeln!(out, "batch committed: {} rules applied", effects.len());
                    }
                    Err(e) => {
                        let _ = writeln!(
                            out,
                            "batch rolled back at rule {} ({}): {}",
                            e.index, e.rule, e.error
                        );
                    }
                }
                if let Some(log) = &log {
                    log.maybe_snapshot(&monitor).map_err(|e| e.to_string())?;
                }
            } else {
                for rule in &trace.steps {
                    match monitor.try_apply(rule) {
                        Ok(_) => {}
                        Err(e) => {
                            let _ = writeln!(out, "refused {rule}: {e}");
                        }
                    }
                    if let Some(log) = &log {
                        log.maybe_snapshot(&monitor).map_err(|e| e.to_string())?;
                    }
                }
            }
            let stats = monitor.stats();
            let _ = writeln!(
                out,
                "{} permitted, {} denied, {} malformed, {} refused",
                stats.permitted, stats.denied, stats.malformed, stats.refused
            );
            let violations = monitor.audit_cycle();
            if violations.is_empty() {
                let _ = writeln!(out, "audit clean: no r/w edge crosses levels");
            } else {
                let g = monitor.graph();
                for v in &violations {
                    let _ = writeln!(
                        out,
                        "violation: {} -> {} : {}",
                        name(g, v.src),
                        name(g, v.dst),
                        v.rights
                    );
                }
                let _ = writeln!(out, "monitor degraded: de jure rules now fail closed");
            }
            if let Some(path) = journal_out {
                let journal = monitor.journal().expect("journaling is enabled");
                std::fs::write(path, journal.as_bytes())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                let _ = writeln!(
                    out,
                    "journal written to {path} ({} records)",
                    journal.records()
                );
            }
            if let Some(log) = &log {
                log.persist().map_err(|e| e.to_string())?;
                let _ = writeln!(
                    out,
                    "commit log at epoch {} ({} snapshot(s), head {})",
                    log.end_epoch(),
                    log.snapshot_epochs().len(),
                    tg_log::hex16(log.head_hash())
                );
            }
            Ok(0)
        }
        "serve" => serve::cmd_serve(&rest, out, pool),
        "client" => serve::cmd_client(&rest, out),
        "replay" => {
            let (dump_state, rest) = split_opt(&rest, "--dump-state")?;
            let [graph_path, policy_path, journal_path] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(graph_path)?;
            let policy_text = std::fs::read_to_string(policy_path)
                .map_err(|e| format!("cannot read {policy_path}: {e}"))?;
            let levels =
                parse_policy(&policy_text, &g).map_err(|e| format!("{policy_path}: {e}"))?;
            let is_log_dir = std::fs::metadata(journal_path)
                .map(|m| m.is_dir())
                .unwrap_or(false);
            let monitor = if is_log_dir {
                // A tg-log commit-log directory: recover through the
                // hash chain, pinning its genesis to these seed files.
                let store = tg_log::DirStore::open(*journal_path).map_err(|e| e.to_string())?;
                let genesis = tg_log::seed_digest(&g, &levels);
                let (_, monitor, report) = tg_log::CommitLog::open(
                    Box::new(store),
                    Box::new(CombinedRestriction),
                    tg_log::LogConfig::default(),
                    Some(genesis),
                )
                .map_err(|e| format!("{journal_path}: {e}"))?;
                let _ = writeln!(out, "recovered: {} records replayed", report.replayed);
                let _ = writeln!(out, "recovery report:");
                let _ = writeln!(
                    out,
                    "  chain verify: ok (genesis {})",
                    tg_log::hex16(report.genesis)
                );
                let _ = writeln!(
                    out,
                    "  snapshot used: epoch {} ({} rejected)",
                    report.snapshot_epoch, report.snapshots_rejected
                );
                let _ = writeln!(out, "  records replayed: {}", report.replayed);
                match report.torn {
                    Some(t) => {
                        let _ = writeln!(out, "  torn tail: {} bytes truncated", t.dropped_bytes);
                    }
                    None => {
                        let _ = writeln!(out, "  torn tail: none");
                    }
                }
                let _ = writeln!(
                    out,
                    "  open batch: {}",
                    if report.discarded_open_batch {
                        "discarded"
                    } else {
                        "none"
                    }
                );
                let _ = writeln!(
                    out,
                    "  recovered epoch: {} (base {})",
                    report.end_epoch, report.base_epoch
                );
                monitor
            } else {
                let bytes = std::fs::read(journal_path)
                    .map_err(|e| format!("cannot read {journal_path}: {e}"))?;
                let (monitor, report) = tg_hierarchy::journal::recover(
                    g,
                    levels,
                    Box::new(CombinedRestriction),
                    &bytes,
                )
                .map_err(|e| format!("{journal_path}: {e}"))?;
                let _ = writeln!(out, "recovered: {} records replayed", report.replayed);
                let _ = writeln!(out, "recovery report:");
                let _ = writeln!(out, "  chain verify: n/a (TGJ1 journal, crc32 per record)");
                let _ = writeln!(out, "  snapshot used: none (full replay from seed)");
                let _ = writeln!(out, "  records replayed: {}", report.replayed);
                match report.torn {
                    Some(t) => {
                        let _ = writeln!(
                            out,
                            "  torn tail: {} bytes truncated after {} intact records",
                            t.dropped_bytes, t.valid_records
                        );
                    }
                    None => {
                        let _ = writeln!(out, "  torn tail: none");
                    }
                }
                let _ = writeln!(
                    out,
                    "  open batch: {}",
                    if report.discarded_open_batch {
                        "discarded"
                    } else {
                        "none"
                    }
                );
                monitor
            };
            let stats = monitor.stats();
            let _ = writeln!(
                out,
                "{} permitted, {} denied, {} malformed, {} refused",
                stats.permitted, stats.denied, stats.malformed, stats.refused
            );
            let g = monitor.graph();
            let _ = writeln!(
                out,
                "{} vertices, {} explicit edges",
                g.vertex_count(),
                g.explicit_edge_count()
            );
            if let Some(path) = dump_state {
                std::fs::write(path, render_graph(g))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                let _ = writeln!(out, "recovered state dumped to {path}");
            }
            Ok(0)
        }
        "at" => {
            let (dir, epoch, query) = match rest.as_slice() {
                [dir, epoch, query @ ..] if !query.is_empty() => (*dir, *epoch, query.to_vec()),
                _ => return Err(usage_of(command)),
            };
            let epoch: u64 = epoch
                .parse()
                .map_err(|_| CliError::Usage(format!("not an epoch number: {epoch:?}")))?;
            let (monitor, info) = state_at(dir, epoch)?;
            let g = monitor.graph();
            let _ = writeln!(
                out,
                "epoch {epoch} (snapshot {} + {} replayed):",
                info.snapshot_epoch, info.replayed
            );
            match query.as_slice() {
                ["can-share", right, x, y] => {
                    let right =
                        Right::parse(right).ok_or_else(|| format!("unknown right {right:?}"))?;
                    let (vx, vy) = (vertex(g, x)?, vertex(g, y)?);
                    if can_share(g, right, vx, vy) {
                        let _ = writeln!(out, "true: {x} can acquire {right} to {y}");
                    } else {
                        let _ = writeln!(out, "false: {x} can never acquire {right} to {y}");
                    }
                    Ok(0)
                }
                ["can-know", x, y] => {
                    let (vx, vy) = (vertex(g, x)?, vertex(g, y)?);
                    if can_know(g, vx, vy) {
                        let _ = writeln!(out, "true: {x} can come to know {y}'s information");
                    } else {
                        let _ = writeln!(out, "false: information cannot flow from {y} to {x}");
                    }
                    Ok(0)
                }
                ["can-steal", right, x, y] => {
                    let right =
                        Right::parse(right).ok_or_else(|| format!("unknown right {right:?}"))?;
                    let (vx, vy) = (vertex(g, x)?, vertex(g, y)?);
                    if can_steal(g, right, vx, vy) {
                        let _ = writeln!(
                            out,
                            "true: {x} can steal {right} to {y} (no owner grants it)"
                        );
                    } else {
                        let _ = writeln!(out, "false: {x} cannot steal {right} to {y}");
                    }
                    Ok(0)
                }
                ["audit"] => {
                    let violations = monitor.audit();
                    if violations.is_empty() {
                        let _ = writeln!(out, "audit clean: no r/w edge crosses levels");
                        Ok(0)
                    } else {
                        for v in &violations {
                            let _ = writeln!(
                                out,
                                "violation: {} -> {} : {}",
                                name(g, v.src),
                                name(g, v.dst),
                                v.rights
                            );
                        }
                        Err(format!("{} violating edge(s)", violations.len()).into())
                    }
                }
                _ => Err(usage_of(command)),
            }
        }
        "diff" => {
            let [dir, e1, e2] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let parse_epoch = |raw: &str| -> Result<u64, CliError> {
                raw.parse()
                    .map_err(|_| CliError::Usage(format!("not an epoch number: {raw:?}")))
            };
            let (e1, e2) = (parse_epoch(e1)?, parse_epoch(e2)?);
            let (m1, _) = state_at(dir, e1)?;
            let (m2, _) = state_at(dir, e2)?;
            let (g1, g2) = (m1.graph(), m2.graph());
            let _ = writeln!(out, "diff epoch {e1} -> epoch {e2}:");
            let _ = writeln!(
                out,
                "  vertices: {} -> {}",
                g1.vertex_count(),
                g2.vertex_count()
            );
            // Edge delta, keyed by endpoints; `~` marks a rights change.
            let before = edge_map(g1);
            let after = edge_map(g2);
            let mut delta = 0usize;
            for (key, rights) in &after {
                let label = edge_label(g2, *key, rights);
                match before.get(key) {
                    None => {
                        let _ = writeln!(out, "  + {label}");
                        delta += 1;
                    }
                    Some(old) if old != rights => {
                        let _ = writeln!(
                            out,
                            "  ~ {} => {}",
                            edge_label(g1, *key, old),
                            rights_text(rights)
                        );
                        delta += 1;
                    }
                    Some(_) => {}
                }
            }
            for (key, rights) in &before {
                if !after.contains_key(key) {
                    let _ = writeln!(out, "  - {}", edge_label(g1, *key, rights));
                    delta += 1;
                }
            }
            if delta == 0 {
                let _ = writeln!(out, "  edges: unchanged");
            }
            let (s1, s2) = (m1.stats(), m2.stats());
            let _ = writeln!(
                out,
                "  stats: {:+} permitted, {:+} denied, {:+} malformed, {:+} refused",
                s2.permitted as i64 - s1.permitted as i64,
                s2.denied as i64 - s1.denied as i64,
                s2.malformed as i64 - s1.malformed as i64,
                s2.refused as i64 - s1.refused as i64
            );
            let (v1, v2) = (m1.audit(), m2.audit());
            let verdict = |v: &[tg_hierarchy::Violation]| {
                if v.is_empty() {
                    "clean".to_string()
                } else {
                    format!("VIOLATING ({})", v.len())
                }
            };
            let _ = writeln!(out, "  audit: {} -> {}", verdict(&v1), verdict(&v2));
            Ok(0)
        }
        "figure" => {
            let [id] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let graph = match *id {
                "2.1" => tg_sim::scenarios::fig_2_1().wu.graph,
                "2.2" => tg_sim::scenarios::fig_2_2().graph,
                "3.1" => tg_sim::scenarios::fig_3_1().graph,
                "4.1" => tg_sim::scenarios::fig_4_1().graph,
                "4.2" => tg_sim::scenarios::fig_4_2().graph,
                "5.1" => tg_sim::scenarios::fig_5_1().graph,
                "6.1" => tg_sim::scenarios::fig_6_1().graph,
                other => return Err(format!("unknown figure {other:?}").into()),
            };
            let _ = write!(out, "{}", render_graph(&graph));
            Ok(0)
        }
        "lint" => {
            let (fix, rest) = split_flag(&rest, "--fix");
            let (format, rest) = split_opt(&rest, "--format")?;
            let (deny, rest) = split_multi(&rest, "--deny")?;
            validate_deny(&deny)?;
            let format = format.unwrap_or("text");
            if !matches!(format, "text" | "json" | "sarif") {
                return Err(CliError::Usage(format!(
                    "unknown --format {format:?} (text|json|sarif)"
                )));
            }
            let (graph_path, policy_path) = match rest.as_slice() {
                [g] => (*g, None),
                [g, p] => (*g, Some(*p)),
                _ => return Err(usage_of(command)),
            };
            let text = std::fs::read_to_string(graph_path)
                .map_err(|e| format!("cannot read {graph_path}: {e}"))?;
            let (mut graph, srcmap) =
                parse_graph_with_spans(&text).map_err(|e| format!("{graph_path}: {e}"))?;
            let levels = match policy_path {
                Some(p) => {
                    let policy_text =
                        std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
                    Some(parse_policy(&policy_text, &graph).map_err(|e| format!("{p}: {e}"))?)
                }
                None => None,
            };
            let registry = Registry::with_default_lints();
            let mut diags = if fix {
                let report = apply_fixes(&registry, &mut graph, levels.as_ref());
                std::fs::write(graph_path, render_graph(&graph))
                    .map_err(|e| format!("cannot write {graph_path}: {e}"))?;
                let _ = writeln!(
                    out,
                    "applied {} fix(es) in {} round(s); rewrote {graph_path}",
                    report.applied, report.rounds
                );
                if let Some(clean) = report.certified {
                    let _ = writeln!(
                        out,
                        "incremental certification: edge invariants {}",
                        if clean { "clean" } else { "still violated" }
                    );
                }
                // Spans refer to the pre-fix text; report what remains
                // without locations.
                report.remaining
            } else {
                // Independent passes fan out across the pool; the merge
                // re-establishes the canonical order, so `--jobs` never
                // changes a byte of text/JSON/SARIF output.
                registry.run_parallel(
                    &LintContext::new(&graph, levels.as_ref(), Some(&srcmap)),
                    pool,
                )
            };
            apply_deny(&mut diags, &deny);
            diags.sort_by(Diagnostic::canonical_cmp);
            let source = if fix { None } else { Some(text.as_str()) };
            match format {
                "json" => out.push_str(&render::render_json(&diags, graph_path)),
                "sarif" => out.push_str(&render::render_sarif(&diags, graph_path)),
                _ => render::render_text(&diags, graph_path, source, out),
            }
            let worst = diags.iter().map(|d| d.severity).max();
            Ok(match worst {
                Some(Severity::Error) => 2,
                Some(Severity::Warn) => 1,
                _ => 0,
            })
        }
        "plan" => {
            let (format, rest) = split_opt(&rest, "--format")?;
            let (deny, rest) = split_multi(&rest, "--deny")?;
            validate_deny(&deny)?;
            let format = format.unwrap_or("text");
            if !matches!(format, "text" | "json" | "sarif") {
                return Err(CliError::Usage(format!(
                    "unknown --format {format:?} (text|json|sarif)"
                )));
            }
            let [graph_path, policy_path, trace_path] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let text = std::fs::read_to_string(graph_path)
                .map_err(|e| format!("cannot read {graph_path}: {e}"))?;
            let (graph, srcmap) =
                parse_graph_with_spans(&text).map_err(|e| format!("{graph_path}: {e}"))?;
            let policy_text = std::fs::read_to_string(policy_path)
                .map_err(|e| format!("cannot read {policy_path}: {e}"))?;
            let levels =
                parse_policy(&policy_text, &graph).map_err(|e| format!("{policy_path}: {e}"))?;
            let trace_text = std::fs::read_to_string(trace_path)
                .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
            let trace = tg_rules::codec::decode_derivation(&trace_text)
                .map_err(|e| format!("{trace_path}: {e}"))?;
            // Only the trace-vetting pass runs: `plan` answers "would the
            // monitor accept this?", not "is the graph clean?" — that is
            // `tgq lint`'s job. The graph is never mutated.
            let registry = {
                let mut r = Registry::empty();
                r.register(Box::new(tg_lint::passes::RefusedTraceStep));
                r
            };
            let cx = LintContext::new(&graph, Some(&levels), Some(&srcmap)).with_trace(&trace);
            let mut diags = registry.run_parallel(&cx, pool);
            apply_deny(&mut diags, &deny);
            diags.sort_by(Diagnostic::canonical_cmp);
            match format {
                "json" => out.push_str(&render::render_json(&diags, graph_path)),
                "sarif" => out.push_str(&render::render_sarif(&diags, graph_path)),
                _ => {
                    if diags.is_empty() {
                        let _ =
                            writeln!(out, "plan: all {} step(s) statically accepted", trace.len());
                    }
                    render::render_text(&diags, graph_path, Some(text.as_str()), out);
                }
            }
            let worst = diags.iter().map(|d| d.severity).max();
            Ok(match worst {
                Some(Severity::Error) => 2,
                Some(Severity::Warn) => 1,
                _ => 0,
            })
        }
        "watch" => {
            let [graph_path, policy_path, trace_path] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(graph_path)?;
            let policy_text = std::fs::read_to_string(policy_path)
                .map_err(|e| format!("cannot read {policy_path}: {e}"))?;
            let levels =
                parse_policy(&policy_text, &g).map_err(|e| format!("{policy_path}: {e}"))?;
            let trace_text = std::fs::read_to_string(trace_path)
                .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
            let trace = tg_rules::codec::decode_derivation(&trace_text)
                .map_err(|e| format!("{trace_path}: {e}"))?;
            // The incremental index watches every committed delta; the
            // audit verdict after each rule is read off the maintained
            // violation set instead of a Corollary 5.6 rescan per rule.
            let index = tg_inc::SharedIndex::new(&g, &levels, &CombinedRestriction);
            let mut monitor = tg_hierarchy::Monitor::new(g, levels, Box::new(CombinedRestriction));
            monitor.attach_observer(index.observer());
            let mut clean = index.audit_clean();
            if !clean {
                let _ = writeln!(out, "rule 0: audit starts dirty");
            }
            for (i, rule) in trace.steps.iter().enumerate() {
                if let Err(e) = monitor.try_apply(rule) {
                    let _ = writeln!(out, "rule {}: refused {rule}: {e}", i + 1);
                }
                let now = index.audit_clean();
                if now != clean {
                    let state = if now { "clean" } else { "VIOLATING" };
                    let _ = writeln!(out, "rule {}: audit is now {state}", i + 1);
                    clean = now;
                }
            }
            for v in index.violations() {
                let g = monitor.graph();
                let _ = writeln!(
                    out,
                    "violation: {} -> {} : {}",
                    name(g, v.src),
                    name(g, v.dst),
                    v.rights
                );
            }
            // Cross-check the maintained violation set against a sharded
            // from-scratch scan on the pool. Silent when they agree (so
            // output stays byte-identical at any --jobs); a mismatch
            // would mean the incremental index is unsound.
            let rescan = tg_par::par_audit(
                monitor.graph(),
                monitor.levels(),
                &CombinedRestriction,
                pool,
            );
            if rescan != index.violations() {
                let _ = writeln!(
                    out,
                    "parallel audit cross-check FAILED: maintained set diverges from rescan"
                );
                return Ok(1);
            }
            let mstats = monitor.stats();
            let istats = index.stats();
            let _ = writeln!(
                out,
                "{} permitted, {} denied, {} malformed",
                mstats.permitted, mstats.denied, mstats.malformed
            );
            let _ = writeln!(
                out,
                "index: {} edge checks, {} island unions, {} island rebuilds",
                istats.edge_checks, istats.island_unions, istats.island_rebuilds
            );
            Ok(if clean { 0 } else { 1 })
        }
        "trace" => {
            let (out_path, rest) = split_opt(&rest, "--out")?;
            let (format, rest) = split_opt(&rest, "--format")?;
            let format = format.unwrap_or("chrome");
            if !matches!(format, "chrome" | "jsonl") {
                return Err(CliError::Usage(format!(
                    "unknown --format {format:?} (chrome|jsonl)"
                )));
            }
            let [graph_path, policy_path, trace_path] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let g = load(graph_path)?;
            let policy_text = std::fs::read_to_string(policy_path)
                .map_err(|e| format!("cannot read {policy_path}: {e}"))?;
            let levels =
                parse_policy(&policy_text, &g).map_err(|e| format!("{policy_path}: {e}"))?;
            let trace_text = std::fs::read_to_string(trace_path)
                .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
            let trace = tg_rules::codec::decode_derivation(&trace_text)
                .map_err(|e| format!("{trace_path}: {e}"))?;
            let session = session.expect("run_full opens a session for trace");
            // The instrumented pipeline: journaled monitor, incremental
            // index observing every committed delta, one audit at the
            // end — the same shape as `watch`, with event capture on.
            let index = tg_inc::SharedIndex::new(&g, &levels, &CombinedRestriction);
            let mut monitor = tg_hierarchy::Monitor::new(g, levels, Box::new(CombinedRestriction));
            monitor.enable_journal();
            monitor.attach_observer(index.observer());
            let mut refused = 0usize;
            for rule in &trace.steps {
                if monitor.try_apply(rule).is_err() {
                    refused += 1;
                }
            }
            let violations = monitor.audit();
            let events = session.drain_events();
            let rendered = match format {
                "jsonl" => tg_obs::render(&events, &mut tg_obs::JsonlSink::new()),
                _ => tg_obs::render(&events, &mut tg_obs::ChromeSink::new()),
            };
            match out_path {
                Some(path) => {
                    std::fs::write(path, &rendered)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    let _ = writeln!(
                        out,
                        "{} events written to {path} ({} rules applied, {} refused, \
                         {} violations, {} events dropped)",
                        events.len(),
                        trace.steps.len() - refused,
                        refused,
                        violations.len(),
                        session.dropped_events()
                    );
                }
                None => out.push_str(&rendered),
            }
            Ok(0)
        }
        "stats" => {
            if !rest.is_empty() {
                return Err(usage_of(command));
            }
            let _ = writeln!(out, "spans (tgq --stats rows; stable id, name, measures):");
            for kind in tg_obs::SpanKind::ALL {
                let _ = writeln!(
                    out,
                    "  {:>2}  {:<24} {}",
                    kind.id(),
                    kind.name(),
                    kind.doc()
                );
            }
            let _ = writeln!(out);
            let _ = writeln!(out, "counters:");
            for counter in tg_obs::Counter::ALL {
                let _ = writeln!(
                    out,
                    "  {:>2}  {:<24} {}",
                    counter.id(),
                    counter.name(),
                    counter.doc()
                );
            }
            Ok(0)
        }
        "gen" => {
            let (scale, rest) = split_opt(&rest, "--scale")?;
            let (seed, rest) = split_opt(&rest, "--seed")?;
            let (campaign_raw, rest) = split_opt(&rest, "--campaign")?;
            let (out_dir, rest) = split_opt(&rest, "--out")?;
            let [family_raw] = rest.as_slice() else {
                return Err(usage_of(command));
            };
            let family = tg_gen::Family::parse(family_raw).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown family {family_raw:?} (expected military, chain, antichain, or dag)"
                ))
            })?;
            let parse = |v: Option<&str>, default: usize| -> Result<usize, CliError> {
                match v {
                    None => Ok(default),
                    Some(s) => s
                        .parse()
                        .map_err(|_| CliError::Usage(format!("not a number: {s:?}"))),
                }
            };
            let campaign = match campaign_raw {
                None | Some("none") => None,
                Some(raw) => Some(tg_gen::CampaignKind::parse(raw).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown campaign {raw:?} (expected conspiracy, trojan, or none)"
                    ))
                })?),
            };
            let config = tg_gen::GenConfig {
                campaign,
                ..tg_gen::GenConfig::new(family, parse(scale, 32)?, parse(seed, 1)? as u64)
            };
            let scenario = tg_gen::generate(&config);
            let dir = std::path::Path::new(out_dir.unwrap_or("."));
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            let stem = scenario.stem();
            let mut emit = |ext: &str, text: &str| -> Result<(), String> {
                let path = dir.join(format!("{stem}.{ext}"));
                std::fs::write(&path, text)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                let _ = writeln!(out, "wrote {}", path.display());
                Ok(())
            };
            emit("tg", &scenario.graph_text())?;
            emit("pol", &scenario.policy_text())?;
            if let Some(trace) = scenario.trace_text() {
                emit("tr", &trace)?;
            }
            let _ = writeln!(
                out,
                "{}: {} levels, {} vertices, {} edges",
                family,
                scenario.levels.len(),
                scenario.graph.vertex_count(),
                scenario.graph.edge_count()
            );
            if let Some(campaign) = &scenario.campaign {
                let _ = writeln!(
                    out,
                    "campaign {}: {} steps ({} permitted, final step refused by the monitor)",
                    campaign.kind,
                    campaign.trace.len(),
                    campaign.trace.len() - 1
                );
            }
            Ok(0)
        }
        "bench" => {
            let (json_out, rest) = split_opt(&rest, "--json")?;
            let (scale_flag, rest) = split_opt(&rest, "--scale")?;
            let (levels_n, rest) = split_opt(&rest, "--levels")?;
            let (per_level, rest) = split_opt(&rest, "--per-level")?;
            let (ops, rest) = split_opt(&rest, "--ops")?;
            let (seed, rest) = split_opt(&rest, "--seed")?;
            if !rest.is_empty() {
                return Err(usage_of(command));
            }
            let parse = |v: Option<&str>, default: usize| -> Result<usize, CliError> {
                match v {
                    None => Ok(default),
                    Some(s) => s
                        .parse()
                        .map_err(|_| CliError::Usage(format!("not a number: {s:?}"))),
                }
            };
            // Workload size: `--scale` beats `TGQ_BENCH_SCALE` beats the
            // historical default of 200 vertices (20 levels × 10); explicit
            // `--levels`/`--per-level` still override the derived shape.
            let env_scale = std::env::var("TGQ_BENCH_SCALE").ok();
            let scale = parse(scale_flag.or(env_scale.as_deref()), 200)?;
            let (scaled_levels, scaled_per_level) = bench::dims_for_scale(scale);
            let config = bench::BenchConfig {
                scale,
                levels: parse(levels_n, scaled_levels)?,
                per_level: parse(per_level, scaled_per_level)?,
                ops: parse(ops, 500)?,
                seed: parse(seed, 42)? as u64,
                jobs: pool.jobs(),
            };
            let report = bench::run(&config).map_err(CliError::Fail)?;
            let _ = write!(out, "{}", report.render());
            if let Some(path) = json_out {
                std::fs::write(path, report.to_json())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                let _ = writeln!(out, "json summary written to {path}");
            }
            Ok(0)
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
    }
}

/// Rejects `--deny` entries that name nothing: an entry must be `all`, a
/// severity (`warn`/`info`), or a code from the rule registry. A typo'd
/// code used to be silently ignored — the user believed the gate was up
/// when nothing was being denied.
fn validate_deny(deny: &[String]) -> Result<(), CliError> {
    for entry in deny {
        let known = entry == "all"
            || Severity::parse(entry).is_some()
            || tg_lint::RULES
                .iter()
                .any(|r| r.code.eq_ignore_ascii_case(entry));
        if !known {
            let codes: Vec<&str> = tg_lint::RULES.iter().map(|r| r.code).collect();
            return Err(CliError::Usage(format!(
                "unknown --deny entry {entry:?} (expected all, warn, info, or one of {})",
                codes.join(", ")
            )));
        }
    }
    Ok(())
}

/// Extracts every `flag <value>` pair from `args`, splitting values on
/// commas: `--deny TG006 --deny warn,info` yields three entries.
fn split_multi<'a>(args: &[&'a str], flag: &str) -> Result<(Vec<String>, Vec<&'a str>), CliError> {
    let mut values = Vec::new();
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(&arg) = iter.next() {
        if arg == flag {
            match iter.next() {
                Some(&v) => values.extend(v.split(',').map(str::to_string)),
                None => return Err(CliError::Usage(format!("{flag} requires a value"))),
            }
        } else {
            rest.push(arg);
        }
    }
    Ok((values, rest))
}

/// Extracts `flag <value>` from `args`, erroring if the value is missing.
fn split_opt<'a>(
    args: &[&'a str],
    flag: &str,
) -> Result<(Option<&'a str>, Vec<&'a str>), CliError> {
    let mut value = None;
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(&arg) = iter.next() {
        if arg == flag {
            match iter.next() {
                Some(&v) => value = Some(v),
                None => return Err(CliError::Usage(format!("{flag} requires a value"))),
            }
        } else {
            rest.push(arg);
        }
    }
    Ok((value, rest))
}

fn split_flag<'a>(args: &[&'a str], flag: &str) -> (bool, Vec<&'a str>) {
    let mut found = false;
    let rest = args
        .iter()
        .filter(|&&a| {
            if a == flag {
                found = true;
                false
            } else {
                true
            }
        })
        .copied()
        .collect();
    (found, rest)
}
