//! The `tgq serve` and `tgq client` subcommands: boot the resident
//! policy-decision daemon over TCP or a Unix socket, and drive it with
//! a TGP1 script. The protocol itself lives in `tg-serve` and is
//! specified in `docs/PROTOCOL.md`; this module is only argument
//! parsing, lifecycle, and exit codes.

use std::fmt::Write as _;
use std::io::Write as _;

use tg_hierarchy::policy::parse_policy;
use tg_hierarchy::CombinedRestriction;
use tg_serve::{parse_script, run_script, Bind, Client, ServeConfig, Server};

use crate::{load, usage_of, CliError};

/// Parses the `--listen <addr>` / `--unix <path>` pair shared by both
/// subcommands into a [`Bind`]: exactly one must be present.
fn parse_bind(command: &str, listen: Option<&str>, unix: Option<&str>) -> Result<Bind, CliError> {
    match (listen, unix) {
        (Some(addr), None) => Ok(Bind::Tcp(addr.to_string())),
        (None, Some(path)) => Ok(Bind::Unix(std::path::PathBuf::from(path))),
        _ => Err(usage_of(command)),
    }
}

/// `tgq serve <graph> <policy> --listen <addr>|--unix <path>`.
///
/// Boots the daemon, prints one readiness line **directly to stdout**
/// (the caller buffers `out` until exit, and a parent process waiting
/// to connect needs the line now), then blocks until a protocol
/// `Shutdown` frame stops the gateway. The post-mortem summary goes to
/// `out` like any other command's output.
pub(crate) fn cmd_serve(
    rest: &[&str],
    out: &mut String,
    pool: &tg_par::Pool,
) -> Result<u8, CliError> {
    let (listen, rest) = crate::split_opt(rest, "--listen")?;
    let (unix, rest) = crate::split_opt(&rest, "--unix")?;
    let (batch_window_raw, rest) = crate::split_opt(&rest, "--batch-window")?;
    let (log_dir, rest) = crate::split_opt(&rest, "--log")?;
    let (snap_interval, rest) = crate::split_opt(&rest, "--snap-interval")?;
    let (dump_state, rest) = crate::split_opt(&rest, "--dump-state")?;
    let [graph_path, policy_path] = rest.as_slice() else {
        return Err(usage_of("serve"));
    };
    let bind = parse_bind("serve", listen, unix)?;
    let batch_window: usize = match batch_window_raw {
        None => 16,
        Some(raw) => {
            let n = raw.parse().map_err(|_| {
                CliError::Usage(format!("--batch-window expects a number, got {raw:?}"))
            })?;
            if n == 0 {
                return Err(CliError::Usage(
                    "--batch-window must be at least 1".to_string(),
                ));
            }
            n
        }
    };
    if snap_interval.is_some() && log_dir.is_none() {
        return Err(CliError::Usage(
            "--snap-interval only makes sense with --log <dir>".to_string(),
        ));
    }
    let interval: u64 = match snap_interval {
        None => 64,
        Some(raw) => raw.parse().map_err(|_| {
            CliError::Usage(format!("--snap-interval expects a number, got {raw:?}"))
        })?,
    };

    let g = load(graph_path)?;
    let policy_text = std::fs::read_to_string(policy_path)
        .map_err(|e| format!("cannot read {policy_path}: {e}"))?;
    let levels = parse_policy(&policy_text, &g).map_err(|e| format!("{policy_path}: {e}"))?;

    // With --log every admission is committed through the hash-chained
    // log in <dir>, exactly like `tgq monitor --log`: a fresh directory
    // starts a chain from these seed files, an existing one is
    // recovered and continued (its genesis must match, so a log from
    // another system is rejected).
    let (log, monitor) = match log_dir {
        None => (
            None,
            tg_hierarchy::Monitor::new(g, levels, Box::new(CombinedRestriction)),
        ),
        Some(dir) => {
            let config = tg_log::LogConfig {
                snapshot_interval: interval,
                write_through: false,
            };
            let store = tg_log::DirStore::open(dir).map_err(|e| e.to_string())?;
            let fresh = !store.dir().join(tg_log::CHAIN_FILE).exists();
            if fresh {
                let (log, monitor) = tg_log::CommitLog::create(
                    Box::new(store),
                    g,
                    levels,
                    Box::new(CombinedRestriction),
                    config,
                )
                .map_err(|e| format!("{dir}: {e}"))?;
                let _ = writeln!(out, "commit log created in {dir}");
                (Some(log), monitor)
            } else {
                let genesis = tg_log::seed_digest(&g, &levels);
                let (log, monitor, report) = tg_log::CommitLog::open(
                    Box::new(store),
                    Box::new(CombinedRestriction),
                    config,
                    Some(genesis),
                )
                .map_err(|e| format!("{dir}: {e}"))?;
                let _ = writeln!(
                    out,
                    "commit log resumed at epoch {} (snapshot {} + {} replayed)",
                    report.end_epoch, report.snapshot_epoch, report.replayed
                );
                (Some(log), monitor)
            }
        }
    };

    let server = Server::start(bind, monitor, log, ServeConfig { batch_window }, *pool)
        .map_err(CliError::Fail)?;
    println!("listening on {} (TGP1)", server.local_addr());
    let _ = std::io::stdout().flush();

    let (report, monitor, log) = server.join().map_err(CliError::Fail)?;
    let _ = writeln!(
        out,
        "served {} frames over {} sessions ({} protocol errors)",
        report.frames, report.sessions, report.protocol_errors
    );
    let _ = writeln!(
        out,
        "{} admission batches, {} refusals",
        report.batches, report.refusals
    );
    let stats = monitor.stats();
    let _ = writeln!(
        out,
        "{} permitted, {} denied, {} malformed, {} refused",
        stats.permitted, stats.denied, stats.malformed, stats.refused
    );
    if let Some(log) = &log {
        let _ = writeln!(
            out,
            "commit log at epoch {} ({} snapshot(s), head {})",
            log.end_epoch(),
            log.snapshot_epochs().len(),
            tg_log::hex16(log.head_hash())
        );
    }
    if let Some(path) = dump_state {
        let rendered = tg_graph::render_graph(monitor.graph());
        std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "final state dumped to {path}");
    }
    Ok(0)
}

/// `tgq client --connect <addr>|--unix <path> [--script <file>]`.
///
/// Connects, performs the TGP1 preamble, runs the script (from the
/// file, or stdin when no `--script`), and prints one line per
/// response. Exit `0` when every request was answered `ok` or
/// `refused` (a refusal is a verdict, not a failure), `1` when any
/// answer was an `error` frame or the transport failed.
pub(crate) fn cmd_client(rest: &[&str], out: &mut String) -> Result<u8, CliError> {
    let (connect, rest) = crate::split_opt(rest, "--connect")?;
    let (unix, rest) = crate::split_opt(&rest, "--unix")?;
    let (script_path, rest) = crate::split_opt(&rest, "--script")?;
    if !rest.is_empty() {
        return Err(usage_of("client"));
    }
    let bind = parse_bind("client", connect, unix)?;
    let text = match script_path {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        None => {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
    };
    let lines = parse_script(&text).map_err(CliError::Fail)?;
    let mut client = match &bind {
        Bind::Tcp(addr) => Client::connect_tcp(addr).map_err(CliError::Fail)?,
        Bind::Unix(path) => {
            #[cfg(unix)]
            {
                Client::connect_unix(path).map_err(CliError::Fail)?
            }
            #[cfg(not(unix))]
            {
                return Err(CliError::Fail(format!(
                    "cannot connect {}: unix sockets are unsupported on this platform",
                    path.display()
                )));
            }
        }
    };
    let outcome = run_script(&mut client, &lines, out).map_err(CliError::Fail)?;
    let _ = writeln!(
        out,
        "{} ok, {} refused, {} errors",
        outcome.ok, outcome.refused, outcome.errors
    );
    Ok(u8::from(outcome.errors > 0))
}
