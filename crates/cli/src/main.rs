//! Thin binary wrapper over the `tg-cli` library (see `lib.rs` for the
//! command reference).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let result = tg_cli::run(&args, &mut out);
    print!("{out}");
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tgq: {msg}");
            ExitCode::FAILURE
        }
    }
}
