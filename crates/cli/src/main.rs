//! Thin binary wrapper over the `tg-cli` library (see `lib.rs` for the
//! command reference).
//!
//! Exit status: `0` success, `1` input/analysis failure (or lint
//! warnings), `2` usage error (or lint errors).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let result = tg_cli::run_full(&args, &mut out);
    print!("{out}");
    match result {
        Ok(code) => ExitCode::from(code),
        Err(tg_cli::CliError::Usage(msg)) => {
            eprintln!("tgq: {msg}");
            ExitCode::from(2)
        }
        Err(tg_cli::CliError::Fail(msg)) => {
            eprintln!("tgq: {msg}");
            ExitCode::from(1)
        }
    }
}
