//! Graphviz DOT export.
//!
//! Subjects render as filled circles (the paper's ●), objects as open
//! circles (○), explicit edges as solid arrows and implicit edges as dashed
//! arrows — matching the paper's drawing conventions.

use std::fmt::Write as _;

use crate::ProtectionGraph;

/// Options controlling [`DotOptions::render`].
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Graph name emitted in the `digraph` header.
    pub name: String,
    /// Whether implicit edges are drawn (dashed) or omitted.
    pub show_implicit: bool,
}

impl Default for DotOptions {
    fn default() -> DotOptions {
        DotOptions {
            name: "protection_graph".to_string(),
            show_implicit: true,
        }
    }
}

impl DotOptions {
    /// Renders `graph` to DOT source.
    ///
    /// # Examples
    ///
    /// ```
    /// use tg_graph::{DotOptions, ProtectionGraph, Rights};
    ///
    /// let mut g = ProtectionGraph::new();
    /// let s = g.add_subject("s");
    /// let o = g.add_object("o");
    /// g.add_edge(s, o, Rights::R).unwrap();
    /// let dot = DotOptions::default().render(&g);
    /// assert!(dot.contains("digraph"));
    /// assert!(dot.contains("label=\"r\""));
    /// ```
    pub fn render(&self, graph: &ProtectionGraph) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {} {{", sanitize(&self.name));
        let _ = writeln!(out, "  rankdir=LR;");
        for (id, vertex) in graph.vertices() {
            let style = if vertex.kind.is_subject() {
                "shape=circle, style=filled, fillcolor=black, fontcolor=white"
            } else {
                "shape=circle"
            };
            let _ = writeln!(
                out,
                "  {} [label=\"{}\", {}];",
                id,
                escape(&vertex.name),
                style
            );
        }
        for edge in graph.edges() {
            if !edge.rights.explicit.is_empty() {
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"{}\"];",
                    edge.src, edge.dst, edge.rights.explicit
                );
            }
            if self.show_implicit && !edge.rights.implicit.is_empty() {
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"{}\", style=dashed];",
                    edge.src, edge.dst, edge.rights.implicit
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "g".to_string()
    } else {
        cleaned
    }
}

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rights;

    #[test]
    fn renders_vertices_and_both_edge_kinds() {
        let mut g = ProtectionGraph::new();
        let s = g.add_subject("alice");
        let o = g.add_object("doc");
        g.add_edge(s, o, Rights::RW).unwrap();
        g.add_implicit_edge(o, s, Rights::R).unwrap();
        let dot = DotOptions::default().render(&g);
        assert!(dot.contains("v0 [label=\"alice\""));
        assert!(dot.contains("fillcolor=black"));
        assert!(dot.contains("v0 -> v1 [label=\"rw\"]"));
        assert!(dot.contains("v1 -> v0 [label=\"r\", style=dashed]"));
    }

    #[test]
    fn implicit_edges_can_be_suppressed() {
        let mut g = ProtectionGraph::new();
        let s = g.add_subject("s");
        let o = g.add_object("o");
        g.add_implicit_edge(s, o, Rights::R).unwrap();
        let opts = DotOptions {
            show_implicit: false,
            ..DotOptions::default()
        };
        assert!(!opts.render(&g).contains("dashed"));
    }

    #[test]
    fn labels_are_escaped_and_names_sanitized() {
        let mut g = ProtectionGraph::new();
        g.add_subject("a\"b");
        let opts = DotOptions {
            name: "my graph!".to_string(),
            ..DotOptions::default()
        };
        let dot = opts.render(&g);
        assert!(dot.contains("digraph my_graph_"));
        assert!(dot.contains("a\\\"b"));
    }
}
