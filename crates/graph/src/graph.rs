//! The protection graph itself.

use std::collections::{BTreeMap, BTreeSet};

use crate::{GraphError, Right, Rights, Vertex, VertexId, VertexKind};

/// The explicit and implicit rights carried by one ordered vertex pair.
///
/// A protection graph stores at most one edge *record* per ordered pair; the
/// record keeps the explicit label (recorded authority, manipulated by de
/// jure rules) separate from the implicit label (potential information flow,
/// exhibited by de facto rules).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct EdgeRights {
    /// Rights recorded as authority by the protection system.
    pub explicit: Rights,
    /// Rights exhibited only as potential information flow.
    pub implicit: Rights,
}

impl EdgeRights {
    /// The explicit label.
    pub fn explicit(self) -> Rights {
        self.explicit
    }

    /// The implicit label.
    pub fn implicit(self) -> Rights {
        self.implicit
    }

    /// Union of the explicit and implicit labels.
    pub fn combined(self) -> Rights {
        self.explicit | self.implicit
    }

    /// Whether both labels are empty (i.e. no edge exists).
    pub fn is_empty(self) -> bool {
        self.explicit.is_empty() && self.implicit.is_empty()
    }
}

/// One edge of the graph together with its endpoints, as yielded by
/// [`ProtectionGraph::edges`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeRecord {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Labels of the edge.
    pub rights: EdgeRights,
}

/// A finite directed protection graph (paper §1).
///
/// Vertices are subjects or objects; edges are labelled with nonempty
/// subsets of the rights set *R* and are either explicit (authority) or
/// implicit (information flow). Vertices are never removed; edges disappear
/// when their last right is removed.
///
/// Mutating methods validate their arguments and return [`GraphError`];
/// read-only accessors taking a [`VertexId`] panic on ids that do not belong
/// to this graph, exactly like indexing a `Vec` (passing a foreign id is a
/// programming error, not a recoverable condition). Use
/// [`ProtectionGraph::contains_vertex`] when validity is in question.
///
/// # Examples
///
/// ```
/// use tg_graph::{ProtectionGraph, Rights};
///
/// let mut g = ProtectionGraph::new();
/// let s = g.add_subject("s");
/// let o = g.add_object("o");
/// g.add_edge(s, o, Rights::RW).unwrap();
/// assert_eq!(g.vertex_count(), 2);
/// assert_eq!(g.rights(s, o).explicit(), Rights::RW);
/// ```
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct ProtectionGraph {
    vertices: Vec<Vertex>,
    /// Outgoing adjacency: `out[v]` maps successor index to labels.
    out: Vec<BTreeMap<u32, EdgeRights>>,
    /// Reverse index: `inc[v]` is the set of predecessors with a live edge.
    inc: Vec<BTreeSet<u32>>,
}

impl ProtectionGraph {
    /// Creates an empty graph.
    pub fn new() -> ProtectionGraph {
        ProtectionGraph::default()
    }

    /// Creates an empty graph with space reserved for `vertices` vertices.
    pub fn with_capacity(vertices: usize) -> ProtectionGraph {
        ProtectionGraph {
            vertices: Vec::with_capacity(vertices),
            out: Vec::with_capacity(vertices),
            inc: Vec::with_capacity(vertices),
        }
    }

    fn check(&self, id: VertexId) -> Result<(), GraphError> {
        if id.index() < self.vertices.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownVertex(id))
        }
    }

    fn check_pair(&self, src: VertexId, dst: VertexId) -> Result<(), GraphError> {
        self.check(src)?;
        self.check(dst)?;
        if src == dst {
            return Err(GraphError::SelfEdge(src));
        }
        Ok(())
    }

    /// Adds a vertex of the given kind and returns its id.
    pub fn add_vertex(&mut self, kind: VertexKind, name: impl Into<String>) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(Vertex::new(kind, name));
        self.out.push(BTreeMap::new());
        self.inc.push(BTreeSet::new());
        id
    }

    /// Adds a subject vertex.
    pub fn add_subject(&mut self, name: impl Into<String>) -> VertexId {
        self.add_vertex(VertexKind::Subject, name)
    }

    /// Adds an object vertex.
    pub fn add_object(&mut self, name: impl Into<String>) -> VertexId {
        self.add_vertex(VertexKind::Object, name)
    }

    /// Whether `id` refers to a vertex of this graph.
    pub fn contains_vertex(&self, id: VertexId) -> bool {
        id.index() < self.vertices.len()
    }

    /// The vertex record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.vertices[id.index()]
    }

    /// The kind of vertex `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn kind(&self, id: VertexId) -> VertexKind {
        self.vertices[id.index()].kind
    }

    /// Whether `id` is a subject.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn is_subject(&self, id: VertexId) -> bool {
        self.kind(id).is_subject()
    }

    /// Whether `id` is an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn is_object(&self, id: VertexId) -> bool {
        self.kind(id).is_object()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of ordered vertex pairs carrying at least one right
    /// (explicit or implicit).
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(BTreeMap::len).sum()
    }

    /// Number of ordered vertex pairs carrying at least one explicit right.
    pub fn explicit_edge_count(&self) -> usize {
        self.out
            .iter()
            .map(|m| m.values().filter(|e| !e.explicit.is_empty()).count())
            .sum()
    }

    /// Iterates over all vertex ids in creation order.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Iterates over `(id, vertex)` pairs in creation order.
    pub fn vertices(&self) -> impl Iterator<Item = (VertexId, &Vertex)> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (VertexId(i as u32), v))
    }

    /// Iterates over the ids of all subject vertices.
    pub fn subjects(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices()
            .filter(|(_, v)| v.kind.is_subject())
            .map(|(id, _)| id)
    }

    /// Iterates over the ids of all object vertices.
    pub fn objects(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices()
            .filter(|(_, v)| v.kind.is_object())
            .map(|(id, _)| id)
    }

    /// Finds the first vertex with the given name.
    pub fn find_by_name(&self, name: &str) -> Option<VertexId> {
        self.vertices()
            .find(|(_, v)| v.name == name)
            .map(|(id, _)| id)
    }

    /// The labels of the ordered pair `(src, dst)`; both labels are empty if
    /// no edge exists.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this graph.
    pub fn rights(&self, src: VertexId, dst: VertexId) -> EdgeRights {
        assert!(self.contains_vertex(dst), "unknown vertex {dst}");
        self.out[src.index()]
            .get(&(dst.0))
            .copied()
            .unwrap_or_default()
    }

    /// Whether `(src, dst)` carries `right` explicitly.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this graph.
    pub fn has_explicit(&self, src: VertexId, dst: VertexId, right: Right) -> bool {
        self.rights(src, dst).explicit.contains(right)
    }

    /// Whether `(src, dst)` carries `right` explicitly or implicitly.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this graph.
    pub fn has_any(&self, src: VertexId, dst: VertexId, right: Right) -> bool {
        self.rights(src, dst).combined().contains(right)
    }

    /// Adds the nonempty set `rights` to the explicit label of `(src, dst)`,
    /// creating the edge if needed. Returns whether the label changed.
    pub fn add_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<bool, GraphError> {
        self.add_rights(src, dst, rights, false)
    }

    /// Adds the nonempty set `rights` to the implicit label of `(src, dst)`.
    /// Returns whether the label changed.
    pub fn add_implicit_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<bool, GraphError> {
        self.add_rights(src, dst, rights, true)
    }

    fn add_rights(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
        implicit: bool,
    ) -> Result<bool, GraphError> {
        self.check_pair(src, dst)?;
        if rights.is_empty() {
            return Err(GraphError::EmptyRights);
        }
        let cell = self.out[src.index()].entry(dst.0).or_default();
        let before = *cell;
        if implicit {
            cell.implicit |= rights;
        } else {
            cell.explicit |= rights;
        }
        let changed = *cell != before;
        if before.is_empty() {
            self.inc[dst.index()].insert(src.0);
        }
        Ok(changed)
    }

    /// Removes `rights` from the explicit label of `(src, dst)`; if the
    /// label becomes empty and no implicit rights remain, the edge itself is
    /// deleted (paper §2, *remove*). Returns the rights actually removed.
    pub fn remove_explicit_rights(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<Rights, GraphError> {
        self.check_pair(src, dst)?;
        let Some(cell) = self.out[src.index()].get_mut(&dst.0) else {
            return Ok(Rights::EMPTY);
        };
        let removed = cell.explicit & rights;
        cell.explicit = cell.explicit - rights;
        if cell.is_empty() {
            self.out[src.index()].remove(&dst.0);
            self.inc[dst.index()].remove(&src.0);
        }
        Ok(removed)
    }

    /// Removes `rights` from the implicit label of `(src, dst)`; if the
    /// label becomes empty and no explicit rights remain, the edge itself
    /// is deleted. Returns the rights actually removed. The transactional
    /// rollback in the reference monitor uses this to undo de facto
    /// effects.
    pub fn remove_implicit_rights(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<Rights, GraphError> {
        self.check_pair(src, dst)?;
        let Some(cell) = self.out[src.index()].get_mut(&dst.0) else {
            return Ok(Rights::EMPTY);
        };
        let removed = cell.implicit & rights;
        cell.implicit = cell.implicit - rights;
        if cell.is_empty() {
            self.out[src.index()].remove(&dst.0);
            self.inc[dst.index()].remove(&src.0);
        }
        Ok(removed)
    }

    /// Retracts the most recently added vertex, deleting it together with
    /// every incident edge. Only the newest vertex can be removed — ids
    /// are dense creation-order indices, so removing any other vertex
    /// would renumber the rest (the model's graphs otherwise never shrink;
    /// this exists solely so a rolled-back `create` leaves no trace).
    pub fn pop_vertex(&mut self, id: VertexId) -> Result<(), GraphError> {
        self.check(id)?;
        if id.index() + 1 != self.vertices.len() {
            return Err(GraphError::NotLastVertex(id));
        }
        let idx = id.index();
        // Drop edges pointing at the vertex from its predecessors...
        for src in std::mem::take(&mut self.inc[idx]) {
            self.out[src as usize].remove(&id.0);
        }
        // ...and its own out-edges from the predecessor sets of their
        // targets.
        for &dst in self.out[idx].keys() {
            self.inc[dst as usize].remove(&id.0);
        }
        self.out.pop();
        self.inc.pop();
        self.vertices.pop();
        Ok(())
    }

    /// Deletes every implicit right in the graph. Implicit edges are derived
    /// state; analyses frequently recompute them from scratch.
    pub fn clear_implicit(&mut self) {
        let inc = &mut self.inc;
        for (v, map) in self.out.iter_mut().enumerate() {
            map.retain(|dst, cell| {
                cell.implicit = Rights::EMPTY;
                let keep = !cell.explicit.is_empty();
                if !keep {
                    inc[*dst as usize].remove(&(v as u32));
                }
                keep
            });
        }
    }

    /// Iterates over every edge record (pairs with a nonempty label), in
    /// `(src, dst)` order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRecord> + '_ {
        self.out.iter().enumerate().flat_map(|(src, map)| {
            map.iter().map(move |(dst, rights)| EdgeRecord {
                src: VertexId(src as u32),
                dst: VertexId(*dst),
                rights: *rights,
            })
        })
    }

    /// Iterates over the out-edges of `v` as `(successor, labels)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this graph.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeRights)> + '_ {
        self.out[v.index()]
            .iter()
            .map(|(dst, rights)| (VertexId(*dst), *rights))
    }

    /// Iterates over the in-edges of `v` as `(predecessor, labels)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this graph.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeRights)> + '_ {
        self.inc[v.index()].iter().map(move |src| {
            let rights = self.out[*src as usize]
                .get(&(v.0))
                .copied()
                .unwrap_or_default();
            (VertexId(*src), rights)
        })
    }

    /// Drops implicit rights everywhere, keeping only recorded authority.
    /// Returns the number of implicit rights dropped.
    pub fn strip_implicit(&mut self) -> usize {
        let before: usize = self
            .out
            .iter()
            .map(|m| m.values().map(|e| e.implicit.len()).sum::<usize>())
            .sum();
        self.clear_implicit();
        before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (ProtectionGraph, VertexId, VertexId, VertexId) {
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        let o = g.add_object("o");
        (g, a, b, o)
    }

    #[test]
    fn vertices_are_numbered_in_creation_order() {
        let (g, a, b, o) = small();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(o.index(), 2);
        assert!(g.is_subject(a));
        assert!(g.is_object(o));
        assert_eq!(g.subjects().count(), 2);
        assert_eq!(g.objects().count(), 1);
    }

    #[test]
    fn add_edge_merges_rights_per_pair() {
        let (mut g, a, b, _) = small();
        assert!(g.add_edge(a, b, Rights::R).unwrap());
        assert!(g.add_edge(a, b, Rights::W).unwrap());
        assert!(!g.add_edge(a, b, Rights::R).unwrap());
        assert_eq!(g.rights(a, b).explicit(), Rights::RW);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn explicit_and_implicit_labels_are_independent() {
        let (mut g, a, b, _) = small();
        g.add_edge(a, b, Rights::T).unwrap();
        g.add_implicit_edge(a, b, Rights::R).unwrap();
        let rights = g.rights(a, b);
        assert_eq!(rights.explicit(), Rights::T);
        assert_eq!(rights.implicit(), Rights::R);
        assert_eq!(rights.combined(), Rights::T | Rights::R);
    }

    #[test]
    fn self_edges_are_rejected() {
        let (mut g, a, _, _) = small();
        assert_eq!(g.add_edge(a, a, Rights::R), Err(GraphError::SelfEdge(a)));
    }

    #[test]
    fn empty_rights_are_rejected() {
        let (mut g, a, b, _) = small();
        assert_eq!(
            g.add_edge(a, b, Rights::EMPTY),
            Err(GraphError::EmptyRights)
        );
    }

    #[test]
    fn unknown_vertices_are_rejected() {
        let (mut g, a, _, _) = small();
        let bogus = VertexId::from_index(99);
        assert_eq!(
            g.add_edge(a, bogus, Rights::R),
            Err(GraphError::UnknownVertex(bogus))
        );
        assert!(!g.contains_vertex(bogus));
    }

    #[test]
    fn remove_deletes_edge_when_label_empties() {
        let (mut g, a, b, _) = small();
        g.add_edge(a, b, Rights::RW).unwrap();
        let removed = g.remove_explicit_rights(a, b, Rights::R).unwrap();
        assert_eq!(removed, Rights::R);
        assert_eq!(g.edge_count(), 1);
        g.remove_explicit_rights(a, b, Rights::W).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.in_edges(b).count(), 0);
    }

    #[test]
    fn remove_keeps_edge_alive_while_implicit_remains() {
        let (mut g, a, b, _) = small();
        g.add_edge(a, b, Rights::R).unwrap();
        g.add_implicit_edge(a, b, Rights::R).unwrap();
        g.remove_explicit_rights(a, b, Rights::R).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.rights(a, b).implicit(), Rights::R);
    }

    #[test]
    fn remove_of_absent_edge_is_a_noop() {
        let (mut g, a, b, _) = small();
        assert_eq!(
            g.remove_explicit_rights(a, b, Rights::R).unwrap(),
            Rights::EMPTY
        );
    }

    #[test]
    fn clear_implicit_drops_derived_state_only() {
        let (mut g, a, b, o) = small();
        g.add_edge(a, o, Rights::R).unwrap();
        g.add_implicit_edge(a, b, Rights::R).unwrap();
        g.add_implicit_edge(b, o, Rights::R).unwrap();
        g.clear_implicit();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.rights(a, o).explicit(), Rights::R);
        assert_eq!(g.in_edges(b).count(), 0);
    }

    #[test]
    fn in_edges_mirror_out_edges() {
        let (mut g, a, b, o) = small();
        g.add_edge(a, o, Rights::R).unwrap();
        g.add_edge(b, o, Rights::W).unwrap();
        let preds: Vec<VertexId> = g.in_edges(o).map(|(v, _)| v).collect();
        assert_eq!(preds, vec![a, b]);
        let (_, rights) = g.in_edges(o).next().unwrap();
        assert_eq!(rights.explicit(), Rights::R);
    }

    #[test]
    fn edges_iterates_in_deterministic_order() {
        let (mut g, a, b, o) = small();
        g.add_edge(b, o, Rights::W).unwrap();
        g.add_edge(a, b, Rights::T).unwrap();
        g.add_edge(a, o, Rights::R).unwrap();
        let pairs: Vec<(usize, usize)> =
            g.edges().map(|e| (e.src.index(), e.dst.index())).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn find_by_name_returns_first_match() {
        let (g, a, _, _) = small();
        assert_eq!(g.find_by_name("a"), Some(a));
        assert_eq!(g.find_by_name("zzz"), None);
    }
}
