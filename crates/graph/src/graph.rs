//! The protection graph itself.

use std::collections::HashMap;

use crate::csr::{CsrCore, MergedPreds, MergedRow, Overlay};
use crate::{GraphError, Right, Rights, Vertex, VertexId, VertexKind};

/// The explicit and implicit rights carried by one ordered vertex pair.
///
/// A protection graph stores at most one edge *record* per ordered pair; the
/// record keeps the explicit label (recorded authority, manipulated by de
/// jure rules) separate from the implicit label (potential information flow,
/// exhibited by de facto rules).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct EdgeRights {
    /// Rights recorded as authority by the protection system.
    pub explicit: Rights,
    /// Rights exhibited only as potential information flow.
    pub implicit: Rights,
}

impl EdgeRights {
    /// The explicit label.
    pub fn explicit(self) -> Rights {
        self.explicit
    }

    /// The implicit label.
    pub fn implicit(self) -> Rights {
        self.implicit
    }

    /// Union of the explicit and implicit labels.
    pub fn combined(self) -> Rights {
        self.explicit | self.implicit
    }

    /// Whether both labels are empty (i.e. no edge exists).
    pub fn is_empty(self) -> bool {
        self.explicit.is_empty() && self.implicit.is_empty()
    }
}

/// One edge of the graph together with its endpoints, as yielded by
/// [`ProtectionGraph::edges`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeRecord {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Labels of the edge.
    pub rights: EdgeRights,
}

/// A finite directed protection graph (paper §1).
///
/// Vertices are subjects or objects; edges are labelled with nonempty
/// subsets of the rights set *R* and are either explicit (authority) or
/// implicit (information flow). Vertices are never removed; edges disappear
/// when their last right is removed.
///
/// # Memory layout
///
/// Vertex ids are interned: dense `u32` creation-order indices behind
/// [`VertexId`], with a name → first-id intern table making
/// [`ProtectionGraph::find_by_name`] O(1). Adjacency lives in a packed
/// CSR core (struct-of-arrays `offsets`/`targets`/`rights`, forward and
/// reverse) plus a small sorted mutation overlay; when the overlay grows
/// past the re-pack threshold it is folded back into the CSR arrays.
/// Logical content — every label, every iteration order — is invariant
/// under re-packing; see `DESIGN.md` §16 for the lifecycle.
///
/// Mutating methods validate their arguments and return [`GraphError`];
/// read-only accessors taking a [`VertexId`] panic on ids that do not belong
/// to this graph, exactly like indexing a `Vec` (passing a foreign id is a
/// programming error, not a recoverable condition). Use
/// [`ProtectionGraph::contains_vertex`] when validity is in question.
///
/// # Examples
///
/// ```
/// use tg_graph::{ProtectionGraph, Rights};
///
/// let mut g = ProtectionGraph::new();
/// let s = g.add_subject("s");
/// let o = g.add_object("o");
/// g.add_edge(s, o, Rights::RW).unwrap();
/// assert_eq!(g.vertex_count(), 2);
/// assert_eq!(g.rights(s, o).explicit(), Rights::RW);
/// ```
#[derive(Clone, Default, Debug)]
pub struct ProtectionGraph {
    vertices: Vec<Vertex>,
    /// Intern table: name → id of the *first* vertex bearing it.
    names: HashMap<String, u32>,
    /// The packed adjacency (CSR parallel arrays, forward and reverse).
    csr: CsrCore,
    /// Absolute per-pair edits shadowing the packed core.
    overlay: Overlay,
    /// Maintained count of pairs with a nonempty label.
    live_edges: usize,
    /// Maintained count of pairs with a nonempty explicit label.
    explicit_edges: usize,
    /// Overlay size that triggers a re-pack; 0 = automatic
    /// (`max(64, packed_edges / 8)`).
    pack_threshold: usize,
    /// Number of re-packs performed (observability for tests/benches).
    packs: u64,
}

impl PartialEq for ProtectionGraph {
    /// Logical equality: same vertices and the same edge records,
    /// regardless of how the content is split between the packed core
    /// and the overlay.
    fn eq(&self, other: &ProtectionGraph) -> bool {
        self.vertices == other.vertices
            && self.live_edges == other.live_edges
            && self.edges().eq(other.edges())
    }
}

impl Eq for ProtectionGraph {}

impl ProtectionGraph {
    /// Creates an empty graph.
    pub fn new() -> ProtectionGraph {
        ProtectionGraph::default()
    }

    /// Creates an empty graph with space reserved for `vertices` vertices.
    pub fn with_capacity(vertices: usize) -> ProtectionGraph {
        ProtectionGraph {
            vertices: Vec::with_capacity(vertices),
            names: HashMap::with_capacity(vertices),
            ..ProtectionGraph::default()
        }
    }

    fn check(&self, id: VertexId) -> Result<(), GraphError> {
        if id.index() < self.vertices.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownVertex(id))
        }
    }

    fn check_pair(&self, src: VertexId, dst: VertexId) -> Result<(), GraphError> {
        self.check(src)?;
        self.check(dst)?;
        if src == dst {
            return Err(GraphError::SelfEdge(src));
        }
        Ok(())
    }

    /// Adds a vertex of the given kind and returns its id.
    pub fn add_vertex(&mut self, kind: VertexKind, name: impl Into<String>) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        let vertex = Vertex::new(kind, name);
        self.names.entry(vertex.name.clone()).or_insert(id.0);
        self.vertices.push(vertex);
        id
    }

    /// Adds a subject vertex.
    pub fn add_subject(&mut self, name: impl Into<String>) -> VertexId {
        self.add_vertex(VertexKind::Subject, name)
    }

    /// Adds an object vertex.
    pub fn add_object(&mut self, name: impl Into<String>) -> VertexId {
        self.add_vertex(VertexKind::Object, name)
    }

    /// Whether `id` refers to a vertex of this graph.
    pub fn contains_vertex(&self, id: VertexId) -> bool {
        id.index() < self.vertices.len()
    }

    /// The vertex record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.vertices[id.index()]
    }

    /// The kind of vertex `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn kind(&self, id: VertexId) -> VertexKind {
        self.vertices[id.index()].kind
    }

    /// Whether `id` is a subject.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn is_subject(&self, id: VertexId) -> bool {
        self.kind(id).is_subject()
    }

    /// Whether `id` is an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn is_object(&self, id: VertexId) -> bool {
        self.kind(id).is_object()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of ordered vertex pairs carrying at least one right
    /// (explicit or implicit). O(1): the count is maintained across
    /// mutations.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Number of ordered vertex pairs carrying at least one explicit
    /// right. O(1): the count is maintained across mutations.
    pub fn explicit_edge_count(&self) -> usize {
        self.explicit_edges
    }

    /// Iterates over all vertex ids in creation order.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Iterates over `(id, vertex)` pairs in creation order.
    pub fn vertices(&self) -> impl Iterator<Item = (VertexId, &Vertex)> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (VertexId(i as u32), v))
    }

    /// Iterates over the ids of all subject vertices.
    pub fn subjects(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices()
            .filter(|(_, v)| v.kind.is_subject())
            .map(|(id, _)| id)
    }

    /// Iterates over the ids of all object vertices.
    pub fn objects(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices()
            .filter(|(_, v)| v.kind.is_object())
            .map(|(id, _)| id)
    }

    /// Finds the first vertex with the given name. O(1) through the
    /// intern table.
    pub fn find_by_name(&self, name: &str) -> Option<VertexId> {
        self.names.get(name).map(|&i| VertexId(i))
    }

    /// The effective labels of `(src, dst)`: the overlay's absolute
    /// state when an edit exists, the packed entry otherwise.
    fn effective(&self, src: u32, dst: u32) -> EdgeRights {
        match self.overlay.get(src, dst) {
            Some(state) => state.unwrap_or_default(),
            None => self.csr.get(src, dst).unwrap_or_default(),
        }
    }

    /// The labels of the ordered pair `(src, dst)`; both labels are empty if
    /// no edge exists.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this graph.
    pub fn rights(&self, src: VertexId, dst: VertexId) -> EdgeRights {
        assert!(self.contains_vertex(src), "unknown vertex {src}");
        assert!(self.contains_vertex(dst), "unknown vertex {dst}");
        self.effective(src.0, dst.0)
    }

    /// Whether `(src, dst)` carries `right` explicitly.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this graph.
    pub fn has_explicit(&self, src: VertexId, dst: VertexId, right: Right) -> bool {
        self.rights(src, dst).explicit.contains(right)
    }

    /// Whether `(src, dst)` carries `right` explicitly or implicitly.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this graph.
    pub fn has_any(&self, src: VertexId, dst: VertexId, right: Right) -> bool {
        self.rights(src, dst).combined().contains(right)
    }

    /// Records the transition of `(src, dst)` from labels `cur` to `new`
    /// in the overlay, maintaining the edge counters, then re-packs if
    /// the overlay crossed the threshold.
    fn write_state(&mut self, src: u32, dst: u32, cur: EdgeRights, new: EdgeRights) {
        if new == cur {
            return;
        }
        match (cur.is_empty(), new.is_empty()) {
            (true, false) => self.live_edges += 1,
            (false, true) => self.live_edges -= 1,
            _ => {}
        }
        match (cur.explicit.is_empty(), new.explicit.is_empty()) {
            (true, false) => self.explicit_edges += 1,
            (false, true) => self.explicit_edges -= 1,
            _ => {}
        }
        let packed = self.csr.get(src, dst);
        if new.is_empty() {
            if packed.is_some() {
                // The packed entry must stay hidden: tombstone.
                self.overlay.set(src, dst, None);
            } else {
                self.overlay.remove(src, dst);
            }
        } else if packed == Some(new) {
            // Mutation circled back to the packed state (e.g. a
            // remove-then-re-add): the edit is redundant.
            self.overlay.remove(src, dst);
        } else {
            self.overlay.set(src, dst, Some(new));
        }
        self.maybe_pack();
    }

    /// Adds the nonempty set `rights` to the explicit label of `(src, dst)`,
    /// creating the edge if needed. Returns whether the label changed.
    pub fn add_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<bool, GraphError> {
        self.add_rights(src, dst, rights, false)
    }

    /// Adds the nonempty set `rights` to the implicit label of `(src, dst)`.
    /// Returns whether the label changed.
    pub fn add_implicit_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<bool, GraphError> {
        self.add_rights(src, dst, rights, true)
    }

    fn add_rights(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
        implicit: bool,
    ) -> Result<bool, GraphError> {
        self.check_pair(src, dst)?;
        if rights.is_empty() {
            return Err(GraphError::EmptyRights);
        }
        let cur = self.effective(src.0, dst.0);
        let mut new = cur;
        if implicit {
            new.implicit |= rights;
        } else {
            new.explicit |= rights;
        }
        let changed = new != cur;
        self.write_state(src.0, dst.0, cur, new);
        Ok(changed)
    }

    /// Removes `rights` from the explicit label of `(src, dst)`; if the
    /// label becomes empty and no implicit rights remain, the edge itself is
    /// deleted (paper §2, *remove*). Returns the rights actually removed.
    pub fn remove_explicit_rights(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<Rights, GraphError> {
        self.check_pair(src, dst)?;
        let cur = self.effective(src.0, dst.0);
        if cur.is_empty() {
            return Ok(Rights::EMPTY);
        }
        let removed = cur.explicit & rights;
        let new = EdgeRights {
            explicit: cur.explicit - rights,
            implicit: cur.implicit,
        };
        self.write_state(src.0, dst.0, cur, new);
        Ok(removed)
    }

    /// Removes `rights` from the implicit label of `(src, dst)`; if the
    /// label becomes empty and no explicit rights remain, the edge itself
    /// is deleted. Returns the rights actually removed. The transactional
    /// rollback in the reference monitor uses this to undo de facto
    /// effects.
    pub fn remove_implicit_rights(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<Rights, GraphError> {
        self.check_pair(src, dst)?;
        let cur = self.effective(src.0, dst.0);
        if cur.is_empty() {
            return Ok(Rights::EMPTY);
        }
        let removed = cur.implicit & rights;
        let new = EdgeRights {
            explicit: cur.explicit,
            implicit: cur.implicit - rights,
        };
        self.write_state(src.0, dst.0, cur, new);
        Ok(removed)
    }

    /// Retracts the most recently added vertex, deleting it together with
    /// every incident edge. Only the newest vertex can be removed — ids
    /// are dense creation-order indices, so removing any other vertex
    /// would renumber the rest (the model's graphs otherwise never shrink;
    /// this exists solely so a rolled-back `create` leaves no trace).
    pub fn pop_vertex(&mut self, id: VertexId) -> Result<(), GraphError> {
        self.check(id)?;
        if id.index() + 1 != self.vertices.len() {
            return Err(GraphError::NotLastVertex(id));
        }
        // Delete every incident edge through the normal overlay path, so
        // the counters stay exact and packed entries get tombstoned.
        let preds: Vec<u32> = self.in_edges(id).map(|(v, _)| v.0).collect();
        for src in preds {
            let cur = self.effective(src, id.0);
            self.write_state(src, id.0, cur, EdgeRights::default());
        }
        let outs: Vec<u32> = self.out_edges(id).map(|(v, _)| v.0).collect();
        for dst in outs {
            let cur = self.effective(id.0, dst);
            self.write_state(id.0, dst, cur, EdgeRights::default());
        }
        let vertex = self.vertices.pop().expect("checked nonempty");
        if self.names.get(&vertex.name) == Some(&id.0) {
            self.names.remove(&vertex.name);
        }
        if self.csr.rows() > self.vertices.len() {
            // The packed core still has a row (and tombstones) for the
            // retracted vertex; fold it away so a future vertex reusing
            // the id starts from a clean slate.
            self.pack();
        } else {
            // The vertex was never packed: its edits (all tombstones or
            // removals by now) just get dropped.
            self.overlay.remove_row(id.0);
        }
        Ok(())
    }

    /// Deletes every implicit right in the graph. Implicit edges are derived
    /// state; analyses frequently recompute them from scratch — so this
    /// rebuilds the packed core in one pass instead of writing O(E)
    /// overlay edits.
    pub fn clear_implicit(&mut self) {
        let n = self.vertices.len();
        let mut rows: Vec<Vec<(u32, EdgeRights)>> = Vec::with_capacity(n);
        let mut live = 0;
        for v in 0..n as u32 {
            let row: Vec<(u32, EdgeRights)> = MergedRow::new(&self.csr, &self.overlay, v)
                .filter(|(_, r)| !r.explicit.is_empty())
                .map(|(dst, r)| {
                    (
                        dst,
                        EdgeRights {
                            explicit: r.explicit,
                            implicit: Rights::EMPTY,
                        },
                    )
                })
                .collect();
            live += row.len();
            rows.push(row);
        }
        self.csr = CsrCore::from_rows(&rows);
        self.overlay.clear();
        self.live_edges = live;
        self.explicit_edges = live;
        self.packs += 1;
    }

    /// Iterates over every edge record (pairs with a nonempty label), in
    /// `(src, dst)` order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRecord> + '_ {
        (0..self.vertices.len() as u32).flat_map(move |src| {
            MergedRow::new(&self.csr, &self.overlay, src).map(move |(dst, rights)| EdgeRecord {
                src: VertexId(src),
                dst: VertexId(dst),
                rights,
            })
        })
    }

    /// Iterates over the out-edges of `v` as `(successor, labels)` pairs,
    /// in ascending successor order.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this graph.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeRights)> + '_ {
        assert!(self.contains_vertex(v), "unknown vertex {v}");
        MergedRow::new(&self.csr, &self.overlay, v.0).map(|(dst, rights)| (VertexId(dst), rights))
    }

    /// Iterates over the in-edges of `v` as `(predecessor, labels)` pairs,
    /// in ascending predecessor order.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this graph.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeRights)> + '_ {
        assert!(self.contains_vertex(v), "unknown vertex {v}");
        MergedPreds::new(&self.csr, &self.overlay, v.0).filter_map(move |(src, packed)| {
            // `Some` = labels straight from the packed reverse row (never
            // empty); `None` = the pair has an overlay edit, read through it.
            let rights = match packed {
                Some(rights) => rights,
                None => self.effective(src, v.0),
            };
            if rights.is_empty() {
                None
            } else {
                Some((VertexId(src), rights))
            }
        })
    }

    /// Drops implicit rights everywhere, keeping only recorded authority.
    /// Returns the number of implicit rights dropped.
    pub fn strip_implicit(&mut self) -> usize {
        let before: usize = self.edges().map(|e| e.rights.implicit.len()).sum();
        self.clear_implicit();
        before
    }

    /// Folds the overlay into a fresh packed core. A no-op when the
    /// overlay is empty and every vertex already has a packed row.
    /// Logical content is unchanged — only the physical split between
    /// the CSR arrays and the overlay moves.
    pub fn pack(&mut self) {
        if self.overlay.is_empty() && self.csr.rows() == self.vertices.len() {
            return;
        }
        let n = self.vertices.len();
        let mut rows: Vec<Vec<(u32, EdgeRights)>> = Vec::with_capacity(n);
        for v in 0..n as u32 {
            rows.push(MergedRow::new(&self.csr, &self.overlay, v).collect());
        }
        self.csr = CsrCore::from_rows(&rows);
        self.overlay.clear();
        self.packs += 1;
    }

    fn maybe_pack(&mut self) {
        let threshold = if self.pack_threshold > 0 {
            self.pack_threshold
        } else {
            (self.csr.edge_len() / 8).max(64)
        };
        if self.overlay.len() >= threshold {
            self.pack();
        }
    }

    /// Overrides the automatic re-pack threshold: the overlay is folded
    /// into the packed core whenever it holds at least `threshold`
    /// edits. `0` restores the automatic policy
    /// (`max(64, packed_edges / 8)`). Exposed so tests and benchmarks
    /// can force re-packs at precise points; irrelevant to correctness.
    pub fn set_pack_threshold(&mut self, threshold: usize) {
        self.pack_threshold = threshold;
    }

    /// Number of edits currently in the mutation overlay.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// Number of edges in the packed core (tombstoned entries included
    /// until the next re-pack).
    pub fn packed_edge_count(&self) -> usize {
        self.csr.edge_len()
    }

    /// Number of re-packs performed over this graph's lifetime.
    pub fn pack_count(&self) -> u64 {
        self.packs
    }

    /// Whether the graph is fully packed (no overlay edits pending).
    pub fn is_packed(&self) -> bool {
        self.overlay.is_empty() && self.csr.rows() == self.vertices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (ProtectionGraph, VertexId, VertexId, VertexId) {
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        let o = g.add_object("o");
        (g, a, b, o)
    }

    #[test]
    fn vertices_are_numbered_in_creation_order() {
        let (g, a, b, o) = small();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(o.index(), 2);
        assert!(g.is_subject(a));
        assert!(g.is_object(o));
        assert_eq!(g.subjects().count(), 2);
        assert_eq!(g.objects().count(), 1);
    }

    #[test]
    fn add_edge_merges_rights_per_pair() {
        let (mut g, a, b, _) = small();
        assert!(g.add_edge(a, b, Rights::R).unwrap());
        assert!(g.add_edge(a, b, Rights::W).unwrap());
        assert!(!g.add_edge(a, b, Rights::R).unwrap());
        assert_eq!(g.rights(a, b).explicit(), Rights::RW);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn explicit_and_implicit_labels_are_independent() {
        let (mut g, a, b, _) = small();
        g.add_edge(a, b, Rights::T).unwrap();
        g.add_implicit_edge(a, b, Rights::R).unwrap();
        let rights = g.rights(a, b);
        assert_eq!(rights.explicit(), Rights::T);
        assert_eq!(rights.implicit(), Rights::R);
        assert_eq!(rights.combined(), Rights::T | Rights::R);
    }

    #[test]
    fn self_edges_are_rejected() {
        let (mut g, a, _, _) = small();
        assert_eq!(g.add_edge(a, a, Rights::R), Err(GraphError::SelfEdge(a)));
    }

    #[test]
    fn empty_rights_are_rejected() {
        let (mut g, a, b, _) = small();
        assert_eq!(
            g.add_edge(a, b, Rights::EMPTY),
            Err(GraphError::EmptyRights)
        );
    }

    #[test]
    fn unknown_vertices_are_rejected() {
        let (mut g, a, _, _) = small();
        let bogus = VertexId::from_index(99);
        assert_eq!(
            g.add_edge(a, bogus, Rights::R),
            Err(GraphError::UnknownVertex(bogus))
        );
        assert!(!g.contains_vertex(bogus));
    }

    #[test]
    fn remove_deletes_edge_when_label_empties() {
        let (mut g, a, b, _) = small();
        g.add_edge(a, b, Rights::RW).unwrap();
        let removed = g.remove_explicit_rights(a, b, Rights::R).unwrap();
        assert_eq!(removed, Rights::R);
        assert_eq!(g.edge_count(), 1);
        g.remove_explicit_rights(a, b, Rights::W).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.in_edges(b).count(), 0);
    }

    #[test]
    fn remove_keeps_edge_alive_while_implicit_remains() {
        let (mut g, a, b, _) = small();
        g.add_edge(a, b, Rights::R).unwrap();
        g.add_implicit_edge(a, b, Rights::R).unwrap();
        g.remove_explicit_rights(a, b, Rights::R).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.rights(a, b).implicit(), Rights::R);
    }

    #[test]
    fn remove_of_absent_edge_is_a_noop() {
        let (mut g, a, b, _) = small();
        assert_eq!(
            g.remove_explicit_rights(a, b, Rights::R).unwrap(),
            Rights::EMPTY
        );
    }

    #[test]
    fn clear_implicit_drops_derived_state_only() {
        let (mut g, a, b, o) = small();
        g.add_edge(a, o, Rights::R).unwrap();
        g.add_implicit_edge(a, b, Rights::R).unwrap();
        g.add_implicit_edge(b, o, Rights::R).unwrap();
        g.clear_implicit();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.rights(a, o).explicit(), Rights::R);
        assert_eq!(g.in_edges(b).count(), 0);
    }

    #[test]
    fn in_edges_mirror_out_edges() {
        let (mut g, a, b, o) = small();
        g.add_edge(a, o, Rights::R).unwrap();
        g.add_edge(b, o, Rights::W).unwrap();
        let preds: Vec<VertexId> = g.in_edges(o).map(|(v, _)| v).collect();
        assert_eq!(preds, vec![a, b]);
        let (_, rights) = g.in_edges(o).next().unwrap();
        assert_eq!(rights.explicit(), Rights::R);
    }

    #[test]
    fn edges_iterates_in_deterministic_order() {
        let (mut g, a, b, o) = small();
        g.add_edge(b, o, Rights::W).unwrap();
        g.add_edge(a, b, Rights::T).unwrap();
        g.add_edge(a, o, Rights::R).unwrap();
        let pairs: Vec<(usize, usize)> =
            g.edges().map(|e| (e.src.index(), e.dst.index())).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn find_by_name_returns_first_match() {
        let (g, a, _, _) = small();
        assert_eq!(g.find_by_name("a"), Some(a));
        assert_eq!(g.find_by_name("zzz"), None);
    }

    #[test]
    fn find_by_name_interns_first_occurrence() {
        let mut g = ProtectionGraph::new();
        let first = g.add_subject("dup");
        let _second = g.add_subject("dup");
        assert_eq!(g.find_by_name("dup"), Some(first));
    }

    #[test]
    fn pack_preserves_content_and_order() {
        let (mut g, a, b, o) = small();
        g.add_edge(b, o, Rights::W).unwrap();
        g.add_edge(a, b, Rights::T).unwrap();
        g.add_implicit_edge(a, o, Rights::R).unwrap();
        let before: Vec<EdgeRecord> = g.edges().collect();
        let counts = (g.edge_count(), g.explicit_edge_count());
        g.pack();
        assert!(g.is_packed());
        assert_eq!(g.edges().collect::<Vec<_>>(), before);
        assert_eq!((g.edge_count(), g.explicit_edge_count()), counts);
        // Reads hit the packed core now.
        assert_eq!(g.rights(a, b).explicit(), Rights::T);
        assert_eq!(g.overlay_len(), 0);
        assert_eq!(g.packed_edge_count(), 3);
    }

    #[test]
    fn mutations_after_pack_shadow_the_core() {
        let (mut g, a, b, o) = small();
        g.add_edge(a, b, Rights::TG).unwrap();
        g.add_edge(b, o, Rights::RW).unwrap();
        g.pack();
        // Remove a packed edge: tombstone, not resurrection.
        g.remove_explicit_rights(a, b, Rights::TG).unwrap();
        assert!(g.rights(a, b).is_empty());
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.in_edges(b).count(), 0);
        // Re-add with the original label: the redundant edit is dropped.
        g.add_edge(a, b, Rights::TG).unwrap();
        assert_eq!(g.rights(a, b).explicit(), Rights::TG);
        assert_eq!(g.overlay_len(), 0, "round-trip edits collapse");
        // Re-add with a different label: the edit shadows the core.
        g.remove_explicit_rights(a, b, Rights::G).unwrap();
        assert_eq!(g.rights(a, b).explicit(), Rights::T);
        assert_eq!(g.edges().count(), 2);
    }

    #[test]
    fn automatic_repack_folds_the_overlay() {
        let mut g = ProtectionGraph::new();
        g.set_pack_threshold(4);
        let vs: Vec<VertexId> = (0..8).map(|i| g.add_subject(format!("s{i}"))).collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1], Rights::T).unwrap();
        }
        assert!(g.pack_count() > 0, "threshold 4 must have re-packed");
        assert!(g.overlay_len() < 4);
        assert_eq!(g.edge_count(), 7);
    }

    #[test]
    fn pop_vertex_across_pack_boundary() {
        let (mut g, a, b, _) = small();
        g.add_edge(a, b, Rights::T).unwrap();
        let c = g.add_subject("c");
        g.add_edge(a, c, Rights::R).unwrap();
        g.add_edge(c, b, Rights::W).unwrap();
        g.pack(); // c's edges are now in the packed core
        g.pop_vertex(c).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.rights(a, b).explicit(), Rights::T);
        assert_eq!(g.in_edges(b).count(), 1);
        assert_eq!(g.find_by_name("c"), None);
        // The reused id starts clean.
        let c2 = g.add_object("c2");
        assert!(g.rights(a, c2).is_empty());
        assert_eq!(g.out_edges(c2).count(), 0);
    }

    #[test]
    fn logical_equality_ignores_pack_state() {
        let (mut g1, a, b, o) = small();
        g1.add_edge(a, b, Rights::TG).unwrap();
        g1.add_edge(b, o, Rights::RW).unwrap();
        let mut g2 = g1.clone();
        g1.pack();
        g2.remove_explicit_rights(a, b, Rights::G).unwrap();
        assert_ne!(g1, g2);
        g2.add_edge(a, b, Rights::G).unwrap();
        assert_eq!(g1, g2, "same content, different physical split");
    }
}
