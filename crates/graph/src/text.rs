//! A small human-readable interchange format for protection graphs.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comments start with '#'
//! subject alice
//! subject bob
//! object  report
//! edge alice -> report : r w
//! edge bob   -> report : w
//! implicit alice -> bob : r
//! ```
//!
//! Vertex names must be unique (edges refer to vertices by name) and must
//! not contain whitespace, `:` or `#`.

use std::collections::HashMap;
use std::fmt;

use crate::{ProtectionGraph, Rights, VertexKind};

/// Error produced by [`parse_graph`], carrying the 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty() && !name.contains([':', '#']) && !name.chars().any(char::is_whitespace)
}

/// Parses the text format into a graph.
///
/// # Examples
///
/// ```
/// use tg_graph::{parse_graph, Rights};
///
/// let g = parse_graph("subject s\nobject o\nedge s -> o : r w\n").unwrap();
/// let s = g.find_by_name("s").unwrap();
/// let o = g.find_by_name("o").unwrap();
/// assert_eq!(g.rights(s, o).explicit(), Rights::RW);
/// ```
pub fn parse_graph(input: &str) -> Result<ProtectionGraph, ParseError> {
    let mut graph = ProtectionGraph::new();
    let mut names = HashMap::new();

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match keyword {
            "subject" | "object" => {
                if !valid_name(rest) {
                    return Err(err(lineno, format!("invalid vertex name {rest:?}")));
                }
                if names.contains_key(rest) {
                    return Err(err(lineno, format!("duplicate vertex name {rest:?}")));
                }
                let kind = if keyword == "subject" {
                    VertexKind::Subject
                } else {
                    VertexKind::Object
                };
                let id = graph.add_vertex(kind, rest);
                names.insert(rest.to_string(), id);
            }
            "edge" | "implicit" => {
                let (endpoints, rights_text) = rest
                    .split_once(':')
                    .ok_or_else(|| err(lineno, "expected `src -> dst : rights`"))?;
                let (src_name, dst_name) = endpoints
                    .split_once("->")
                    .ok_or_else(|| err(lineno, "expected `src -> dst`"))?;
                let src = *names
                    .get(src_name.trim())
                    .ok_or_else(|| err(lineno, format!("unknown vertex {:?}", src_name.trim())))?;
                let dst = *names
                    .get(dst_name.trim())
                    .ok_or_else(|| err(lineno, format!("unknown vertex {:?}", dst_name.trim())))?;
                let rights = Rights::parse(rights_text.trim()).map_err(|m| err(lineno, m))?;
                let outcome = if keyword == "edge" {
                    graph.add_edge(src, dst, rights)
                } else {
                    graph.add_implicit_edge(src, dst, rights)
                };
                outcome.map_err(|e| err(lineno, e.to_string()))?;
            }
            other => {
                return Err(err(lineno, format!("unknown directive {other:?}")));
            }
        }
    }
    Ok(graph)
}

/// Renders a graph back to the text format. `parse_graph(&render_graph(g))`
/// reproduces `g` whenever every vertex name is unique and valid.
pub fn render_graph(graph: &ProtectionGraph) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    for (_, vertex) in graph.vertices() {
        let _ = writeln!(out, "{} {}", vertex.kind, vertex.name);
    }
    for edge in graph.edges() {
        let src = &graph.vertex(edge.src).name;
        let dst = &graph.vertex(edge.dst).name;
        if !edge.rights.explicit.is_empty() {
            let _ = writeln!(out, "edge {src} -> {dst} : {}", edge.rights.explicit);
        }
        if !edge.rights.implicit.is_empty() {
            let _ = writeln!(out, "implicit {src} -> {dst} : {}", edge.rights.implicit);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_graph() {
        let src = "subject a\nsubject b\nobject o\nedge a -> b : tg\nedge b -> o : r\nimplicit a -> o : r\n";
        let g = parse_graph(src).unwrap();
        let again = parse_graph(&render_graph(&g)).unwrap();
        assert_eq!(g, again);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = parse_graph("# heading\n\nsubject a # trailing\n").unwrap();
        assert_eq!(g.vertex_count(), 1);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let e = parse_graph("subject a\nobject a\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn unknown_vertices_in_edges_are_rejected() {
        let e = parse_graph("subject a\nedge a -> b : r\n").unwrap_err();
        assert!(e.message.contains("unknown vertex"));
    }

    #[test]
    fn malformed_edges_are_rejected() {
        assert!(parse_graph("subject a\nsubject b\nedge a b : r\n").is_err());
        assert!(parse_graph("subject a\nsubject b\nedge a -> b r\n").is_err());
        assert!(parse_graph("subject a\nsubject b\nedge a -> b : zz\n").is_err());
    }

    #[test]
    fn self_edges_are_rejected_with_line_number() {
        let e = parse_graph("subject a\nedge a -> a : r\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("self-edge"));
    }

    #[test]
    fn unknown_directive_is_rejected() {
        let e = parse_graph("vertex a\n").unwrap_err();
        assert!(e.message.contains("unknown directive"));
    }

    #[test]
    fn invalid_names_are_rejected() {
        assert!(parse_graph("subject a:b\n").is_err());
        assert!(parse_graph("subject\n").is_err());
    }
}
