//! A small human-readable interchange format for protection graphs.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comments start with '#'
//! subject alice
//! subject bob
//! object  report
//! edge alice -> report : r w
//! edge bob   -> report : w
//! implicit alice -> bob : r
//! ```
//!
//! Vertex names must be unique (edges refer to vertices by name) and must
//! not contain whitespace, `:` or `#`.
//!
//! [`parse_graph_with_spans`] additionally returns a [`SourceMap`] mapping
//! every vertex and edge back to the token that declared it, which is what
//! the `tg-lint` analyzer uses to point diagnostics at the offending line
//! and column of the original file.

use std::collections::HashMap;
use std::fmt;

use crate::span::{EdgeSite, SourceMap, Span};
use crate::{ProtectionGraph, Rights, VertexKind};

/// Error produced by [`parse_graph`], carrying the 1-based line number and
/// the 1-based column (in characters) of the offending token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// 1-based column (in characters) of the offending token.
    pub col: usize,
    /// Length of the offending token in characters.
    pub len: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// The error location as a [`Span`].
    pub fn span(&self) -> Span {
        Span::new(self.line, self.col, self.len)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err_at(span: Span, message: impl Into<String>) -> ParseError {
    ParseError {
        line: span.line,
        col: span.col,
        len: span.len,
        message: message.into(),
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty() && !name.contains([':', '#']) && !name.chars().any(char::is_whitespace)
}

/// The span of `slice`, which must be a subslice of `raw` starting at byte
/// offset `start` on 1-based line `line`.
fn span_of(line: usize, raw: &str, start: usize, slice: &str) -> Span {
    Span::new(
        line,
        raw[..start].chars().count() + 1,
        slice.chars().count(),
    )
}

/// Trims `raw[range]`, returning the trimmed slice and its starting byte
/// offset within `raw`.
fn trimmed(raw: &str, start: usize, end: usize) -> (&str, usize) {
    let slice = &raw[start..end];
    let lead = slice.len() - slice.trim_start().len();
    (slice.trim(), start + lead)
}

/// Parses the text format into a graph.
///
/// # Examples
///
/// ```
/// use tg_graph::{parse_graph, Rights};
///
/// let g = parse_graph("subject s\nobject o\nedge s -> o : r w\n").unwrap();
/// let s = g.find_by_name("s").unwrap();
/// let o = g.find_by_name("o").unwrap();
/// assert_eq!(g.rights(s, o).explicit(), Rights::RW);
/// ```
pub fn parse_graph(input: &str) -> Result<ProtectionGraph, ParseError> {
    parse_graph_with_spans(input).map(|(graph, _)| graph)
}

/// Parses the text format, also returning the [`SourceMap`] locating every
/// vertex and edge declaration.
///
/// # Examples
///
/// ```
/// use tg_graph::parse_graph_with_spans;
///
/// let (g, map) = parse_graph_with_spans("subject s\nobject o\nedge s -> o : r\n").unwrap();
/// let s = g.find_by_name("s").unwrap();
/// let o = g.find_by_name("o").unwrap();
/// assert_eq!(map.vertex_span(s).unwrap().line, 1);
/// assert_eq!(map.edge_span(s, o).unwrap().line, 3);
/// ```
pub fn parse_graph_with_spans(input: &str) -> Result<(ProtectionGraph, SourceMap), ParseError> {
    let mut graph = ProtectionGraph::new();
    let mut map = SourceMap::default();
    let mut names: HashMap<String, crate::VertexId> = HashMap::new();

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        // Strip the comment but keep byte offsets into `raw` valid.
        let content_end = raw.find('#').unwrap_or(raw.len());
        let (line, line_start) = trimmed(raw, 0, content_end);
        if line.is_empty() {
            continue;
        }
        let line_span = span_of(lineno, raw, line_start, line);
        let (keyword, keyword_start) = {
            let end = line
                .find(char::is_whitespace)
                .map(|o| line_start + o)
                .unwrap_or(line_start + line.len());
            (&raw[line_start..end], line_start)
        };
        let rest_start = keyword_start + keyword.len();
        match keyword {
            "subject" | "object" => {
                let (name, name_start) = trimmed(raw, rest_start, content_end);
                let name_span = span_of(lineno, raw, name_start, name);
                if !valid_name(name) {
                    return Err(err_at(
                        if name.is_empty() {
                            line_span
                        } else {
                            name_span
                        },
                        format!("invalid vertex name {name:?}"),
                    ));
                }
                if names.contains_key(name) {
                    return Err(err_at(name_span, format!("duplicate vertex name {name:?}")));
                }
                let kind = if keyword == "subject" {
                    VertexKind::Subject
                } else {
                    VertexKind::Object
                };
                let id = graph.add_vertex(kind, name);
                map.push_vertex(name_span);
                names.insert(name.to_string(), id);
            }
            "edge" | "implicit" => {
                let rest = &raw[rest_start..content_end];
                let Some(colon_off) = rest.find(':') else {
                    return Err(err_at(line_span, "expected `src -> dst : rights`"));
                };
                let colon = rest_start + colon_off;
                let (endpoints, endpoints_start) = trimmed(raw, rest_start, colon);
                let Some(arrow_off) = endpoints.find("->") else {
                    return Err(err_at(
                        span_of(lineno, raw, endpoints_start, endpoints),
                        "expected `src -> dst`",
                    ));
                };
                let arrow = endpoints_start + arrow_off;
                let (src_name, src_start) = trimmed(raw, endpoints_start, arrow);
                let (dst_name, dst_start) =
                    trimmed(raw, arrow + 2, endpoints_start + endpoints.len());
                let src = *names.get(src_name).ok_or_else(|| {
                    err_at(
                        span_of(lineno, raw, src_start, src_name),
                        format!("unknown vertex {src_name:?}"),
                    )
                })?;
                let dst = *names.get(dst_name).ok_or_else(|| {
                    err_at(
                        span_of(lineno, raw, dst_start, dst_name),
                        format!("unknown vertex {dst_name:?}"),
                    )
                })?;
                let (rights_text, rights_start) = trimmed(raw, colon + 1, content_end);
                let rights_span = if rights_text.is_empty() {
                    line_span
                } else {
                    span_of(lineno, raw, rights_start, rights_text)
                };
                let rights = Rights::parse(rights_text).map_err(|m| err_at(rights_span, m))?;
                let implicit = keyword == "implicit";
                let outcome = if implicit {
                    graph.add_implicit_edge(src, dst, rights)
                } else {
                    graph.add_edge(src, dst, rights)
                };
                outcome.map_err(|e| err_at(line_span, e.to_string()))?;
                map.record_edge(
                    src,
                    dst,
                    implicit,
                    EdgeSite {
                        directive: line_span,
                        rights: rights_span,
                    },
                );
            }
            other => {
                return Err(err_at(
                    span_of(lineno, raw, keyword_start, keyword),
                    format!("unknown directive {other:?}"),
                ));
            }
        }
    }
    Ok((graph, map))
}

/// Renders a graph back to the text format. `parse_graph(&render_graph(g))`
/// reproduces `g` whenever every vertex name is unique and valid.
pub fn render_graph(graph: &ProtectionGraph) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    for (_, vertex) in graph.vertices() {
        let _ = writeln!(out, "{} {}", vertex.kind, vertex.name);
    }
    for edge in graph.edges() {
        let src = &graph.vertex(edge.src).name;
        let dst = &graph.vertex(edge.dst).name;
        if !edge.rights.explicit.is_empty() {
            let _ = writeln!(out, "edge {src} -> {dst} : {}", edge.rights.explicit);
        }
        if !edge.rights.implicit.is_empty() {
            let _ = writeln!(out, "implicit {src} -> {dst} : {}", edge.rights.implicit);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_graph() {
        let src = "subject a\nsubject b\nobject o\nedge a -> b : tg\nedge b -> o : r\nimplicit a -> o : r\n";
        let g = parse_graph(src).unwrap();
        let again = parse_graph(&render_graph(&g)).unwrap();
        assert_eq!(g, again);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = parse_graph("# heading\n\nsubject a # trailing\n").unwrap();
        assert_eq!(g.vertex_count(), 1);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let e = parse_graph("subject a\nobject a\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 8);
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn unknown_vertices_in_edges_are_rejected() {
        let e = parse_graph("subject a\nedge a -> b : r\n").unwrap_err();
        assert!(e.message.contains("unknown vertex"));
        // The span points at the offending token `b`, not the line start.
        assert_eq!((e.line, e.col, e.len), (2, 11, 1));
    }

    #[test]
    fn malformed_edges_are_rejected() {
        assert!(parse_graph("subject a\nsubject b\nedge a b : r\n").is_err());
        assert!(parse_graph("subject a\nsubject b\nedge a -> b r\n").is_err());
        assert!(parse_graph("subject a\nsubject b\nedge a -> b : zz\n").is_err());
    }

    #[test]
    fn bad_rights_point_at_the_rights_token() {
        let e = parse_graph("subject a\nsubject b\nedge a -> b : zz\n").unwrap_err();
        assert_eq!((e.line, e.col), (3, 15));
        let e = parse_graph("subject a\nsubject b\nedge a -> b :\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn dense_edge_syntax_still_parses() {
        // Tokens are located by offset, not whitespace splitting, so the
        // historical dense form remains valid.
        let (g, map) = parse_graph_with_spans("subject a\nsubject b\nedge a->b:r w\n").unwrap();
        let a = g.find_by_name("a").unwrap();
        let b = g.find_by_name("b").unwrap();
        assert_eq!(g.rights(a, b).explicit(), Rights::RW);
        let site = map.edge_site(a, b, false).unwrap();
        assert_eq!(site.rights.line, 3);
        assert_eq!(site.rights.col, 11);
    }

    #[test]
    fn self_edges_are_rejected_with_line_number() {
        let e = parse_graph("subject a\nedge a -> a : r\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("self-edge"));
    }

    #[test]
    fn unknown_directive_is_rejected() {
        let e = parse_graph("vertex a\n").unwrap_err();
        assert!(e.message.contains("unknown directive"));
        assert_eq!((e.line, e.col, e.len), (1, 1, 6));
    }

    #[test]
    fn invalid_names_are_rejected() {
        assert!(parse_graph("subject a:b\n").is_err());
        assert!(parse_graph("subject\n").is_err());
    }

    #[test]
    fn spans_locate_declarations() {
        let src = "subject alice\nobject report\nedge alice -> report : r w\nimplicit alice -> report : r\n";
        let (g, map) = parse_graph_with_spans(src).unwrap();
        let alice = g.find_by_name("alice").unwrap();
        let report = g.find_by_name("report").unwrap();
        assert_eq!(map.vertex_span(alice), Some(Span::new(1, 9, 5)));
        assert_eq!(map.vertex_span(report), Some(Span::new(2, 8, 6)));
        let site = map.edge_site(alice, report, false).unwrap();
        assert_eq!(site.directive, Span::new(3, 1, 26));
        assert_eq!(site.rights, Span::new(3, 24, 3));
        let implicit = map.edge_site(alice, report, true).unwrap();
        assert_eq!(implicit.directive.line, 4);
        // edge_span prefers the explicit declaration.
        assert_eq!(map.edge_span(alice, report).unwrap().line, 3);
    }

    #[test]
    fn comment_columns_do_not_shift_spans() {
        let (g, map) = parse_graph_with_spans("subject a # the first\n").unwrap();
        let a = g.find_by_name("a").unwrap();
        assert_eq!(map.vertex_span(a), Some(Span::new(1, 9, 1)));
    }
}
