//! Errors reported by graph mutations and accessors.

use core::fmt;

use crate::VertexId;

/// Error type for [`ProtectionGraph`](crate::ProtectionGraph) operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// A vertex id did not refer to a vertex of this graph.
    UnknownVertex(VertexId),
    /// An edge would connect a vertex to itself. Every rewriting rule in the
    /// model requires its vertices to be distinct, so protection graphs are
    /// kept loop-free by construction.
    SelfEdge(VertexId),
    /// An edge was given the empty rights set. Edges carry nonempty labels;
    /// removing the last right removes the edge itself (paper §2, *remove*).
    EmptyRights,
    /// [`pop_vertex`](crate::ProtectionGraph::pop_vertex) was asked to
    /// remove a vertex that is not the most recently added one. Vertex ids
    /// are dense creation-order indices, so only the newest vertex can be
    /// retracted without invalidating other ids.
    NotLastVertex(VertexId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            GraphError::SelfEdge(v) => write!(f, "self-edge on {v} is not allowed"),
            GraphError::EmptyRights => write!(f, "edge rights must be nonempty"),
            GraphError::NotLastVertex(v) => {
                write!(f, "{v} is not the most recently added vertex")
            }
        }
    }
}

impl std::error::Error for GraphError {}
