//! Disjoint-set forests: [`UnionFind`] (union by rank, path halving) and
//! [`EpochUnionFind`] (union by rank, undo log, no compression) for
//! callers that must roll a suffix of unions back.

/// A disjoint-set (union–find) structure over dense indices `0..n`.
///
/// Used by the island computation (`tg-analysis`), where islands are the
/// equivalence classes of subject vertices under tg-connectivity.
///
/// # Examples
///
/// ```
/// use tg_graph::algo::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 2);
/// assert!(uf.same(0, 2));
/// assert!(!uf.same(0, 1));
/// assert_eq!(uf.set_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Finds the canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x as usize;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups all elements by set, returning the list of sets (each sorted),
    /// ordered by their smallest member.
    pub fn sets(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let root = self.find(x);
            by_root.entry(root).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

/// A point in an [`EpochUnionFind`]'s history: the number of elements and
/// effective unions at the moment [`EpochUnionFind::epoch`] was called.
/// Rolling back to an epoch restores the partition exactly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Epoch {
    unions: usize,
    elems: usize,
}

/// One logged union: `child` (previously a root) was attached beneath
/// `parent`, whose rank may have been bumped.
#[derive(Clone, Copy, Debug)]
struct Undo {
    child: u32,
    parent: u32,
    rank_bumped: bool,
}

/// A disjoint-set forest whose operations can be undone.
///
/// Union by rank with an undo log and **no** path compression: compression
/// rewrites parent pointers outside the logged union, which would make
/// exact rollback impossible, so `find` here costs O(log n) instead of
/// the amortized near-constant of [`UnionFind`]. In exchange, any suffix
/// of `union`/`grow` operations can be rolled back with
/// [`EpochUnionFind::rollback_to`] — the hook the incremental island
/// index (`tg-inc`) needs to follow the monitor's transactional batch
/// rollback without rebuilding from scratch.
///
/// # Examples
///
/// ```
/// use tg_graph::algo::EpochUnionFind;
///
/// let mut uf = EpochUnionFind::new(3);
/// uf.union(0, 1);
/// let mark = uf.epoch();
/// uf.union(1, 2);
/// let v = uf.grow();
/// uf.union(v, 0);
/// uf.rollback_to(mark);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(0, 2));
/// assert_eq!(uf.len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct EpochUnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
    log: Vec<Undo>,
}

impl EpochUnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> EpochUnionFind {
        EpochUnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
            log: Vec::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Appends one fresh singleton element and returns its index.
    pub fn grow(&mut self) -> usize {
        let idx = self.parent.len();
        self.parent.push(idx as u32);
        self.rank.push(0);
        self.sets += 1;
        idx
    }

    /// Finds the canonical representative of `x`'s set. Takes `&self`:
    /// without path compression a find never mutates the forest.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&self, x: usize) -> usize {
        let mut x = x as u32;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x as usize;
            }
            x = p;
        }
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint. Effective merges are logged for rollback.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let rank_bumped = self.rank[hi] == self.rank[lo];
        self.parent[lo] = hi as u32;
        if rank_bumped {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        self.log.push(Undo {
            child: lo as u32,
            parent: hi as u32,
            rank_bumped,
        });
        true
    }

    /// Whether `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn same(&self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The current history point, for a later [`rollback_to`].
    ///
    /// [`rollback_to`]: EpochUnionFind::rollback_to
    pub fn epoch(&self) -> Epoch {
        Epoch {
            unions: self.log.len(),
            elems: self.parent.len(),
        }
    }

    /// Undoes every `union` and `grow` performed since `epoch`, restoring
    /// the partition of that moment exactly.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` does not come from this structure's past (more
    /// unions or elements than currently recorded).
    pub fn rollback_to(&mut self, epoch: Epoch) {
        assert!(
            epoch.unions <= self.log.len() && epoch.elems <= self.parent.len(),
            "epoch is not in this forest's past"
        );
        while self.log.len() > epoch.unions {
            let undo = self.log.pop().expect("log is nonempty");
            self.parent[undo.child as usize] = undo.child;
            if undo.rank_bumped {
                self.rank[undo.parent as usize] -= 1;
            }
            self.sets += 1;
        }
        // Every element past the epoch is a singleton root again (all
        // unions touching it were logged later and have been popped).
        let dropped = self.parent.len() - epoch.elems;
        self.parent.truncate(epoch.elems);
        self.rank.truncate(epoch.elems);
        self.sets -= dropped;
    }

    /// Groups all elements by set, returning the list of sets (each
    /// sorted), ordered by their smallest member.
    pub fn sets(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            by_root.entry(self.find(x)).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.same(0, 1));
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn transitive_merging() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert!(uf.same(0, 2));
        assert!(uf.same(3, 4));
        assert!(!uf.same(2, 3));
        assert_eq!(uf.sets(), vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
        assert!(uf.sets().is_empty());
    }

    #[test]
    fn epoch_forest_matches_plain_union_find() {
        let mut plain = UnionFind::new(8);
        let mut epoch = EpochUnionFind::new(8);
        for (a, b) in [(0, 1), (2, 3), (1, 3), (4, 5), (6, 7), (5, 6)] {
            assert_eq!(plain.union(a, b), epoch.union(a, b));
        }
        assert_eq!(plain.set_count(), epoch.set_count());
        assert_eq!(plain.sets(), epoch.sets());
    }

    #[test]
    fn rollback_undoes_unions_exactly() {
        let mut uf = EpochUnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        let mark = uf.epoch();
        let before = uf.sets();
        uf.union(1, 3);
        uf.union(4, 5);
        uf.union(3, 5);
        assert_eq!(uf.set_count(), 1);
        uf.rollback_to(mark);
        assert_eq!(uf.sets(), before);
        assert_eq!(uf.set_count(), 4);
        // The forest is fully usable after a rollback.
        assert!(uf.union(0, 4));
        assert!(uf.same(1, 4));
    }

    #[test]
    fn rollback_retracts_grown_elements() {
        let mut uf = EpochUnionFind::new(2);
        uf.union(0, 1);
        let mark = uf.epoch();
        let a = uf.grow();
        let b = uf.grow();
        uf.union(a, 0);
        uf.union(b, a);
        assert_eq!(uf.len(), 4);
        assert_eq!(uf.set_count(), 1);
        uf.rollback_to(mark);
        assert_eq!(uf.len(), 2);
        assert_eq!(uf.set_count(), 1);
        assert!(uf.same(0, 1));
    }

    #[test]
    fn nested_epochs_roll_back_in_order() {
        let mut uf = EpochUnionFind::new(5);
        let outer = uf.epoch();
        uf.union(0, 1);
        let inner = uf.epoch();
        uf.union(2, 3);
        uf.rollback_to(inner);
        assert!(uf.same(0, 1));
        assert!(!uf.same(2, 3));
        uf.rollback_to(outer);
        assert_eq!(uf.set_count(), 5);
    }

    #[test]
    fn redundant_unions_are_not_logged() {
        let mut uf = EpochUnionFind::new(3);
        uf.union(0, 1);
        let mark = uf.epoch();
        // Already joined: no effect, so rollback has nothing to undo.
        assert!(!uf.union(1, 0));
        uf.rollback_to(mark);
        assert!(uf.same(0, 1));
    }

    #[test]
    #[should_panic(expected = "not in this forest's past")]
    fn foreign_epochs_are_rejected() {
        let mut big = EpochUnionFind::new(4);
        big.union(0, 1);
        big.union(2, 3);
        let late = big.epoch();
        let mut small = EpochUnionFind::new(4);
        small.rollback_to(late);
    }
}
