//! Disjoint-set forest with union by rank and path halving.

/// A disjoint-set (union–find) structure over dense indices `0..n`.
///
/// Used by the island computation (`tg-analysis`), where islands are the
/// equivalence classes of subject vertices under tg-connectivity.
///
/// # Examples
///
/// ```
/// use tg_graph::algo::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 2);
/// assert!(uf.same(0, 2));
/// assert!(!uf.same(0, 1));
/// assert_eq!(uf.set_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Finds the canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x as usize;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups all elements by set, returning the list of sets (each sorted),
    /// ordered by their smallest member.
    pub fn sets(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let root = self.find(x);
            by_root.entry(root).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.same(0, 1));
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn transitive_merging() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert!(uf.same(0, 2));
        assert!(uf.same(3, 4));
        assert!(!uf.same(2, 3));
        assert_eq!(uf.sets(), vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
        assert!(uf.sets().is_empty());
    }
}
