//! Small reusable graph algorithms shared by the analysis crates.
//!
//! These are deliberately generic over plain `usize` node indices so they can
//! run over derived graphs (flow graphs, link graphs, island graphs) as well
//! as over protection graphs themselves.

mod bitset;
mod scc;
mod unionfind;

pub use bitset::BitSet;
pub use scc::{condensation, tarjan_scc, Condensation};
pub use unionfind::{Epoch, EpochUnionFind, UnionFind};
