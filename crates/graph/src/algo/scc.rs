//! Strongly connected components (iterative Tarjan) and condensation DAGs.

/// Computes the strongly connected components of a directed graph given as
/// an adjacency list over dense indices.
///
/// Components are returned in **reverse topological order** (a component
/// appears before any component it can reach... more precisely, Tarjan emits
/// a component only after all components reachable from it), and each
/// component lists its members in discovery order.
///
/// The implementation is iterative, so deep graphs cannot overflow the call
/// stack.
///
/// # Examples
///
/// ```
/// use tg_graph::algo::tarjan_scc;
///
/// // 0 -> 1 -> 2 -> 0 (a cycle), 3 -> 0.
/// let adj = vec![vec![1], vec![2], vec![0], vec![0]];
/// let mut sccs = tarjan_scc(&adj);
/// for scc in &mut sccs {
///     scc.sort_unstable();
/// }
/// assert!(sccs.contains(&vec![0, 1, 2]));
/// assert!(sccs.contains(&vec![3]));
/// ```
pub fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (vertex, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while !frames.is_empty() {
            let (v, child) = {
                let frame = frames.last_mut().expect("nonempty");
                let current = *frame;
                frame.1 += 1;
                current
            };
            if let Some(&w) = adj[v].get(child) {
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.reverse();
                    components.push(component);
                }
            }
        }
    }
    components
}

/// A condensation: the DAG of strongly connected components.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// `component_of[v]` is the index (into [`Condensation::components`]) of
    /// the component containing vertex `v`.
    pub component_of: Vec<usize>,
    /// The members of each component.
    pub components: Vec<Vec<usize>>,
    /// Deduplicated adjacency between components (no self-loops).
    pub adj: Vec<Vec<usize>>,
}

impl Condensation {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the underlying graph was empty.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Component-level reachability matrix: `reach[a]` contains `b` iff
    /// component `a` can reach component `b` (reflexively). Runs a DFS per
    /// component; intended for the modest component counts of protection
    /// hierarchies.
    pub fn reachability(&self) -> Vec<Vec<bool>> {
        let k = self.len();
        let mut reach = vec![vec![false; k]; k];
        #[expect(
            clippy::needless_range_loop,
            reason = "start indexes both the frontier and the matrix row"
        )]
        for start in 0..k {
            let mut todo = vec![start];
            while let Some(c) = todo.pop() {
                if reach[start][c] {
                    continue;
                }
                reach[start][c] = true;
                todo.extend(self.adj[c].iter().copied());
            }
        }
        reach
    }
}

/// Builds the condensation DAG of a directed graph.
///
/// # Examples
///
/// ```
/// use tg_graph::algo::condensation;
///
/// // Two mutually-reaching vertices plus a vertex that reads them.
/// let adj = vec![vec![1], vec![0], vec![0]];
/// let cond = condensation(&adj);
/// assert_eq!(cond.len(), 2);
/// let cycle = cond.component_of[0];
/// assert_eq!(cond.component_of[1], cycle);
/// assert_ne!(cond.component_of[2], cycle);
/// ```
pub fn condensation(adj: &[Vec<usize>]) -> Condensation {
    let components = tarjan_scc(adj);
    let mut component_of = vec![0usize; adj.len()];
    for (ci, comp) in components.iter().enumerate() {
        for &v in comp {
            component_of[v] = ci;
        }
    }
    let mut cadj: Vec<Vec<usize>> = vec![Vec::new(); components.len()];
    for (v, succs) in adj.iter().enumerate() {
        for &w in succs {
            let (cv, cw) = (component_of[v], component_of[w]);
            if cv != cw {
                cadj[cv].push(cw);
            }
        }
    }
    for list in &mut cadj {
        list.sort_unstable();
        list.dedup();
    }
    Condensation {
        component_of,
        components,
        adj: cadj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normalized(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
        let mut sccs = tarjan_scc(adj);
        for scc in &mut sccs {
            scc.sort_unstable();
        }
        sccs.sort();
        sccs
    }

    #[test]
    fn empty_graph() {
        assert!(tarjan_scc(&[]).is_empty());
        assert!(condensation(&[]).is_empty());
    }

    #[test]
    fn singletons_without_edges() {
        let adj = vec![vec![], vec![], vec![]];
        assert_eq!(normalized(&adj), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn one_big_cycle() {
        let adj = vec![vec![1], vec![2], vec![3], vec![0]];
        assert_eq!(normalized(&adj), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn chain_is_all_singletons() {
        let adj = vec![vec![1], vec![2], vec![]];
        assert_eq!(normalized(&adj), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn two_cycles_with_bridge_edge() {
        // {0,1} -> {2,3}
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        assert_eq!(normalized(&adj), vec![vec![0, 1], vec![2, 3]]);
        let cond = condensation(&adj);
        assert_eq!(cond.len(), 2);
        let from = cond.component_of[0];
        let to = cond.component_of[2];
        assert_eq!(cond.adj[from], vec![to]);
        assert!(cond.adj[to].is_empty());
        let reach = cond.reachability();
        assert!(reach[from][to]);
        assert!(!reach[to][from]);
        assert!(reach[from][from]);
    }

    #[test]
    fn tarjan_emits_reverse_topological_order() {
        // 0 -> 1 -> 2, all singleton components; 2's component must come first.
        let adj = vec![vec![1], vec![2], vec![]];
        let sccs = tarjan_scc(&adj);
        assert_eq!(sccs, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let n = 200_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        assert_eq!(tarjan_scc(&adj).len(), n);
    }

    #[test]
    fn parallel_and_duplicate_edges_are_tolerated() {
        let adj = vec![vec![1, 1, 1], vec![0, 0]];
        assert_eq!(normalized(&adj), vec![vec![0, 1]]);
    }
}
