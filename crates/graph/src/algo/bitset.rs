//! A growable bitset over `usize` indices.
//!
//! Dense membership sets over vertex indices — per-level membership in
//! the incremental index, visited sets in traversals — want one bit per
//! vertex, not one `BTreeSet` node per member. Iteration yields members
//! in ascending order, so code migrating from `BTreeSet<usize>` keeps
//! its deterministic output.

const WORD_BITS: usize = 64;

/// A set of `usize` values stored one bit per value, growing on demand.
///
/// # Examples
///
/// ```
/// use tg_graph::algo::BitSet;
///
/// let mut set = BitSet::new();
/// set.insert(3);
/// set.insert(200);
/// assert!(set.contains(3));
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 200]);
/// ```
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> BitSet {
        BitSet::default()
    }

    /// Creates an empty set with room for values below `capacity`
    /// without reallocating.
    pub fn with_capacity(capacity: usize) -> BitSet {
        BitSet {
            words: Vec::with_capacity(capacity.div_ceil(WORD_BITS)),
            len: 0,
        }
    }

    /// Inserts `value`; returns whether it was newly added.
    pub fn insert(&mut self, value: usize) -> bool {
        let word = value / WORD_BITS;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (value % WORD_BITS);
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `value`; returns whether it was present.
    pub fn remove(&mut self, value: usize) -> bool {
        let word = value / WORD_BITS;
        if word >= self.words.len() {
            return false;
        }
        let mask = 1u64 << (value % WORD_BITS);
        let present = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        self.len -= usize::from(present);
        present
    }

    /// Whether `value` is a member.
    pub fn contains(&self, value: usize) -> bool {
        self.words
            .get(value / WORD_BITS)
            .is_some_and(|w| w & (1u64 << (value % WORD_BITS)) != 0)
    }

    /// Number of members. O(1): maintained across mutations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            let base = i * WORD_BITS;
            BitIter { word, base }
        })
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }
}

/// Iterator over the set bits of one word, ascending.
struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> BitSet {
        let mut set = BitSet::new();
        for value in iter {
            set.insert(value);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut set = BitSet::new();
        assert!(set.insert(5));
        assert!(!set.insert(5));
        assert!(set.contains(5));
        assert!(!set.contains(6));
        assert_eq!(set.len(), 1);
        assert!(set.remove(5));
        assert!(!set.remove(5));
        assert!(set.is_empty());
    }

    #[test]
    fn iteration_is_ascending_across_words() {
        let set: BitSet = [130, 0, 63, 64, 7].into_iter().collect();
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 7, 63, 64, 130]);
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn remove_beyond_capacity_is_noop() {
        let mut set = BitSet::new();
        assert!(!set.remove(1000));
        assert!(!set.contains(1000));
    }
}
