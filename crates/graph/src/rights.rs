//! Rights and sets of rights.
//!
//! The Take-Grant model labels edges with subsets of a finite set *R* of
//! rights. Four rights are given distinguished semantics by the rewriting
//! rules — `r` (read), `w` (write), `t` (take) and `g` (grant) — and the
//! paper's Figure 5.1 additionally uses `e` (execute) as an example of an
//! "inert" right that the hierarchical restrictions leave untouched. This
//! module also reserves eleven generic rights (`c5`–`c15`) so models can
//! carry domain-specific authorities.

use core::fmt;

/// A single right out of the finite set *R*.
///
/// The first five variants are the rights used by the paper; [`Right::custom`]
/// yields the reserved generic rights.
///
/// # Examples
///
/// ```
/// use tg_graph::Right;
/// assert_eq!(Right::Read.to_string(), "r");
/// assert_eq!(Right::custom(7).unwrap().to_string(), "c7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Right {
    /// The `r` (read) right: a *viewing* authority over the target.
    Read,
    /// The `w` (write) right. The paper identifies Take-Grant `write` with
    /// Bell–LaPadula `append`: it is not a viewing right.
    Write,
    /// The `t` (take) right: authority to copy the target's rights.
    Take,
    /// The `g` (grant) right: authority to give one's own rights to the target.
    Grant,
    /// The `e` (execute) right from Figure 5.1; inert under every rule.
    Execute,
    /// A generic, rule-inert right (index 5–15).
    Custom(u8),
}

impl Right {
    /// Number of distinct rights representable (bit width of [`Rights`]).
    pub const COUNT: usize = 16;

    /// Returns the generic right with the given index, which must lie in
    /// `5..16`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tg_graph::Right;
    /// assert!(Right::custom(5).is_some());
    /// assert!(Right::custom(4).is_none()); // 0–4 are the named rights
    /// assert!(Right::custom(16).is_none());
    /// ```
    pub fn custom(index: u8) -> Option<Right> {
        if (5..16).contains(&index) {
            Some(Right::Custom(index))
        } else {
            None
        }
    }

    /// The bit index of this right inside a [`Rights`] set.
    pub fn index(self) -> u8 {
        match self {
            Right::Read => 0,
            Right::Write => 1,
            Right::Take => 2,
            Right::Grant => 3,
            Right::Execute => 4,
            Right::Custom(i) => i,
        }
    }

    /// The inverse of [`Right::index`]. Returns `None` for out-of-range bits.
    pub fn from_index(index: u8) -> Option<Right> {
        match index {
            0 => Some(Right::Read),
            1 => Some(Right::Write),
            2 => Some(Right::Take),
            3 => Some(Right::Grant),
            4 => Some(Right::Execute),
            5..=15 => Some(Right::Custom(index)),
            _ => None,
        }
    }

    /// Parses the textual form produced by `Display` (`r`, `w`, `t`, `g`,
    /// `e`, `c5`–`c15`).
    pub fn parse(s: &str) -> Option<Right> {
        match s {
            "r" => Some(Right::Read),
            "w" => Some(Right::Write),
            "t" => Some(Right::Take),
            "g" => Some(Right::Grant),
            "e" => Some(Right::Execute),
            _ => {
                let rest = s.strip_prefix('c')?;
                let idx: u8 = rest.parse().ok()?;
                Right::custom(idx)
            }
        }
    }

    /// Every representable right, in bit order.
    pub fn all() -> impl Iterator<Item = Right> {
        (0..Right::COUNT as u8).filter_map(Right::from_index)
    }
}

impl fmt::Display for Right {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Right::Read => write!(f, "r"),
            Right::Write => write!(f, "w"),
            Right::Take => write!(f, "t"),
            Right::Grant => write!(f, "g"),
            Right::Execute => write!(f, "e"),
            Right::Custom(i) => write!(f, "c{i}"),
        }
    }
}

/// A set of [`Right`]s, stored as a 16-bit set.
///
/// `Rights` is a plain value type: copying it never aliases graph state.
/// The usual set operations are provided both as methods and as bit
/// operators.
///
/// # Examples
///
/// ```
/// use tg_graph::{Right, Rights};
///
/// let rw = Rights::from([Right::Read, Right::Write]);
/// let tg = Rights::from([Right::Take, Right::Grant]);
/// assert!(rw.contains(Right::Read));
/// assert!((rw | tg).contains(Right::Grant));
/// assert!((rw & tg).is_empty());
/// assert_eq!(rw.to_string(), "rw");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rights(u16);

impl Rights {
    /// The empty set of rights.
    pub const EMPTY: Rights = Rights(0);
    /// The set `{r}`.
    pub const R: Rights = Rights(1 << 0);
    /// The set `{w}`.
    pub const W: Rights = Rights(1 << 1);
    /// The set `{t}`.
    pub const T: Rights = Rights(1 << 2);
    /// The set `{g}`.
    pub const G: Rights = Rights(1 << 3);
    /// The set `{e}`.
    pub const E: Rights = Rights(1 << 4);
    /// The set `{r,w}`.
    pub const RW: Rights = Rights(0b11);
    /// The set `{t,g}`.
    pub const TG: Rights = Rights(0b1100);
    /// Every representable right.
    pub const ALL: Rights = Rights(u16::MAX);

    /// Creates an empty set.
    pub const fn new() -> Rights {
        Rights(0)
    }

    /// Creates a set containing exactly one right.
    pub fn singleton(right: Right) -> Rights {
        Rights(1 << right.index())
    }

    /// Returns the raw bit representation. Stable across runs; used by the
    /// serialization formats.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Reconstructs a set from [`Rights::bits`].
    pub const fn from_bits(bits: u16) -> Rights {
        Rights(bits)
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of rights in the set.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `right` is a member.
    pub fn contains(self, right: Right) -> bool {
        self.0 & (1 << right.index()) != 0
    }

    /// Whether every right in `other` is also in `self`.
    pub const fn contains_all(self, other: Rights) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the two sets share at least one right.
    pub const fn intersects(self, other: Rights) -> bool {
        self.0 & other.0 != 0
    }

    /// Adds a right, returning whether it was newly inserted.
    pub fn insert(&mut self, right: Right) -> bool {
        let bit = 1 << right.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes a right, returning whether it was present.
    pub fn remove(&mut self, right: Right) -> bool {
        let bit = 1 << right.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Set union.
    pub const fn union(self, other: Rights) -> Rights {
        Rights(self.0 | other.0)
    }

    /// Set intersection.
    pub const fn intersection(self, other: Rights) -> Rights {
        Rights(self.0 & other.0)
    }

    /// Set difference (`self` minus `other`).
    pub const fn difference(self, other: Rights) -> Rights {
        Rights(self.0 & !other.0)
    }

    /// Iterates over the member rights in bit order.
    pub fn iter(self) -> RightsIter {
        RightsIter(self.0)
    }

    /// Parses the textual form produced by `Display`: a concatenation of
    /// right names, e.g. `rwtg` or `r c5 w` (whitespace is permitted between
    /// names and required after multi-character names).
    ///
    /// # Examples
    ///
    /// ```
    /// use tg_graph::{Right, Rights};
    /// assert_eq!(Rights::parse("rw").unwrap(), Rights::RW);
    /// assert!(Rights::parse("r c5").unwrap().contains(Right::Custom(5)));
    /// assert!(Rights::parse("zz").is_err());
    /// ```
    pub fn parse(s: &str) -> Result<Rights, String> {
        let mut set = Rights::EMPTY;
        let mut chars = s.chars().peekable();
        while let Some(ch) = chars.next() {
            match ch {
                ' ' | '\t' | ',' => continue,
                'r' => drop(set.insert(Right::Read)),
                'w' => drop(set.insert(Right::Write)),
                't' => drop(set.insert(Right::Take)),
                'g' => drop(set.insert(Right::Grant)),
                'e' => drop(set.insert(Right::Execute)),
                'c' => {
                    let mut digits = String::new();
                    while let Some(&digit) = chars.peek().filter(|c| c.is_ascii_digit()) {
                        digits.push(digit);
                        chars.next();
                    }
                    let idx: u8 = digits
                        .parse()
                        .map_err(|_| format!("invalid custom right in {s:?}"))?;
                    let right = Right::custom(idx)
                        .ok_or_else(|| format!("custom right index {idx} out of range 5..16"))?;
                    set.insert(right);
                }
                other => return Err(format!("unknown right {other:?} in {s:?}")),
            }
        }
        Ok(set)
    }
}

impl From<Right> for Rights {
    fn from(right: Right) -> Rights {
        Rights::singleton(right)
    }
}

impl<const N: usize> From<[Right; N]> for Rights {
    fn from(rights: [Right; N]) -> Rights {
        rights.into_iter().collect()
    }
}

impl FromIterator<Right> for Rights {
    fn from_iter<T: IntoIterator<Item = Right>>(iter: T) -> Rights {
        let mut set = Rights::EMPTY;
        for right in iter {
            set.insert(right);
        }
        set
    }
}

impl IntoIterator for Rights {
    type Item = Right;
    type IntoIter = RightsIter;

    fn into_iter(self) -> RightsIter {
        self.iter()
    }
}

impl core::ops::BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        self.union(rhs)
    }
}

impl core::ops::BitOrAssign for Rights {
    fn bitor_assign(&mut self, rhs: Rights) {
        self.0 |= rhs.0;
    }
}

impl core::ops::BitAnd for Rights {
    type Output = Rights;
    fn bitand(self, rhs: Rights) -> Rights {
        self.intersection(rhs)
    }
}

impl core::ops::Sub for Rights {
    type Output = Rights;
    fn sub(self, rhs: Rights) -> Rights {
        self.difference(rhs)
    }
}

impl fmt::Display for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        let mut first = true;
        for right in self.iter() {
            if !first && matches!(right, Right::Custom(_)) {
                write!(f, " ")?;
            }
            write!(f, "{right}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rights({self})")
    }
}

/// Iterator over the rights in a [`Rights`] set, in bit order.
#[derive(Clone, Debug)]
pub struct RightsIter(u16);

impl Iterator for RightsIter {
    type Item = Right;

    fn next(&mut self) -> Option<Right> {
        if self.0 == 0 {
            return None;
        }
        let bit = self.0.trailing_zeros() as u8;
        self.0 &= self.0 - 1;
        Right::from_index(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RightsIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_rights_round_trip_through_index() {
        for right in Right::all() {
            assert_eq!(Right::from_index(right.index()), Some(right));
        }
    }

    #[test]
    fn named_rights_round_trip_through_text() {
        for right in Right::all() {
            let text = right.to_string();
            assert_eq!(Right::parse(&text), Some(right), "{text}");
        }
    }

    #[test]
    fn custom_rejects_named_and_out_of_range_indices() {
        for idx in 0..5 {
            assert!(Right::custom(idx).is_none());
        }
        assert!(Right::custom(16).is_none());
        assert!(Right::custom(255).is_none());
    }

    #[test]
    fn set_operations_behave_like_sets() {
        let rw = Rights::RW;
        let wt = Rights::from([Right::Write, Right::Take]);
        assert_eq!(rw.union(wt).len(), 3);
        assert_eq!(rw.intersection(wt), Rights::W);
        assert_eq!(rw.difference(wt), Rights::R);
        assert!(rw.contains_all(Rights::R));
        assert!(!wt.contains_all(rw));
        assert!(rw.intersects(wt));
        assert!(!Rights::T.intersects(Rights::G));
    }

    #[test]
    fn insert_and_remove_report_change() {
        let mut set = Rights::EMPTY;
        assert!(set.insert(Right::Take));
        assert!(!set.insert(Right::Take));
        assert!(set.remove(Right::Take));
        assert!(!set.remove(Right::Take));
        assert!(set.is_empty());
    }

    #[test]
    fn display_concatenates_single_letter_rights() {
        let set = Rights::from([Right::Grant, Right::Read, Right::Take]);
        assert_eq!(set.to_string(), "rtg");
        assert_eq!(Rights::EMPTY.to_string(), "∅");
    }

    #[test]
    fn display_round_trips_with_custom_rights() {
        let set = Rights::from([Right::Read, Right::Custom(5), Right::Custom(12)]);
        let text = set.to_string();
        assert_eq!(Rights::parse(&text).unwrap(), set);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Rights::parse("x").is_err());
        assert!(Rights::parse("c99").is_err());
        assert!(Rights::parse("c4").is_err());
    }

    #[test]
    fn iterator_yields_sorted_members() {
        let set = Rights::from([Right::Grant, Right::Read]);
        let members: Vec<Right> = set.iter().collect();
        assert_eq!(members, vec![Right::Read, Right::Grant]);
        assert_eq!(set.iter().len(), 2);
    }

    #[test]
    fn bits_round_trip() {
        let set = Rights::from([Right::Execute, Right::Custom(15)]);
        assert_eq!(Rights::from_bits(set.bits()), set);
    }
}
