//! The [`graph!`] construction macro.

/// Builds a [`ProtectionGraph`](crate::ProtectionGraph) from a readable
/// edge-list description, binding each vertex name to a local variable.
///
/// ```text
/// graph! {
///     subjects: a, b;          // bound as `a`, `b`
///     objects: f;              // bound as `f`
///     a => b: t g;             // explicit edge with rights {t, g}
///     b => f: r w;
///     implicit a => f: r;      // implicit edge
/// }
/// ```
///
/// Expands to a tuple `(graph, ...)`? No — it expands to a block that
/// defines the bindings and evaluates to the graph, so use it as:
///
/// # Examples
///
/// ```
/// use tg_graph::{graph, Right};
///
/// let (g, [a, b, f]) = graph! {
///     subjects: a, b;
///     objects: f;
///     a => b: t;
///     b => f: r w;
///     implicit a => f: r;
/// };
/// assert!(g.has_explicit(a, b, Right::Take));
/// assert!(g.rights(a, f).implicit().contains(Right::Read));
/// assert_eq!(g.vertex(b).name, "b");
/// ```
///
/// The second tuple element is an array of all vertex ids in declaration
/// order (subjects first), so callers can destructure by position.
#[macro_export]
macro_rules! graph {
    (
        subjects: $($s:ident),* ;
        objects: $($o:ident),* ;
        $($rest:tt)*
    ) => {{
        let mut g = $crate::ProtectionGraph::new();
        $(let $s = g.add_subject(stringify!($s));)*
        $(let $o = g.add_object(stringify!($o));)*
        $crate::graph!(@edges g, $($rest)*);
        (g, [$($s,)* $($o),*])
    }};
    // No objects.
    (
        subjects: $($s:ident),* ;
        $($rest:tt)*
    ) => {{
        let mut g = $crate::ProtectionGraph::new();
        $(let $s = g.add_subject(stringify!($s));)*
        $crate::graph!(@edges g, $($rest)*);
        (g, [$($s),*])
    }};
    (@edges $g:ident, ) => {};
    (@edges $g:ident, implicit $src:ident => $dst:ident : $($right:ident)+ ; $($rest:tt)*) => {
        $g.add_implicit_edge(
            $src,
            $dst,
            $crate::Rights::parse(concat!($(stringify!($right)),+)).expect("valid rights"),
        )
        .expect("valid implicit edge");
        $crate::graph!(@edges $g, $($rest)*);
    };
    (@edges $g:ident, $src:ident => $dst:ident : $($right:ident)+ ; $($rest:tt)*) => {
        $g.add_edge(
            $src,
            $dst,
            $crate::Rights::parse(concat!($(stringify!($right)),+)).expect("valid rights"),
        )
        .expect("valid edge");
        $crate::graph!(@edges $g, $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::{Right, Rights};

    #[test]
    fn builds_subjects_objects_and_edges() {
        let (g, [x, y, o]) = graph! {
            subjects: x, y;
            objects: o;
            x => y: t g;
            y => o: r w e;
        };
        assert!(g.is_subject(x));
        assert!(g.is_subject(y));
        assert!(g.is_object(o));
        assert_eq!(g.rights(x, y).explicit(), Rights::TG);
        assert!(g.has_explicit(y, o, Right::Execute));
        assert_eq!(g.vertex(o).name, "o");
    }

    #[test]
    fn subjects_only_form() {
        let (g, [a, b]) = graph! {
            subjects: a, b;
            a => b: r;
        };
        assert_eq!(g.vertex_count(), 2);
        assert!(g.has_explicit(a, b, Right::Read));
    }

    #[test]
    fn implicit_edges_and_empty_edge_list() {
        let (g, [a, o]) = graph! {
            subjects: a;
            objects: o;
            implicit a => o: r;
        };
        assert!(g.rights(a, o).implicit().contains(Right::Read));
        let (g2, [s]) = graph! {
            subjects: s;
        };
        assert_eq!(g2.vertex_count(), 1);
        assert!(g2.is_subject(s));
    }
}
