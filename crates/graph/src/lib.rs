//! Protection-graph substrate for the Take-Grant Protection Model.
//!
//! A *protection graph* (Bishop, "Hierarchical Take-Grant Protection
//! Systems", SOSP 1981, §1) is a finite directed graph with two kinds of
//! vertices — active **subjects** and passive **objects** — whose edges are
//! labelled with subsets of a finite set *R* of rights. Two kinds of edges
//! coexist:
//!
//! * **explicit** edges record authority known to the protection system
//!   (they are the only edges the de jure rules may manipulate), and
//! * **implicit** edges record *potential information flow* exhibited by the
//!   de facto rules; they never represent recorded authority.
//!
//! This crate provides the graph data structure itself plus small reusable
//! graph algorithms (union–find, Tarjan SCC) and interchange formats (a
//! human-readable text format and Graphviz DOT output). The rewriting rules
//! live in `tg-rules`; the decision procedures live in `tg-analysis`.
//!
//! # Examples
//!
//! ```
//! use tg_graph::{ProtectionGraph, Rights, Right};
//!
//! let mut g = ProtectionGraph::new();
//! let user = g.add_subject("user");
//! let file = g.add_object("file");
//! g.add_edge(user, file, Rights::from([Right::Read, Right::Write])).unwrap();
//! assert!(g.rights(user, file).explicit().contains(Right::Read));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
mod build;
mod csr;
pub mod diag;
mod dot;
mod error;
mod graph;
pub mod legacy;
mod rights;
mod span;
pub mod stats;
mod text;
mod vertex;

pub use diag::{Diagnostic, Fix, FixIt, LabeledSpan, Severity};
pub use dot::DotOptions;
pub use error::GraphError;
pub use graph::{EdgeRecord, EdgeRights, ProtectionGraph};
pub use legacy::LegacyGraph;
pub use rights::{Right, Rights, RightsIter};
pub use span::{EdgeSite, SourceMap, Span};
pub use text::{parse_graph, parse_graph_with_spans, render_graph, ParseError};
pub use vertex::{Vertex, VertexId, VertexKind};
