//! Vertices of a protection graph.

use core::fmt;

/// Identifier of a vertex inside one [`ProtectionGraph`].
///
/// Ids are dense indices assigned in creation order; vertices are never
/// deleted (the Take-Grant rules have no vertex-removal rule), so an id
/// obtained from a graph stays valid for that graph's lifetime.
///
/// [`ProtectionGraph`]: crate::ProtectionGraph
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VertexId(pub(crate) u32);

impl VertexId {
    /// The dense index of this vertex (0-based creation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index. The caller must ensure the index
    /// refers to a vertex of the intended graph; the graph's accessors
    /// return errors for out-of-range ids.
    pub fn from_index(index: usize) -> VertexId {
        VertexId(index as u32)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Whether a vertex is an active subject or a passive object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VertexKind {
    /// An active vertex (a user or process); the only kind that may invoke
    /// rewriting rules.
    Subject,
    /// A completely passive vertex (a file or document); it does nothing.
    Object,
}

impl VertexKind {
    /// Whether this is [`VertexKind::Subject`].
    pub fn is_subject(self) -> bool {
        matches!(self, VertexKind::Subject)
    }

    /// Whether this is [`VertexKind::Object`].
    pub fn is_object(self) -> bool {
        matches!(self, VertexKind::Object)
    }
}

impl fmt::Display for VertexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VertexKind::Subject => write!(f, "subject"),
            VertexKind::Object => write!(f, "object"),
        }
    }
}

/// A vertex record: kind plus a human-readable name.
///
/// Names are free-form and need not be unique, although the text format
/// ([`crate::parse_graph`]) requires uniqueness so edges can refer to
/// vertices by name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Vertex {
    /// Subject or object.
    pub kind: VertexKind,
    /// Display name.
    pub name: String,
}

impl Vertex {
    /// Creates a vertex record.
    pub fn new(kind: VertexKind, name: impl Into<String>) -> Vertex {
        Vertex {
            kind,
            name: name.into(),
        }
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_round_trips_index() {
        let id = VertexId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "v17");
    }

    #[test]
    fn kind_predicates() {
        assert!(VertexKind::Subject.is_subject());
        assert!(!VertexKind::Subject.is_object());
        assert!(VertexKind::Object.is_object());
        assert!(!VertexKind::Object.is_subject());
    }

    #[test]
    fn vertex_display_includes_kind_and_name() {
        let v = Vertex::new(VertexKind::Subject, "alice");
        assert_eq!(v.to_string(), "subject alice");
    }
}
