//! The reference adjacency-map layout, kept as a differential oracle.
//!
//! Before the CSR refactor, [`ProtectionGraph`]
//! stored its adjacency as one `BTreeMap<u32, EdgeRights>` per vertex
//! plus a `BTreeSet<u32>` reverse index. That layout is preserved here,
//! verbatim in behavior, as [`LegacyGraph`]: the scale-tier differential
//! suites drive the same mutation scripts through both layouts and
//! require identical read-back — edge streams, labels, counts — and,
//! after [`LegacyGraph::to_graph`], byte-identical audit diagnostics and
//! query answers. The legacy layout is the *specification*; the CSR core
//! is the implementation under test.
//!
//! Nothing in the production path uses this module.

use std::collections::{BTreeMap, BTreeSet};

use crate::{
    EdgeRecord, EdgeRights, GraphError, ProtectionGraph, Rights, Vertex, VertexId, VertexKind,
};

/// A protection graph in the pre-CSR adjacency-map layout. Mirrors the
/// mutation and read API of [`ProtectionGraph`] exactly, including error
/// behavior and iteration order.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct LegacyGraph {
    vertices: Vec<Vertex>,
    /// Outgoing adjacency: `out[v]` maps successor index to labels.
    out: Vec<BTreeMap<u32, EdgeRights>>,
    /// Reverse index: `inc[v]` is the set of predecessors with a live edge.
    inc: Vec<BTreeSet<u32>>,
}

impl LegacyGraph {
    /// Creates an empty graph.
    pub fn new() -> LegacyGraph {
        LegacyGraph::default()
    }

    fn check(&self, id: VertexId) -> Result<(), GraphError> {
        if id.index() < self.vertices.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownVertex(id))
        }
    }

    fn check_pair(&self, src: VertexId, dst: VertexId) -> Result<(), GraphError> {
        self.check(src)?;
        self.check(dst)?;
        if src == dst {
            return Err(GraphError::SelfEdge(src));
        }
        Ok(())
    }

    /// Adds a vertex of the given kind and returns its id.
    pub fn add_vertex(&mut self, kind: VertexKind, name: impl Into<String>) -> VertexId {
        let id = VertexId::from_index(self.vertices.len());
        self.vertices.push(Vertex::new(kind, name));
        self.out.push(BTreeMap::new());
        self.inc.push(BTreeSet::new());
        id
    }

    /// Adds a subject vertex.
    pub fn add_subject(&mut self, name: impl Into<String>) -> VertexId {
        self.add_vertex(VertexKind::Subject, name)
    }

    /// Adds an object vertex.
    pub fn add_object(&mut self, name: impl Into<String>) -> VertexId {
        self.add_vertex(VertexKind::Object, name)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of ordered vertex pairs carrying at least one right.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(BTreeMap::len).sum()
    }

    /// Number of ordered vertex pairs carrying at least one explicit right.
    pub fn explicit_edge_count(&self) -> usize {
        self.out
            .iter()
            .map(|m| m.values().filter(|e| !e.explicit.is_empty()).count())
            .sum()
    }

    /// The vertex record for `id`.
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.vertices[id.index()]
    }

    /// The labels of the ordered pair `(src, dst)`.
    pub fn rights(&self, src: VertexId, dst: VertexId) -> EdgeRights {
        self.out[src.index()]
            .get(&(dst.index() as u32))
            .copied()
            .unwrap_or_default()
    }

    /// Finds the first vertex with the given name.
    pub fn find_by_name(&self, name: &str) -> Option<VertexId> {
        self.vertices
            .iter()
            .position(|v| v.name == name)
            .map(VertexId::from_index)
    }

    /// Adds `rights` to the explicit label of `(src, dst)`. Returns
    /// whether the label changed.
    pub fn add_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<bool, GraphError> {
        self.add_rights(src, dst, rights, false)
    }

    /// Adds `rights` to the implicit label of `(src, dst)`. Returns
    /// whether the label changed.
    pub fn add_implicit_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<bool, GraphError> {
        self.add_rights(src, dst, rights, true)
    }

    fn add_rights(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
        implicit: bool,
    ) -> Result<bool, GraphError> {
        self.check_pair(src, dst)?;
        if rights.is_empty() {
            return Err(GraphError::EmptyRights);
        }
        let cell = self.out[src.index()].entry(dst.index() as u32).or_default();
        let before = *cell;
        if implicit {
            cell.implicit |= rights;
        } else {
            cell.explicit |= rights;
        }
        let changed = *cell != before;
        if before.is_empty() {
            self.inc[dst.index()].insert(src.index() as u32);
        }
        Ok(changed)
    }

    /// Removes `rights` from the explicit label of `(src, dst)`.
    pub fn remove_explicit_rights(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<Rights, GraphError> {
        self.check_pair(src, dst)?;
        let Some(cell) = self.out[src.index()].get_mut(&(dst.index() as u32)) else {
            return Ok(Rights::EMPTY);
        };
        let removed = cell.explicit & rights;
        cell.explicit = cell.explicit - rights;
        if cell.is_empty() {
            self.out[src.index()].remove(&(dst.index() as u32));
            self.inc[dst.index()].remove(&(src.index() as u32));
        }
        Ok(removed)
    }

    /// Removes `rights` from the implicit label of `(src, dst)`.
    pub fn remove_implicit_rights(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<Rights, GraphError> {
        self.check_pair(src, dst)?;
        let Some(cell) = self.out[src.index()].get_mut(&(dst.index() as u32)) else {
            return Ok(Rights::EMPTY);
        };
        let removed = cell.implicit & rights;
        cell.implicit = cell.implicit - rights;
        if cell.is_empty() {
            self.out[src.index()].remove(&(dst.index() as u32));
            self.inc[dst.index()].remove(&(src.index() as u32));
        }
        Ok(removed)
    }

    /// Retracts the most recently added vertex with every incident edge.
    pub fn pop_vertex(&mut self, id: VertexId) -> Result<(), GraphError> {
        self.check(id)?;
        if id.index() + 1 != self.vertices.len() {
            return Err(GraphError::NotLastVertex(id));
        }
        let idx = id.index();
        for src in std::mem::take(&mut self.inc[idx]) {
            self.out[src as usize].remove(&(idx as u32));
        }
        for &dst in self.out[idx].keys() {
            self.inc[dst as usize].remove(&(idx as u32));
        }
        self.out.pop();
        self.inc.pop();
        self.vertices.pop();
        Ok(())
    }

    /// Deletes every implicit right in the graph.
    pub fn clear_implicit(&mut self) {
        let inc = &mut self.inc;
        for (v, map) in self.out.iter_mut().enumerate() {
            map.retain(|dst, cell| {
                cell.implicit = Rights::EMPTY;
                let keep = !cell.explicit.is_empty();
                if !keep {
                    inc[*dst as usize].remove(&(v as u32));
                }
                keep
            });
        }
    }

    /// Iterates over every edge record in `(src, dst)` order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRecord> + '_ {
        self.out.iter().enumerate().flat_map(|(src, map)| {
            map.iter().map(move |(dst, rights)| EdgeRecord {
                src: VertexId::from_index(src),
                dst: VertexId::from_index(*dst as usize),
                rights: *rights,
            })
        })
    }

    /// Iterates over the out-edges of `v` as `(successor, labels)` pairs.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeRights)> + '_ {
        self.out[v.index()]
            .iter()
            .map(|(dst, rights)| (VertexId::from_index(*dst as usize), *rights))
    }

    /// Iterates over the in-edges of `v` as `(predecessor, labels)` pairs.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeRights)> + '_ {
        self.inc[v.index()].iter().map(move |src| {
            let rights = self.out[*src as usize]
                .get(&(v.index() as u32))
                .copied()
                .unwrap_or_default();
            (VertexId::from_index(*src as usize), rights)
        })
    }

    /// Rebuilds a [`ProtectionGraph`] with this graph's exact logical
    /// content, packed fresh (empty overlay). The differential suites
    /// compare an overlay-laden CSR graph against this clean rebuild, so
    /// divergence pins the bug to the overlay/merge machinery.
    pub fn to_graph(&self) -> ProtectionGraph {
        let mut g = ProtectionGraph::with_capacity(self.vertices.len());
        for v in &self.vertices {
            g.add_vertex(v.kind, v.name.clone());
        }
        for e in self.edges() {
            if !e.rights.explicit.is_empty() {
                g.add_edge(e.src, e.dst, e.rights.explicit)
                    .expect("legacy edge replays");
            }
            if !e.rights.implicit.is_empty() {
                g.add_implicit_edge(e.src, e.dst, e.rights.implicit)
                    .expect("legacy edge replays");
            }
        }
        g.pack();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_graph_round_trips_content() {
        let mut legacy = LegacyGraph::new();
        let a = legacy.add_subject("a");
        let b = legacy.add_subject("b");
        let o = legacy.add_object("o");
        legacy.add_edge(a, b, Rights::TG).unwrap();
        legacy.add_edge(b, o, Rights::RW).unwrap();
        legacy.add_implicit_edge(a, o, Rights::R).unwrap();
        legacy.remove_explicit_rights(b, o, Rights::W).unwrap();
        let g = legacy.to_graph();
        assert_eq!(g.vertex_count(), legacy.vertex_count());
        assert_eq!(g.edge_count(), legacy.edge_count());
        let got: Vec<EdgeRecord> = g.edges().collect();
        let want: Vec<EdgeRecord> = legacy.edges().collect();
        assert_eq!(got, want);
    }
}
