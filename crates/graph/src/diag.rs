//! The diagnostic data model shared by the static analyzer and the
//! reference monitor.
//!
//! A [`Diagnostic`] is one finding about a protection graph: a stable code
//! (`TG001`…), a [`Severity`], a human-readable message, source [`Span`]s
//! into the graph's text file (when the graph was parsed from text), an
//! optional *witness* (the offending path or link, rendered), and an
//! optional machine-applicable [`Fix`].
//!
//! The model lives in `tg-graph` — below both `tg-lint` (which produces
//! most diagnostics) and `tg-hierarchy` (whose audit produces the
//! edge-invariant diagnostics and whose quarantine *applies* fix-its) — so
//! the monitor can be a thin consumer of lint output without a dependency
//! cycle.

use crate::span::Span;
use crate::{GraphError, ProtectionGraph, Rights, VertexId};

/// How serious a diagnostic is. Ordered: `Info < Warn < Error`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Advisory: worth knowing, never a policy violation.
    Info,
    /// Suspicious: a latent exposure (e.g. a theft channel).
    Warn,
    /// A security violation: the graph breaches its hierarchy.
    Error,
}

impl Severity {
    /// The lowercase display name (`"error"`, `"warn"`, `"info"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a severity name (accepts `warn`/`warning`).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warn" | "warning" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl core::fmt::Display for Severity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A source span with a short label explaining what it points at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LabeledSpan {
    /// The region, if the graph element has a recorded source location.
    pub span: Option<Span>,
    /// What the region shows (e.g. ``"the read-up edge `lo -> hi`"``).
    pub label: String,
}

impl LabeledSpan {
    /// A labeled span (location optional).
    pub fn new(span: Option<Span>, label: impl Into<String>) -> LabeledSpan {
        LabeledSpan {
            span,
            label: label.into(),
        }
    }
}

/// A machine-applicable graph edit repairing one diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FixIt {
    /// Remove `rights` from the explicit label of `(src, dst)`.
    StripExplicit {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
        /// Rights to remove.
        rights: Rights,
    },
    /// Remove `rights` from the implicit label of `(src, dst)`.
    StripImplicit {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
        /// Rights to remove.
        rights: Rights,
    },
    /// Remove the `(src, dst)` edge entirely (both labels).
    QuarantineEdge {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
    },
}

impl FixIt {
    /// Applies the edit to `graph`. Returns whether anything was removed.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] on stale vertex ids.
    pub fn apply(&self, graph: &mut ProtectionGraph) -> Result<bool, GraphError> {
        match *self {
            FixIt::StripExplicit { src, dst, rights } => {
                Ok(!graph.remove_explicit_rights(src, dst, rights)?.is_empty())
            }
            FixIt::StripImplicit { src, dst, rights } => {
                Ok(!graph.remove_implicit_rights(src, dst, rights)?.is_empty())
            }
            FixIt::QuarantineEdge { src, dst } => {
                let removed_e = graph.remove_explicit_rights(src, dst, Rights::ALL)?;
                let removed_i = graph.remove_implicit_rights(src, dst, Rights::ALL)?;
                Ok(!(removed_e.is_empty() && removed_i.is_empty()))
            }
        }
    }

    /// The edge the edit touches.
    pub fn edge(&self) -> (VertexId, VertexId) {
        match *self {
            FixIt::StripExplicit { src, dst, .. }
            | FixIt::StripImplicit { src, dst, .. }
            | FixIt::QuarantineEdge { src, dst } => (src, dst),
        }
    }
}

/// A [`FixIt`] with its human-readable description (rendered once, at
/// diagnosis time, while vertex names are at hand).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fix {
    /// The edit.
    pub edit: FixIt,
    /// Description, e.g. ``"strip `r` from edge lo -> hi"``.
    pub label: String,
}

impl Fix {
    /// A described edit.
    pub fn new(edit: FixIt, label: impl Into<String>) -> Fix {
        Fix {
            edit,
            label: label.into(),
        }
    }
}

/// One finding of the static analyzer (or the monitor's audit).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable lint code, e.g. `"TG001"`.
    pub code: &'static str,
    /// Severity after configuration (deny-lists may promote it).
    pub severity: Severity,
    /// One-line human-readable message.
    pub message: String,
    /// The main location the finding points at.
    pub primary: LabeledSpan,
    /// Additional locations (e.g. the other end of a breach).
    pub secondary: Vec<LabeledSpan>,
    /// Rendered witness (an rw-path, bridge, or derivation sketch).
    pub witness: Option<String>,
    /// Machine-applicable repair, if one exists.
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// A minimal diagnostic; extend via the builder-style methods.
    pub fn new(
        code: &'static str,
        severity: Severity,
        message: impl Into<String>,
        primary: LabeledSpan,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            primary,
            secondary: Vec::new(),
            witness: None,
            fix: None,
        }
    }

    /// Attaches a secondary span.
    pub fn with_secondary(mut self, span: LabeledSpan) -> Diagnostic {
        self.secondary.push(span);
        self
    }

    /// Attaches a witness rendering.
    pub fn with_witness(mut self, witness: impl Into<String>) -> Diagnostic {
        self.witness = Some(witness.into());
        self
    }

    /// Attaches a fix-it.
    pub fn with_fix(mut self, fix: Fix) -> Diagnostic {
        self.fix = Some(fix);
        self
    }

    /// Sort key: errors first, then code, then location.
    pub fn sort_key(&self) -> (core::cmp::Reverse<Severity>, &'static str, usize, usize) {
        let (line, col) = self
            .primary
            .span
            .map(|s| (s.line, s.col))
            .unwrap_or((usize::MAX, usize::MAX));
        (core::cmp::Reverse(self.severity), self.code, line, col)
    }

    /// Canonical *total* order: [`sort_key`](Diagnostic::sort_key)
    /// extended with the message as a tie-breaker. Two distinct findings
    /// never share a message (messages name the vertices involved), so
    /// sorting by this comparator yields the same byte sequence no matter
    /// what order the diagnostics were produced in — the determinism
    /// contract parallel evaluation (`tg_par`) relies on at merge points.
    pub fn canonical_cmp(&self, other: &Diagnostic) -> core::cmp::Ordering {
        self.sort_key()
            .cmp(&other.sort_key())
            .then_with(|| self.message.cmp(&other.message))
            .then_with(|| self.primary.label.cmp(&other.primary.label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_parses() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
        assert_eq!(Severity::parse("warning"), Some(Severity::Warn));
        assert_eq!(Severity::parse("fatal"), None);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn fixits_edit_the_graph() {
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        g.add_edge(a, b, Rights::RW).unwrap();
        g.add_implicit_edge(a, b, Rights::R).unwrap();

        let strip = FixIt::StripExplicit {
            src: a,
            dst: b,
            rights: Rights::R,
        };
        assert!(strip.apply(&mut g).unwrap());
        assert!(!strip.apply(&mut g).unwrap(), "second apply is a no-op");
        assert_eq!(g.rights(a, b).explicit(), Rights::W);

        let quarantine = FixIt::QuarantineEdge { src: a, dst: b };
        assert!(quarantine.apply(&mut g).unwrap());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(quarantine.edge(), (a, b));
    }

    #[test]
    fn diagnostics_sort_errors_first() {
        let warn = Diagnostic::new(
            "TG006",
            Severity::Warn,
            "w",
            LabeledSpan::new(Some(Span::new(1, 1, 1)), "x"),
        );
        let error = Diagnostic::new(
            "TG001",
            Severity::Error,
            "e",
            LabeledSpan::new(Some(Span::new(9, 1, 1)), "y"),
        );
        let mut v = [warn, error];
        v.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        assert_eq!(v[0].code, "TG001");
    }
}
