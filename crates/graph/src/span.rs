//! Source spans for the text interchange format.
//!
//! The parser in [`text`](crate::text) can record where every vertex and
//! edge of a graph was declared. Downstream tooling (the `tg-lint` static
//! analyzer, error reporting) uses these spans to point diagnostics at the
//! offending token of the original file.

use std::collections::HashMap;

use crate::VertexId;

/// A half-open region of one source line: 1-based `line`, 1-based starting
/// `col` and a `len` in characters (not bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based starting column, counted in characters.
    pub col: usize,
    /// Length in characters (0 for a bare position).
    pub len: usize,
}

impl Span {
    /// A span covering `len` characters at `line:col`.
    pub fn new(line: usize, col: usize, len: usize) -> Span {
        Span { line, col, len }
    }

    /// Whether this span carries a real position (line 0 means "unknown").
    pub fn is_known(self) -> bool {
        self.line > 0
    }
}

impl core::fmt::Display for Span {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The source locations of one `edge`/`implicit` directive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeSite {
    /// The whole directive (keyword through last rights token).
    pub directive: Span,
    /// The rights list after the `:`.
    pub rights: Span,
}

/// Maps graph elements back to their declaration sites in the source text.
///
/// Produced by [`parse_graph_with_spans`](crate::parse_graph_with_spans).
/// When several directives merge rights onto the same ordered pair, the
/// first directive's site is kept.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct SourceMap {
    /// Name-token span of each vertex, indexed by vertex id.
    vertex_spans: Vec<Span>,
    /// `(src, dst, implicit)` → first declaring directive.
    edges: HashMap<(u32, u32, bool), EdgeSite>,
}

impl SourceMap {
    /// Records the declaration span of the vertex `id` (ids are dense and
    /// recorded in creation order).
    pub(crate) fn push_vertex(&mut self, span: Span) {
        self.vertex_spans.push(span);
    }

    /// Records an edge directive site; the first site per key wins.
    pub(crate) fn record_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        implicit: bool,
        site: EdgeSite,
    ) {
        self.edges
            .entry((src.index() as u32, dst.index() as u32, implicit))
            .or_insert(site);
    }

    /// The span of the name token declaring `vertex`, if recorded.
    pub fn vertex_span(&self, vertex: VertexId) -> Option<Span> {
        self.vertex_spans.get(vertex.index()).copied()
    }

    /// The directive site of the `(src, dst)` edge with the given
    /// explicit/implicit polarity.
    pub fn edge_site(&self, src: VertexId, dst: VertexId, implicit: bool) -> Option<EdgeSite> {
        self.edges
            .get(&(src.index() as u32, dst.index() as u32, implicit))
            .copied()
    }

    /// The span of the directive declaring the `(src, dst)` edge,
    /// preferring the explicit declaration over the implicit one.
    pub fn edge_span(&self, src: VertexId, dst: VertexId) -> Option<Span> {
        self.edge_site(src, dst, false)
            .or_else(|| self.edge_site(src, dst, true))
            .map(|site| site.directive)
    }

    /// Number of vertices with recorded spans.
    pub fn vertex_count(&self) -> usize {
        self.vertex_spans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_display_as_line_col() {
        assert_eq!(Span::new(3, 7, 2).to_string(), "3:7");
        assert!(Span::new(3, 7, 2).is_known());
        assert!(!Span::default().is_known());
    }

    #[test]
    fn first_edge_site_wins() {
        let mut map = SourceMap::default();
        let a = VertexId::from_index(0);
        let b = VertexId::from_index(1);
        let first = EdgeSite {
            directive: Span::new(1, 1, 10),
            rights: Span::new(1, 8, 1),
        };
        let second = EdgeSite {
            directive: Span::new(2, 1, 10),
            rights: Span::new(2, 8, 1),
        };
        map.record_edge(a, b, false, first);
        map.record_edge(a, b, false, second);
        assert_eq!(map.edge_span(a, b), Some(first.directive));
        assert_eq!(map.edge_site(a, b, true), None);
    }
}
