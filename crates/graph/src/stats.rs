//! Summary statistics over a protection graph, used by `tgq show` and the
//! workload reports.

use crate::{ProtectionGraph, Right};

/// Aggregate counts over a protection graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GraphStats {
    /// Number of subjects.
    pub subjects: usize,
    /// Number of objects.
    pub objects: usize,
    /// Ordered pairs with at least one explicit right.
    pub explicit_edges: usize,
    /// Ordered pairs with at least one implicit right.
    pub implicit_edges: usize,
    /// `right_counts[right.index()]` = number of explicit edges carrying
    /// that right.
    pub right_counts: [usize; Right::COUNT],
    /// Largest explicit out-degree over all vertices.
    pub max_out_degree: usize,
    /// Largest explicit in-degree over all vertices.
    pub max_in_degree: usize,
}

impl GraphStats {
    /// Computes the statistics in one pass over the edges.
    pub fn compute(graph: &ProtectionGraph) -> GraphStats {
        let mut stats = GraphStats {
            subjects: graph.subjects().count(),
            objects: graph.objects().count(),
            explicit_edges: 0,
            implicit_edges: 0,
            right_counts: [0; Right::COUNT],
            max_out_degree: 0,
            max_in_degree: 0,
        };
        let n = graph.vertex_count();
        let mut out_deg = vec![0usize; n];
        let mut in_deg = vec![0usize; n];
        for e in graph.edges() {
            if !e.rights.explicit.is_empty() {
                stats.explicit_edges += 1;
                out_deg[e.src.index()] += 1;
                in_deg[e.dst.index()] += 1;
                for right in e.rights.explicit {
                    stats.right_counts[right.index() as usize] += 1;
                }
            }
            if !e.rights.implicit.is_empty() {
                stats.implicit_edges += 1;
            }
        }
        stats.max_out_degree = out_deg.into_iter().max().unwrap_or(0);
        stats.max_in_degree = in_deg.into_iter().max().unwrap_or(0);
        stats
    }

    /// The number of explicit edges carrying `right`.
    pub fn count_of(&self, right: Right) -> usize {
        self.right_counts[right.index() as usize]
    }

    /// A one-line rights histogram over the named rights, e.g.
    /// `r:12 w:7 t:3 g:1 e:0`.
    pub fn rights_histogram(&self) -> String {
        let named = [
            Right::Read,
            Right::Write,
            Right::Take,
            Right::Grant,
            Right::Execute,
        ];
        named
            .iter()
            .map(|&r| format!("{r}:{}", self.count_of(r)))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Convenience wrapper for [`GraphStats::compute`].
pub fn stats(graph: &ProtectionGraph) -> GraphStats {
    GraphStats::compute(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rights;

    #[test]
    fn counts_everything_once() {
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        let o = g.add_object("o");
        g.add_edge(a, b, Rights::TG).unwrap();
        g.add_edge(a, o, Rights::RW).unwrap();
        g.add_edge(b, o, Rights::R).unwrap();
        g.add_implicit_edge(b, a, Rights::R).unwrap();
        let s = stats(&g);
        assert_eq!(s.subjects, 2);
        assert_eq!(s.objects, 1);
        assert_eq!(s.explicit_edges, 3);
        assert_eq!(s.implicit_edges, 1);
        assert_eq!(s.count_of(Right::Read), 2);
        assert_eq!(s.count_of(Right::Take), 1);
        assert_eq!(s.count_of(Right::Execute), 0);
        assert_eq!(s.max_out_degree, 2); // a
        assert_eq!(s.max_in_degree, 2); // o
        assert_eq!(s.rights_histogram(), "r:2 w:1 t:1 g:1 e:0");
    }

    #[test]
    fn empty_graph_is_all_zero() {
        let s = stats(&ProtectionGraph::new());
        assert_eq!(s.subjects + s.objects, 0);
        assert_eq!(s.max_out_degree, 0);
        assert_eq!(s.explicit_edges, 0);
    }
}
