//! The packed graph core: CSR parallel arrays plus a mutation overlay.
//!
//! [`ProtectionGraph`](crate::ProtectionGraph) stores its adjacency in
//! two halves:
//!
//! * [`CsrCore`] — the *packed* edges in compressed-sparse-row form:
//!   three parallel arrays (`offsets`, `targets`, `rights`) for forward
//!   traversal plus a reverse CSR (`in_offsets`, `in_sources`,
//!   `in_rights`) for predecessor queries with their labels inline.
//!   Immutable between re-packs, so a whole-graph
//!   scan (the Corollary 5.6 audit, the Theorem 5.5 closure) is a linear
//!   walk over contiguous memory instead of a pointer chase through
//!   per-vertex tree maps.
//! * [`Overlay`] — a small sorted edit set shadowing the packed core.
//!   Every mutation writes the pair's *absolute* post-state here
//!   (`Some(rights)` = the pair carries exactly these labels, `None` =
//!   tombstone, the pair carries nothing), so a read never has to merge
//!   deltas: the overlay answer, when present, is the answer.
//!
//! When the overlay grows past the re-pack threshold the graph folds it
//! into a fresh `CsrCore` and clears it — an O(V + E) pass amortized
//! over the Θ(E / threshold-fraction) mutations that filled the overlay.
//! Logical content is invariant under re-packing, which is what keeps
//! `tg_inc`'s one-edge-recheck contract alive: the index never observes
//! a re-pack, only the mutations around it.

use std::collections::{btree_map, btree_set, BTreeMap, BTreeSet};

use crate::algo::BitSet;
use crate::graph::EdgeRights;

/// The packed half of the adjacency: struct-of-arrays CSR, forward and
/// reverse. Rows are vertices `0..rows()`; vertices added after the last
/// re-pack have no row yet and live purely in the overlay.
#[derive(Clone, Default, Debug)]
pub(crate) struct CsrCore {
    /// Forward row boundaries: row `v` is `targets[offsets[v]..offsets[v+1]]`.
    /// Empty (`len == 0`) means zero rows; otherwise `len == rows + 1`.
    offsets: Vec<u32>,
    /// Successor vertex per packed edge, ascending within each row.
    targets: Vec<u32>,
    /// Labels parallel to `targets`.
    rights: Vec<EdgeRights>,
    /// Reverse row boundaries, same convention as `offsets`.
    in_offsets: Vec<u32>,
    /// Predecessor vertex per packed edge, ascending within each row.
    in_sources: Vec<u32>,
    /// Labels parallel to `in_sources`, so a predecessor sweep reads its
    /// rights in O(1) instead of binary-searching the forward row.
    in_rights: Vec<EdgeRights>,
}

impl CsrCore {
    /// Number of packed rows (vertices known at the last re-pack).
    pub(crate) fn rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of packed edges.
    pub(crate) fn edge_len(&self) -> usize {
        self.targets.len()
    }

    /// The packed out-row of `v`: `(targets, rights)` parallel slices,
    /// empty for rows past the packed range.
    #[inline]
    pub(crate) fn row(&self, v: usize) -> (&[u32], &[EdgeRights]) {
        if v + 1 >= self.offsets.len() {
            return (&[], &[]);
        }
        let (lo, hi) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
        (&self.targets[lo..hi], &self.rights[lo..hi])
    }

    /// The packed in-row of `v`: `(predecessors, rights)` parallel slices,
    /// predecessors ascending.
    #[inline]
    pub(crate) fn in_row(&self, v: usize) -> (&[u32], &[EdgeRights]) {
        if v + 1 >= self.in_offsets.len() {
            return (&[], &[]);
        }
        let (lo, hi) = (self.in_offsets[v] as usize, self.in_offsets[v + 1] as usize);
        (&self.in_sources[lo..hi], &self.in_rights[lo..hi])
    }

    /// The packed labels of `(src, dst)`, by binary search within the row.
    #[inline]
    pub(crate) fn get(&self, src: u32, dst: u32) -> Option<EdgeRights> {
        let (targets, rights) = self.row(src as usize);
        targets.binary_search(&dst).ok().map(|i| rights[i])
    }

    /// Packs per-vertex rows (each already sorted by target) into a fresh
    /// core, building the reverse CSR by counting sort over destinations.
    pub(crate) fn from_rows(rows: &[Vec<(u32, EdgeRights)>]) -> CsrCore {
        let n = rows.len();
        let m: usize = rows.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(m);
        let mut rights = Vec::with_capacity(m);
        offsets.push(0);
        for row in rows {
            debug_assert!(row.windows(2).all(|w| w[0].0 < w[1].0), "rows are sorted");
            for &(dst, r) in row {
                targets.push(dst);
                rights.push(r);
            }
            offsets.push(targets.len() as u32);
        }
        // Reverse CSR: count in-degrees, prefix-sum, then scatter sources
        // in ascending src order so each in-row comes out sorted.
        let mut in_degree = vec![0u32; n];
        for &dst in &targets {
            in_degree[dst as usize] += 1;
        }
        let mut in_offsets = Vec::with_capacity(n + 1);
        in_offsets.push(0u32);
        for v in 0..n {
            in_offsets.push(in_offsets[v] + in_degree[v]);
        }
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        let mut in_sources = vec![0u32; m];
        let mut in_rights = vec![EdgeRights::default(); m];
        for (src, row) in rows.iter().enumerate() {
            for &(dst, r) in row {
                let slot = cursor[dst as usize];
                in_sources[slot as usize] = src as u32;
                in_rights[slot as usize] = r;
                cursor[dst as usize] = slot + 1;
            }
        }
        CsrCore {
            offsets,
            targets,
            rights,
            in_offsets,
            in_sources,
            in_rights,
        }
    }
}

/// The mutable half of the adjacency: absolute per-pair states shadowing
/// the packed core, with a reverse index for predecessor queries.
#[derive(Clone, Default, Debug)]
pub(crate) struct Overlay {
    /// `edits[src][dst]`: `Some(rights)` = the pair carries exactly these
    /// labels; `None` = tombstone (the pair carries nothing, hiding any
    /// packed entry).
    edits: BTreeMap<u32, BTreeMap<u32, Option<EdgeRights>>>,
    /// Reverse adjacency of the overlay: every `(src, dst)` edit appears
    /// as `src ∈ rev[dst]`, tombstones included.
    rev: BTreeMap<u32, BTreeSet<u32>>,
    /// Bit `src` set iff `edits` has a row for `src`. Point lookups on
    /// the hot read path test one bit instead of probing the map — after
    /// a re-pack almost every vertex is untouched, and analysis loops
    /// (`can_share` BFS, the Cor 5.6 edge scan) do millions of lookups.
    touched_src: BitSet,
    /// Bit `dst` set iff `rev` has an entry for `dst`.
    touched_dst: BitSet,
    /// Total number of edits (the re-pack trigger).
    len: usize,
}

impl Overlay {
    /// The edit for `(src, dst)`: `None` = no edit (fall through to the
    /// packed core), `Some(state)` = the absolute state.
    #[inline]
    pub(crate) fn get(&self, src: u32, dst: u32) -> Option<Option<EdgeRights>> {
        if !self.touched_src.contains(src as usize) {
            return None;
        }
        self.edits.get(&src).and_then(|row| row.get(&dst)).copied()
    }

    /// Writes the absolute state of `(src, dst)`.
    pub(crate) fn set(&mut self, src: u32, dst: u32, state: Option<EdgeRights>) {
        let row = self.edits.entry(src).or_default();
        if row.insert(dst, state).is_none() {
            self.len += 1;
            self.touched_src.insert(src as usize);
            self.rev.entry(dst).or_default().insert(src);
            self.touched_dst.insert(dst as usize);
        }
    }

    /// Drops the edit for `(src, dst)` entirely, if present.
    pub(crate) fn remove(&mut self, src: u32, dst: u32) {
        if let Some(row) = self.edits.get_mut(&src) {
            if row.remove(&dst).is_some() {
                self.len -= 1;
                if row.is_empty() {
                    self.edits.remove(&src);
                    self.touched_src.remove(src as usize);
                }
                if let Some(set) = self.rev.get_mut(&dst) {
                    set.remove(&src);
                    if set.is_empty() {
                        self.rev.remove(&dst);
                        self.touched_dst.remove(dst as usize);
                    }
                }
            }
        }
    }

    /// Drops every edit whose source is `src` (vertex retraction).
    pub(crate) fn remove_row(&mut self, src: u32) {
        if let Some(row) = self.edits.remove(&src) {
            self.len -= row.len();
            self.touched_src.remove(src as usize);
            for dst in row.keys() {
                if let Some(set) = self.rev.get_mut(dst) {
                    set.remove(&src);
                    if set.is_empty() {
                        self.rev.remove(dst);
                        self.touched_dst.remove(*dst as usize);
                    }
                }
            }
        }
    }

    /// The edit row of `src`, if any edits exist.
    #[inline]
    pub(crate) fn row(&self, src: u32) -> Option<&BTreeMap<u32, Option<EdgeRights>>> {
        if !self.touched_src.contains(src as usize) {
            return None;
        }
        self.edits.get(&src)
    }

    /// The sources with an edit targeting `dst` (tombstones included),
    /// ascending. `None` when no edit targets `dst` (the common case).
    #[inline]
    pub(crate) fn preds(&self, dst: u32) -> Option<btree_set::Iter<'_, u32>> {
        if !self.touched_dst.contains(dst as usize) {
            return None;
        }
        self.rev.get(&dst).map(|set| set.iter())
    }

    /// Number of edits.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether the overlay holds no edits.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every edit (after a re-pack folded them into the core).
    pub(crate) fn clear(&mut self) {
        self.edits.clear();
        self.rev.clear();
        self.touched_src.clear();
        self.touched_dst.clear();
        self.len = 0;
    }
}

/// The merged view of one vertex's out-edges: a sorted two-way merge of
/// the packed row and the overlay edits, overlay shadowing packed,
/// tombstones skipped. Yields `(dst, rights)` in ascending `dst` order —
/// the same order the legacy `BTreeMap` adjacency produced, so every
/// downstream consumer sees byte-identical iteration.
pub(crate) enum MergedRow<'a> {
    /// No overlay edits for this vertex (the common case after a
    /// re-pack): the packed slices *are* the row, no merge branching.
    Packed {
        targets: &'a [u32],
        rights: &'a [EdgeRights],
        pos: usize,
    },
    /// Two-way merge of the packed row and the edit row.
    Merged {
        targets: &'a [u32],
        rights: &'a [EdgeRights],
        pos: usize,
        edits: btree_map::Iter<'a, u32, Option<EdgeRights>>,
        pending: Option<(u32, Option<EdgeRights>)>,
    },
}

impl<'a> MergedRow<'a> {
    #[inline]
    pub(crate) fn new(core: &'a CsrCore, overlay: &'a Overlay, v: u32) -> MergedRow<'a> {
        let (targets, rights) = core.row(v as usize);
        match overlay.row(v) {
            None => MergedRow::Packed {
                targets,
                rights,
                pos: 0,
            },
            Some(row) => MergedRow::Merged {
                targets,
                rights,
                pos: 0,
                edits: row.iter(),
                pending: None,
            },
        }
    }
}

impl Iterator for MergedRow<'_> {
    type Item = (u32, EdgeRights);

    #[inline]
    fn next(&mut self) -> Option<(u32, EdgeRights)> {
        let (targets, rights, pos, edits, pending) = match self {
            MergedRow::Packed {
                targets,
                rights,
                pos,
            } => {
                if *pos < targets.len() {
                    let i = *pos;
                    *pos += 1;
                    return Some((targets[i], rights[i]));
                }
                return None;
            }
            MergedRow::Merged {
                targets,
                rights,
                pos,
                edits,
                pending,
            } => (targets, rights, pos, edits, pending),
        };
        loop {
            let edit = pending
                .take()
                .or_else(|| edits.next().map(|(&d, &s)| (d, s)));
            match edit {
                None => {
                    // Overlay exhausted: the rest is the packed tail.
                    if *pos < targets.len() {
                        let i = *pos;
                        *pos += 1;
                        return Some((targets[i], rights[i]));
                    }
                    return None;
                }
                Some((dst, state)) => {
                    if *pos < targets.len() && targets[*pos] < dst {
                        // Packed entries strictly before the edit pass
                        // through untouched.
                        *pending = Some((dst, state));
                        let i = *pos;
                        *pos += 1;
                        return Some((targets[i], rights[i]));
                    }
                    if *pos < targets.len() && targets[*pos] == dst {
                        // The edit shadows this packed entry.
                        *pos += 1;
                    }
                    match state {
                        Some(rights) => return Some((dst, rights)),
                        None => continue, // tombstone: the pair is gone
                    }
                }
            }
        }
    }
}

/// A sorted, deduplicating merge of the packed and overlay predecessor
/// lists of one vertex. Yields `(src, Some(rights))` for predecessors
/// whose labels come straight from the packed reverse row, and
/// `(src, None)` for predecessors with an overlay edit — the caller must
/// consult the overlay for those (the edit may be a tombstone).
pub(crate) struct MergedPreds<'a> {
    packed: &'a [u32],
    rights: &'a [EdgeRights],
    pos: usize,
    overlay: Option<btree_set::Iter<'a, u32>>,
    pending: Option<u32>,
}

impl<'a> MergedPreds<'a> {
    #[inline]
    pub(crate) fn new(core: &'a CsrCore, overlay: &'a Overlay, v: u32) -> MergedPreds<'a> {
        let (packed, rights) = core.in_row(v as usize);
        MergedPreds {
            packed,
            rights,
            pos: 0,
            overlay: overlay.preds(v),
            pending: None,
        }
    }
}

impl Iterator for MergedPreds<'_> {
    type Item = (u32, Option<EdgeRights>);

    #[inline]
    fn next(&mut self) -> Option<(u32, Option<EdgeRights>)> {
        let edit = self
            .pending
            .take()
            .or_else(|| self.overlay.as_mut().and_then(|it| it.next().copied()));
        match edit {
            None => {
                if self.pos < self.packed.len() {
                    let i = self.pos;
                    self.pos += 1;
                    return Some((self.packed[i], Some(self.rights[i])));
                }
                None
            }
            Some(src) => {
                if self.pos < self.packed.len() && self.packed[self.pos] < src {
                    self.pending = Some(src);
                    let i = self.pos;
                    self.pos += 1;
                    return Some((self.packed[i], Some(self.rights[i])));
                }
                if self.pos < self.packed.len() && self.packed[self.pos] == src {
                    self.pos += 1; // present in both halves: emit once
                }
                Some((src, None))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rights;

    fn er(explicit: Rights) -> EdgeRights {
        EdgeRights {
            explicit,
            implicit: Rights::EMPTY,
        }
    }

    #[test]
    fn from_rows_builds_forward_and_reverse() {
        let rows = vec![
            vec![(1, er(Rights::R)), (2, er(Rights::W))],
            vec![(2, er(Rights::T))],
            vec![],
        ];
        let core = CsrCore::from_rows(&rows);
        assert_eq!(core.rows(), 3);
        assert_eq!(core.edge_len(), 3);
        assert_eq!(core.row(0).0, &[1, 2]);
        assert_eq!(core.get(0, 2), Some(er(Rights::W)));
        assert_eq!(core.get(2, 0), None);
        assert_eq!(core.in_row(2).0, &[0, 1]);
        assert_eq!(core.in_row(2).1, &[er(Rights::W), er(Rights::T)]);
        assert_eq!(core.in_row(0).0, &[] as &[u32]);
        // Rows past the packed range are empty, not a panic.
        assert_eq!(core.row(7).0, &[] as &[u32]);
    }

    #[test]
    fn merged_row_shadows_and_tombstones() {
        let rows = vec![
            vec![(1, er(Rights::R)), (3, er(Rights::W))],
            vec![],
            vec![],
            vec![],
            vec![],
        ];
        let core = CsrCore::from_rows(&rows);
        let mut overlay = Overlay::default();
        overlay.set(0, 1, None); // tombstone a packed edge
        overlay.set(0, 2, Some(er(Rights::T))); // insert between packed
        overlay.set(0, 4, Some(er(Rights::G))); // append past packed
        let merged: Vec<(u32, EdgeRights)> = MergedRow::new(&core, &overlay, 0).collect();
        assert_eq!(
            merged,
            vec![(2, er(Rights::T)), (3, er(Rights::W)), (4, er(Rights::G))]
        );
        // A row with no edits is the raw packed slice.
        assert_eq!(MergedRow::new(&core, &overlay, 1).count(), 0);
    }

    #[test]
    fn merged_preds_deduplicates() {
        let rows = vec![vec![(2, er(Rights::R))], vec![(2, er(Rights::W))], vec![]];
        let core = CsrCore::from_rows(&rows);
        let mut overlay = Overlay::default();
        overlay.set(1, 2, Some(er(Rights::T))); // src 1 in both halves
        overlay.set(0, 2, None); // tombstone still listed (caller filters)
        let preds: Vec<(u32, Option<EdgeRights>)> = MergedPreds::new(&core, &overlay, 2).collect();
        // Overlay-edited pairs come back `None`: the caller reads through
        // the overlay (which may tombstone them).
        assert_eq!(preds, vec![(0, None), (1, None)]);
        // A purely packed predecessor carries its rights inline.
        let packed_only: Vec<(u32, Option<EdgeRights>)> =
            MergedPreds::new(&core, &Overlay::default(), 2).collect();
        assert_eq!(
            packed_only,
            vec![(0, Some(er(Rights::R))), (1, Some(er(Rights::W)))]
        );
    }

    #[test]
    fn overlay_len_tracks_distinct_pairs() {
        let mut overlay = Overlay::default();
        overlay.set(0, 1, Some(er(Rights::R)));
        overlay.set(0, 1, None); // overwrite, not a new edit
        overlay.set(2, 1, Some(er(Rights::W)));
        assert_eq!(overlay.len(), 2);
        assert_eq!(
            overlay.preds(1).unwrap().copied().collect::<Vec<_>>(),
            vec![0, 2]
        );
        overlay.remove(0, 1);
        assert_eq!(overlay.len(), 1);
        overlay.remove_row(2);
        assert!(overlay.is_empty());
        assert!(overlay.preds(1).is_none());
    }
}
