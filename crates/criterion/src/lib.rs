//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the benchmark API subset the bench suite uses is reimplemented here:
//! [`Criterion`] with `sample_size`/`measurement_time`/`warm_up_time`
//! builders, [`BenchmarkGroup`] with `bench_with_input`/`bench_function`,
//! [`BenchmarkId`], [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical analysis it reports the mean and
//! minimum wall-clock time per iteration over `sample_size` samples, each
//! sample running for roughly `measurement_time / sample_size`.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self, &mut f);
        println!("{name:<40} {report}");
        self
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_bench(self.criterion, &mut |b| f(b, input));
        println!("{:<40} {report}", format!("{}/{id}", self.name));
        self
    }

    /// Runs one unparameterized benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.criterion, &mut f);
        println!("{:<40} {report}", format!("{}/{id}", self.name));
        self
    }

    /// Ends the group (retained for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters_per_sample: u64,
    /// Measured total duration and iteration count, filled by `iter`.
    sample: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill one sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let iters = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        self.sample = Some((start.elapsed(), iters));
    }
}

struct Report {
    mean: Duration,
    min: Duration,
    samples: usize,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:>12?}   min {:>12?}   ({} samples)",
            self.mean, self.min, self.samples
        )
    }
}

fn run_bench<F>(config: &Criterion, f: &mut F) -> Report
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: also used to estimate the per-iteration cost so each timed
    // sample gets an iteration count filling its share of measurement_time.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut per_iter = Duration::from_micros(1);
    while warm_start.elapsed() < config.warm_up_time {
        let mut b = Bencher {
            iters_per_sample: 1,
            sample: None,
        };
        f(&mut b);
        if let Some((elapsed, iters)) = b.sample {
            warm_iters += iters;
            if warm_iters > 0 {
                per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
                let _ = elapsed;
            }
        } else {
            break; // closure never called iter(); nothing to measure
        }
    }

    let sample_budget = config.measurement_time / config.sample_size.max(1) as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1_000
    } else {
        (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut total_iters: u64 = 0;
    let mut samples = 0usize;
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters_per_sample,
            sample: None,
        };
        f(&mut b);
        let Some((elapsed, iters)) = b.sample else {
            break;
        };
        total += elapsed;
        total_iters += iters;
        min = min.min(elapsed / iters.max(1) as u32);
        samples += 1;
    }
    if samples == 0 || total_iters == 0 {
        return Report {
            mean: Duration::ZERO,
            min: Duration::ZERO,
            samples: 0,
        };
    }
    Report {
        mean: total / total_iters as u32,
        min,
        samples,
    }
}

/// Declares a benchmark group entry point. Supports both the simple form
/// `criterion_group!(benches, f, g)` and the block form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut called = 0u64;
        quick().bench_function("counts", |b| {
            b.iter(|| {
                called += 1;
                called
            })
        });
        assert!(called > 0);
    }

    #[test]
    fn groups_and_ids_format() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| b.iter(|| n * 2));
        group.bench_with_input(BenchmarkId::new("f", 7), &7, |b, &n| b.iter(|| n + 1));
        group.finish();
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
