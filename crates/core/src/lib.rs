//! Hierarchical Take-Grant protection systems — the paper's contribution.
//!
//! This crate turns the analysis machinery into a model of multilevel
//! security:
//!
//! * [`levels`] — rw-levels and rwtg-levels (§4–§5), both *derived* from a
//!   graph (SCCs of mutual information flow) and *assigned* by a policy
//!   ([`LevelAssignment`]), with the `higher` strict partial order.
//! * [`structure`] — builders realizing linear and lattice classification
//!   hierarchies as protection graphs (Figures 4.1 and 4.2), including the
//!   military classification lattice.
//! * [`objects`] — object classification: an object belongs to the lowest
//!   rw-level of a subject holding `r` or `w` over it (§4).
//! * [`secure`] — the security predicate (§5): no vertex may come to know
//!   information above its level, checked both definitionally (via
//!   `can_know`) and structurally (Theorem 5.2: no bridges or connections
//!   between rwtg-levels).
//! * [`restrict`] — the three restriction families of §5 (direction,
//!   application, combined no-read-up/no-write-down) as pluggable policies.
//! * [`monitor`] — the reference monitor enforcing a restriction with the
//!   constant-time per-rule check of Corollary 5.7 and the linear-time
//!   audit of Corollary 5.6.
//! * [`wu`] — the Wu-model baseline (hierarchy by edge direction only) and
//!   the two-subject conspiracy that breaks it (Figure 2.1).
//! * [`declass`] — the declassification analysis of §6: why raising or
//!   lowering a classification compromises security.
//!
//! # Observability
//!
//! The monitor and journal are instrumented through the `tg_obs` facade:
//! every `try_apply` runs under a `monitor.apply` span (one span per
//! Corollary 5.7 check), every whole-graph audit under `monitor.audit`
//! (Corollary 5.6), and journal writes/recovery under `journal.*` spans,
//! with `monitor.permitted`/`denied`/`refused` counters splitting
//! verdicts. Recording is off by default and costs one relaxed atomic
//! load per site; `tgq --stats` or `tg_obs::Session` turns it on.
//!
//! # Examples
//!
//! ```
//! use tg_hierarchy::structure::linear_hierarchy;
//! use tg_hierarchy::secure::secure_policy;
//!
//! // A four-level linear classification (Figure 4.1).
//! let built = linear_hierarchy(&["L1", "L2", "L3", "L4"], 2);
//! assert!(secure_policy(&built.graph, &built.assignment).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod declass;
pub mod journal;
pub mod levels;
pub mod monitor;
pub mod objects;
pub mod policy;
pub mod restrict;
pub mod secure;
pub mod structure;
pub mod wu;

pub use journal::{
    open_batch_start, parse_journal, recover, replay_events, Journal, JournalError, JournalEvent,
    Outcome, ParsedJournal, Recovery, TornTail,
};
pub use levels::{rw_levels, rwtg_levels, DerivedLevels, LevelAssignment, LevelError};
pub use monitor::{
    audit_diagnostics, audit_graph, edge_audit_diagnostics, violations_of, BatchError, EventSink,
    Explanation, Monitor, MonitorError, MonitorObserver, MonitorStats, Violation,
};
pub use restrict::{
    ApplicationRestriction, CombinedRestriction, Decision, DenyReason, DirectionRestriction,
    Restriction, Unrestricted,
};
pub use secure::{secure_derived, secure_policy, secure_structural, Breach};
