//! The reference monitor.
//!
//! A [`Monitor`] owns a protection graph, a level assignment and a
//! [`Restriction`]; every rule application flows through
//! [`Monitor::try_apply`], which previews the rule, consults the
//! restriction (a constant number of level comparisons — Corollary 5.7)
//! and commits only permitted rules. [`Monitor::audit`] re-checks the
//! whole graph in one pass over its `r`/`w` edges (Corollary 5.6).
//!
//! Created vertices inherit their creator's level: the new vertex starts
//! as the creator's private resource, and every subsequent right over it
//! passes through the monitor like any other.
//!
//! Three durability-and-recovery mechanisms harden the monitor against a
//! crashing or hostile host:
//!
//! * **Write-ahead journaling** ([`Monitor::enable_journal`], the
//!   [`journal`](crate::journal) module): every attempted rule is recorded
//!   (permitted, denied, malformed or refused) *before* any mutation, and
//!   [`journal::recover`](crate::journal::recover) rebuilds an identical
//!   monitor from the seed graph plus the journal.
//! * **Transactional batches** ([`Monitor::try_apply_all`]): a rule trace
//!   is applied atomically; if any rule is refused, the already-applied
//!   prefix is rolled back via exact inverse effects
//!   ([`Effect::invert`]), so a partially-applied conspiracy never
//!   persists.
//! * **Fail-closed degradation** ([`Monitor::audit_cycle`],
//!   [`Monitor::quarantine`]): when an audit finds out-of-band graph
//!   tampering, the monitor refuses every de jure rule until the violating
//!   edges are quarantined and a clean audit restores service.

use std::collections::BTreeMap;

use tg_graph::diag::{Diagnostic, Fix, FixIt, LabeledSpan, Severity};
use tg_graph::{ProtectionGraph, Right, Rights, SourceMap, VertexId};
use tg_rules::{Derivation, Effect, Rule, RuleError};

use crate::journal::{Journal, JournalEvent, Outcome};
use crate::levels::LevelAssignment;
use crate::restrict::{Decision, DenyReason, Restriction};

/// Why the monitor refused a rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MonitorError {
    /// The rule's own preconditions failed.
    Rule(RuleError),
    /// The restriction denied the rule.
    Denied(DenyReason),
    /// The monitor is in fail-closed degraded mode (an audit found
    /// violations that have not been quarantined yet); all de jure rules
    /// are refused.
    Degraded,
}

impl core::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MonitorError::Rule(e) => write!(f, "{e}"),
            MonitorError::Denied(d) => write!(f, "{d}"),
            MonitorError::Degraded => write!(
                f,
                "monitor is degraded: unquarantined audit violations present"
            ),
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<RuleError> for MonitorError {
    fn from(e: RuleError) -> MonitorError {
        MonitorError::Rule(e)
    }
}

/// Why a transactional batch was rolled back (see
/// [`Monitor::try_apply_all`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchError {
    /// Index of the first refused rule within the batch.
    pub index: usize,
    /// The refused rule itself.
    pub rule: Rule,
    /// Why it was refused.
    pub error: MonitorError,
}

impl core::fmt::Display for BatchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "batch rolled back at rule {} ({}): {}",
            self.index, self.rule, self.error
        )
    }
}

impl std::error::Error for BatchError {}

/// Hooks through which an external index observes every state change the
/// monitor commits — the attachment point for the incremental engine
/// (`tg-inc`), which keeps islands, per-level adjacency and a maintained
/// violation set in sync with the graph so audits need no full rescan.
///
/// The monitor calls these *after* mutating its graph and levels, passing
/// both (plus the restriction) so the observer can read the post-state.
/// Batch notifications bracket [`Monitor::try_apply_all`]: on abort the
/// graph has already been rolled back via exact inverse effects, and the
/// observer must roll its own state back too (e.g. with union-find
/// epochs).
///
/// Observers must be `Send`: a `Monitor` (which owns its observer) is
/// shared across threads behind a mutex in concurrent deployments, so the
/// boxed observer travels with it.
pub trait MonitorObserver: Send {
    /// A rule's effect was applied. For a [`Effect::Created`] effect the
    /// new vertex's inherited level is already assigned.
    fn applied(
        &mut self,
        graph: &ProtectionGraph,
        levels: &LevelAssignment,
        restriction: &dyn Restriction,
        effect: &Effect,
    );

    /// A transactional batch opened; subsequent [`MonitorObserver::applied`]
    /// calls belong to it until a commit or abort.
    fn batch_begin(&mut self);

    /// The open batch rolled back: graph and levels are exactly as they
    /// were at [`MonitorObserver::batch_begin`].
    fn batch_abort(
        &mut self,
        graph: &ProtectionGraph,
        levels: &LevelAssignment,
        restriction: &dyn Restriction,
    );

    /// The open batch committed.
    fn batch_commit(&mut self);

    /// [`Monitor::quarantine`] stripped rights from the edge `src → dst`
    /// (the graph already reflects the repair).
    fn repaired(
        &mut self,
        graph: &ProtectionGraph,
        levels: &LevelAssignment,
        restriction: &dyn Restriction,
        src: VertexId,
        dst: VertexId,
    );

    /// The current audit verdict, if the observer maintains one.
    /// Returning `Some` lets [`Monitor::audit`] skip the full Corollary
    /// 5.6 edge scan; the default observer maintains nothing.
    fn audit_cached(&self) -> Option<Vec<Violation>> {
        None
    }
}

/// A sink that receives every journal event the monitor records, in
/// order, *before* the corresponding graph mutation — the same
/// write-ahead discipline as the in-memory [`Journal`]. This is the
/// attachment point for external durable logs (the hash-chained commit
/// log in `tg-log`): the monitor stays ignorant of storage, hashing and
/// snapshot policy; the sink owns all of it.
///
/// `Send` for the same reason as [`MonitorObserver`]: a monitor handed to
/// a worker thread carries its sink along.
pub trait EventSink: Send {
    /// Called with each event at the moment it is recorded.
    fn append(&mut self, event: &JournalEvent);
}

/// An `r`/`w` edge violating the restriction's invariant, found by audit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Edge source.
    pub src: VertexId,
    /// Edge destination.
    pub dst: VertexId,
    /// The offending explicit rights.
    pub rights: Rights,
}

/// Counters kept by the monitor.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct MonitorStats {
    /// Rules applied (and still persisted — rolled-back batch prefixes are
    /// not counted).
    pub permitted: usize,
    /// Rules denied by the restriction.
    pub denied: usize,
    /// Rules rejected by their own preconditions.
    pub malformed: usize,
    /// De jure rules refused while the monitor was degraded.
    pub refused: usize,
    /// Violating explicit edges stripped by [`Monitor::quarantine`].
    pub quarantined: usize,
    /// Times the monitor returned from degraded mode to clean service.
    pub recoveries: usize,
}

/// A protection system mediated by a restriction.
///
/// # Examples
///
/// ```
/// use tg_graph::{ProtectionGraph, Rights};
/// use tg_hierarchy::{CombinedRestriction, LevelAssignment, Monitor};
/// use tg_rules::{DeJureRule, Rule};
///
/// let mut g = ProtectionGraph::new();
/// let hi = g.add_subject("hi");
/// let lo = g.add_subject("lo");
/// let q = g.add_object("q");
/// g.add_edge(lo, q, Rights::T).unwrap();
/// g.add_edge(q, hi, Rights::R).unwrap();
///
/// let mut levels = LevelAssignment::linear(&["low", "high"]);
/// levels.assign(hi, 1).unwrap();
/// levels.assign(lo, 0).unwrap();
/// levels.assign(q, 0).unwrap();
///
/// let mut monitor = Monitor::new(g, levels, Box::new(CombinedRestriction));
/// // lo tries to take (r to hi) — read-up, denied.
/// let rule = Rule::DeJure(DeJureRule::Take {
///     actor: lo, via: q, target: hi, rights: Rights::R,
/// });
/// assert!(monitor.try_apply(&rule).is_err());
/// assert_eq!(monitor.stats().denied, 1);
/// ```
pub struct Monitor {
    graph: ProtectionGraph,
    levels: LevelAssignment,
    restriction: Box<dyn Restriction>,
    log: Derivation,
    stats: MonitorStats,
    journal: Option<Journal>,
    sink: Option<Box<dyn EventSink>>,
    degraded: bool,
    observer: Option<Box<dyn MonitorObserver>>,
}

impl core::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Monitor")
            .field("graph", &self.graph)
            .field("levels", &self.levels)
            .field("stats", &self.stats)
            .field("degraded", &self.degraded)
            .finish_non_exhaustive()
    }
}

impl Monitor {
    /// Creates a monitor over `graph` with the given classification and
    /// restriction.
    pub fn new(
        graph: ProtectionGraph,
        levels: LevelAssignment,
        restriction: Box<dyn Restriction>,
    ) -> Monitor {
        Monitor {
            graph,
            levels,
            restriction,
            log: Derivation::new(),
            stats: MonitorStats::default(),
            journal: None,
            sink: None,
            degraded: false,
            observer: None,
        }
    }

    /// Reconstitutes a monitor from externally persisted state — a
    /// commit-log snapshot: the graph, classification and counters are
    /// adopted as recorded, while the [`Derivation`] log restarts empty
    /// (carrying the full rule-by-rule history in every snapshot would
    /// defeat bounded recovery; the journal remains the history of
    /// record). The monitor starts undegraded with no journal, sink or
    /// observer attached.
    pub fn restore(
        graph: ProtectionGraph,
        levels: LevelAssignment,
        restriction: Box<dyn Restriction>,
        stats: MonitorStats,
    ) -> Monitor {
        let mut monitor = Monitor::new(graph, levels, restriction);
        monitor.stats = stats;
        monitor
    }

    /// Attaches an observer that is notified of every committed state
    /// change from now on. The observer sees nothing retroactively, so it
    /// should be built from the monitor's current graph and levels (the
    /// incremental engine's `SharedIndex` does exactly that).
    pub fn attach_observer(&mut self, observer: Box<dyn MonitorObserver>) {
        self.observer = Some(observer);
    }

    /// Whether an observer is attached.
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// Adds an explicit edge *out of band* — around the rule interface,
    /// not journaled and not logged — while still notifying the attached
    /// observer, so an incremental index stays consistent. This is the
    /// fault-injection port used to model a hostile co-resident component
    /// in tests; the planted edge is exactly what the Corollary 5.6 audit
    /// exists to catch.
    ///
    /// # Errors
    ///
    /// Propagates [`tg_graph::GraphError`] (self-edge, empty rights,
    /// unknown vertex).
    pub fn inject_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Result<(), tg_graph::GraphError> {
        let before = self.graph.rights(src, dst).explicit();
        self.graph.add_edge(src, dst, rights)?;
        let added = self.graph.rights(src, dst).explicit().difference(before);
        if let Some(observer) = self.observer.as_mut() {
            observer.applied(
                &self.graph,
                &self.levels,
                self.restriction.as_ref(),
                &Effect::ExplicitAdded {
                    src,
                    dst,
                    rights: added,
                },
            );
        }
        Ok(())
    }

    /// Notifies the observer of an applied effect, if one is attached.
    fn notify_applied(&mut self, effect: &Effect) {
        if let Some(observer) = self.observer.as_mut() {
            observer.applied(&self.graph, &self.levels, self.restriction.as_ref(), effect);
        }
    }

    /// Attaches a fresh write-ahead journal. From now on every attempted
    /// rule application is recorded — with its outcome — *before* the
    /// graph is mutated, so a crash at any point leaves a journal from
    /// which [`journal::recover`](crate::journal::recover) rebuilds the
    /// monitor exactly.
    pub fn enable_journal(&mut self) {
        self.journal = Some(Journal::new());
    }

    /// The attached write-ahead journal, if journaling is enabled.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Attaches an event sink that receives every recorded event from now
    /// on, before the corresponding mutation. Attach it *after* any
    /// recovery replay, or the replayed history is logged twice.
    pub fn attach_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    /// Whether an event sink is attached.
    pub fn has_event_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Whether the monitor is in fail-closed degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    fn record(&mut self, event: &JournalEvent) {
        if let Some(journal) = self.journal.as_mut() {
            let _span = tg_obs::span(tg_obs::SpanKind::JournalWrite);
            journal.append(event);
            tg_obs::add(tg_obs::Counter::JournalRecords, 1);
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.append(event);
        }
    }

    /// Counts a refusal and returns its journal outcome tag.
    fn count_refusal(&mut self, error: &MonitorError) -> Outcome {
        match error {
            MonitorError::Rule(_) => {
                self.stats.malformed += 1;
                tg_obs::add(tg_obs::Counter::MonitorMalformed, 1);
                Outcome::Malformed
            }
            MonitorError::Denied(_) => {
                self.stats.denied += 1;
                tg_obs::add(tg_obs::Counter::MonitorDenied, 1);
                Outcome::Denied
            }
            MonitorError::Degraded => {
                self.stats.refused += 1;
                tg_obs::add(tg_obs::Counter::MonitorRefused, 1);
                Outcome::Refused
            }
        }
    }

    pub(crate) fn stats_mut(&mut self) -> &mut MonitorStats {
        &mut self.stats
    }

    pub(crate) fn journal_mut(&mut self) -> Option<&mut Journal> {
        self.journal.as_mut()
    }

    /// The current graph.
    pub fn graph(&self) -> &ProtectionGraph {
        &self.graph
    }

    /// The classification.
    pub fn levels(&self) -> &LevelAssignment {
        &self.levels
    }

    /// The log of applied rules.
    pub fn log(&self) -> &Derivation {
        &self.log
    }

    /// Counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Checks a rule without applying it.
    ///
    /// While the monitor is degraded every de jure rule fails closed with
    /// [`MonitorError::Degraded`]; de facto rules (which only *exhibit*
    /// existing flow, §6) are still checked normally.
    pub fn check(&self, rule: &Rule) -> Result<Effect, MonitorError> {
        if self.degraded && matches!(rule, Rule::DeJure(_)) {
            return Err(MonitorError::Degraded);
        }
        let effect = match tg_rules::preview(&self.graph, rule) {
            Ok(e) => e,
            Err(e) => return Err(MonitorError::Rule(e)),
        };
        if let Rule::DeJure(dj) = rule {
            match self
                .restriction
                .permits(&self.graph, &self.levels, dj, &effect)
            {
                Decision::Permit => {}
                Decision::Deny(reason) => return Err(MonitorError::Denied(reason)),
            }
        }
        Ok(effect)
    }

    /// Applies a rule if its preconditions hold and the restriction
    /// permits it. On success the rule is logged; created vertices inherit
    /// the creator's level.
    pub fn try_apply(&mut self, rule: &Rule) -> Result<Effect, MonitorError> {
        let _span = tg_obs::span(tg_obs::SpanKind::MonitorApply);
        if let Err(e) = self.check(rule) {
            let outcome = self.count_refusal(&e);
            self.record(&JournalEvent::Attempt {
                outcome,
                rule: rule.clone(),
            });
            return Err(e);
        }
        // Write-ahead: the decision reaches the journal before the graph
        // mutates, so a crash between the two replays to the same state.
        self.record(&JournalEvent::Attempt {
            outcome: Outcome::Permitted,
            rule: rule.clone(),
        });
        let effect = tg_rules::apply(&mut self.graph, rule)?;
        if let Effect::Created { id, creator, .. } = &effect {
            if let Some(level) = self.levels.level_of(*creator) {
                self.levels
                    .assign(*id, level)
                    .expect("creator level exists");
            }
        }
        self.notify_applied(&effect);
        self.log.push(rule.clone());
        self.stats.permitted += 1;
        tg_obs::add(tg_obs::Counter::MonitorPermitted, 1);
        Ok(effect)
    }

    /// Applies a whole rule trace transactionally: either every rule is
    /// applied (and logged, and counted permitted), or — at the first
    /// refusal — the already-applied prefix is rolled back via exact
    /// inverse effects ([`Effect::invert`]) and only the refused rule is
    /// counted. The journal records the batch as `B`/`A…`/`C` on commit or
    /// `B`/`A…`/`X` on abort; a crash mid-batch leaves no commit marker,
    /// so recovery discards the partial batch — matching the rollback.
    ///
    /// # Errors
    ///
    /// Returns a [`BatchError`] naming the first refused rule; the monitor
    /// is left exactly as it was before the call.
    pub fn try_apply_all(&mut self, rules: &[Rule]) -> Result<Vec<Effect>, BatchError> {
        let _span = tg_obs::span(tg_obs::SpanKind::MonitorBatch);
        self.record(&JournalEvent::BatchBegin);
        if let Some(observer) = self.observer.as_mut() {
            observer.batch_begin();
        }
        let mut applied: Vec<Effect> = Vec::with_capacity(rules.len());
        for (index, rule) in rules.iter().enumerate() {
            if let Err(error) = self.check(rule) {
                let _rollback = tg_obs::span(tg_obs::SpanKind::MonitorRollback);
                // Roll back in reverse order: Created effects are only
                // invertible while theirs is still the newest vertex.
                for effect in applied.iter().rev() {
                    effect
                        .invert(&mut self.graph)
                        .expect("inverse of an applied effect");
                    if let Effect::Created { id, .. } = effect {
                        self.levels.unassign(*id);
                    }
                }
                // The graph is back at its batch_begin state; the
                // observer rolls back to its matching epoch.
                if let Some(observer) = self.observer.as_mut() {
                    observer.batch_abort(&self.graph, &self.levels, self.restriction.as_ref());
                }
                let outcome = self.count_refusal(&error);
                self.record(&JournalEvent::BatchAbort {
                    index,
                    outcome,
                    rule: rule.clone(),
                });
                return Err(BatchError {
                    index,
                    rule: rule.clone(),
                    error,
                });
            }
            self.record(&JournalEvent::BatchApply { rule: rule.clone() });
            let effect = tg_rules::apply(&mut self.graph, rule).expect("checked rule applies");
            if let Effect::Created { id, creator, .. } = &effect {
                if let Some(level) = self.levels.level_of(*creator) {
                    self.levels
                        .assign(*id, level)
                        .expect("creator level exists");
                }
            }
            self.notify_applied(&effect);
            applied.push(effect);
        }
        if let Some(observer) = self.observer.as_mut() {
            observer.batch_commit();
        }
        self.record(&JournalEvent::BatchCommit);
        for rule in rules {
            self.log.push(rule.clone());
        }
        self.stats.permitted += rules.len();
        tg_obs::add(tg_obs::Counter::MonitorPermitted, rules.len() as u64);
        Ok(applied)
    }

    /// Audits the whole graph against the restriction's edge invariant.
    ///
    /// Without an observer this is one pass over the explicit edges
    /// (Corollary 5.6: linear in the number of edges — only `r`/`w`
    /// labels can violate). With an attached incremental index the
    /// maintained violation set is returned instead — O(violations), not
    /// O(edges) — and debug builds cross-check it against the full scan.
    pub fn audit(&self) -> Vec<Violation> {
        let _span = tg_obs::span(tg_obs::SpanKind::MonitorAudit);
        if let Some(cached) = self.observer.as_ref().and_then(|o| o.audit_cached()) {
            debug_assert_eq!(
                cached,
                audit_graph(&self.graph, &self.levels, self.restriction.as_ref()),
                "incremental audit diverged from the Corollary 5.6 scan"
            );
            return cached;
        }
        audit_graph(&self.graph, &self.levels, self.restriction.as_ref())
    }

    /// Audits the graph and, if any violation is found (out-of-band
    /// tampering — the monitor itself never commits one), enters
    /// fail-closed degraded mode: every subsequent de jure rule is refused
    /// until [`Monitor::quarantine`] repairs the graph.
    pub fn audit_cycle(&mut self) -> Vec<Violation> {
        let violations = self.audit();
        if !violations.is_empty() {
            self.degraded = true;
        }
        violations
    }

    /// Applies the strip fix-its of every audit diagnostic, then
    /// re-audits. If the graph comes back clean and the monitor was
    /// degraded, normal service resumes (counted in
    /// [`MonitorStats::recoveries`]). Returns the violations that were
    /// quarantined (one per repaired edge).
    ///
    /// Quarantines are repairs of *out-of-band* tampering, so they are not
    /// journaled: the journal records rule traffic, and replaying it onto
    /// the untampered seed never re-creates the stripped edges.
    pub fn quarantine(&mut self) -> Vec<Violation> {
        let _span = tg_obs::span(tg_obs::SpanKind::MonitorQuarantine);
        let diagnostics =
            audit_diagnostics(&self.graph, &self.levels, self.restriction.as_ref(), None);
        for diag in &diagnostics {
            if let Some(fix) = &diag.fix {
                fix.edit
                    .apply(&mut self.graph)
                    .expect("audited edge exists");
                let (src, dst) = fix.edit.edge();
                if let Some(observer) = self.observer.as_mut() {
                    observer.repaired(
                        &self.graph,
                        &self.levels,
                        self.restriction.as_ref(),
                        src,
                        dst,
                    );
                }
            }
        }
        let violations = violations_of(&diagnostics);
        self.stats.quarantined += violations.len();
        tg_obs::add(tg_obs::Counter::MonitorQuarantined, violations.len() as u64);
        if self.degraded && self.audit().is_empty() {
            self.degraded = false;
            self.stats.recoveries += 1;
            tg_obs::add(tg_obs::Counter::MonitorRecoveries, 1);
        }
        violations
    }

    /// Counterfactual analysis of a denied rule: which *actual* de facto
    /// flows (`can_know_f`) against dominance would permitting it create?
    /// Applies the rule to a scratch copy and diffs the de facto breach
    /// sets — the security-operator's answer to "why was this denied?".
    ///
    /// Returns `Ok(None)` if the rule is actually permitted, the denial
    /// reason plus the newly enabled `can_know` breaches otherwise.
    ///
    /// # Errors
    ///
    /// Propagates the rule's own precondition failures.
    pub fn explain(&self, rule: &Rule) -> Result<Option<Explanation>, RuleError> {
        let reason = match self.check(rule) {
            Ok(_) => return Ok(None),
            Err(MonitorError::Rule(e)) => return Err(e),
            Err(MonitorError::Denied(reason)) => reason,
            // Degraded mode refuses without consulting the restriction;
            // there is no counterfactual to explain.
            Err(MonitorError::Degraded) => return Ok(None),
        };
        let mut scratch = self.graph.clone();
        tg_rules::apply(&mut scratch, rule)?;
        let before = crate::secure::breaches_f(&self.graph, &self.levels);
        let after = crate::secure::breaches_f(&scratch, &self.levels);
        let enabled: Vec<crate::secure::Breach> = after
            .into_iter()
            .filter(|b| !before.iter().any(|p| p.x == b.x && p.y == b.y))
            .collect();
        Ok(Some(Explanation {
            reason,
            enabled_breaches: enabled,
        }))
    }

    /// Consumes the monitor, returning the graph, levels and log.
    pub fn into_parts(self) -> (ProtectionGraph, LevelAssignment, Derivation) {
        (self.graph, self.levels, self.log)
    }
}

/// Why a rule was denied, with the counterfactual consequences of
/// permitting it (see [`Monitor::explain`]).
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The restriction's denial reason.
    pub reason: DenyReason,
    /// `can_know` pairs that would newly violate dominance if the rule
    /// were applied. May be empty: the restriction is conservative about
    /// *edges*, while breaches are about *flows* — a denied edge into an
    /// isolated corner enables nothing yet.
    pub enabled_breaches: Vec<crate::secure::Breach>,
}

/// Stand-alone audit as *lint diagnostics* (Corollary 5.6): one pass over
/// the explicit edges, emitting a [`Diagnostic`] — with a stable code, a
/// message naming the levels, optional source spans via `srcmap`, and a
/// machine-applicable strip fix-it — for every right that violates the
/// restriction's edge invariant.
///
/// Codes: `TG001` for a read that must not be (restriction (a), Theorem
/// 5.5(a)), `TG002` for a write that must not be (restriction (b), Theorem
/// 5.5(b)), `TG000` for violations a custom restriction reports on other
/// rights. The `tg-lint` analyzer re-exports these as its first two passes;
/// [`audit_graph`] and [`Monitor::quarantine`] are thin consumers of the
/// same diagnostics.
pub fn audit_diagnostics(
    graph: &ProtectionGraph,
    levels: &LevelAssignment,
    restriction: &dyn Restriction,
    srcmap: Option<&SourceMap>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for edge in graph.edges() {
        edge_audit_diagnostics(
            graph,
            levels,
            restriction,
            srcmap,
            edge.src,
            edge.dst,
            &mut out,
        );
    }
    // Canonical order (span, then code, then message): the edge scan is
    // order-independent per edge, so sorting here makes the output
    // byte-identical whether the edges were walked sequentially or
    // audited shard-by-shard in parallel (`tg_par::par_audit`).
    out.sort_by(Diagnostic::canonical_cmp);
    out
}

/// The Corollary 5.6 check for *one* explicit edge, appending any
/// [`Diagnostic`]s to `out`. This is the unit of work [`audit_diagnostics`]
/// folds over the whole edge set and `tg_par` distributes across shards —
/// a single shared implementation is what makes the parallel and
/// sequential audits trivially equivalent per edge.
///
/// Does nothing if `src → dst` has no explicit rights.
#[allow(clippy::too_many_arguments)]
pub fn edge_audit_diagnostics(
    graph: &ProtectionGraph,
    levels: &LevelAssignment,
    restriction: &dyn Restriction,
    srcmap: Option<&SourceMap>,
    src: VertexId,
    dst: VertexId,
    out: &mut Vec<Diagnostic>,
) {
    let level_name = |v: VertexId| match levels.level_of(v) {
        Some(l) => format!("level {}", levels.name(l)),
        None => "no assigned level".to_string(),
    };
    {
        let explicit = graph.rights(src, dst).explicit;
        if explicit.is_empty() {
            return;
        }
        let src_name = &graph.vertex(src).name;
        let dst_name = &graph.vertex(dst).name;
        let edge_span = srcmap.and_then(|m| m.edge_span(src, dst));
        let mut flagged = Rights::EMPTY;
        for right in explicit.iter() {
            if !restriction.edge_violates(levels, src, dst, Rights::singleton(right)) {
                continue;
            }
            flagged.insert(right);
            let (code, what) = match right {
                Right::Read => ("TG001", "read-up"),
                Right::Write => ("TG002", "write-down"),
                _ => ("TG000", "restricted"),
            };
            let diag = Diagnostic::new(
                code,
                Severity::Error,
                format!(
                    "{what}: explicit `{right}` edge from `{src_name}` ({}) to `{dst_name}` ({})",
                    level_name(src),
                    level_name(dst),
                ),
                LabeledSpan::new(
                    edge_span,
                    format!("edge `{src_name} -> {dst_name}` carries `{right}`"),
                ),
            )
            .with_secondary(LabeledSpan::new(
                srcmap.and_then(|m| m.vertex_span(src)),
                format!("`{src_name}` declared here ({})", level_name(src)),
            ))
            .with_secondary(LabeledSpan::new(
                srcmap.and_then(|m| m.vertex_span(dst)),
                format!("`{dst_name}` declared here ({})", level_name(dst)),
            ))
            .with_fix(Fix::new(
                FixIt::StripExplicit {
                    src,
                    dst,
                    rights: Rights::singleton(right),
                },
                format!("strip `{right}` from edge {src_name} -> {dst_name}"),
            ));
            out.push(diag);
        }
        // A restriction may reject the combined label without rejecting any
        // single right (none of the shipped ones do); keep the audit
        // complete by flagging the remainder as one whole-label finding.
        if flagged.is_empty() && restriction.edge_violates(levels, src, dst, explicit) {
            out.push(
                Diagnostic::new(
                    "TG000",
                    Severity::Error,
                    format!(
                        "restricted: explicit edge `{src_name} -> {dst_name} : {explicit}` violates the {} invariant",
                        restriction.name()
                    ),
                    LabeledSpan::new(edge_span, format!("edge `{src_name} -> {dst_name}`")),
                )
                .with_fix(Fix::new(
                    FixIt::StripExplicit {
                        src,
                        dst,
                        rights: explicit,
                    },
                    format!("strip `{explicit}` from edge {src_name} -> {dst_name}"),
                )),
            );
        }
    }
}

/// Folds audit diagnostics back into per-edge [`Violation`]s (the compact
/// form the monitor's degraded-mode bookkeeping uses): one violation per
/// edge, carrying the union of the rights its diagnostics would strip.
/// Public so `tg_par`'s sharded audit can produce exactly the same fold.
pub fn violations_of(diagnostics: &[Diagnostic]) -> Vec<Violation> {
    let mut per_edge: BTreeMap<(VertexId, VertexId), Rights> = BTreeMap::new();
    for diag in diagnostics {
        if let Some(Fix {
            edit: FixIt::StripExplicit { src, dst, rights },
            ..
        }) = diag.fix
        {
            *per_edge.entry((src, dst)).or_default() |= rights;
        }
    }
    per_edge
        .into_iter()
        .map(|((src, dst), rights)| Violation { src, dst, rights })
        .collect()
}

/// Stand-alone audit (Corollary 5.6): scans every explicit edge once and
/// reports those violating the restriction's invariant. A thin consumer of
/// [`audit_diagnostics`].
pub fn audit_graph(
    graph: &ProtectionGraph,
    levels: &LevelAssignment,
    restriction: &dyn Restriction,
) -> Vec<Violation> {
    violations_of(&audit_diagnostics(graph, levels, restriction, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restrict::{CombinedRestriction, Unrestricted};
    use tg_graph::{Right, VertexKind};
    use tg_rules::{DeFactoRule, DeJureRule};

    fn setup() -> Monitor {
        let mut g = ProtectionGraph::new();
        let hi = g.add_subject("hi"); // v0
        let lo = g.add_subject("lo"); // v1
        let q = g.add_object("q"); // v2
        g.add_edge(lo, q, Rights::T).unwrap();
        g.add_edge(q, hi, Rights::RW | Rights::E).unwrap();
        g.add_edge(hi, q, Rights::T).unwrap();
        let mut levels = LevelAssignment::linear(&["low", "high"]);
        levels.assign(hi, 1).unwrap();
        levels.assign(lo, 0).unwrap();
        levels.assign(q, 1).unwrap();
        Monitor::new(g, levels, Box::new(CombinedRestriction))
    }

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    #[test]
    fn denies_read_up_but_permits_execute() {
        let mut m = setup();
        let (hi, lo, q) = (v(0), v(1), v(2));
        let _ = hi;
        let read_up = Rule::DeJure(DeJureRule::Take {
            actor: lo,
            via: q,
            target: v(0),
            rights: Rights::R,
        });
        assert!(matches!(
            m.try_apply(&read_up),
            Err(MonitorError::Denied(DenyReason::ReadUp { .. }))
        ));
        // Figure 5.1: the execute right is not constrained.
        let exec = Rule::DeJure(DeJureRule::Take {
            actor: lo,
            via: q,
            target: v(0),
            rights: Rights::E,
        });
        assert!(m.try_apply(&exec).is_ok());
        assert!(m.graph().has_explicit(lo, v(0), Right::Execute));
        assert_eq!(m.stats().permitted, 1);
        assert_eq!(m.stats().denied, 1);
    }

    #[test]
    fn denies_write_down() {
        // hi -t-> m2 -w-> lofile(level 0): hi taking the w right would
        // complete a write-down; the monitor denies it.
        let mut g = ProtectionGraph::new();
        let hi = g.add_subject("hi");
        let mid = g.add_object("mid");
        let lofile = g.add_object("lofile");
        g.add_edge(hi, mid, Rights::T).unwrap();
        g.add_edge(mid, lofile, Rights::W).unwrap();
        let mut levels = LevelAssignment::linear(&["low", "high"]);
        levels.assign(hi, 1).unwrap();
        levels.assign(mid, 1).unwrap();
        levels.assign(lofile, 0).unwrap();
        let mut m = Monitor::new(g, levels, Box::new(CombinedRestriction));
        let rule = Rule::DeJure(DeJureRule::Take {
            actor: hi,
            via: mid,
            target: lofile,
            rights: Rights::W,
        });
        assert!(matches!(
            m.try_apply(&rule),
            Err(MonitorError::Denied(DenyReason::WriteDown { .. }))
        ));
        // A malformed rule counts as malformed, not denied.
        let fake = Rule::DeJure(DeJureRule::Grant {
            actor: hi,
            via: lofile,
            target: lofile,
            rights: Rights::W,
        });
        assert!(matches!(m.try_apply(&fake), Err(MonitorError::Rule(_))));
        assert_eq!(m.stats().malformed, 1);
        assert_eq!(m.stats().denied, 1);
    }

    #[test]
    fn created_vertices_inherit_levels() {
        let mut m = setup();
        let lo = v(1);
        let rule = Rule::DeJure(DeJureRule::Create {
            actor: lo,
            kind: VertexKind::Subject,
            rights: Rights::TG,
            name: "child".to_string(),
        });
        let Effect::Created { id, .. } = m.try_apply(&rule).unwrap() else {
            panic!("expected Created");
        };
        assert_eq!(m.levels().level_of(id), Some(0));
    }

    #[test]
    fn de_facto_rules_are_never_denied() {
        // post(x, shared, z): a well-formed de facto rule is applied even
        // though the resulting implicit edge crosses levels upward from
        // the restriction's point of view — de facto rules only exhibit
        // flow, they are not restricted (§6).
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let shared = g.add_object("shared");
        let z = g.add_subject("z");
        g.add_edge(x, shared, Rights::R).unwrap();
        g.add_edge(z, shared, Rights::W).unwrap();
        let mut levels = LevelAssignment::linear(&["low", "high"]);
        levels.assign(x, 1).unwrap();
        levels.assign(shared, 1).unwrap();
        levels.assign(z, 0).unwrap();
        let mut m = Monitor::new(g, levels, Box::new(CombinedRestriction));
        let rule = Rule::DeFacto(DeFactoRule::Post { x, y: shared, z });
        assert!(m.try_apply(&rule).is_ok());
        assert!(m.graph().rights(x, z).implicit().contains(Right::Read));
        // A malformed de facto rule errors as Rule, never as Denied.
        let bad = Rule::DeFacto(DeFactoRule::Spy { x, y: shared, z });
        assert!(matches!(m.try_apply(&bad), Err(MonitorError::Rule(_))));
    }

    #[test]
    fn audit_finds_planted_violations() {
        let mut m = setup();
        let (hi, lo) = (v(0), v(1));
        assert!(m.audit().is_empty());
        // Plant a read-up edge behind the monitor's back.
        m.graph.add_edge(lo, hi, Rights::R).unwrap();
        let violations = m.audit();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].src, lo);
        assert_eq!(violations[0].dst, hi);
        assert_eq!(violations[0].rights, Rights::R);
    }

    #[test]
    fn unrestricted_monitor_audits_nothing() {
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        g.add_edge(a, b, Rights::RW).unwrap();
        let mut levels = LevelAssignment::linear(&["low", "high"]);
        levels.assign(a, 0).unwrap();
        levels.assign(b, 1).unwrap();
        let m = Monitor::new(g, levels, Box::new(Unrestricted));
        assert!(m.audit().is_empty());
    }

    #[test]
    fn monitored_system_stays_secure_while_unmonitored_breaks() {
        // Figure 5.1 end to end. The setup graph is statically insecure:
        // lo -t-> q -r-> hi lets lo take read-up, so the unrestricted
        // analysis flags it...
        use crate::secure::secure_policy;
        let m = setup();
        assert!(secure_policy(m.graph(), m.levels()).is_err());
        // ...and an unrestricted monitor indeed lets the breach happen:
        let (g, levels, _) = m.into_parts();
        let rule = Rule::DeJure(DeJureRule::Take {
            actor: v(1),
            via: v(2),
            target: v(0),
            rights: Rights::R,
        });
        let mut free = Monitor::new(g.clone(), levels.clone(), Box::new(Unrestricted));
        free.try_apply(&rule).unwrap();
        assert_eq!(
            audit_graph(free.graph(), free.levels(), &CombinedRestriction).len(),
            1
        );
        // ...while the combined restriction denies it and the audit stays
        // clean no matter what lo tries.
        let mut guarded = Monitor::new(g, levels, Box::new(CombinedRestriction));
        assert!(guarded.try_apply(&rule).is_err());
        assert!(guarded.audit().is_empty());
    }

    #[test]
    fn explain_reports_enabled_breaches() {
        let m = setup();
        let (hi, lo, q) = (v(0), v(1), v(2));
        let _ = hi;
        let read_up = Rule::DeJure(DeJureRule::Take {
            actor: lo,
            via: q,
            target: v(0),
            rights: Rights::R,
        });
        let explanation = m.explain(&read_up).unwrap().expect("rule is denied");
        assert!(matches!(explanation.reason, DenyReason::ReadUp { .. }));
        // Permitting it would let lo know hi (and q, which lo could then
        // read through hi's rw edge chain? — at minimum the hi breach).
        assert!(explanation
            .enabled_breaches
            .iter()
            .any(|b| b.x == lo && b.y == v(0)));
        // A permitted rule explains to None.
        let exec = Rule::DeJure(DeJureRule::Take {
            actor: lo,
            via: q,
            target: v(0),
            rights: Rights::E,
        });
        assert!(m.explain(&exec).unwrap().is_none());
        // A malformed rule propagates its error.
        let bad = Rule::DeJure(DeJureRule::Take {
            actor: lo,
            via: q,
            target: lo,
            rights: Rights::R,
        });
        assert!(m.explain(&bad).is_err());
    }

    #[test]
    fn batch_commits_atomically() {
        let mut m = setup();
        let lo = v(1);
        let rules = vec![
            Rule::DeJure(DeJureRule::Take {
                actor: lo,
                via: v(2),
                target: v(0),
                rights: Rights::E,
            }),
            Rule::DeJure(DeJureRule::Create {
                actor: lo,
                kind: VertexKind::Object,
                rights: Rights::RW,
                name: "scratch".to_string(),
            }),
        ];
        let effects = m.try_apply_all(&rules).unwrap();
        assert_eq!(effects.len(), 2);
        assert_eq!(m.stats().permitted, 2);
        assert_eq!(m.log().len(), 2);
        assert!(m.graph().has_explicit(lo, v(0), Right::Execute));
    }

    #[test]
    fn failed_batch_rolls_back_completely() {
        let mut m = setup();
        let lo = v(1);
        let before_graph = m.graph().clone();
        let before_levels = m.levels().clone();
        let rules = vec![
            // Applies: execute is unconstrained.
            Rule::DeJure(DeJureRule::Take {
                actor: lo,
                via: v(2),
                target: v(0),
                rights: Rights::E,
            }),
            // Applies: creates a vertex that must be retracted again.
            Rule::DeJure(DeJureRule::Create {
                actor: lo,
                kind: VertexKind::Subject,
                rights: Rights::TG,
                name: "child".to_string(),
            }),
            // Denied: read-up. The whole batch must roll back.
            Rule::DeJure(DeJureRule::Take {
                actor: lo,
                via: v(2),
                target: v(0),
                rights: Rights::R,
            }),
        ];
        let err = m.try_apply_all(&rules).unwrap_err();
        assert_eq!(err.index, 2);
        assert!(matches!(err.error, MonitorError::Denied(_)));
        assert_eq!(m.graph(), &before_graph);
        assert_eq!(m.levels(), &before_levels);
        // Only the failing rule is counted; the rolled-back prefix is not.
        assert_eq!(m.stats().permitted, 0);
        assert_eq!(m.stats().denied, 1);
        assert_eq!(m.log().len(), 0);
    }

    #[test]
    fn degraded_mode_fails_closed_until_quarantine() {
        let mut m = setup();
        let (hi, lo) = (v(0), v(1));
        // Out-of-band tampering: a read-up edge the monitor never saw.
        m.graph.add_edge(lo, hi, Rights::R).unwrap();
        assert_eq!(m.audit_cycle().len(), 1);
        assert!(m.is_degraded());
        // De jure rules — even harmless ones — are refused...
        let exec = Rule::DeJure(DeJureRule::Take {
            actor: lo,
            via: v(2),
            target: hi,
            rights: Rights::E,
        });
        assert_eq!(m.try_apply(&exec), Err(MonitorError::Degraded));
        assert_eq!(m.stats().refused, 1);
        // ...and batches refuse at their first de jure rule.
        let err = m.try_apply_all(std::slice::from_ref(&exec)).unwrap_err();
        assert_eq!(err.error, MonitorError::Degraded);
        // Quarantine strips the violating edge and restores service.
        let quarantined = m.quarantine();
        assert_eq!(quarantined.len(), 1);
        assert!(!m.is_degraded());
        assert_eq!(m.stats().quarantined, 1);
        assert_eq!(m.stats().recoveries, 1);
        assert!(!m.graph().has_explicit(lo, hi, Right::Read));
        assert!(m.try_apply(&exec).is_ok());
    }

    #[test]
    fn de_facto_rules_survive_degradation() {
        // Degradation refuses de jure rules only: de facto rules exhibit
        // flow that already exists, so refusing them hides information
        // from the auditor without protecting anything.
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let shared = g.add_object("shared");
        let z = g.add_subject("z");
        g.add_edge(x, shared, Rights::R).unwrap();
        g.add_edge(z, shared, Rights::W).unwrap();
        let mut levels = LevelAssignment::linear(&["low", "high"]);
        levels.assign(x, 0).unwrap();
        levels.assign(shared, 0).unwrap();
        levels.assign(z, 1).unwrap();
        let mut m = Monitor::new(g, levels, Box::new(CombinedRestriction));
        // Tamper to degrade: z (high) writes down to shared? Use a fresh
        // read-up edge instead.
        m.graph.add_edge(x, z, Rights::R).unwrap();
        m.audit_cycle();
        assert!(m.is_degraded());
        let post = Rule::DeFacto(DeFactoRule::Post { x, y: shared, z });
        assert!(m.try_apply(&post).is_ok());
    }

    #[test]
    fn into_parts_returns_the_log() {
        let mut m = setup();
        let lo = v(1);
        m.try_apply(&Rule::DeJure(DeJureRule::Create {
            actor: lo,
            kind: VertexKind::Object,
            rights: Rights::R,
            name: "n".to_string(),
        }))
        .unwrap();
        let (_, _, log) = m.into_parts();
        assert_eq!(log.len(), 1);
    }
}
