//! The security predicate (§5) and Theorem 5.2.
//!
//! A protection graph is *secure* when no vertex can come to know
//! information classified above it, no matter what sequence of de jure and
//! de facto rules corrupt subjects apply. We formalize "above" through a
//! dominance order on levels (strictly containing the paper's "x lower
//! than y" case and also forbidding flows into incomparable levels, which
//! is what the military lattice of Figure 4.2 requires and what the
//! Bell–LaPadula correspondence of §6 assumes):
//!
//! > secure(G, A) ⟺ ∀ assigned x, y: `can_know(x, y, G)` ⟹
//! > `A.level(x)` dominates `A.level(y)`.
//!
//! Theorem 5.2 gives the structural equivalent: *no bridges or connections
//! between rwtg-levels* — here, no bridge-or-connection link from `u` to
//! `v` unless `u`'s level dominates `v`'s, and no span touching an
//! assigned object against the order. [`secure_policy`] (definitional) and
//! [`secure_structural`] (structural) are property-tested to coincide.

use tg_analysis::{can_know, can_know_detail, rw_initial_spanners, rw_terminal_spanners};

use tg_graph::{ProtectionGraph, VertexId};
use tg_paths::{lang, PathSearch, SearchConfig};

use crate::levels::{rw_levels, LevelAssignment};

/// Evidence that a graph violates its classification.
#[derive(Clone, Debug)]
pub struct Breach {
    /// The vertex gaining forbidden knowledge.
    pub x: VertexId,
    /// The vertex whose information leaks.
    pub y: VertexId,
    /// Human-readable description of the channel.
    pub reason: String,
}

impl core::fmt::Display for Breach {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} can come to know {}: {}", self.x, self.y, self.reason)
    }
}

/// The definitional security check: every knowable pair must respect
/// dominance. Returns the first breach found.
///
/// # Examples
///
/// ```
/// use tg_graph::{ProtectionGraph, Rights};
/// use tg_hierarchy::{secure_policy, LevelAssignment};
///
/// let mut g = ProtectionGraph::new();
/// let hi = g.add_subject("hi");
/// let lo = g.add_subject("lo");
/// g.add_edge(lo, hi, Rights::R).unwrap(); // lo reads UP: breach
///
/// let mut levels = LevelAssignment::linear(&["low", "high"]);
/// levels.assign(hi, 1).unwrap();
/// levels.assign(lo, 0).unwrap();
/// assert!(secure_policy(&g, &levels).is_err());
/// ```
pub fn secure_policy(graph: &ProtectionGraph, levels: &LevelAssignment) -> Result<(), Breach> {
    let assigned: Vec<(VertexId, usize)> = levels
        .assignments()
        .filter(|(v, _)| graph.contains_vertex(*v))
        .collect();
    for &(x, lx) in &assigned {
        for &(y, ly) in &assigned {
            if x == y || levels.dominates(lx, ly) {
                continue;
            }
            if can_know(graph, x, y) {
                return Err(Breach {
                    x,
                    y,
                    reason: format!(
                        "can_know holds but level {:?} does not dominate {:?}",
                        levels.name(lx),
                        levels.name(ly)
                    ),
                });
            }
        }
    }
    Ok(())
}

/// All breaches (not just the first), with their `can_know` evidence kind.
pub fn breaches(graph: &ProtectionGraph, levels: &LevelAssignment) -> Vec<Breach> {
    let assigned: Vec<(VertexId, usize)> = levels
        .assignments()
        .filter(|(v, _)| graph.contains_vertex(*v))
        .collect();
    let mut out = Vec::new();
    for &(x, lx) in &assigned {
        for &(y, ly) in &assigned {
            if x == y || levels.dominates(lx, ly) {
                continue;
            }
            if let Some(evidence) = can_know_detail(graph, x, y) {
                out.push(Breach {
                    x,
                    y,
                    reason: format!("{evidence:?}"),
                });
            }
        }
    }
    out
}

/// All pairs violating dominance under *actual* de facto flow
/// (`can_know_f`) — the flows corrupt subjects can realize with the
/// authority already recorded, as opposed to [`breaches`]' potential
/// flows. [`Monitor::explain`](crate::Monitor::explain) diffs this set.
pub fn breaches_f(graph: &ProtectionGraph, levels: &LevelAssignment) -> Vec<Breach> {
    let assigned: Vec<(VertexId, usize)> = levels
        .assignments()
        .filter(|(v, _)| graph.contains_vertex(*v))
        .collect();
    let mut out = Vec::new();
    for &(x, lx) in &assigned {
        for &(y, ly) in &assigned {
            if x == y || levels.dominates(lx, ly) {
                continue;
            }
            if tg_analysis::can_know_f(graph, x, y) {
                out.push(Breach {
                    x,
                    y,
                    reason: format!(
                        "de facto flow into {:?} from {:?}",
                        levels.name(lx),
                        levels.name(ly)
                    ),
                });
            }
        }
    }
    out
}

/// The structural security check (Theorem 5.2): no bridge-or-connection
/// link between subjects against the dominance order, and no rw-span
/// touching an assigned object against it.
///
/// Agrees with [`secure_policy`] — that agreement *is* Theorem 5.2 and is
/// property-tested in `tests/theorems.rs` — under two provisos: every
/// subject must be assigned a level (an unclassified intermediary could
/// otherwise launder a flow the link checks cannot see), and the graph
/// must carry no pre-existing implicit edges (the structural notions are
/// defined over recorded authority only).
pub fn secure_structural(graph: &ProtectionGraph, levels: &LevelAssignment) -> Result<(), Breach> {
    let dfa = lang::bridge_or_connection();
    let search = PathSearch::new(graph, &dfa, SearchConfig::explicit_only());

    // Subject-to-subject links must flow down in dominance (the knower
    // dominates the known).
    for u in graph.subjects() {
        let Some(lu) = levels.level_of(u) else {
            continue;
        };
        for v in search.accepting_reachable(&[u]) {
            if v == u || !graph.is_subject(v) {
                continue;
            }
            let Some(lv) = levels.level_of(v) else {
                continue;
            };
            if !levels.dominates(lu, lv) {
                return Err(Breach {
                    x: u,
                    y: v,
                    reason: format!(
                        "bridge-or-connection from {:?} to {:?}",
                        levels.name(lu),
                        levels.name(lv)
                    ),
                });
            }
        }
    }

    // Every assigned vertex (subject or object): rw-initial spans write
    // into it (information moves up: the written vertex must dominate the
    // writer); rw-terminal spans read it (the reader must dominate it).
    // Subject spans matter too — Figure 5.1's breach is a subject at a
    // high level rw-initially spanning (t> w>) to a lower subject.
    for o in graph.vertex_ids() {
        let Some(lo) = levels.level_of(o) else {
            continue;
        };
        for spanner in rw_initial_spanners(graph, o) {
            let Some(ls) = levels.level_of(spanner.subject) else {
                continue;
            };
            if !levels.dominates(lo, ls) {
                return Err(Breach {
                    x: o,
                    y: spanner.subject,
                    reason: format!(
                        "subject at {:?} can write into vertex at {:?}",
                        levels.name(ls),
                        levels.name(lo)
                    ),
                });
            }
        }
        for spanner in rw_terminal_spanners(graph, o) {
            let Some(ls) = levels.level_of(spanner.subject) else {
                continue;
            };
            if !levels.dominates(ls, lo) {
                return Err(Breach {
                    x: spanner.subject,
                    y: o,
                    reason: format!(
                        "subject at {:?} can read vertex at {:?}",
                        levels.name(ls),
                        levels.name(lo)
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Security against the graph's own de facto structure: derive the
/// rw-levels (§4) and verify the de jure rules cannot invert them — for
/// subjects `x, y` with `x` strictly below `y` in de facto flow,
/// `can_know(x, y)` must be false. This is the reading under which Figure
/// 5.1's unrestricted graph is insecure.
pub fn secure_derived(graph: &ProtectionGraph) -> Result<(), Breach> {
    let levels = rw_levels(graph);
    let subjects: Vec<VertexId> = graph.subjects().collect();
    for &x in &subjects {
        for &y in &subjects {
            if x == y {
                continue;
            }
            let (Some(lx), Some(ly)) = (levels.level_of(x), levels.level_of(y)) else {
                continue;
            };
            if levels.higher(ly, lx) && can_know(graph, x, y) {
                return Err(Breach {
                    x,
                    y,
                    reason: "de jure rules invert the de facto hierarchy".to_string(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{lattice_hierarchy, linear_hierarchy};
    use tg_graph::Rights;

    #[test]
    fn clean_hierarchies_are_secure_all_three_ways() {
        let built = linear_hierarchy(&["L1", "L2", "L3"], 2);
        assert!(secure_policy(&built.graph, &built.assignment).is_ok());
        assert!(secure_structural(&built.graph, &built.assignment).is_ok());
        assert!(secure_derived(&built.graph).is_ok());
        assert!(breaches(&built.graph, &built.assignment).is_empty());
    }

    #[test]
    fn read_up_is_a_breach_in_all_views() {
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let lo = built.subjects[0][0];
        let hi = built.subjects[1][0];
        built.graph.add_edge(lo, hi, Rights::R).unwrap();
        assert!(secure_policy(&built.graph, &built.assignment).is_err());
        assert!(secure_structural(&built.graph, &built.assignment).is_err());
        let all = breaches(&built.graph, &built.assignment);
        assert!(all.iter().any(|b| b.x == lo && b.y == hi));
    }

    #[test]
    fn write_down_is_a_breach() {
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let lo = built.subjects[0][0];
        let hi = built.subjects[1][0];
        built.graph.add_edge(hi, lo, Rights::W).unwrap();
        assert!(secure_policy(&built.graph, &built.assignment).is_err());
        assert!(secure_structural(&built.graph, &built.assignment).is_err());
    }

    #[test]
    fn figure_5_1_execute_edge_is_harmless_but_take_write_is_not() {
        // x -t-> q, q -we-> y, with x above y: x can take w to y and then
        // write down. Unrestricted, the graph is insecure.
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let y = built.subjects[0][0];
        let x = built.subjects[1][0];
        let q = built.graph.add_object("q");
        built.assignment.assign(q, 1).unwrap();
        built.graph.add_edge(x, q, Rights::T).unwrap();
        built.graph.add_edge(q, y, Rights::W | Rights::E).unwrap();
        let err = secure_policy(&built.graph, &built.assignment).unwrap_err();
        // The breach is y learning x's information via the write-down.
        assert_eq!(err.x, y);
        assert!(secure_structural(&built.graph, &built.assignment).is_err());
        assert!(secure_derived(&built.graph).is_err());
    }

    #[test]
    fn flows_into_incomparable_levels_are_breaches() {
        let mut built =
            lattice_hierarchy(&["base", "left", "right"], &[(1, 0), (2, 0)], 1).unwrap();
        let left = built.subjects[1][0];
        let right = built.subjects[2][0];
        built.graph.add_edge(left, right, Rights::R).unwrap();
        assert!(secure_policy(&built.graph, &built.assignment).is_err());
        assert!(secure_structural(&built.graph, &built.assignment).is_err());
    }

    #[test]
    fn bridges_between_levels_are_breaches() {
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let lo = built.subjects[0][0];
        let hi = built.subjects[1][0];
        built.graph.add_edge(lo, hi, Rights::T).unwrap();
        assert!(secure_policy(&built.graph, &built.assignment).is_err());
        assert!(secure_structural(&built.graph, &built.assignment).is_err());
    }

    #[test]
    fn unassigned_vertices_are_ignored() {
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let stranger = built.graph.add_subject("stranger");
        let hi = built.subjects[1][0];
        built.graph.add_edge(stranger, hi, Rights::R).unwrap();
        // stranger has no level, so the policy says nothing about it.
        assert!(secure_policy(&built.graph, &built.assignment).is_ok());
        assert!(secure_structural(&built.graph, &built.assignment).is_ok());
    }

    #[test]
    fn object_read_down_is_fine_read_up_is_not() {
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let hi = built.subjects[1][0];
        let lo_doc = built.attach_object(0, "lo-doc");
        built.graph.add_edge(hi, lo_doc, Rights::R).unwrap();
        assert!(secure_policy(&built.graph, &built.assignment).is_ok());
        assert!(secure_structural(&built.graph, &built.assignment).is_ok());

        let lo = built.subjects[0][0];
        let hi_doc = built.attach_object(1, "hi-doc");
        built.graph.add_edge(lo, hi_doc, Rights::R).unwrap();
        assert!(secure_policy(&built.graph, &built.assignment).is_err());
        assert!(secure_structural(&built.graph, &built.assignment).is_err());
    }
}
