//! Builders realizing classification hierarchies as protection graphs.
//!
//! Theorem 4.3 calls an arrangement of rw-levels with a fixed order a
//! *structure*. These builders construct protection graphs whose derived
//! level structure matches a requested partial order — the executable form
//! of Figures 4.1 (linear classification) and 4.2 (the military
//! classification lattice).
//!
//! Realization: subjects inside one level mutually read each other (a
//! bidirectional `r` ring), and for each covering pair `H > L` one subject
//! of `H` reads one subject of `L`. Information therefore flows upward
//! only; no `t`/`g` edges exist at all, so the de jure rules can add
//! nothing (there is nothing to take with, and nothing to grant along).

use tg_graph::{ProtectionGraph, Rights, VertexId};

use crate::levels::{LevelAssignment, LevelError};

/// A constructed hierarchy: the graph, the policy assignment, and the
/// subjects of each level.
#[derive(Clone, Debug)]
pub struct BuiltHierarchy {
    /// The protection graph.
    pub graph: ProtectionGraph,
    /// The intended classification.
    pub assignment: LevelAssignment,
    /// `subjects[level]` lists that level's subject vertices.
    pub subjects: Vec<Vec<VertexId>>,
}

impl BuiltHierarchy {
    /// Attaches an object to `level`: one subject of the level receives
    /// `r` and `w` over it, making it belong to that rw-level per §4's
    /// object-classification rule.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range or has no subjects.
    pub fn attach_object(&mut self, level: usize, name: &str) -> VertexId {
        let holder = self.subjects[level][0];
        let object = self.graph.add_object(name);
        self.graph
            .add_edge(holder, object, Rights::RW)
            .expect("fresh object edge");
        self.assignment.assign(object, level).expect("level exists");
        object
    }
}

/// Builds a hierarchy for an arbitrary partial order given by `covers`
/// (pairs `(higher, lower)`), with `per_level` subjects in each level.
///
/// # Errors
///
/// Propagates [`LevelError`] for cyclic or out-of-range covers.
///
/// # Examples
///
/// ```
/// use tg_hierarchy::structure::lattice_hierarchy;
///
/// // A diamond: top over two incomparable middles over bottom.
/// let built = lattice_hierarchy(
///     &["bottom", "left", "right", "top"],
///     &[(1, 0), (2, 0), (3, 1), (3, 2)],
///     2,
/// ).unwrap();
/// assert_eq!(built.subjects.len(), 4);
/// ```
pub fn lattice_hierarchy(
    names: &[&str],
    covers: &[(usize, usize)],
    per_level: usize,
) -> Result<BuiltHierarchy, LevelError> {
    let mut assignment = LevelAssignment::new(names, covers)?;
    let mut graph = ProtectionGraph::new();
    let mut subjects: Vec<Vec<VertexId>> = Vec::with_capacity(names.len());
    for (li, name) in names.iter().enumerate() {
        let mut level_subjects = Vec::with_capacity(per_level);
        for si in 0..per_level.max(1) {
            let v = graph.add_subject(format!("{name}-s{si}"));
            assignment.assign(v, li)?;
            level_subjects.push(v);
        }
        // Mutual visibility inside the level: a bidirectional read ring.
        for i in 0..level_subjects.len() {
            let j = (i + 1) % level_subjects.len();
            if i != j {
                graph
                    .add_edge(level_subjects[i], level_subjects[j], Rights::R)
                    .expect("fresh subjects");
                graph
                    .add_edge(level_subjects[j], level_subjects[i], Rights::R)
                    .expect("fresh subjects");
            }
        }
        subjects.push(level_subjects);
    }
    for &(h, l) in covers {
        // One representative of the higher level reads one of the lower.
        graph
            .add_edge(subjects[h][0], subjects[l][0], Rights::R)
            .expect("fresh cover edge");
    }
    Ok(BuiltHierarchy {
        graph,
        assignment,
        subjects,
    })
}

/// Builds the linear classification of Figure 4.1: `names[0]` lowest.
pub fn linear_hierarchy(names: &[&str], per_level: usize) -> BuiltHierarchy {
    let covers: Vec<(usize, usize)> = (1..names.len()).map(|i| (i, i - 1)).collect();
    lattice_hierarchy(names, &covers, per_level).expect("a chain has no cycles")
}

/// The military classification system of Figure 4.2: authority levels
/// (unclassified=0, confidential=1, secret=2, top-secret=3) crossed with
/// category sets. A level `(a1, c1)` dominates `(a2, c2)` iff `a1 ≥ a2`
/// and `c1 ⊇ c2` — a lattice with incomparable levels.
///
/// `categories` names the compartments; every subset of them is crossed
/// with every authority level, so keep the list short (the figure uses
/// two, A and B).
pub fn military_hierarchy(categories: &[&str], per_level: usize) -> BuiltHierarchy {
    const AUTHORITY: [&str; 4] = ["unclassified", "confidential", "secret", "top-secret"];
    let subset_count = 1usize << categories.len();
    let mut names: Vec<String> = Vec::new();
    for auth in AUTHORITY.iter() {
        for mask in 0..subset_count {
            let cats: Vec<&str> = categories
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, c)| *c)
                .collect();
            if cats.is_empty() {
                names.push(format!("{auth}.{{}}"));
            } else {
                names.push(format!("{auth}.{{{}}}", cats.join(",")));
            }
        }
    }
    let idx = |a: usize, mask: usize| a * subset_count + mask;
    let mut covers = Vec::new();
    for a in 0..AUTHORITY.len() {
        for mask in 0..subset_count {
            // Cover by authority step.
            if a + 1 < AUTHORITY.len() {
                covers.push((idx(a + 1, mask), idx(a, mask)));
            }
            // Cover by adding one category.
            for c in 0..categories.len() {
                if mask & (1 << c) == 0 {
                    covers.push((idx(a, mask | (1 << c)), idx(a, mask)));
                }
            }
        }
    }
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    lattice_hierarchy(&name_refs, &covers, per_level).expect("the military lattice is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::rw_levels;
    use tg_analysis::{can_know, can_know_f};

    #[test]
    fn linear_hierarchy_flows_up_only() {
        // Theorem 4.3 on the Figure 4.1 structure: for j < k, the higher
        // vertex knows the lower, never conversely.
        let built = linear_hierarchy(&["L1", "L2", "L3", "L4"], 2);
        for k in 0..4 {
            for j in 0..k {
                for &hi in &built.subjects[k] {
                    for &lo in &built.subjects[j] {
                        assert!(can_know_f(&built.graph, hi, lo), "L{k} must know L{j}");
                        assert!(!can_know_f(&built.graph, lo, hi), "L{j} must not know L{k}");
                        // With de jure rules too (no tg edges exist).
                        assert!(!can_know(&built.graph, lo, hi));
                    }
                }
            }
        }
    }

    #[test]
    fn same_level_subjects_are_mutually_knowing() {
        let built = linear_hierarchy(&["L1", "L2"], 3);
        for level in &built.subjects {
            for &a in level {
                for &b in level {
                    assert!(can_know_f(&built.graph, a, b));
                }
            }
        }
    }

    #[test]
    fn derived_levels_match_the_assignment() {
        let built = linear_hierarchy(&["L1", "L2", "L3"], 2);
        let derived = rw_levels(&built.graph);
        for (li, level) in built.subjects.iter().enumerate() {
            let d = derived.level_of(level[0]).unwrap();
            for &s in level {
                assert_eq!(derived.level_of(s), Some(d), "level {li} must be one SCC");
            }
        }
        // And the derived order agrees: L3 > L1.
        let top = derived.level_of(built.subjects[2][0]).unwrap();
        let bottom = derived.level_of(built.subjects[0][0]).unwrap();
        assert!(derived.higher(top, bottom));
    }

    #[test]
    fn diamond_lattice_keeps_middles_incomparable() {
        let built = lattice_hierarchy(
            &["bottom", "left", "right", "top"],
            &[(1, 0), (2, 0), (3, 1), (3, 2)],
            1,
        )
        .unwrap();
        let g = &built.graph;
        let (bottom, left, right, top) = (
            built.subjects[0][0],
            built.subjects[1][0],
            built.subjects[2][0],
            built.subjects[3][0],
        );
        assert!(can_know_f(g, left, bottom));
        assert!(can_know_f(g, right, bottom));
        assert!(can_know_f(g, top, left));
        assert!(can_know_f(g, top, bottom));
        assert!(!can_know_f(g, left, right), "incomparable compartments");
        assert!(!can_know_f(g, right, left));
        assert!(!can_know_f(g, bottom, top));
    }

    #[test]
    fn military_lattice_has_the_right_shape() {
        let built = military_hierarchy(&["A", "B"], 1);
        // 4 authority levels × 4 category subsets.
        assert_eq!(built.subjects.len(), 16);
        let a = &built.assignment;
        // secret.{A} dominates confidential.{A} but not confidential.{B}.
        let level = |name: &str| (0..a.len()).find(|&i| a.name(i) == name).unwrap();
        let sec_a = level("secret.{A}");
        let conf_a = level("confidential.{A}");
        let conf_b = level("confidential.{B}");
        let ts_ab = level("top-secret.{A,B}");
        assert!(a.higher(sec_a, conf_a));
        assert!(a.incomparable(sec_a, conf_b));
        assert!(a.higher(ts_ab, sec_a));
        assert!(a.higher(ts_ab, conf_b));
        // The graph realizes it: secret.{A} knows confidential.{A} only.
        let g = &built.graph;
        assert!(can_know_f(
            g,
            built.subjects[sec_a][0],
            built.subjects[conf_a][0]
        ));
        assert!(!can_know_f(
            g,
            built.subjects[sec_a][0],
            built.subjects[conf_b][0]
        ));
        // "While two subjects may have the same security classification,
        // the model makes no assumptions about their being able to
        // communicate": distinct same-shape levels stay incomparable.
        let sec_b = level("secret.{B}");
        assert!(a.incomparable(sec_a, sec_b));
    }

    #[test]
    fn attached_objects_belong_to_their_level() {
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let doc = built.attach_object(1, "secret-doc");
        assert_eq!(built.assignment.level_of(doc), Some(1));
        // Theorem 4.5: the lower subject cannot know the higher object.
        let lo = built.subjects[0][0];
        assert!(!can_know_f(&built.graph, lo, doc));
        let hi = built.subjects[1][0];
        assert!(can_know_f(&built.graph, hi, doc));
    }

    #[test]
    fn single_subject_levels_work() {
        let built = linear_hierarchy(&["only"], 1);
        assert_eq!(built.subjects[0].len(), 1);
        assert_eq!(built.graph.vertex_count(), 1);
    }
}
