//! Object classification (§4).
//!
//! "An object vertex v is said to belong to the lowest rw-level a subject
//! vertex of which has either read or write access to it." With a partial
//! order there may be no unique lowest such level; [`object_level`]
//! reports the set of minimal levels and callers decide whether ambiguity
//! is acceptable (the paper's usage implies well-formed hierarchies have a
//! unique answer).

use tg_graph::{ProtectionGraph, Rights, VertexId};

use crate::levels::DerivedLevels;

/// The outcome of classifying an object against derived rw-levels.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ObjectLevel {
    /// No subject holds `r` or `w` over the object; it is unreachable and
    /// carries no classification.
    Unclassified,
    /// A unique lowest accessing level.
    Level(usize),
    /// Multiple minimal accessing levels (ambiguous classification) —
    /// a modelling diagnostic.
    Ambiguous(Vec<usize>),
}

/// Classifies `object` against `levels` (usually
/// [`rw_levels`](crate::rw_levels) of the same graph): the lowest level
/// whose subjects hold explicit `r` or `w` over it.
///
/// # Panics
///
/// Panics if `object` does not belong to `graph`.
///
/// # Examples
///
/// ```
/// use tg_graph::{ProtectionGraph, Rights};
/// use tg_hierarchy::objects::{object_level, ObjectLevel};
/// use tg_hierarchy::rw_levels;
///
/// let mut g = ProtectionGraph::new();
/// let hi = g.add_subject("hi");
/// let lo = g.add_subject("lo");
/// let doc = g.add_object("doc");
/// g.add_edge(hi, lo, Rights::R).unwrap();
/// g.add_edge(hi, doc, Rights::R).unwrap();
/// g.add_edge(lo, doc, Rights::R).unwrap();
///
/// let levels = rw_levels(&g);
/// // Both levels access doc; the lower one wins.
/// assert_eq!(object_level(&g, &levels, doc), ObjectLevel::Level(levels.level_of(lo).unwrap()));
/// ```
pub fn object_level(
    graph: &ProtectionGraph,
    levels: &DerivedLevels,
    object: VertexId,
) -> ObjectLevel {
    let mut accessors: Vec<usize> = graph
        .in_edges(object)
        .filter(|(s, er)| graph.is_subject(*s) && er.explicit().intersects(Rights::RW))
        .filter_map(|(s, _)| levels.level_of(s))
        .collect();
    accessors.sort_unstable();
    accessors.dedup();
    if accessors.is_empty() {
        return ObjectLevel::Unclassified;
    }
    // Minimal elements under the `higher` order.
    let minimal: Vec<usize> = accessors
        .iter()
        .copied()
        .filter(|&l| !accessors.iter().any(|&m| levels.higher(l, m)))
        .collect();
    match minimal.as_slice() {
        [only] => ObjectLevel::Level(*only),
        _ => ObjectLevel::Ambiguous(minimal),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::rw_levels;
    use crate::structure::lattice_hierarchy;

    #[test]
    fn unreferenced_objects_are_unclassified() {
        let mut g = ProtectionGraph::new();
        g.add_subject("s");
        let o = g.add_object("o");
        let levels = rw_levels(&g);
        assert_eq!(object_level(&g, &levels, o), ObjectLevel::Unclassified);
    }

    #[test]
    fn lowest_accessor_wins() {
        let mut g = ProtectionGraph::new();
        let hi = g.add_subject("hi");
        let lo = g.add_subject("lo");
        let o = g.add_object("o");
        g.add_edge(hi, lo, Rights::R).unwrap();
        g.add_edge(hi, o, Rights::W).unwrap();
        g.add_edge(lo, o, Rights::R).unwrap();
        let levels = rw_levels(&g);
        assert_eq!(
            object_level(&g, &levels, o),
            ObjectLevel::Level(levels.level_of(lo).unwrap())
        );
    }

    #[test]
    fn write_access_counts() {
        let mut g = ProtectionGraph::new();
        let s = g.add_subject("s");
        let o = g.add_object("o");
        g.add_edge(s, o, Rights::W).unwrap();
        let levels = rw_levels(&g);
        assert_eq!(
            object_level(&g, &levels, o),
            ObjectLevel::Level(levels.level_of(s).unwrap())
        );
    }

    #[test]
    fn take_access_does_not_count() {
        let mut g = ProtectionGraph::new();
        let s = g.add_subject("s");
        let o = g.add_object("o");
        g.add_edge(s, o, Rights::T).unwrap();
        let levels = rw_levels(&g);
        assert_eq!(object_level(&g, &levels, o), ObjectLevel::Unclassified);
    }

    #[test]
    fn incomparable_accessors_are_ambiguous() {
        let built = lattice_hierarchy(&["bottom", "left", "right"], &[(1, 0), (2, 0)], 1).unwrap();
        let mut g = built.graph;
        let left = built.subjects[1][0];
        let right = built.subjects[2][0];
        let o = g.add_object("shared");
        g.add_edge(left, o, Rights::R).unwrap();
        g.add_edge(right, o, Rights::R).unwrap();
        let levels = rw_levels(&g);
        match object_level(&g, &levels, o) {
            ObjectLevel::Ambiguous(ls) => assert_eq!(ls.len(), 2),
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn object_accessors_ignore_implicit_edges() {
        let mut g = ProtectionGraph::new();
        let s = g.add_subject("s");
        let o = g.add_object("o");
        g.add_implicit_edge(s, o, Rights::R).unwrap();
        let levels = rw_levels(&g);
        assert_eq!(object_level(&g, &levels, o), ObjectLevel::Unclassified);
    }
}
