//! The de jure rule restrictions of §5.
//!
//! Three families, with the soundness/completeness results of Lemmas
//! 5.3/5.4 and Theorem 5.5:
//!
//! * [`DirectionRestriction`] — take/grant edges may only be exercised
//!   toward dominated vertices. **Sound but not complete** (Lemma 5.3):
//!   inert rights can no longer move upward at all.
//! * [`ApplicationRestriction`] — take/grant may not move designated
//!   rights (e.g. `r`). **Sound but not complete** (Lemma 5.4).
//! * [`CombinedRestriction`] — the paper's proposal: a de jure rule is
//!   rejected exactly when the explicit edge it would add carries `r`
//!   against dominance (read-up) or `w` with a dominating source
//!   (write-down). **Sound and complete** (Theorem 5.5): every transfer of
//!   rights other than `r`/`w` remains possible in any direction.
//!
//! A restriction inspects the rule and its previewed [`Effect`] against a
//! [`LevelAssignment`]; with levels in hand each check is a constant
//! number of comparisons (Corollary 5.7).

use tg_graph::{ProtectionGraph, Right, Rights, VertexId};
use tg_rules::{DeJureRule, Effect, Rule};

use crate::levels::LevelAssignment;

/// Why a restriction denied a rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DenyReason {
    /// The new edge would carry `r` from a vertex that does not dominate
    /// its target (restriction (a): the refined simple security property).
    ReadUp {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
    },
    /// The new edge would carry `w` from a vertex whose level strictly
    /// dominates the target's (restriction (b): no write down).
    WriteDown {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
    },
    /// A direction restriction: the take/grant edge points the wrong way.
    WrongDirection {
        /// The rule's acting subject.
        actor: VertexId,
        /// The vertex at the other end of the exercised t/g edge.
        via: VertexId,
    },
    /// An application restriction: the rule moves an immovable right.
    ImmovableRights(Rights),
    /// The rule involves a vertex with no assigned level (fail closed).
    Unassigned(VertexId),
}

impl core::fmt::Display for DenyReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DenyReason::ReadUp { src, dst } => {
                write!(
                    f,
                    "denied: {src} would acquire read over higher/incomparable {dst}"
                )
            }
            DenyReason::WriteDown { src, dst } => {
                write!(f, "denied: {src} would acquire write over lower {dst}")
            }
            DenyReason::WrongDirection { actor, via } => {
                write!(
                    f,
                    "denied: {actor} may not exercise a t/g edge toward {via}"
                )
            }
            DenyReason::ImmovableRights(r) => write!(f, "denied: rights {r} may not be moved"),
            DenyReason::Unassigned(v) => write!(f, "denied: {v} has no security level"),
        }
    }
}

/// The outcome of a restriction check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Decision {
    /// The rule may proceed.
    Permit,
    /// The rule is rejected.
    Deny(DenyReason),
}

impl Decision {
    /// Whether the decision is [`Decision::Permit`].
    pub fn is_permit(&self) -> bool {
        matches!(self, Decision::Permit)
    }
}

/// A pluggable de jure restriction, consulted by the
/// [`Monitor`](crate::Monitor) before each rule application.
///
/// De facto rules are never restricted: "such a restriction is
/// meaningless with respect to the de facto rules, because the
/// information can still flow" (§6) — only the monitor's *de jure* path
/// consults the restriction.
///
/// Restrictions are pure decision procedures over the graph and level
/// assignment they are handed, so the trait requires `Send + Sync`:
/// parallel evaluation (`tg-par`) shares one restriction across audit
/// shards, and a `Monitor` holding a boxed restriction must be movable
/// into worker threads.
pub trait Restriction: Send + Sync {
    /// A short display name.
    fn name(&self) -> &'static str;

    /// Checks one de jure rule with its previewed effect. Implementations
    /// run in constant time given the level assignment (Corollary 5.7).
    fn permits(
        &self,
        graph: &ProtectionGraph,
        levels: &LevelAssignment,
        rule: &DeJureRule,
        effect: &Effect,
    ) -> Decision;

    /// Audit predicate: does this explicit edge violate the invariant the
    /// restriction maintains? Used by the linear-time whole-graph audit
    /// (Corollary 5.6). The default reports no violations (restrictions
    /// that only constrain rule *application* have no edge invariant).
    fn edge_violates(
        &self,
        _levels: &LevelAssignment,
        _src: VertexId,
        _dst: VertexId,
        _rights: Rights,
    ) -> bool {
        false
    }
}

/// No restriction: every well-formed rule is permitted.
#[derive(Clone, Copy, Default, Debug)]
pub struct Unrestricted;

impl Restriction for Unrestricted {
    fn name(&self) -> &'static str {
        "unrestricted"
    }

    fn permits(
        &self,
        _graph: &ProtectionGraph,
        _levels: &LevelAssignment,
        _rule: &DeJureRule,
        _effect: &Effect,
    ) -> Decision {
        Decision::Permit
    }
}

/// Restriction of direction (Lemma 5.3): a subject may exercise a take or
/// grant edge only toward a vertex its own level dominates.
#[derive(Clone, Copy, Default, Debug)]
pub struct DirectionRestriction;

impl Restriction for DirectionRestriction {
    fn name(&self) -> &'static str {
        "direction"
    }

    fn permits(
        &self,
        _graph: &ProtectionGraph,
        levels: &LevelAssignment,
        rule: &DeJureRule,
        _effect: &Effect,
    ) -> Decision {
        let (actor, via) = match rule {
            DeJureRule::Take { actor, via, .. } | DeJureRule::Grant { actor, via, .. } => {
                (*actor, *via)
            }
            // Create and remove exercise no t/g edge.
            DeJureRule::Create { .. } | DeJureRule::Remove { .. } => return Decision::Permit,
        };
        let (Some(la), Some(lv)) = (levels.level_of(actor), levels.level_of(via)) else {
            let missing = if levels.level_of(actor).is_none() {
                actor
            } else {
                via
            };
            return Decision::Deny(DenyReason::Unassigned(missing));
        };
        if levels.dominates(la, lv) {
            Decision::Permit
        } else {
            Decision::Deny(DenyReason::WrongDirection { actor, via })
        }
    }
}

/// Restriction of application (Lemma 5.4): take and grant may not move
/// the designated rights.
#[derive(Clone, Copy, Debug)]
pub struct ApplicationRestriction {
    /// Rights the de jure rules may not transfer.
    pub immovable: Rights,
}

impl ApplicationRestriction {
    /// The paper's example: the take rule "restricted so that it cannot
    /// act on read rights".
    pub fn no_read_transfer() -> ApplicationRestriction {
        ApplicationRestriction {
            immovable: Rights::R,
        }
    }
}

impl Restriction for ApplicationRestriction {
    fn name(&self) -> &'static str {
        "application"
    }

    fn permits(
        &self,
        _graph: &ProtectionGraph,
        _levels: &LevelAssignment,
        rule: &DeJureRule,
        _effect: &Effect,
    ) -> Decision {
        let moved = match rule {
            DeJureRule::Take { rights, .. } | DeJureRule::Grant { rights, .. } => *rights,
            DeJureRule::Create { .. } | DeJureRule::Remove { .. } => return Decision::Permit,
        };
        let blocked = moved & self.immovable;
        if blocked.is_empty() {
            Decision::Permit
        } else {
            Decision::Deny(DenyReason::ImmovableRights(blocked))
        }
    }
}

/// The paper's combined restriction (Theorem 5.5): reject a de jure rule
/// exactly when the explicit edge it would add completes a forbidden
/// connection — `r` against dominance (read-up) or `w` along strict
/// dominance (write-down). All other rights move freely in any direction.
///
/// The check inspects only the previewed edge: a forbidden connection can
/// be *used* only after its final `r`/`w` right is explicitly acquired,
/// and that acquisition is itself a rule application adding an explicit
/// `r`/`w` edge — so checking edge additions suffices, in constant time
/// (Corollary 5.7).
#[derive(Clone, Copy, Default, Debug)]
pub struct CombinedRestriction;

impl CombinedRestriction {
    fn check_edge(
        levels: &LevelAssignment,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> Decision {
        if rights.intersects(Rights::RW) {
            let (Some(ls), Some(ld)) = (levels.level_of(src), levels.level_of(dst)) else {
                let missing = if levels.level_of(src).is_none() {
                    src
                } else {
                    dst
                };
                return Decision::Deny(DenyReason::Unassigned(missing));
            };
            // Restriction (a): no read-up — the reader must dominate.
            if rights.contains(Right::Read) && !levels.dominates(ls, ld) {
                return Decision::Deny(DenyReason::ReadUp { src, dst });
            }
            // Restriction (b): no write-down — the written must dominate.
            if rights.contains(Right::Write) && !levels.dominates(ld, ls) {
                return Decision::Deny(DenyReason::WriteDown { src, dst });
            }
        }
        Decision::Permit
    }
}

impl Restriction for CombinedRestriction {
    fn name(&self) -> &'static str {
        "combined (no read-up / no write-down)"
    }

    fn permits(
        &self,
        _graph: &ProtectionGraph,
        levels: &LevelAssignment,
        _rule: &DeJureRule,
        effect: &Effect,
    ) -> Decision {
        match effect {
            Effect::ExplicitAdded { src, dst, rights } => {
                CombinedRestriction::check_edge(levels, *src, *dst, *rights)
            }
            // A created vertex inherits its creator's level (the monitor
            // assigns it), so the creator's edge to it is level-equal and
            // always fine; removals never add flow.
            Effect::Created { .. } | Effect::Removed { .. } => Decision::Permit,
            Effect::ImplicitAdded { .. } => Decision::Permit,
        }
    }

    fn edge_violates(
        &self,
        levels: &LevelAssignment,
        src: VertexId,
        dst: VertexId,
        rights: Rights,
    ) -> bool {
        !CombinedRestriction::check_edge(levels, src, dst, rights).is_permit()
    }
}

/// Convenience: check a whole rule (previewing internally). Returns the
/// restriction decision or the rule's own precondition error.
pub fn check_rule(
    restriction: &dyn Restriction,
    graph: &ProtectionGraph,
    levels: &LevelAssignment,
    rule: &Rule,
) -> Result<Decision, tg_rules::RuleError> {
    match rule {
        Rule::DeJure(dj) => {
            let effect = tg_rules::preview(graph, rule)?;
            Ok(restriction.permits(graph, levels, dj, &effect))
        }
        // De facto rules are never restricted (§6).
        Rule::DeFacto(_) => {
            tg_rules::preview(graph, rule)?;
            Ok(Decision::Permit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::ProtectionGraph;

    fn setup() -> (
        ProtectionGraph,
        LevelAssignment,
        VertexId,
        VertexId,
        VertexId,
    ) {
        let mut g = ProtectionGraph::new();
        let hi = g.add_subject("hi");
        let lo = g.add_subject("lo");
        let q = g.add_object("q");
        let mut levels = LevelAssignment::linear(&["low", "high"]);
        levels.assign(hi, 1).unwrap();
        levels.assign(lo, 0).unwrap();
        levels.assign(q, 0).unwrap();
        (g, levels, hi, lo, q)
    }

    fn take(actor: VertexId, via: VertexId, target: VertexId, rights: Rights) -> DeJureRule {
        DeJureRule::Take {
            actor,
            via,
            target,
            rights,
        }
    }

    #[test]
    fn combined_blocks_read_up() {
        let (g, levels, hi, lo, _) = setup();
        let effect = Effect::ExplicitAdded {
            src: lo,
            dst: hi,
            rights: Rights::R,
        };
        let rule = take(lo, hi, hi, Rights::R);
        let decision = CombinedRestriction.permits(&g, &levels, &rule, &effect);
        assert_eq!(
            decision,
            Decision::Deny(DenyReason::ReadUp { src: lo, dst: hi })
        );
    }

    #[test]
    fn combined_blocks_write_down() {
        let (g, levels, hi, lo, _) = setup();
        let effect = Effect::ExplicitAdded {
            src: hi,
            dst: lo,
            rights: Rights::W,
        };
        let rule = take(hi, lo, lo, Rights::W);
        let decision = CombinedRestriction.permits(&g, &levels, &rule, &effect);
        assert_eq!(
            decision,
            Decision::Deny(DenyReason::WriteDown { src: hi, dst: lo })
        );
    }

    #[test]
    fn combined_permits_read_down_write_up_and_inert_rights() {
        let (g, levels, hi, lo, q) = setup();
        // Read down.
        let e = Effect::ExplicitAdded {
            src: hi,
            dst: lo,
            rights: Rights::R,
        };
        assert!(CombinedRestriction
            .permits(&g, &levels, &take(hi, q, lo, Rights::R), &e)
            .is_permit());
        // Write up.
        let e = Effect::ExplicitAdded {
            src: lo,
            dst: hi,
            rights: Rights::W,
        };
        assert!(CombinedRestriction
            .permits(&g, &levels, &take(lo, q, hi, Rights::W), &e)
            .is_permit());
        // Execute moves anywhere — "that is not constrained" (Fig 5.1).
        let e = Effect::ExplicitAdded {
            src: lo,
            dst: hi,
            rights: Rights::E,
        };
        assert!(CombinedRestriction
            .permits(&g, &levels, &take(lo, q, hi, Rights::E), &e)
            .is_permit());
        // Take/grant rights move anywhere too.
        let e = Effect::ExplicitAdded {
            src: lo,
            dst: hi,
            rights: Rights::TG,
        };
        assert!(CombinedRestriction
            .permits(&g, &levels, &take(lo, q, hi, Rights::TG), &e)
            .is_permit());
    }

    #[test]
    fn combined_fails_closed_on_unassigned_vertices() {
        let (mut g, levels, hi, _, _) = setup();
        let stranger = g.add_subject("stranger");
        let e = Effect::ExplicitAdded {
            src: stranger,
            dst: hi,
            rights: Rights::R,
        };
        let d = CombinedRestriction.permits(&g, &levels, &take(stranger, hi, hi, Rights::R), &e);
        assert_eq!(d, Decision::Deny(DenyReason::Unassigned(stranger)));
    }

    #[test]
    fn direction_restricts_the_exercised_edge() {
        let (g, levels, hi, lo, q) = setup();
        // hi takes from lo (downward): permitted.
        let e = Effect::ExplicitAdded {
            src: hi,
            dst: q,
            rights: Rights::E,
        };
        assert!(DirectionRestriction
            .permits(&g, &levels, &take(hi, lo, q, Rights::E), &e)
            .is_permit());
        // lo takes from hi (upward): denied.
        let d = DirectionRestriction.permits(&g, &levels, &take(lo, hi, q, Rights::E), &e);
        assert_eq!(
            d,
            Decision::Deny(DenyReason::WrongDirection { actor: lo, via: hi })
        );
    }

    #[test]
    fn application_blocks_designated_rights_only() {
        let (g, levels, hi, lo, q) = setup();
        let r = ApplicationRestriction::no_read_transfer();
        let e = Effect::ExplicitAdded {
            src: hi,
            dst: q,
            rights: Rights::R,
        };
        let d = r.permits(&g, &levels, &take(hi, lo, q, Rights::R), &e);
        assert_eq!(d, Decision::Deny(DenyReason::ImmovableRights(Rights::R)));
        let e = Effect::ExplicitAdded {
            src: hi,
            dst: q,
            rights: Rights::W,
        };
        assert!(r
            .permits(&g, &levels, &take(hi, lo, q, Rights::W), &e)
            .is_permit());
    }

    #[test]
    fn creates_and_removes_are_always_structural() {
        let (g, levels, hi, lo, _) = setup();
        let create = DeJureRule::Create {
            actor: lo,
            kind: tg_graph::VertexKind::Object,
            rights: Rights::RW,
            name: "n".to_string(),
        };
        let e = Effect::Created {
            id: VertexId::from_index(9),
            creator: lo,
            rights: Rights::RW,
        };
        assert!(CombinedRestriction
            .permits(&g, &levels, &create, &e)
            .is_permit());
        assert!(DirectionRestriction
            .permits(&g, &levels, &create, &e)
            .is_permit());
        let remove = DeJureRule::Remove {
            actor: hi,
            target: lo,
            rights: Rights::R,
        };
        let e = Effect::Removed {
            src: hi,
            dst: lo,
            removed: Rights::R,
        };
        assert!(CombinedRestriction
            .permits(&g, &levels, &remove, &e)
            .is_permit());
    }

    #[test]
    fn audit_predicate_matches_the_rule_check() {
        let (_, levels, hi, lo, _) = setup();
        assert!(CombinedRestriction.edge_violates(&levels, lo, hi, Rights::R));
        assert!(CombinedRestriction.edge_violates(&levels, hi, lo, Rights::W));
        assert!(!CombinedRestriction.edge_violates(&levels, hi, lo, Rights::R));
        assert!(!CombinedRestriction.edge_violates(&levels, lo, hi, Rights::E));
        assert!(!CombinedRestriction.edge_violates(&levels, lo, hi, Rights::TG));
        // Same-level r/w is always fine.
        assert!(!CombinedRestriction.edge_violates(&levels, hi, hi, Rights::RW));
    }

    #[test]
    fn check_rule_integrates_preview() {
        let (mut g, levels, hi, lo, q) = setup();
        g.add_edge(lo, q, Rights::T).unwrap();
        g.add_edge(q, hi, Rights::R).unwrap();
        // lo tries to take (r to hi): structurally legal, denied by policy.
        let rule = Rule::DeJure(take(lo, q, hi, Rights::R));
        let decision = check_rule(&CombinedRestriction, &g, &levels, &rule).unwrap();
        assert!(!decision.is_permit());
        // Unrestricted permits it.
        let decision = check_rule(&Unrestricted, &g, &levels, &rule).unwrap();
        assert!(decision.is_permit());
        // A rule failing its own preconditions errors instead.
        let bad = Rule::DeJure(take(lo, q, hi, Rights::W));
        assert!(check_rule(&CombinedRestriction, &g, &levels, &bad).is_err());
    }
}
