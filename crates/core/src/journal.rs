//! Write-ahead audit journal and crash recovery.
//!
//! The journal is an append-only text log of every rule the monitor was
//! *asked* to apply — permitted, denied, malformed, or refused — written
//! **before** the corresponding graph mutation (write-ahead discipline).
//! Together with the seed graph it is a complete, tamper-evident record
//! of the monitor's history: [`recover`] replays it onto the seed and
//! reproduces the live monitor's graph, level assignment, rule log and
//! statistics exactly.
//!
//! # Format (`TGJ1`)
//!
//! The first line is the magic string `TGJ1`. Every following line is one
//! record:
//!
//! ```text
//! <crc32-hex8> <seq> <payload>
//! ```
//!
//! where `crc32-hex8` is the IEEE CRC-32 of `"<seq> <payload>"` in
//! lower-case hex, `seq` is the dense 0-based record number, and the
//! payload is one of:
//!
//! ```text
//! R <outcome> <rule>      single attempt; outcome ∈ permitted|denied|malformed|refused
//! B                       begin a transactional batch
//! A <rule>                rule applied inside the open batch
//! C                       batch committed
//! X <idx> <outcome> <rule> batch aborted at rule idx; prefix rolled back
//! ```
//!
//! Rules use the canonical text codec from
//! [`tg_rules::codec`].
//!
//! # Failure semantics
//!
//! * **Torn tail** — invalid trailing data with *no* valid record after
//!   it (the classic crash-mid-write shape). The tail is truncated and
//!   recovery proceeds, reporting the drop in [`Recovery::torn`].
//! * **Mid-log corruption** — an invalid or out-of-sequence record with a
//!   later valid record after it. That cannot be produced by a crash, so
//!   recovery **fails closed** with [`JournalError::MidLogCorruption`].
//! * **Open batch at end of log** — a crash mid-batch. The batch never
//!   committed (no `C`), so its records are discarded, matching the live
//!   monitor's rollback-on-abort semantics.
//! * **Divergent replay** — a `permitted`/`A` record whose rule the
//!   restriction no longer permits (wrong seed graph, tampered journal
//!   body with a forged CRC). Recovery fails closed with
//!   [`JournalError::Diverged`] rather than admit an unauthorized effect.
//!
//! Quarantine repairs ([`Monitor::quarantine`]) are *not* journaled:
//! the journal records rule traffic, and out-of-band tampering — the only
//! thing quarantine removes — never entered the graph through a rule, so
//! replaying onto the untampered seed never re-creates it.

use core::fmt;

use tg_graph::ProtectionGraph;
use tg_rules::codec::{decode_rule, encode_rule, CodecError};
use tg_rules::Rule;

use crate::levels::LevelAssignment;
use crate::monitor::{Monitor, MonitorError};
use crate::restrict::Restriction;

/// Magic first line of every journal.
pub const MAGIC: &str = "TGJ1";

/// Outcome tag recorded for an attempted rule application.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// The rule was applied.
    Permitted,
    /// The restriction denied it.
    Denied,
    /// Its own preconditions failed.
    Malformed,
    /// The monitor was degraded and refused it.
    Refused,
}

impl Outcome {
    fn as_str(self) -> &'static str {
        match self {
            Outcome::Permitted => "permitted",
            Outcome::Denied => "denied",
            Outcome::Malformed => "malformed",
            Outcome::Refused => "refused",
        }
    }

    fn parse(word: &str) -> Option<Outcome> {
        Some(match word {
            "permitted" => Outcome::Permitted,
            "denied" => Outcome::Denied,
            "malformed" => Outcome::Malformed,
            "refused" => Outcome::Refused,
            _ => return None,
        })
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One journal record payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JournalEvent {
    /// A single (non-batch) attempt and its outcome.
    Attempt {
        /// How the monitor ruled.
        outcome: Outcome,
        /// The attempted rule.
        rule: Rule,
    },
    /// A transactional batch begins.
    BatchBegin,
    /// A rule applied inside the open batch.
    BatchApply {
        /// The applied rule.
        rule: Rule,
    },
    /// The open batch committed.
    BatchCommit,
    /// The open batch aborted at rule `index`; its prefix was rolled
    /// back.
    BatchAbort {
        /// Index of the refused rule within the batch.
        index: usize,
        /// Why it was refused.
        outcome: Outcome,
        /// The refused rule.
        rule: Rule,
    },
}

impl JournalEvent {
    /// Encodes this event as a `TGJ1` record payload (the part after the
    /// CRC and sequence number). Public so other log formats — the
    /// hash-chained commit log in `tg-log` — can carry the exact same
    /// payloads and share one codec.
    pub fn encode_payload(&self) -> String {
        match self {
            JournalEvent::Attempt { outcome, rule } => {
                format!("R {outcome} {}", encode_rule(rule))
            }
            JournalEvent::BatchBegin => "B".to_string(),
            JournalEvent::BatchApply { rule } => format!("A {}", encode_rule(rule)),
            JournalEvent::BatchCommit => "C".to_string(),
            JournalEvent::BatchAbort {
                index,
                outcome,
                rule,
            } => format!("X {index} {outcome} {}", encode_rule(rule)),
        }
    }

    /// Decodes a `TGJ1` record payload (inverse of
    /// [`encode_payload`](JournalEvent::encode_payload)).
    ///
    /// # Errors
    ///
    /// [`CodecError`] if the payload tag, outcome word, batch index, or
    /// embedded rule fails to parse.
    pub fn decode_payload(payload: &str) -> Result<JournalEvent, CodecError> {
        let (tag, rest) = match payload.split_once(' ') {
            Some((tag, rest)) => (tag, rest),
            None => (payload, ""),
        };
        match tag {
            "R" => {
                let (word, rule) = rest.split_once(' ').ok_or(CodecError::Empty)?;
                let outcome = Outcome::parse(word).ok_or(CodecError::Empty)?;
                Ok(JournalEvent::Attempt {
                    outcome,
                    rule: decode_rule(rule)?,
                })
            }
            "B" if rest.is_empty() => Ok(JournalEvent::BatchBegin),
            "A" => Ok(JournalEvent::BatchApply {
                rule: decode_rule(rest)?,
            }),
            "C" if rest.is_empty() => Ok(JournalEvent::BatchCommit),
            "X" => {
                let (idx, rest) = rest.split_once(' ').ok_or(CodecError::Empty)?;
                let index = idx.parse::<usize>().map_err(|_| CodecError::Empty)?;
                let (word, rule) = rest.split_once(' ').ok_or(CodecError::Empty)?;
                let outcome = Outcome::parse(word).ok_or(CodecError::Empty)?;
                Ok(JournalEvent::BatchAbort {
                    index,
                    outcome,
                    rule: decode_rule(rule)?,
                })
            }
            _ => Err(CodecError::Empty),
        }
    }
}

/// IEEE CRC-32 (the polynomial used by zlib/PNG), table-driven.
fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// An append-only, checksummed write-ahead journal.
///
/// Owned by a [`Monitor`] once [`Monitor::enable_journal`] is called; the
/// monitor appends a record for every attempted rule *before* mutating
/// its graph. The journal is plain text — persist it with
/// [`Journal::as_str`] and recover with [`recover`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Journal {
    text: String,
    seq: u64,
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new()
    }
}

impl Journal {
    /// An empty journal: just the `TGJ1` magic line.
    pub fn new() -> Journal {
        Journal {
            text: format!("{MAGIC}\n"),
            seq: 0,
        }
    }

    /// Appends one record.
    pub(crate) fn append(&mut self, event: &JournalEvent) {
        let body = format!("{} {}", self.seq, event.encode_payload());
        let crc = crc32(body.as_bytes());
        self.text.push_str(&format!("{crc:08x} {body}\n"));
        self.seq += 1;
    }

    /// The journal text, ready to persist.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The journal bytes, ready to persist.
    pub fn as_bytes(&self) -> &[u8] {
        self.text.as_bytes()
    }

    /// Number of records (excluding the magic line).
    pub fn records(&self) -> u64 {
        self.seq
    }
}

/// Report of a torn (crash-truncated) journal tail.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TornTail {
    /// Records that survived before the tear.
    pub valid_records: usize,
    /// Bytes dropped from the tear to end of input.
    pub dropped_bytes: usize,
}

/// Why a journal could not be recovered. Every variant fails closed: no
/// partially-trusted state is returned.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JournalError {
    /// The input does not start with the `TGJ1` magic line.
    BadMagic,
    /// An invalid or out-of-sequence record has valid records after it —
    /// impossible from a crash, so the log is treated as tampered.
    MidLogCorruption {
        /// 1-based line number of the offending record.
        line: usize,
    },
    /// A structurally valid record arrived in an impossible position
    /// (e.g. `A` outside a batch, `R` inside one).
    UnexpectedEvent {
        /// 0-based sequence number of the offending record.
        record: usize,
    },
    /// Replay verification failed: a journaled `permitted` rule is not
    /// permitted against the seed — wrong seed graph or a forged record.
    Diverged {
        /// 0-based sequence number of the offending record.
        record: usize,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::BadMagic => write!(f, "journal does not start with {MAGIC}"),
            JournalError::MidLogCorruption { line } => {
                write!(f, "mid-log corruption at line {line}: refusing to recover")
            }
            JournalError::UnexpectedEvent { record } => {
                write!(f, "record {record} is invalid in its position")
            }
            JournalError::Diverged { record, detail } => {
                write!(f, "replay diverged at record {record}: {detail}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// A parsed journal: the surviving events plus tear information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParsedJournal {
    /// Events in order, one per surviving record.
    pub events: Vec<JournalEvent>,
    /// Present when a torn tail was truncated.
    pub torn: Option<TornTail>,
}

/// Parses journal bytes, truncating a torn tail and failing closed on
/// mid-log corruption.
///
/// # Errors
///
/// [`JournalError::BadMagic`] if the magic line is missing,
/// [`JournalError::MidLogCorruption`] if an invalid record is followed by
/// a valid one.
pub fn parse_journal(bytes: &[u8]) -> Result<ParsedJournal, JournalError> {
    // Split into lines manually so non-UTF-8 corruption is confined to
    // the lines it touches.
    let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    if let Some(last) = lines.last() {
        if last.is_empty() {
            lines.pop(); // trailing newline
        }
    }
    let Some(first) = lines.first() else {
        return Err(JournalError::BadMagic);
    };
    if *first != MAGIC.as_bytes() {
        return Err(JournalError::BadMagic);
    }

    // A line is a valid record if it is UTF-8, shaped `<crc8> <seq>
    // <payload>`, its CRC matches, and its payload decodes.
    let parse_line = |line: &[u8], expected_seq: u64| -> Option<JournalEvent> {
        let line = core::str::from_utf8(line).ok()?;
        let (crc_hex, body) = line.split_once(' ')?;
        if crc_hex.len() != 8 {
            return None;
        }
        let crc = u32::from_str_radix(crc_hex, 16).ok()?;
        if crc != crc32(body.as_bytes()) {
            return None;
        }
        let (seq, payload) = body.split_once(' ')?;
        if seq.parse::<u64>().ok()? != expected_seq {
            return None;
        }
        JournalEvent::decode_payload(payload).ok()
    };

    let mut events = Vec::new();
    for (idx, line) in lines.iter().enumerate().skip(1) {
        match parse_line(line, events.len() as u64) {
            Some(event) => events.push(event),
            None => {
                // Invalid record: torn tail if nothing valid follows,
                // otherwise mid-log corruption. A later line counts as
                // valid if its CRC holds for *any* sequence number — a
                // splice with consistent numbering is still a splice.
                let later_valid = lines[idx + 1..].iter().any(|l| {
                    core::str::from_utf8(l).ok().is_some_and(|l| {
                        l.split_once(' ').is_some_and(|(crc_hex, body)| {
                            crc_hex.len() == 8
                                && u32::from_str_radix(crc_hex, 16)
                                    .is_ok_and(|crc| crc == crc32(body.as_bytes()))
                        })
                    })
                });
                if later_valid {
                    return Err(JournalError::MidLogCorruption { line: idx + 1 });
                }
                let dropped: usize = lines[idx..].iter().map(|l| l.len() + 1).sum::<usize>() - 1;
                return Ok(ParsedJournal {
                    events,
                    torn: Some(TornTail {
                        valid_records: idx - 1,
                        dropped_bytes: dropped.min(bytes.len()),
                    }),
                });
            }
        }
    }
    Ok(ParsedJournal { events, torn: None })
}

/// Report of a completed recovery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Recovery {
    /// Journal records replayed (after truncation and batch discard).
    pub replayed: usize,
    /// Present when a torn tail was truncated.
    pub torn: Option<TornTail>,
    /// Whether an uncommitted batch at the end of the log was discarded
    /// (crash mid-batch).
    pub discarded_open_batch: bool,
}

/// Rebuilds a monitor from its seed and a journal.
///
/// Every `permitted` and batch record is **re-verified** against the
/// restriction during replay: the journal is evidence, not authority. The
/// returned monitor has journaling enabled, its journal holding a clean
/// re-encoding of the surviving records (same events, renumbered), so
/// service can continue appending where the crash left off.
///
/// # Errors
///
/// Fails closed on a missing magic line, mid-log corruption,
/// structurally impossible event order, or replay divergence.
pub fn recover(
    graph: ProtectionGraph,
    levels: LevelAssignment,
    restriction: Box<dyn Restriction>,
    journal_bytes: &[u8],
) -> Result<(Monitor, Recovery), JournalError> {
    let _span = tg_obs::span(tg_obs::SpanKind::JournalRecover);
    let parsed = parse_journal(journal_bytes)?;
    let mut monitor = Monitor::new(graph, levels, restriction);
    monitor.enable_journal();

    // Split a trailing uncommitted batch off before replaying: its rules
    // never took effect (no commit marker — the live monitor either
    // crashed mid-batch or rolled back without writing `X`, and rollback
    // always writes `X`, so this is the crash case).
    let mut effective = parsed.events.as_slice();
    let mut discarded_open_batch = false;
    if let Some(open_at) = open_batch_start(effective) {
        effective = &effective[..open_at];
        discarded_open_batch = true;
    }

    replay_events(&mut monitor, effective)?;

    Ok((
        monitor,
        Recovery {
            replayed: effective.len(),
            torn: parsed.torn,
            discarded_open_batch,
        },
    ))
}

/// Replays already-parsed events onto a live monitor, **re-verifying**
/// every record against the monitor's restriction (the journal is
/// evidence, not authority). Callers must strip a trailing open batch
/// first (see [`open_batch_start`]); [`recover`] does this, and the
/// commit log's snapshot-based recovery does the same for its chain
/// suffix.
///
/// # Errors
///
/// [`JournalError::UnexpectedEvent`] on a structurally impossible event
/// order, [`JournalError::Diverged`] when a journaled outcome does not
/// reproduce. Record numbers in errors are 0-based indexes into `events`.
pub fn replay_events(monitor: &mut Monitor, events: &[JournalEvent]) -> Result<(), JournalError> {
    let mut batch: Option<Vec<Rule>> = None;
    for (record, event) in events.iter().enumerate() {
        match (event, batch.as_mut()) {
            (JournalEvent::Attempt { outcome, rule }, None) => {
                replay_attempt(monitor, *outcome, rule, record)?;
            }
            (JournalEvent::BatchBegin, None) => {
                batch = Some(Vec::new());
            }
            (JournalEvent::BatchApply { rule }, Some(rules)) => {
                rules.push(rule.clone());
            }
            (JournalEvent::BatchCommit, Some(_)) => {
                let rules = batch.take().expect("batch is open");
                if let Err(e) = monitor.try_apply_all(&rules) {
                    return Err(JournalError::Diverged {
                        record,
                        detail: format!("committed batch no longer applies: {e}"),
                    });
                }
            }
            (
                JournalEvent::BatchAbort {
                    index,
                    outcome,
                    rule,
                },
                Some(_),
            ) => {
                let mut rules = batch.take().expect("batch is open");
                if rules.len() != *index {
                    return Err(JournalError::UnexpectedEvent { record });
                }
                rules.push(rule.clone());
                match monitor.try_apply_all(&rules) {
                    Err(e) if e.index == *index && outcome_of(&e.error) == *outcome => {}
                    Err(e) => {
                        return Err(JournalError::Diverged {
                            record,
                            detail: format!(
                                "batch aborted at {} ({}) live, at {} on replay",
                                index, outcome, e.index
                            ),
                        });
                    }
                    Ok(_) => {
                        return Err(JournalError::Diverged {
                            record,
                            detail: format!("batch aborted live at rule {index} but replays clean"),
                        });
                    }
                }
            }
            _ => return Err(JournalError::UnexpectedEvent { record }),
        }
    }
    Ok(())
}

/// Index of the `BatchBegin` of a batch still open at end of log, if any.
/// Recovery discards everything from here on — the batch never committed,
/// matching the live monitor's rollback-on-abort semantics.
pub fn open_batch_start(events: &[JournalEvent]) -> Option<usize> {
    let mut open: Option<usize> = None;
    for (i, event) in events.iter().enumerate() {
        match event {
            JournalEvent::BatchBegin => open = Some(i),
            JournalEvent::BatchCommit | JournalEvent::BatchAbort { .. } => open = None,
            _ => {}
        }
    }
    open
}

fn outcome_of(error: &MonitorError) -> Outcome {
    match error {
        MonitorError::Rule(_) => Outcome::Malformed,
        MonitorError::Denied(_) => Outcome::Denied,
        MonitorError::Degraded => Outcome::Refused,
    }
}

fn replay_attempt(
    monitor: &mut Monitor,
    outcome: Outcome,
    rule: &Rule,
    record: usize,
) -> Result<(), JournalError> {
    match outcome {
        Outcome::Permitted => match monitor.try_apply(rule) {
            Ok(_) => Ok(()),
            Err(e) => Err(JournalError::Diverged {
                record,
                detail: format!("journaled as permitted but refused on replay: {e}"),
            }),
        },
        Outcome::Denied | Outcome::Malformed => match monitor.try_apply(rule) {
            Err(ref e) if outcome_of(e) == outcome => Ok(()),
            Err(e) => Err(JournalError::Diverged {
                record,
                detail: format!("journaled as {outcome} but refused as {e} on replay"),
            }),
            Ok(_) => Err(JournalError::Diverged {
                record,
                detail: format!("journaled as {outcome} but permitted on replay"),
            }),
        },
        // Degradation depends on audit history, which the journal does
        // not carry (quarantine is out-of-band); trust the counter.
        Outcome::Refused => {
            monitor.stats_mut().refused += 1;
            if let Some(journal) = monitor_journal_mut(monitor) {
                journal.append(&JournalEvent::Attempt {
                    outcome: Outcome::Refused,
                    rule: rule.clone(),
                });
            }
            Ok(())
        }
    }
}

/// Mutable access to the monitor's journal for replaying `refused`
/// records, which bypass `try_apply` (the recovered monitor is not
/// degraded during replay).
fn monitor_journal_mut(monitor: &mut Monitor) -> Option<&mut Journal> {
    monitor.journal_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restrict::CombinedRestriction;
    use tg_graph::Rights;
    use tg_rules::DeJureRule;

    fn seed() -> (ProtectionGraph, LevelAssignment) {
        let mut g = ProtectionGraph::new();
        let hi = g.add_subject("hi"); // v0
        let lo = g.add_subject("lo"); // v1
        let q = g.add_object("q"); // v2
        g.add_edge(lo, q, Rights::T).unwrap();
        g.add_edge(q, hi, Rights::RW | Rights::E).unwrap();
        let mut levels = LevelAssignment::linear(&["low", "high"]);
        levels.assign(hi, 1).unwrap();
        levels.assign(lo, 0).unwrap();
        levels.assign(q, 1).unwrap();
        (g, levels)
    }

    fn take(actor: usize, via: usize, target: usize, rights: Rights) -> Rule {
        use tg_graph::VertexId;
        Rule::DeJure(DeJureRule::Take {
            actor: VertexId::from_index(actor),
            via: VertexId::from_index(via),
            target: VertexId::from_index(target),
            rights,
        })
    }

    fn monitor() -> Monitor {
        let (g, levels) = seed();
        let mut m = Monitor::new(g, levels, Box::new(CombinedRestriction));
        m.enable_journal();
        m
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn journal_records_every_outcome() {
        let mut m = monitor();
        m.try_apply(&take(1, 2, 0, Rights::E)).unwrap(); // permitted
        m.try_apply(&take(1, 2, 0, Rights::R)).unwrap_err(); // denied
        m.try_apply(&take(1, 1, 0, Rights::R)).unwrap_err(); // malformed
        let journal = m.journal().unwrap();
        assert_eq!(journal.records(), 3);
        let parsed = parse_journal(journal.as_bytes()).unwrap();
        assert!(parsed.torn.is_none());
        let outcomes: Vec<Outcome> = parsed
            .events
            .iter()
            .map(|e| match e {
                JournalEvent::Attempt { outcome, .. } => *outcome,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(
            outcomes,
            [Outcome::Permitted, Outcome::Denied, Outcome::Malformed]
        );
    }

    #[test]
    fn recover_reproduces_the_live_monitor() {
        let mut m = monitor();
        m.try_apply(&take(1, 2, 0, Rights::E)).unwrap();
        m.try_apply(&take(1, 2, 0, Rights::R)).unwrap_err();
        m.try_apply_all(&[take(0, 2, 1, Rights::RW)]).unwrap_err(); // write-down aborts
        let (g, levels) = seed();
        let (rec, report) = recover(
            g,
            levels,
            Box::new(CombinedRestriction),
            m.journal().unwrap().as_bytes(),
        )
        .unwrap();
        assert_eq!(rec.graph(), m.graph());
        assert_eq!(rec.levels(), m.levels());
        assert_eq!(rec.stats(), m.stats());
        assert_eq!(rec.log().steps, m.log().steps);
        assert!(report.torn.is_none());
        assert!(!report.discarded_open_batch);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let mut m = monitor();
        m.try_apply(&take(1, 2, 0, Rights::E)).unwrap();
        m.try_apply(&take(1, 2, 0, Rights::R)).unwrap_err();
        let mut bytes = m.journal().unwrap().as_bytes().to_vec();
        bytes.truncate(bytes.len() - 7); // tear mid-record
        let (g, levels) = seed();
        let (rec, report) = recover(g, levels, Box::new(CombinedRestriction), &bytes).unwrap();
        assert_eq!(report.replayed, 1);
        assert!(report.torn.is_some());
        assert_eq!(rec.stats().permitted, 1);
        assert_eq!(rec.stats().denied, 0);
    }

    #[test]
    fn mid_log_corruption_fails_closed() {
        let mut m = monitor();
        m.try_apply(&take(1, 2, 0, Rights::E)).unwrap();
        m.try_apply(&take(1, 2, 0, Rights::R)).unwrap_err();
        let mut bytes = m.journal().unwrap().as_bytes().to_vec();
        // Flip one byte inside the first record's payload.
        let first_record_at = bytes.iter().position(|&b| b == b'\n').unwrap() + 12;
        bytes[first_record_at] ^= 0x20;
        let (g, levels) = seed();
        let err = recover(g, levels, Box::new(CombinedRestriction), &bytes).unwrap_err();
        assert!(matches!(err, JournalError::MidLogCorruption { line: 2 }));
    }

    #[test]
    fn forged_permit_fails_closed_as_divergence() {
        // Hand-craft a journal whose CRC is valid but whose rule the
        // restriction denies: replay must not admit it.
        let mut journal = Journal::new();
        journal.append(&JournalEvent::Attempt {
            outcome: Outcome::Permitted,
            rule: take(1, 2, 0, Rights::R), // read-up
        });
        let (g, levels) = seed();
        let err =
            recover(g, levels, Box::new(CombinedRestriction), journal.as_bytes()).unwrap_err();
        assert!(matches!(err, JournalError::Diverged { record: 0, .. }));
    }

    #[test]
    fn open_batch_at_eof_is_discarded() {
        let mut m = monitor();
        m.try_apply(&take(1, 2, 0, Rights::E)).unwrap();
        // Simulate a crash mid-batch: append B and A records by hand.
        let mut journal = m.journal().unwrap().clone();
        journal.append(&JournalEvent::BatchBegin);
        journal.append(&JournalEvent::BatchApply {
            rule: take(1, 2, 0, Rights::W),
        });
        let (g, levels) = seed();
        let (rec, report) =
            recover(g, levels, Box::new(CombinedRestriction), journal.as_bytes()).unwrap();
        assert!(report.discarded_open_batch);
        assert_eq!(report.replayed, 1);
        assert_eq!(rec.stats().permitted, 1);
    }

    #[test]
    fn bad_magic_and_event_order_fail_closed() {
        let (g, levels) = seed();
        let err = recover(
            g.clone(),
            levels.clone(),
            Box::new(CombinedRestriction),
            b"not a journal",
        )
        .unwrap_err();
        assert_eq!(err, JournalError::BadMagic);

        // `C` with no open batch, followed by a valid record so it is not
        // torn-tail-truncated.
        let mut journal = Journal::new();
        journal.append(&JournalEvent::BatchCommit);
        journal.append(&JournalEvent::Attempt {
            outcome: Outcome::Permitted,
            rule: take(1, 2, 0, Rights::E),
        });
        let err =
            recover(g, levels, Box::new(CombinedRestriction), journal.as_bytes()).unwrap_err();
        assert!(matches!(err, JournalError::UnexpectedEvent { record: 0 }));
    }

    #[test]
    fn recovered_monitor_keeps_journaling() {
        let mut m = monitor();
        m.try_apply(&take(1, 2, 0, Rights::E)).unwrap();
        let (g, levels) = seed();
        let (mut rec, _) = recover(
            g,
            levels,
            Box::new(CombinedRestriction),
            m.journal().unwrap().as_bytes(),
        )
        .unwrap();
        assert_eq!(
            rec.journal().unwrap().as_str(),
            m.journal().unwrap().as_str()
        );
        rec.try_apply(&take(1, 2, 0, Rights::R)).unwrap_err();
        assert_eq!(rec.journal().unwrap().records(), 2);
    }
}
