//! Declassification analysis (§6).
//!
//! "In the model described in this paper, the security classification of
//! information cannot be changed without compromising security":
//!
//! * **Raising** a classification fails because any prior reader may have
//!   made a private copy at the old level — after the raise they still
//!   hold yesterday's information without today's clearance.
//! * **Lowering** fails unless no subject above the new level can write
//!   the object — otherwise a high subject can launder high information
//!   into the now-low object.
//!
//! [`raise_classification`] and [`lower_classification`] perform the
//! corresponding checks and report exactly which subjects make the change
//! unsafe; [`private_copy_attack`] produces the §6 attack as a concrete
//! derivation.

use tg_graph::{ProtectionGraph, Right, Rights, VertexId, VertexKind};
use tg_rules::{DeFactoRule, DeJureRule, Derivation, RuleError, Session};

use crate::levels::LevelAssignment;

/// Why a reclassification is unsafe.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DeclassError {
    /// The object (or level) was unknown or unassigned.
    Unassigned(VertexId),
    /// Raising: these subjects can already read the object but will not
    /// dominate its new level — each may hold a private copy.
    PriorReaders(Vec<VertexId>),
    /// Lowering: these subjects can write the object from above its new
    /// level — each is a write-down channel.
    HighWriters(Vec<VertexId>),
}

impl core::fmt::Display for DeclassError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeclassError::Unassigned(v) => write!(f, "{v} has no level"),
            DeclassError::PriorReaders(vs) => {
                write!(f, "{} prior reader(s) may hold private copies", vs.len())
            }
            DeclassError::HighWriters(vs) => {
                write!(
                    f,
                    "{} higher-level writer(s) can launder information",
                    vs.len()
                )
            }
        }
    }
}

impl std::error::Error for DeclassError {}

/// Attempts to raise `object` to `new_level`. Succeeds (updating the
/// assignment) only when no current reader of the object would lose
/// dominance over it — otherwise every such reader could retain a private
/// copy at the old level, and the raise is refused.
pub fn raise_classification(
    graph: &ProtectionGraph,
    levels: &mut LevelAssignment,
    object: VertexId,
    new_level: usize,
) -> Result<(), DeclassError> {
    if levels.level_of(object).is_none() {
        return Err(DeclassError::Unassigned(object));
    }
    let offenders: Vec<VertexId> = graph
        .in_edges(object)
        .filter(|(s, er)| graph.is_subject(*s) && er.explicit().contains(Right::Read))
        .map(|(s, _)| s)
        .filter(|s| match levels.level_of(*s) {
            Some(ls) => !levels.dominates(ls, new_level),
            None => true,
        })
        .collect();
    if !offenders.is_empty() {
        return Err(DeclassError::PriorReaders(offenders));
    }
    levels
        .assign(object, new_level)
        .map_err(|_| DeclassError::Unassigned(object))
}

/// Attempts to lower `object` to `new_level`. Succeeds only when no
/// subject strictly above `new_level` holds `w` on the object — "unless
/// the protection system were to ensure that no user at a level higher
/// than the new level of the file were to have write rights on the file,
/// the system is no longer secure" (§6).
pub fn lower_classification(
    graph: &ProtectionGraph,
    levels: &mut LevelAssignment,
    object: VertexId,
    new_level: usize,
) -> Result<(), DeclassError> {
    if levels.level_of(object).is_none() {
        return Err(DeclassError::Unassigned(object));
    }
    let offenders: Vec<VertexId> = graph
        .in_edges(object)
        .filter(|(s, er)| graph.is_subject(*s) && er.explicit().contains(Right::Write))
        .map(|(s, _)| s)
        .filter(|s| match levels.level_of(*s) {
            Some(ls) => !levels.dominates(new_level, ls),
            None => true,
        })
        .collect();
    if !offenders.is_empty() {
        return Err(DeclassError::HighWriters(offenders));
    }
    levels
        .assign(object, new_level)
        .map_err(|_| DeclassError::Unassigned(object))
}

/// The §6 private-copy attack: `reader` (holding `r` over `object`)
/// creates a private copy vertex, reads the object and is thereby in a
/// position to retain the information across any later reclassification.
/// Returns the derivation; the final graph contains the copy with an
/// implicit read edge recording the flow.
///
/// # Errors
///
/// Fails if `reader` is not a subject or lacks the read right.
pub fn private_copy_attack(
    graph: &ProtectionGraph,
    reader: VertexId,
    object: VertexId,
) -> Result<(Derivation, VertexId), RuleError> {
    if !graph.contains_vertex(reader) {
        return Err(RuleError::Graph(tg_graph::GraphError::UnknownVertex(
            reader,
        )));
    }
    if !graph.is_subject(reader) {
        return Err(RuleError::NotSubject(reader, "reader"));
    }
    if !graph.has_explicit(reader, object, Right::Read) {
        return Err(RuleError::MissingExplicit {
            src: reader,
            dst: object,
            right: Right::Read,
        });
    }
    let mut session = Session::new(graph.clone());
    // The reader creates a private copy it can read and write.
    let effect = session.apply(DeJureRule::Create {
        actor: reader,
        kind: VertexKind::Object,
        rights: Rights::RW,
        name: "private-copy".to_string(),
    })?;
    let copy = match effect {
        tg_rules::Effect::Created { id, .. } => id,
        _ => unreachable!("create yields Created"),
    };
    // pass(copy, reader, object): the reader reads the object and writes
    // what it read into the copy — information now lives in the copy.
    session.apply(DeFactoRule::Pass {
        x: copy,
        y: reader,
        z: object,
    })?;
    Ok((session.into_parts().1, copy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::linear_hierarchy;
    use tg_analysis::can_know_f;

    #[test]
    fn raising_with_prior_readers_is_refused() {
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let doc = built.attach_object(0, "doc");
        let lo = built.subjects[0][0];
        // lo already reads doc (attach gives rw to the level subject).
        let err = raise_classification(&built.graph, &mut built.assignment, doc, 1).unwrap_err();
        assert_eq!(err, DeclassError::PriorReaders(vec![lo]));
        // The assignment is unchanged.
        assert_eq!(built.assignment.level_of(doc), Some(0));
    }

    #[test]
    fn raising_an_unread_object_succeeds() {
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let lo = built.subjects[0][0];
        let doc = built.graph.add_object("write-only");
        built.assignment.assign(doc, 0).unwrap();
        built.graph.add_edge(lo, doc, Rights::W).unwrap();
        raise_classification(&built.graph, &mut built.assignment, doc, 1).unwrap();
        assert_eq!(built.assignment.level_of(doc), Some(1));
    }

    #[test]
    fn lowering_with_high_writers_is_refused() {
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let doc = built.attach_object(1, "doc");
        let hi = built.subjects[1][0];
        let err = lower_classification(&built.graph, &mut built.assignment, doc, 0).unwrap_err();
        assert_eq!(err, DeclassError::HighWriters(vec![hi]));
    }

    #[test]
    fn lowering_a_read_only_object_succeeds() {
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let hi = built.subjects[1][0];
        let doc = built.graph.add_object("read-only");
        built.assignment.assign(doc, 1).unwrap();
        built.graph.add_edge(hi, doc, Rights::R).unwrap();
        lower_classification(&built.graph, &mut built.assignment, doc, 0).unwrap();
        assert_eq!(built.assignment.level_of(doc), Some(0));
    }

    #[test]
    fn unassigned_objects_cannot_be_reclassified() {
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let doc = built.graph.add_object("stray");
        assert!(matches!(
            raise_classification(&built.graph, &mut built.assignment, doc, 1),
            Err(DeclassError::Unassigned(_))
        ));
    }

    #[test]
    fn private_copy_attack_retains_information() {
        let mut built = linear_hierarchy(&["lo", "hi"], 1);
        let doc = built.attach_object(1, "doc");
        let hi = built.subjects[1][0];
        let (derivation, _) = private_copy_attack(&built.graph, hi, doc).unwrap();
        let after = derivation.replayed(&built.graph).unwrap();
        // Find the copy in the replayed graph.
        let copy = after.find_by_name("private-copy").unwrap();
        // The copy now "knows" the document even if doc is later raised:
        assert!(can_know_f(&after, copy, doc));
        // ...and the attack is invisible to explicit-authority audits.
        assert!(after.rights(copy, doc).explicit().is_empty());
    }

    #[test]
    fn private_copy_attack_needs_the_read_right() {
        let built = linear_hierarchy(&["lo", "hi"], 1);
        let lo = built.subjects[0][0];
        let mut g = built.graph.clone();
        let doc = g.add_object("doc");
        assert!(private_copy_attack(&g, lo, doc).is_err());
    }
}
