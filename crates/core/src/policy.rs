//! A text format for classifications, companion to the graph format.
//!
//! ```text
//! # declarations first; order is free
//! level public
//! level internal
//! level secret
//! dominates secret internal      # direct cover: secret > internal
//! dominates internal public
//! assign alice secret            # vertex names from the graph file
//! assign report internal
//! ```
//!
//! The `tgq secure-policy` and `tgq audit` commands consume a graph file
//! plus one of these.

use std::collections::HashMap;
use std::fmt;

use tg_graph::ProtectionGraph;

use crate::levels::{LevelAssignment, LevelError};

/// Error from [`parse_policy`], with the 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyParseError {}

fn err(line: usize, message: impl Into<String>) -> PolicyParseError {
    PolicyParseError {
        line,
        message: message.into(),
    }
}

/// Parses the policy format against `graph` (for vertex-name resolution).
///
/// # Examples
///
/// ```
/// use tg_graph::parse_graph;
/// use tg_hierarchy::policy::parse_policy;
///
/// let g = parse_graph("subject alice\nobject report\n").unwrap();
/// let levels = parse_policy(
///     "level lo\nlevel hi\ndominates hi lo\nassign alice hi\nassign report lo\n",
///     &g,
/// ).unwrap();
/// let alice = g.find_by_name("alice").unwrap();
/// assert_eq!(levels.level_of(alice), Some(1));
/// ```
pub fn parse_policy(
    input: &str,
    graph: &ProtectionGraph,
) -> Result<LevelAssignment, PolicyParseError> {
    let mut names: Vec<String> = Vec::new();
    let mut indices: HashMap<String, usize> = HashMap::new();
    let mut covers: Vec<(usize, usize)> = Vec::new();
    let mut assigns: Vec<(usize, tg_graph::VertexId, usize)> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(keyword) = parts.next() else {
            continue;
        };
        let args: Vec<&str> = parts.collect();
        match keyword {
            "level" => {
                let [name] = args.as_slice() else {
                    return Err(err(lineno, "usage: level <name>"));
                };
                if indices.contains_key(*name) {
                    return Err(err(lineno, format!("duplicate level {name:?}")));
                }
                indices.insert(name.to_string(), names.len());
                names.push(name.to_string());
            }
            "dominates" => {
                let [hi, lo] = args.as_slice() else {
                    return Err(err(lineno, "usage: dominates <higher> <lower>"));
                };
                let hi = *indices
                    .get(*hi)
                    .ok_or_else(|| err(lineno, format!("unknown level {hi:?}")))?;
                let lo = *indices
                    .get(*lo)
                    .ok_or_else(|| err(lineno, format!("unknown level {lo:?}")))?;
                covers.push((hi, lo));
            }
            "assign" => {
                let [vertex, level] = args.as_slice() else {
                    return Err(err(lineno, "usage: assign <vertex> <level>"));
                };
                let v = graph
                    .find_by_name(vertex)
                    .ok_or_else(|| err(lineno, format!("unknown vertex {vertex:?}")))?;
                let l = *indices
                    .get(*level)
                    .ok_or_else(|| err(lineno, format!("unknown level {level:?}")))?;
                assigns.push((lineno, v, l));
            }
            other => return Err(err(lineno, format!("unknown directive {other:?}"))),
        }
    }
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut levels = LevelAssignment::new(&name_refs, &covers).map_err(|e| match e {
        LevelError::CyclicOrder => err(0, "the dominates relation contains a cycle"),
        other => err(0, other.to_string()),
    })?;
    for (lineno, v, l) in assigns {
        levels
            .assign(v, l)
            .map_err(|e| err(lineno, e.to_string()))?;
    }
    Ok(levels)
}

/// Renders an assignment back to the policy format. The cover relation is
/// emitted as the full dominance pairs (transitively closed), which
/// parses back to the same order.
pub fn render_policy(levels: &LevelAssignment, graph: &ProtectionGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for i in 0..levels.len() {
        let _ = writeln!(out, "level {}", levels.name(i));
    }
    for hi in 0..levels.len() {
        for lo in 0..levels.len() {
            if levels.higher(hi, lo) {
                let _ = writeln!(out, "dominates {} {}", levels.name(hi), levels.name(lo));
            }
        }
    }
    for (v, l) in levels.assignments() {
        if graph.contains_vertex(v) {
            let _ = writeln!(out, "assign {} {}", graph.vertex(v).name, levels.name(l));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::parse_graph;

    fn graph() -> ProtectionGraph {
        parse_graph("subject alice\nsubject bob\nobject report\n").unwrap()
    }

    #[test]
    fn parses_a_lattice_policy() {
        let g = graph();
        let levels = parse_policy(
            "level base\nlevel crypto\nlevel nuclear\n\
             dominates crypto base\ndominates nuclear base\n\
             assign alice crypto\nassign bob nuclear\nassign report base\n",
            &g,
        )
        .unwrap();
        assert_eq!(levels.len(), 3);
        assert!(levels.incomparable(1, 2));
        let alice = g.find_by_name("alice").unwrap();
        let report = g.find_by_name("report").unwrap();
        assert!(levels.may_read(alice, report));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let g = graph();
        let levels = parse_policy("# policy\n\nlevel only # trailing\n", &g).unwrap();
        assert_eq!(levels.len(), 1);
    }

    #[test]
    fn rejects_unknown_names() {
        let g = graph();
        assert!(parse_policy("dominates a b\n", &g).is_err());
        assert!(parse_policy("level a\nassign nobody a\n", &g).is_err());
        assert!(parse_policy("level a\nassign alice b\n", &g).is_err());
        assert!(parse_policy("banana\n", &g).is_err());
    }

    #[test]
    fn rejects_duplicates_and_cycles() {
        let g = graph();
        assert!(parse_policy("level a\nlevel a\n", &g).is_err());
        let e = parse_policy("level a\nlevel b\ndominates a b\ndominates b a\n", &g).unwrap_err();
        assert!(e.message.contains("cycle"));
    }

    #[test]
    fn rejects_malformed_directives() {
        let g = graph();
        assert!(parse_policy("level\n", &g).is_err());
        assert!(parse_policy("level a b\n", &g).is_err());
        assert!(parse_policy("level a\ndominates a\n", &g).is_err());
        assert!(parse_policy("level a\nassign alice\n", &g).is_err());
    }

    #[test]
    fn render_round_trips() {
        let g = graph();
        let text = "level lo\nlevel hi\ndominates hi lo\nassign alice hi\nassign report lo\n";
        let levels = parse_policy(text, &g).unwrap();
        let rendered = render_policy(&levels, &g);
        let back = parse_policy(&rendered, &g).unwrap();
        assert_eq!(back.len(), levels.len());
        for i in 0..levels.len() {
            for j in 0..levels.len() {
                assert_eq!(back.dominates(i, j), levels.dominates(i, j));
            }
        }
        for (v, l) in levels.assignments() {
            assert_eq!(back.level_of(v), Some(l));
        }
    }
}
