//! Security levels: assigned and derived.
//!
//! The paper's rw-levels (§4) and rwtg-levels (§5) are *derived* notions —
//! maximal sets of vertices with pairwise mutual information flow. A
//! deployed system instead starts from an *assigned* classification (who is
//! cleared to what) and asks whether the graph respects it. Both views live
//! here:
//!
//! * [`LevelAssignment`] — a named partial order of levels plus a vertex →
//!   level map (the policy view);
//! * [`DerivedLevels`] — the SCC decomposition of mutual `can_know_f` /
//!   `can_know` with its induced `higher` order (the paper's view).

use std::collections::VecDeque;

use tg_analysis::FlowGraph;
use tg_graph::algo::condensation;
use tg_graph::{ProtectionGraph, VertexId};
use tg_paths::{lang, PathSearch, SearchConfig};

/// Errors in level-structure construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LevelError {
    /// The covers relation contains a cycle, so `higher` would not be a
    /// partial order (Proposition 4.4 requires irreflexivity).
    CyclicOrder,
    /// A cover referenced a level index out of range.
    UnknownLevel(usize),
    /// A vertex was assigned a level index out of range.
    UnknownLevelForVertex(VertexId, usize),
}

impl core::fmt::Display for LevelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LevelError::CyclicOrder => write!(f, "the level order contains a cycle"),
            LevelError::UnknownLevel(i) => write!(f, "unknown level index {i}"),
            LevelError::UnknownLevelForVertex(v, i) => {
                write!(f, "vertex {v} assigned unknown level {i}")
            }
        }
    }
}

impl std::error::Error for LevelError {}

/// An assigned classification: a strict partial order of named levels and
/// a (partial) map from vertices to levels.
///
/// `reach[a][b]` means level `a` dominates level `b` (reflexively): a
/// subject at `a` is cleared for everything at `b`.
///
/// # Examples
///
/// ```
/// use tg_hierarchy::LevelAssignment;
///
/// // Military-style: secret dominates confidential; two incomparable
/// // compartments above confidential.
/// let mut levels = LevelAssignment::new(
///     &["confidential", "crypto", "nuclear"],
///     &[(1, 0), (2, 0)],
/// ).unwrap();
/// assert!(levels.dominates(1, 0));
/// assert!(!levels.dominates(1, 2));
/// assert!(levels.incomparable(1, 2));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LevelAssignment {
    names: Vec<String>,
    /// `reach[a][b]`: level `a` dominates level `b` (reflexive-transitive
    /// closure of the covers).
    reach: Vec<Vec<bool>>,
    /// Vertex index → level index.
    level_of: Vec<Option<usize>>,
}

impl LevelAssignment {
    /// Builds the level order from `names` and `covers`, where each cover
    /// `(h, l)` states that level `h` directly dominates level `l`.
    ///
    /// # Errors
    ///
    /// [`LevelError::CyclicOrder`] if the covers contain a cycle;
    /// [`LevelError::UnknownLevel`] on out-of-range indices.
    pub fn new(names: &[&str], covers: &[(usize, usize)]) -> Result<LevelAssignment, LevelError> {
        let k = names.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &(h, l) in covers {
            if h >= k {
                return Err(LevelError::UnknownLevel(h));
            }
            if l >= k {
                return Err(LevelError::UnknownLevel(l));
            }
            adj[h].push(l);
        }
        // Reflexive-transitive closure by BFS per level.
        let mut reach = vec![vec![false; k]; k];
        #[expect(
            clippy::needless_range_loop,
            reason = "start indexes both the queue seed and the matrix row"
        )]
        for start in 0..k {
            let mut queue = VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                if reach[start][v] {
                    continue;
                }
                reach[start][v] = true;
                queue.extend(adj[v].iter().copied());
            }
        }
        // Antisymmetry: mutual domination of distinct levels is a cycle.
        #[expect(
            clippy::needless_range_loop,
            reason = "a and b index the matrix symmetrically"
        )]
        for a in 0..k {
            for b in 0..k {
                if a != b && reach[a][b] && reach[b][a] {
                    return Err(LevelError::CyclicOrder);
                }
            }
        }
        Ok(LevelAssignment {
            names: names.iter().map(|s| s.to_string()).collect(),
            reach,
            level_of: Vec::new(),
        })
    }

    /// A single-chain (linear) order: `names[i + 1]` dominates `names[i]`.
    pub fn linear(names: &[&str]) -> LevelAssignment {
        let covers: Vec<(usize, usize)> = (1..names.len()).map(|i| (i, i - 1)).collect();
        LevelAssignment::new(names, &covers).expect("a chain has no cycles")
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether there are no levels.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of level `idx`.
    pub fn name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// Assigns `vertex` to `level`.
    ///
    /// # Errors
    ///
    /// [`LevelError::UnknownLevelForVertex`] on an out-of-range level.
    pub fn assign(&mut self, vertex: VertexId, level: usize) -> Result<(), LevelError> {
        if level >= self.names.len() {
            return Err(LevelError::UnknownLevelForVertex(vertex, level));
        }
        if self.level_of.len() <= vertex.index() {
            self.level_of.resize(vertex.index() + 1, None);
        }
        self.level_of[vertex.index()] = Some(level);
        Ok(())
    }

    /// Clears the assignment of `vertex`, returning the level it had.
    /// The monitor's transactional rollback uses this to undo the level a
    /// rolled-back `create` gave its vertex.
    pub fn unassign(&mut self, vertex: VertexId) -> Option<usize> {
        let slot = self.level_of.get_mut(vertex.index())?;
        let old = slot.take();
        // Keep the dense tail trimmed so an assign/unassign pair restores
        // the exact prior value (assignment equality is structural).
        while self.level_of.last() == Some(&None) {
            self.level_of.pop();
        }
        old
    }

    /// The level of `vertex`, if assigned.
    pub fn level_of(&self, vertex: VertexId) -> Option<usize> {
        self.level_of.get(vertex.index()).copied().flatten()
    }

    /// Whether level `a` dominates level `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        self.reach[a][b]
    }

    /// Whether level `a` is strictly higher than level `b`.
    pub fn higher(&self, a: usize, b: usize) -> bool {
        a != b && self.reach[a][b]
    }

    /// Whether the two levels are incomparable.
    pub fn incomparable(&self, a: usize, b: usize) -> bool {
        !self.reach[a][b] && !self.reach[b][a]
    }

    /// Whether vertex `x` is assigned a strictly lower level than `y`
    /// (unassigned vertices compare with nothing).
    pub fn vertex_lower(&self, x: VertexId, y: VertexId) -> bool {
        match (self.level_of(x), self.level_of(y)) {
            (Some(a), Some(b)) => self.higher(b, a),
            _ => false,
        }
    }

    /// Whether vertex `x` may read vertex `y`: `level(x)` dominates
    /// `level(y)`. Unassigned vertices may read nothing and be read by
    /// nothing (fail closed).
    pub fn may_read(&self, x: VertexId, y: VertexId) -> bool {
        match (self.level_of(x), self.level_of(y)) {
            (Some(a), Some(b)) => self.dominates(a, b),
            _ => false,
        }
    }

    /// Whether vertex `x` may write vertex `y`: `level(y)` dominates
    /// `level(x)` (write-as-append; information flows up).
    pub fn may_write(&self, x: VertexId, y: VertexId) -> bool {
        match (self.level_of(x), self.level_of(y)) {
            (Some(a), Some(b)) => self.dominates(b, a),
            _ => false,
        }
    }

    /// Iterates over `(vertex, level)` pairs for all assigned vertices.
    pub fn assignments(&self) -> impl Iterator<Item = (VertexId, usize)> + '_ {
        self.level_of
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|l| (VertexId::from_index(i), l)))
    }
}

/// Levels derived from a graph: the SCCs of mutual knowledge, with the
/// induced `higher` order (§4–§5).
#[derive(Clone, Debug)]
pub struct DerivedLevels {
    /// Vertex index → derived level index (`None` for vertices outside the
    /// relation's domain, e.g. objects for rwtg-levels).
    level_of: Vec<Option<usize>>,
    /// Members of each level.
    members: Vec<Vec<VertexId>>,
    /// `reach[a][b]`: members of `a` can know members of `b` (reflexive).
    reach: Vec<Vec<bool>>,
}

impl DerivedLevels {
    /// Number of levels.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no levels exist.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The derived level of `vertex`.
    pub fn level_of(&self, vertex: VertexId) -> Option<usize> {
        self.level_of.get(vertex.index()).copied().flatten()
    }

    /// Members of level `idx`.
    pub fn members(&self, idx: usize) -> &[VertexId] {
        &self.members[idx]
    }

    /// Iterates over the levels.
    pub fn iter(&self) -> impl Iterator<Item = &[VertexId]> {
        self.members.iter().map(Vec::as_slice)
    }

    /// Whether level `a` is strictly higher than level `b` — `a` knows `b`
    /// but not conversely (the paper's `higher`, Proposition 4.4).
    pub fn higher(&self, a: usize, b: usize) -> bool {
        a != b && self.reach[a][b] && !self.reach[b][a]
    }

    /// Whether the two levels are incomparable.
    pub fn incomparable(&self, a: usize, b: usize) -> bool {
        a != b && !self.reach[a][b] && !self.reach[b][a]
    }

    /// Whether members of `a` can know members of `b` (reflexive).
    pub fn knows(&self, a: usize, b: usize) -> bool {
        self.reach[a][b]
    }

    /// Whether vertices `x` and `y` are in the same derived level.
    pub fn same_level(&self, x: VertexId, y: VertexId) -> bool {
        match (self.level_of(x), self.level_of(y)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

fn derive(adj: &[Vec<usize>], keep: impl Fn(usize) -> bool) -> DerivedLevels {
    let cond = condensation(adj);
    let reach_all = cond.reachability();
    // Keep only components that contain at least one kept vertex; record
    // kept members.
    let mut keep_component = vec![false; cond.len()];
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); cond.len()];
    for (ci, comp) in cond.components.iter().enumerate() {
        for &v in comp {
            if keep(v) {
                keep_component[ci] = true;
                members[ci].push(VertexId::from_index(v));
            }
        }
        members[ci].sort_unstable();
    }
    let kept: Vec<usize> = (0..cond.len()).filter(|&c| keep_component[c]).collect();
    let renumber: Vec<Option<usize>> = {
        let mut r = vec![None; cond.len()];
        for (new, &old) in kept.iter().enumerate() {
            r[old] = Some(new);
        }
        r
    };
    let mut level_of = vec![None; adj.len()];
    for (v, slot) in level_of.iter_mut().enumerate() {
        if keep(v) {
            *slot = renumber[cond.component_of[v]];
        }
    }
    let reach: Vec<Vec<bool>> = kept
        .iter()
        .map(|&a| kept.iter().map(|&b| reach_all[a][b]).collect())
        .collect();
    let members: Vec<Vec<VertexId>> = kept.into_iter().map(|c| members[c].clone()).collect();
    DerivedLevels {
        level_of,
        members,
        reach,
    }
}

/// The rw-levels of a graph (§4): maximal sets of vertices with pairwise
/// mutual `can_know_f`, ordered by de facto information flow.
///
/// # Examples
///
/// ```
/// use tg_graph::{ProtectionGraph, Rights};
/// use tg_hierarchy::rw_levels;
///
/// let mut g = ProtectionGraph::new();
/// let hi = g.add_subject("hi");
/// let lo = g.add_subject("lo");
/// g.add_edge(hi, lo, Rights::R).unwrap();
///
/// let levels = rw_levels(&g);
/// let h = levels.level_of(hi).unwrap();
/// let l = levels.level_of(lo).unwrap();
/// assert!(levels.higher(h, l));
/// ```
pub fn rw_levels(graph: &ProtectionGraph) -> DerivedLevels {
    let flow = FlowGraph::compute(graph);
    let adj: Vec<Vec<usize>> = graph
        .vertex_ids()
        .map(|v| flow.sources(v).iter().map(|(b, _)| b.index()).collect())
        .collect();
    derive(&adj, |_| true)
}

/// The rwtg-levels of a graph (§5): maximal sets of **subjects** with
/// pairwise mutual `can_know`, ordered by combined de jure + de facto
/// information flow.
///
/// Built from the subject *link graph*: `u → v` when a bridge-or-connection
/// path runs from `u` to `v` (so `u` can know `v`), unioned with the de
/// facto flow edges.
pub fn rwtg_levels(graph: &ProtectionGraph) -> DerivedLevels {
    let n = graph.vertex_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];

    // De facto flow contributes for all vertices (implicit edges included).
    let flow = FlowGraph::compute(graph);
    for v in graph.vertex_ids() {
        adj[v.index()] = flow.sources(v).iter().map(|(b, _)| b.index()).collect();
    }

    // Subject-to-subject B∪C links.
    let dfa = lang::bridge_or_connection();
    let search = PathSearch::new(graph, &dfa, SearchConfig::explicit_only());
    for u in graph.subjects() {
        for v in search.accepting_reachable(&[u]) {
            if v != u && graph.is_subject(v) {
                adj[u.index()].push(v.index());
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    derive(&adj, |v| graph.is_subject(VertexId::from_index(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::Rights;

    #[test]
    fn linear_assignment_order() {
        let levels = LevelAssignment::linear(&["L1", "L2", "L3"]);
        assert!(levels.higher(2, 1));
        assert!(levels.higher(2, 0));
        assert!(levels.higher(1, 0));
        assert!(!levels.higher(0, 1));
        assert!(levels.dominates(1, 1));
        assert_eq!(levels.name(0), "L1");
    }

    #[test]
    fn cyclic_covers_are_rejected() {
        assert_eq!(
            LevelAssignment::new(&["a", "b"], &[(0, 1), (1, 0)]).unwrap_err(),
            LevelError::CyclicOrder
        );
    }

    #[test]
    fn unknown_levels_are_rejected() {
        assert!(matches!(
            LevelAssignment::new(&["a"], &[(0, 3)]),
            Err(LevelError::UnknownLevel(3))
        ));
        let mut levels = LevelAssignment::linear(&["a"]);
        assert!(levels.assign(VertexId::from_index(0), 7).is_err());
    }

    #[test]
    fn vertex_comparisons_fail_closed_when_unassigned() {
        let mut levels = LevelAssignment::linear(&["lo", "hi"]);
        let a = VertexId::from_index(0);
        let b = VertexId::from_index(1);
        assert!(!levels.may_read(a, b));
        levels.assign(a, 1).unwrap();
        levels.assign(b, 0).unwrap();
        assert!(levels.may_read(a, b));
        assert!(!levels.may_read(b, a));
        assert!(levels.may_write(b, a));
        assert!(!levels.may_write(a, b));
        assert!(levels.vertex_lower(b, a));
    }

    #[test]
    fn incomparable_levels_exist_in_lattices() {
        let levels = LevelAssignment::new(&["base", "cat-a", "cat-b"], &[(1, 0), (2, 0)]).unwrap();
        assert!(levels.incomparable(1, 2));
        assert!(levels.higher(1, 0));
        assert!(levels.higher(2, 0));
    }

    #[test]
    fn rw_levels_group_mutual_flow() {
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        let c = g.add_subject("c");
        g.add_edge(a, b, Rights::R).unwrap();
        g.add_edge(b, a, Rights::R).unwrap();
        g.add_edge(a, c, Rights::R).unwrap();
        let levels = rw_levels(&g);
        assert!(levels.same_level(a, b));
        assert!(!levels.same_level(a, c));
        let ab = levels.level_of(a).unwrap();
        let cc = levels.level_of(c).unwrap();
        assert!(levels.higher(ab, cc));
        assert!(!levels.higher(cc, ab));
    }

    #[test]
    fn rwtg_levels_cover_islands() {
        // Lemma 5.1: an island lies in exactly one rwtg-level.
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        g.add_edge(a, b, Rights::T).unwrap(); // one island {a, b}
        let levels = rwtg_levels(&g);
        assert!(levels.same_level(a, b));
    }

    #[test]
    fn rwtg_levels_exclude_objects() {
        let mut g = ProtectionGraph::new();
        let s = g.add_subject("s");
        let o = g.add_object("o");
        g.add_edge(s, o, Rights::R).unwrap();
        let levels = rwtg_levels(&g);
        assert!(levels.level_of(s).is_some());
        assert!(levels.level_of(o).is_none());
        // rw-levels include objects.
        assert!(rw_levels(&g).level_of(o).is_some());
    }

    #[test]
    fn rwtg_order_reflects_connections() {
        // hi -t-> q -r-> lo : hi can know lo via a read connection.
        let mut g = ProtectionGraph::new();
        let hi = g.add_subject("hi");
        let q = g.add_object("q");
        let lo = g.add_subject("lo");
        g.add_edge(hi, q, Rights::T).unwrap();
        g.add_edge(q, lo, Rights::R).unwrap();
        let levels = rwtg_levels(&g);
        let h = levels.level_of(hi).unwrap();
        let l = levels.level_of(lo).unwrap();
        assert!(levels.higher(h, l));
        assert!(!levels.knows(l, h));
    }

    #[test]
    fn bridged_subjects_share_an_rwtg_level() {
        // A pure t> bridge forces mutual can_know (conspiracy): one level.
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        g.add_edge(a, b, Rights::T).unwrap();
        let levels = rwtg_levels(&g);
        assert!(levels.same_level(a, b));
        assert_eq!(levels.len(), 1);
    }

    #[test]
    fn derived_levels_empty_graph() {
        let g = ProtectionGraph::new();
        assert!(rw_levels(&g).is_empty());
        assert!(rwtg_levels(&g).is_empty());
    }
}
