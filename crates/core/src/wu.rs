//! The Wu-model baseline and the Figure 2.1 conspiracy.
//!
//! Wu's hierarchical protection model (reference \[7\] in the paper)
//! encodes the hierarchy purely in the *direction* of take/grant edges: a superior
//! holds `t` over its inferiors, so authority can be pulled upward but —
//! assuming everyone follows the rules honestly — never pushed downward.
//!
//! Section 2 shows why that assumption is fatal: the Lemma 2.1/2.2
//! reversals let any two *directly connected, cooperating* subjects move
//! rights against the edge direction. "If a vertex conspires with a
//! higher-level vertex to which it is directly connected, the vertex at
//! the lower level can acquire take (or grant) rights over the vertex at
//! the higher level" — Figure 2.1. The functions here build Wu-style
//! hierarchies and execute that conspiracy as a concrete derivation.

use tg_graph::{ProtectionGraph, Rights, VertexId};
use tg_rules::{lemmas, Derivation, RuleError, Session};

use crate::levels::LevelAssignment;

/// A Wu-style hierarchy: a tree of subjects where each parent holds `t`
/// over its children.
#[derive(Clone, Debug)]
pub struct WuHierarchy {
    /// The protection graph.
    pub graph: ProtectionGraph,
    /// The intended classification (root highest).
    pub assignment: LevelAssignment,
    /// `levels[d]` lists the subjects at depth `d` (0 = root level).
    pub levels: Vec<Vec<VertexId>>,
}

/// Builds a Wu hierarchy of the given `depth` (number of levels ≥ 1) and
/// `branching` factor: level 0 is the single root; each subject at level
/// `d` holds `t` over `branching` children at level `d + 1`.
///
/// # Panics
///
/// Panics if `depth == 0` or `branching == 0`.
pub fn wu_hierarchy(depth: usize, branching: usize) -> WuHierarchy {
    assert!(depth > 0 && branching > 0, "degenerate hierarchy");
    let names: Vec<String> = (0..depth).map(|d| format!("L{}", depth - d)).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    // Level index in the assignment: 0 = lowest. Depth 0 (root) maps to
    // the highest assignment level.
    let covers: Vec<(usize, usize)> = (1..depth).map(|i| (i, i - 1)).collect();
    let mut assignment = LevelAssignment::new(
        &name_refs.iter().rev().copied().collect::<Vec<_>>(),
        &covers,
    )
    .expect("chains are acyclic");

    let mut graph = ProtectionGraph::new();
    let mut levels: Vec<Vec<VertexId>> = Vec::with_capacity(depth);
    let root = graph.add_subject("root");
    assignment.assign(root, depth - 1).expect("level exists");
    levels.push(vec![root]);
    for d in 1..depth {
        let mut level = Vec::new();
        let parents = levels[d - 1].clone();
        for (pi, &parent) in parents.iter().enumerate() {
            for c in 0..branching {
                let child = graph.add_subject(format!("s{d}-{pi}-{c}"));
                assignment
                    .assign(child, depth - 1 - d)
                    .expect("level exists");
                // The superior can take from the inferior.
                graph
                    .add_edge(parent, child, Rights::T)
                    .expect("fresh edge");
                level.push(child);
            }
        }
        levels.push(level);
    }
    WuHierarchy {
        graph,
        assignment,
        levels,
    }
}

/// The Figure 2.1 conspiracy: `inferior` (directly below `superior`, i.e.
/// `superior --t--> inferior`) cooperates with `superior` to obtain
/// `rights` over `target`, a vertex only the superior holds them on.
/// Returns the replayable derivation.
///
/// # Errors
///
/// Propagates the Lemma 2.1 construction's precondition failures (both
/// conspirators must be subjects, the `t` edge and the superior's rights
/// must exist).
pub fn conspiracy(
    graph: &ProtectionGraph,
    superior: VertexId,
    inferior: VertexId,
    target: VertexId,
    rights: Rights,
) -> Result<Derivation, RuleError> {
    let mut session = Session::new(graph.clone());
    lemmas::reverse_take(&mut session, superior, inferior, target, rights)?;
    Ok(session.into_parts().1)
}

/// The full Figure 2.1 demonstration: in a 3-level Wu hierarchy, the
/// middle subject conspires with the root to obtain the root's `t` right
/// over *another* middle subject — authority the hierarchy was supposed
/// to reserve to the superior. Returns the graph before, the derivation,
/// and the pair (conspirator, victim).
pub fn figure_2_1() -> (WuHierarchy, Derivation, (VertexId, VertexId)) {
    let wu = wu_hierarchy(3, 2);
    let root = wu.levels[0][0];
    let conspirator = wu.levels[1][0];
    let victim = wu.levels[1][1];
    let derivation = conspiracy(&wu.graph, root, conspirator, victim, Rights::T)
        .expect("the conspiracy preconditions hold by construction");
    (wu, derivation, (conspirator, victim))
}

/// Whether the Wu hierarchy's intent is already violated in `graph`: some
/// subject holds `t` or `g` over a vertex whose level is not strictly
/// below its own.
pub fn wu_invariant_violated(graph: &ProtectionGraph, assignment: &LevelAssignment) -> bool {
    graph.edges().any(|e| {
        e.rights.explicit.intersects(Rights::TG)
            && match (assignment.level_of(e.src), assignment.level_of(e.dst)) {
                (Some(a), Some(b)) => !assignment.higher(a, b),
                _ => false,
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_analysis::can_know;
    use tg_graph::Right;

    #[test]
    fn hierarchy_shape() {
        let wu = wu_hierarchy(3, 2);
        assert_eq!(wu.levels[0].len(), 1);
        assert_eq!(wu.levels[1].len(), 2);
        assert_eq!(wu.levels[2].len(), 4);
        assert_eq!(wu.graph.vertex_count(), 7);
        // Root is assigned the top level.
        let root_level = wu.assignment.level_of(wu.levels[0][0]).unwrap();
        let leaf_level = wu.assignment.level_of(wu.levels[2][0]).unwrap();
        assert!(wu.assignment.higher(root_level, leaf_level));
        assert!(!wu_invariant_violated(&wu.graph, &wu.assignment));
    }

    #[test]
    fn figure_2_1_conspiracy_succeeds() {
        let (wu, derivation, (conspirator, victim)) = figure_2_1();
        // Before: the conspirator holds nothing over its sibling.
        assert!(wu.graph.rights(conspirator, victim).explicit().is_empty());
        let after = derivation.replayed(&wu.graph).unwrap();
        // After: the inferior holds take over its sibling — the breach.
        assert!(after.has_explicit(conspirator, victim, Right::Take));
        assert!(wu_invariant_violated(&after, &wu.assignment));
    }

    #[test]
    fn conspiracy_needs_the_direct_edge() {
        let wu = wu_hierarchy(3, 2);
        let root = wu.levels[0][0];
        let leaf = wu.levels[2][0]; // not directly connected to root
        assert!(conspiracy(&wu.graph, root, leaf, wu.levels[1][1], Rights::T).is_err());
    }

    #[test]
    fn wu_model_leaks_under_can_know() {
        // Even without executing the conspiracy, the analysis predicts it:
        // the t edge is a bridge, so the inferior can know everything the
        // superior can.
        let wu = wu_hierarchy(2, 1);
        let root = wu.levels[0][0];
        let child = wu.levels[1][0];
        // Attach a secret only the root can read.
        let mut g = wu.graph.clone();
        let secret = g.add_object("secret");
        g.add_edge(root, secret, Rights::R).unwrap();
        assert!(can_know(&g, child, secret), "Wu model leaks to inferiors");
    }

    #[test]
    fn bishop_structure_resists_the_same_conspiracy() {
        // The same classification realized as a §4 structure: no t/g
        // edges at all, so the conspiracy machinery has nothing to grip.
        let built = crate::structure::linear_hierarchy(&["lo", "hi"], 1);
        let hi = built.subjects[1][0];
        let lo = built.subjects[0][0];
        let mut g = built.graph.clone();
        let secret = g.add_object("secret");
        g.add_edge(hi, secret, Rights::R).unwrap();
        assert!(
            !can_know(&g, lo, secret),
            "Theorem 4.3: no conspiracy can move information down"
        );
    }

    #[test]
    #[should_panic(expected = "degenerate hierarchy")]
    fn zero_depth_panics() {
        wu_hierarchy(0, 2);
    }
}
