//! Fault-injection properties for the crash-safe reference monitor.
//!
//! Two families of properties, per the crash-safety design:
//!
//! * **Recovery equivalence** — replaying a journal onto the seed graph
//!   reproduces the live monitor exactly: graph, level assignment, rule
//!   log and statistics. Torn tails reduce to a prefix of that history.
//! * **Fail-closed** — no injected corruption (journal bit flips,
//!   garbage, torn writes) or out-of-band graph tampering lets a
//!   hierarchy-violating `r`/`w` edge survive an audit cycle: recovery
//!   either reproduces a clean monitor or refuses to produce one at all.

use proptest::prelude::*;
use tg_hierarchy::journal::{recover, JournalError};
use tg_hierarchy::structure::linear_hierarchy;
use tg_hierarchy::{CombinedRestriction, Monitor};
use tg_rules::Rule;
use tg_sim::faults::{adversarial_trace, corrupt_bytes, tamper_graph, CorruptionKind};
use tg_sim::prng::Prng;

/// A fresh monitor over a 3-level, 3-per-level linear hierarchy, with
/// journaling enabled, plus an untouched copy of the seed for recovery.
fn journaled_monitor() -> (Monitor, impl Fn() -> Monitor) {
    let built = linear_hierarchy(&["low", "mid", "high"], 3);
    let seed_graph = built.graph.clone();
    let seed_levels = built.assignment.clone();
    let mut monitor = Monitor::new(built.graph, built.assignment, Box::new(CombinedRestriction));
    monitor.enable_journal();
    let make_seed = move || {
        Monitor::new(
            seed_graph.clone(),
            seed_levels.clone(),
            Box::new(CombinedRestriction),
        )
    };
    (monitor, make_seed)
}

/// Drives `monitor` with an adversarial trace, mixing single rule
/// applications with transactional batches so the journal exercises
/// `R`, `B`/`A`/`C` and `B`/`A`/`X` records.
fn drive(monitor: &mut Monitor, trace: &[Rule], seed: u64) {
    let mut rng = Prng::seed_from_u64(seed ^ 0x5EED);
    let mut i = 0;
    while i < trace.len() {
        if rng.gen_bool(0.3) {
            let width = 2 + rng.below(3);
            let batch = &trace[i..(i + width).min(trace.len())];
            let _ = monitor.try_apply_all(batch);
            i += batch.len();
        } else {
            let _ = monitor.try_apply(&trace[i]);
            i += 1;
        }
    }
}

fn assert_equivalent(live: &Monitor, recovered: &Monitor) {
    assert_eq!(recovered.graph(), live.graph(), "graphs diverge");
    assert_eq!(recovered.levels(), live.levels(), "levels diverge");
    assert_eq!(recovered.stats(), live.stats(), "stats diverge");
    assert_eq!(recovered.log().steps, live.log().steps, "rule logs diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recovery equivalence: seed + journal == live monitor, exactly.
    #[test]
    fn recovery_reproduces_the_live_monitor(seed in 0u64..10_000, len in 1usize..60) {
        let (mut live, make_seed) = journaled_monitor();
        let trace = adversarial_trace(live.graph(), live.levels(), len, seed);
        drive(&mut live, &trace, seed);

        let fresh = make_seed();
        let (graph, levels, _) = fresh.into_parts();
        let (recovered, report) = recover(
            graph,
            levels,
            Box::new(CombinedRestriction),
            live.journal().unwrap().as_bytes(),
        )
        .expect("an undamaged journal recovers");
        prop_assert!(report.torn.is_none());
        assert_equivalent(&live, &recovered);
        // The recovered journal is a clean re-encoding of the same
        // history, so recovery is idempotent.
        prop_assert_eq!(
            recovered.journal().unwrap().as_str(),
            live.journal().unwrap().as_str()
        );
    }

    /// A torn tail (pure truncation — the crash-mid-write shape) always
    /// recovers to a prefix of the live history, never to garbage.
    #[test]
    fn torn_journals_recover_a_prefix(seed in 0u64..10_000, len in 1usize..40) {
        let (mut live, make_seed) = journaled_monitor();
        let trace = adversarial_trace(live.graph(), live.levels(), len, seed);
        drive(&mut live, &trace, seed);

        let mut rng = Prng::seed_from_u64(seed.wrapping_mul(31));
        let (torn, _) =
            corrupt_bytes(live.journal().unwrap().as_bytes(), CorruptionKind::TornTail, &mut rng);

        let fresh = make_seed();
        let (graph, levels, _) = fresh.into_parts();
        match recover(graph, levels, Box::new(CombinedRestriction), &torn) {
            Ok((recovered, report)) => {
                let live_stats = live.stats();
                let rec = recovered.stats();
                prop_assert!(rec.permitted <= live_stats.permitted);
                prop_assert!(rec.denied <= live_stats.denied);
                prop_assert!(rec.malformed <= live_stats.malformed);
                prop_assert!(recovered.log().steps.len() <= live.log().steps.len());
                prop_assert_eq!(
                    &live.log().steps[..recovered.log().steps.len()],
                    &recovered.log().steps[..]
                );
                // Fail-closed: whatever prefix survived, the restriction
                // held throughout, so the audit is clean.
                prop_assert!(recovered.audit().is_empty());
                if report.replayed as u64 == live.journal().unwrap().records() {
                    assert_equivalent(&live, &recovered);
                }
            }
            // Tearing everything including the magic line fails closed.
            Err(JournalError::BadMagic) => {}
            Err(e) => return Err(format!("torn tail must not fail as {e}")),
        }
    }

    /// Arbitrary journal corruption — bit flips and garbage spans — never
    /// yields a recovered monitor whose graph violates the hierarchy:
    /// recovery re-verifies every record, so it either reproduces a clean
    /// prefix or fails closed with a `JournalError`.
    #[test]
    fn corrupted_journals_fail_closed(
        seed in 0u64..10_000,
        len in 1usize..40,
        flips in 1usize..4,
        garbage in proptest::bool::ANY,
    ) {
        let (mut live, make_seed) = journaled_monitor();
        let trace = adversarial_trace(live.graph(), live.levels(), len, seed);
        drive(&mut live, &trace, seed);

        let mut rng = Prng::seed_from_u64(seed.rotate_left(17) | 1);
        let mut bytes = live.journal().unwrap().as_bytes().to_vec();
        for _ in 0..flips {
            let kind = if garbage { CorruptionKind::Garbage } else { CorruptionKind::BitFlip };
            let (damaged, _) = corrupt_bytes(&bytes, kind, &mut rng);
            bytes = damaged;
        }

        let fresh = make_seed();
        let (graph, levels, _) = fresh.into_parts();
        if let Ok((recovered, _)) = recover(graph, levels, Box::new(CombinedRestriction), &bytes) {
            // Whatever the damage did, it could not smuggle a violating
            // edge past the re-verifying replay.
            prop_assert!(recovered.audit().is_empty());
            let live_stats = live.stats();
            prop_assert!(recovered.stats().permitted <= live_stats.permitted);
        }
    }

    /// Out-of-band tampering: every violating planted edge is caught by
    /// the audit cycle, the monitor fails closed while degraded, and no
    /// violating edge survives quarantine.
    #[test]
    fn tampering_never_survives_an_audit_cycle(seed in 0u64..10_000, count in 1usize..20) {
        // Tamper behind the monitor's back: plant edges straight into the
        // graph before handing it to the monitor.
        let mut built = linear_hierarchy(&["low", "mid", "high"], 3);
        let mut rng = Prng::seed_from_u64(seed ^ 0xBAD);
        let planted = tamper_graph(&mut built.graph, &built.assignment, count, &mut rng);
        let mut monitor =
            Monitor::new(built.graph, built.assignment, Box::new(CombinedRestriction));
        monitor.enable_journal();

        let violating: Vec<_> = planted.iter().filter(|t| t.violating).collect();
        let violations = monitor.audit_cycle();
        // Completeness: every violating tamper is reported (Cor 5.6).
        for t in &violating {
            prop_assert!(
                violations.iter().any(|v| v.src == t.src && v.dst == t.dst),
                "planted violation {:?} not audited", t
            );
        }
        if violating.is_empty() {
            // Nothing violating planted: service continues undegraded.
            prop_assert!(!monitor.is_degraded());
            return Ok(());
        }

        // Fail closed: de jure traffic is refused while degraded.
        prop_assert!(monitor.is_degraded());
        let trace = adversarial_trace(monitor.graph(), monitor.levels(), 10, seed);
        let before = monitor.graph().clone();
        for rule in trace.iter().filter(|r| matches!(r, Rule::DeJure(_))) {
            prop_assert!(monitor.try_apply(rule).is_err());
        }
        prop_assert_eq!(monitor.graph(), &before);

        // Quarantine repairs: afterwards no violating r/w edge survives.
        monitor.quarantine();
        prop_assert!(!monitor.is_degraded());
        prop_assert!(monitor.audit().is_empty());
        prop_assert!(monitor.stats().quarantined >= 1);
        prop_assert_eq!(monitor.stats().recoveries, 1);
    }
}
