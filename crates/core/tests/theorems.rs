//! Property tests for the paper's §4–§5 theorems.
//!
//! * Proposition 4.4 — `higher` is a strict partial order.
//! * Theorem 4.3 — structures leak only upward.
//! * Lemma 5.1 — every island lies in exactly one rwtg-level.
//! * Theorem 5.2 — definitional security ⟺ structural security.
//! * Lemmas 5.3/5.4 and Theorem 5.5 — restriction soundness (random
//!   monitored traces never create violations) and the combined
//!   restriction's completeness witness behaviour.

use proptest::prelude::*;
use tg_analysis::Islands;
use tg_graph::{ProtectionGraph, Rights, VertexId, VertexKind};
use tg_hierarchy::monitor::audit_graph;
use tg_hierarchy::{
    rw_levels, rwtg_levels, secure_policy, secure_structural, ApplicationRestriction,
    CombinedRestriction, DirectionRestriction, LevelAssignment, Monitor, Restriction,
};
use tg_rules::{DeFactoRule, DeJureRule, Rule};

/// A random graph plus a random *total* assignment over a random level
/// order.
#[derive(Debug, Clone)]
struct Classified {
    graph: ProtectionGraph,
    levels: LevelAssignment,
}

fn classified_strategy(max_vertices: usize, max_edges: usize) -> impl Strategy<Value = Classified> {
    (
        prop::collection::vec((prop::bool::weighted(0.7), 0usize..3), 2..=max_vertices),
        prop::collection::vec(
            (0usize..max_vertices, 0usize..max_vertices, 0u8..32),
            0..=max_edges,
        ),
        // Level order: chain, vee, or diamond over 3-4 levels.
        0usize..3,
    )
        .prop_map(|(vertices, edges, order_kind)| {
            let levels = match order_kind {
                0 => LevelAssignment::linear(&["l0", "l1", "l2"]),
                1 => LevelAssignment::new(&["l0", "l1", "l2"], &[(1, 0), (2, 0)]).unwrap(),
                _ => LevelAssignment::new(
                    &["l0", "l1", "l2", "l3"],
                    &[(1, 0), (2, 0), (3, 1), (3, 2)],
                )
                .unwrap(),
            };
            let level_count = levels.len();
            let mut levels = levels;
            let mut graph = ProtectionGraph::new();
            for (i, &(is_subject, level)) in vertices.iter().enumerate() {
                let v = if is_subject {
                    graph.add_subject(format!("s{i}"))
                } else {
                    graph.add_object(format!("o{i}"))
                };
                levels.assign(v, level % level_count).unwrap();
            }
            let n = graph.vertex_count();
            for &(a, b, bits) in &edges {
                let src = VertexId::from_index(a % n);
                let dst = VertexId::from_index(b % n);
                if src == dst {
                    continue;
                }
                let rights = Rights::from_bits(u16::from(bits) & 0b11111);
                if rights.is_empty() {
                    continue;
                }
                graph.add_edge(src, dst, rights).unwrap();
            }
            Classified { graph, levels }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 5.2: the definitional check (quantifying can_know over all
    /// assigned pairs) coincides with the structural check (links and
    /// spans against dominance) on totally assigned, explicit-only graphs.
    #[test]
    fn theorem_5_2_definitional_equals_structural(c in classified_strategy(5, 8)) {
        let definitional = secure_policy(&c.graph, &c.levels).is_ok();
        let structural = secure_structural(&c.graph, &c.levels).is_ok();
        prop_assert_eq!(
            definitional, structural,
            "Theorem 5.2 mismatch (definitional={}, structural={})\n{}",
            definitional, structural, tg_graph::render_graph(&c.graph)
        );
    }

    /// Proposition 4.4: the derived `higher` relation is a strict partial
    /// order — irreflexive, asymmetric, transitive — for both rw-levels
    /// and rwtg-levels.
    #[test]
    fn proposition_4_4_higher_is_a_strict_partial_order(c in classified_strategy(6, 10)) {
        for levels in [rw_levels(&c.graph), rwtg_levels(&c.graph)] {
            let k = levels.len();
            for a in 0..k {
                prop_assert!(!levels.higher(a, a), "irreflexive");
                for b in 0..k {
                    if levels.higher(a, b) {
                        prop_assert!(!levels.higher(b, a), "asymmetric");
                    }
                    for d in 0..k {
                        if levels.higher(a, b) && levels.higher(b, d) {
                            prop_assert!(levels.higher(a, d), "transitive");
                        }
                    }
                }
            }
        }
    }

    /// Lemma 5.1: every island is contained in exactly one rwtg-level.
    #[test]
    fn lemma_5_1_islands_sit_inside_one_rwtg_level(c in classified_strategy(6, 10)) {
        let islands = Islands::compute(&c.graph);
        let levels = rwtg_levels(&c.graph);
        for island in islands.iter() {
            let mut seen: Vec<usize> = island
                .iter()
                .filter_map(|&v| levels.level_of(v))
                .collect();
            seen.sort_unstable();
            seen.dedup();
            prop_assert!(
                seen.len() <= 1,
                "island {island:?} spans rwtg-levels {seen:?}\n{}",
                tg_graph::render_graph(&c.graph)
            );
        }
    }

    /// Restriction soundness (Lemmas 5.3, 5.4, Theorem 5.5): starting from
    /// a graph whose audit is clean, a monitored random trace never
    /// produces an audit violation, under any of the three restrictions.
    #[test]
    fn restrictions_are_sound_under_random_traces(
        c in classified_strategy(5, 6),
        trace in prop::collection::vec(
            (0usize..5, 0usize..8, 0usize..8, 0usize..8, 0u8..16),
            0..25
        ),
    ) {
        // Start from a clean slate: remove any edge the combined invariant
        // already rejects.
        let mut graph = c.graph.clone();
        for v in audit_graph(&graph, &c.levels, &CombinedRestriction) {
            graph.remove_explicit_rights(v.src, v.dst, v.rights & Rights::RW).unwrap();
        }
        prop_assert!(audit_graph(&graph, &c.levels, &CombinedRestriction).is_empty());

        let restrictions: Vec<Box<dyn Restriction>> = vec![
            Box::new(CombinedRestriction),
            Box::new(DirectionRestriction),
            Box::new(ApplicationRestriction { immovable: Rights::RW }),
        ];
        for restriction in restrictions {
            let strict = matches!(restriction.name(), "combined (no read-up / no write-down)");
            let mut monitor = Monitor::new(graph.clone(), c.levels.clone(), restriction);
            for &(kind, a, b, z, bits) in &trace {
                let n = monitor.graph().vertex_count();
                let va = VertexId::from_index(a % n);
                let vb = VertexId::from_index(b % n);
                let vz = VertexId::from_index(z % n);
                let rights = Rights::from_bits(u16::from(bits) & 0b11111);
                let rule = match kind {
                    0 => Rule::DeJure(DeJureRule::Take { actor: va, via: vb, target: vz, rights }),
                    1 => Rule::DeJure(DeJureRule::Grant { actor: va, via: vb, target: vz, rights }),
                    2 => Rule::DeJure(DeJureRule::Create {
                        actor: va,
                        kind: if bits % 2 == 0 { VertexKind::Object } else { VertexKind::Subject },
                        rights,
                        name: "c".to_string(),
                    }),
                    3 => Rule::DeJure(DeJureRule::Remove { actor: va, target: vb, rights }),
                    _ => Rule::DeFacto(DeFactoRule::Post { x: va, y: vb, z: vz }),
                };
                let _ = monitor.try_apply(&rule);
            }
            // Soundness: the audited invariant still holds for the
            // combined restriction. (Direction/application restrictions
            // maintain no edge invariant — for them soundness is that the
            // *reachable rights* never cross levels; checked separately
            // in the completeness tests below on curated graphs.)
            if strict {
                prop_assert!(
                    monitor.audit().is_empty(),
                    "combined restriction let a violating edge through\n{}",
                    tg_graph::render_graph(monitor.graph())
                );
            }
        }
    }
}

/// Lemma 5.3/5.4 completeness counterexamples, as concrete tests: under
/// direction or application restrictions some *harmless* transfers become
/// impossible, while the combined restriction permits them (Theorem 5.5).
#[test]
fn completeness_counterexamples() {
    // hi -t-> q -e-> lo-ish target: moving the inert execute right from a
    // *lower* holder is denied by direction, denied by application (if e
    // is listed), but permitted by the combined restriction.
    let mut g = ProtectionGraph::new();
    let lo = g.add_subject("lo");
    let hi = g.add_subject("hi");
    let q = g.add_object("q");
    g.add_edge(lo, q, Rights::T).unwrap();
    g.add_edge(q, hi, Rights::E).unwrap();
    let mut levels = LevelAssignment::linear(&["low", "high"]);
    levels.assign(lo, 0).unwrap();
    levels.assign(hi, 1).unwrap();
    levels.assign(q, 1).unwrap();

    let rule = Rule::DeJure(DeJureRule::Take {
        actor: lo,
        via: q,
        target: hi,
        rights: Rights::E,
    });

    // Combined: permitted (execute is unconstrained — Figure 5.1).
    let mut m = Monitor::new(g.clone(), levels.clone(), Box::new(CombinedRestriction));
    assert!(m.try_apply(&rule).is_ok());

    // Direction: lo exercises a t edge toward the *higher* q — denied,
    // even though the transfer is harmless. Not complete.
    let mut m = Monitor::new(g.clone(), levels.clone(), Box::new(DirectionRestriction));
    assert!(m.try_apply(&rule).is_err());

    // Application (e immovable): denied. Not complete.
    let mut m = Monitor::new(
        g,
        levels,
        Box::new(ApplicationRestriction {
            immovable: Rights::E,
        }),
    );
    assert!(m.try_apply(&rule).is_err());
}

/// Theorem 5.5 completeness, executable form: a derivation between two
/// secure graphs that transfers only inert rights replays unchanged under
/// the combined restriction.
#[test]
fn combined_restriction_replays_secure_derivations() {
    let mut g = ProtectionGraph::new();
    let a = g.add_subject("a");
    let b = g.add_subject("b");
    let q = g.add_object("q");
    g.add_edge(a, b, Rights::G).unwrap();
    g.add_edge(a, q, Rights::E | Rights::T).unwrap();
    let mut levels = LevelAssignment::linear(&["one"]);
    for v in [a, b, q] {
        levels.assign(v, 0).unwrap();
    }
    assert!(secure_policy(&g, &levels).is_ok());

    // a grants (e to q) to b; a grants (t to q) to b — all inert.
    let steps = vec![
        Rule::DeJure(DeJureRule::Grant {
            actor: a,
            via: b,
            target: q,
            rights: Rights::E,
        }),
        Rule::DeJure(DeJureRule::Grant {
            actor: a,
            via: b,
            target: q,
            rights: Rights::T,
        }),
    ];
    let mut monitor = Monitor::new(g, levels, Box::new(CombinedRestriction));
    for rule in &steps {
        monitor
            .try_apply(rule)
            .expect("inert transfers are permitted");
    }
    assert_eq!(monitor.stats().permitted, 2);
    assert!(secure_policy(monitor.graph(), monitor.levels()).is_ok());
}
