//! Structure/derivation coherence: a hierarchy built from a declared
//! partial order must *derive* back to exactly that order — the assigned
//! classification and the graph's own rw-level structure coincide (the
//! executable content of "Theorem 4.3 provides the Take-Grant Protection
//! Model with the structure needed to model a hierarchical classification
//! system").

use proptest::prelude::*;
use tg_hierarchy::structure::lattice_hierarchy;
use tg_hierarchy::{rw_levels, rwtg_levels, secure_policy, secure_structural};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_lattices_derive_back_to_their_declaration(
        level_count in 2usize..6,
        per_level in 1usize..4,
        cover_picks in prop::collection::vec((0usize..6, 0usize..6), 0..10),
    ) {
        // Covers only point from higher index to lower: acyclic by
        // construction.
        let covers: Vec<(usize, usize)> = cover_picks
            .into_iter()
            .map(|(a, b)| (a % level_count, b % level_count))
            .filter(|&(a, b)| a > b)
            .collect();
        let names: Vec<String> = (0..level_count).map(|i| format!("L{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let built = lattice_hierarchy(&name_refs, &covers, per_level).expect("acyclic");

        // Built hierarchies are secure under both checks.
        prop_assert!(secure_policy(&built.graph, &built.assignment).is_ok());
        prop_assert!(secure_structural(&built.graph, &built.assignment).is_ok());

        // The derived rw-levels partition subjects exactly as assigned,
        // and the derived order equals the declared dominance.
        for derived in [rw_levels(&built.graph), rwtg_levels(&built.graph)] {
            for (la, level_a) in built.subjects.iter().enumerate() {
                for (lb, level_b) in built.subjects.iter().enumerate() {
                    for &a in level_a {
                        for &b in level_b {
                            let da = derived.level_of(a).expect("subjects have levels");
                            let db = derived.level_of(b).expect("subjects have levels");
                            if la == lb {
                                prop_assert_eq!(da, db, "same declared level must merge");
                            } else {
                                prop_assert_eq!(
                                    built.assignment.higher(la, lb),
                                    derived.higher(da, db),
                                    "declared vs derived order diverge at L{} L{}",
                                    la, lb
                                );
                                prop_assert_eq!(
                                    built.assignment.incomparable(la, lb),
                                    derived.incomparable(da, db),
                                    "declared vs derived comparability diverge at L{} L{}",
                                    la, lb
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
