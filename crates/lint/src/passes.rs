//! The built-in lint passes.
//!
//! Each pass checks one result of the paper; the mapping is recorded in
//! the [`RULES`](crate::RULES) table and in `DESIGN.md`.

use tg_analysis::synthesis::know_witness;
use tg_analysis::{can_know_detail, can_steal, know_edge_exists, FlowStep, KnowEvidence, Link};
use tg_flow::min_flow_conspirators;
use tg_graph::{ProtectionGraph, Right, VertexId};
use tg_hierarchy::{audit_diagnostics, CombinedRestriction, Monitor};
use tg_paths::{format_word, lang, PathSearch, SearchConfig};

use crate::{rule, Diagnostic, Fix, FixIt, LabeledSpan, Lint, LintContext, RuleInfo, Severity};

/// Quarantines the de jure edge joining two consecutive path vertices,
/// whichever orientation the graph actually records.
fn quarantine_path_edge(graph: &ProtectionGraph, a: VertexId, b: VertexId) -> FixIt {
    if !graph.rights(a, b).combined().is_empty() {
        FixIt::QuarantineEdge { src: a, dst: b }
    } else {
        FixIt::QuarantineEdge { src: b, dst: a }
    }
}

/// Strips the right a de facto flow step rides on, from the explicit
/// label when it is recorded there, from the implicit label otherwise.
fn strip_flow_step(
    graph: &ProtectionGraph,
    earlier: VertexId,
    later: VertexId,
    step: FlowStep,
) -> FixIt {
    let (src, dst, right) = match step {
        // earlier reads later: the edge is earlier → later : r.
        FlowStep::Read => (earlier, later, Right::Read),
        // later writes earlier: the edge is later → earlier : w.
        FlowStep::Write => (later, earlier, Right::Write),
    };
    let rights = tg_graph::Rights::singleton(right);
    if graph.rights(src, dst).explicit().contains(right) {
        FixIt::StripExplicit { src, dst, rights }
    } else {
        FixIt::StripImplicit { src, dst, rights }
    }
}

fn render_flow_path(cx: &LintContext<'_>, vertices: &[VertexId], steps: &[FlowStep]) -> String {
    let mut out = String::from("rw-path ");
    for (i, v) in vertices.iter().enumerate() {
        if i > 0 {
            out.push_str(match steps[i - 1] {
                FlowStep::Read => " -r>- ",
                FlowStep::Write => " -<w- ",
            });
        }
        out.push_str(cx.name(*v));
    }
    out
}

fn render_link(cx: &LintContext<'_>, link: &Link) -> String {
    let names: Vec<&str> = link.path.iter().map(|v| cx.name(*v)).collect();
    format!(
        "{:?} {} ({})",
        link.kind,
        names.join(" - "),
        format_word(&link.word)
    )
}

/// TG000/TG001/TG002 — the edge invariants of Theorem 5.5: no explicit
/// read-up, no explicit write-down. Delegates to the reference monitor's
/// audit, which produces the same diagnostics the monitor's quarantine
/// consumes.
pub struct EdgeInvariants;

impl Lint for EdgeInvariants {
    fn rule(&self) -> &'static RuleInfo {
        rule("TG000").unwrap()
    }

    fn needs_policy(&self) -> bool {
        true
    }

    fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        let levels = cx.levels.expect("policy-gated pass");
        audit_diagnostics(cx.graph, levels, &CombinedRestriction, cx.srcmap)
    }
}

/// TG003 — Theorem 5.2: a bridge or connection between subjects must run
/// *down* the dominance order (the knower dominates the known); one that
/// crosses it lets authority and information traverse levels.
pub struct CrossLevelLinks;

impl Lint for CrossLevelLinks {
    fn rule(&self) -> &'static RuleInfo {
        rule("TG003").unwrap()
    }

    fn needs_policy(&self) -> bool {
        true
    }

    fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        let levels = cx.levels.expect("policy-gated pass");
        let dfa = lang::bridge_or_connection();
        let search = PathSearch::new(cx.graph, &dfa, SearchConfig::explicit_only());
        let mut out = Vec::new();
        for u in cx.graph.subjects() {
            let Some(lu) = levels.level_of(u) else {
                continue;
            };
            for v in search.accepting_reachable(&[u]) {
                if v == u || !cx.graph.is_subject(v) {
                    continue;
                }
                let Some(lv) = levels.level_of(v) else {
                    continue;
                };
                if levels.dominates(lu, lv) {
                    continue;
                }
                let witness = search
                    .find(&[u], |t| t == v)
                    .expect("reachable vertex has a path");
                let first_fix =
                    quarantine_path_edge(cx.graph, witness.vertices[0], witness.vertices[1]);
                let (fa, fb) = first_fix.edge();
                let names: Vec<&str> = witness.vertices.iter().map(|w| cx.name(*w)).collect();
                out.push(
                    Diagnostic::new(
                        "TG003",
                        Severity::Error,
                        format!(
                            "cross-level link: bridge-or-connection from `{}` (level {}) to `{}` (level {}) runs against dominance",
                            cx.name(u),
                            levels.name(lu),
                            cx.name(v),
                            levels.name(lv),
                        ),
                        LabeledSpan::new(
                            cx.edge_span(fa, fb),
                            format!("link starts at edge `{} -> {}`", cx.name(fa), cx.name(fb)),
                        ),
                    )
                    .with_secondary(LabeledSpan::new(
                        cx.vertex_span(v),
                        format!("`{}` is reachable from `{}`", cx.name(v), cx.name(u)),
                    ))
                    .with_witness(format!("{} ({})", names.join(" - "), format_word(&witness.word)))
                    .with_fix(Fix::new(
                        first_fix,
                        format!("quarantine edge {} -> {}", cx.name(fa), cx.name(fb)),
                    )),
                );
            }
        }
        out
    }
}

/// TG004 — Proposition 4.4 requires the derived dominance relation to be
/// a strict partial order. When de facto flow merges two vertices with
/// *distinct assigned levels* into one rw-level, the policy's order
/// collapses: each level "dominates" the other.
pub struct OrderCollapse;

impl Lint for OrderCollapse {
    fn rule(&self) -> &'static RuleInfo {
        rule("TG004").unwrap()
    }

    fn needs_policy(&self) -> bool {
        true
    }

    fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        let levels = cx.levels.expect("policy-gated pass");
        let mut out = Vec::new();
        for idx in 0..cx.rw.len() {
            let assigned: Vec<(VertexId, usize)> = cx
                .rw
                .members(idx)
                .iter()
                .filter_map(|&v| levels.level_of(v).map(|l| (v, l)))
                .collect();
            let Some(&(a, la)) = assigned.first() else {
                continue;
            };
            let Some(&(b, lb)) = assigned.iter().find(|&&(_, l)| l != la) else {
                continue;
            };
            let (path, steps) = cx
                .flow
                .path(a, b)
                .expect("one rw-level implies mutual flow");
            let fix = strip_flow_step(cx.graph, path[0], path[1], steps[0]);
            let (fa, fb) = fix.edge();
            out.push(
                Diagnostic::new(
                    "TG004",
                    Severity::Error,
                    format!(
                        "order collapse: `{}` (level {}) and `{}` (level {}) share one rw-level, so dominance is not a strict partial order",
                        cx.name(a),
                        levels.name(la),
                        cx.name(b),
                        levels.name(lb),
                    ),
                    LabeledSpan::new(
                        cx.edge_span(fa, fb),
                        format!("mutual flow rides on edge `{} -> {}`", cx.name(fa), cx.name(fb)),
                    ),
                )
                .with_secondary(LabeledSpan::new(
                    cx.vertex_span(a),
                    format!("`{}` assigned level {}", cx.name(a), levels.name(la)),
                ))
                .with_secondary(LabeledSpan::new(
                    cx.vertex_span(b),
                    format!("`{}` assigned level {}", cx.name(b), levels.name(lb)),
                ))
                .with_witness(render_flow_path(cx, &path, &steps))
                .with_fix(Fix::new(
                    fix,
                    format!(
                        "strip the flow step between {} and {}",
                        cx.name(path[0]),
                        cx.name(path[1])
                    ),
                )),
            );
        }
        out
    }
}

/// TG005 — the derived-hierarchy security check behind
/// [`tg_hierarchy::secure_derived`]: for subjects `x`, `y` with `y`
/// strictly above `x` in the graph's own rw-hierarchy, `can_know(x, y)`
/// must be false. This pass enumerates *every* inverting pair (the
/// checker stops at the first), with the paper's witness structure.
pub struct HierarchyInversion;

impl Lint for HierarchyInversion {
    fn rule(&self) -> &'static RuleInfo {
        rule("TG005").unwrap()
    }

    fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        let subjects: Vec<VertexId> = cx.graph.subjects().collect();
        let mut out = Vec::new();
        for &x in &subjects {
            for &y in &subjects {
                if x == y {
                    continue;
                }
                let (Some(lx), Some(ly)) = (cx.rw.level_of(x), cx.rw.level_of(y)) else {
                    continue;
                };
                if !cx.rw.higher(ly, lx) {
                    continue;
                }
                let Some(evidence) = can_know_detail(cx.graph, x, y) else {
                    continue;
                };
                out.push(inversion_diagnostic(cx, x, y, &evidence));
            }
        }
        out
    }
}

fn inversion_diagnostic(
    cx: &LintContext<'_>,
    x: VertexId,
    y: VertexId,
    evidence: &KnowEvidence,
) -> Diagnostic {
    let (witness, fix) = match evidence {
        KnowEvidence::Trivial => unreachable!("x != y"),
        KnowEvidence::DeFacto { vertices, steps } => (
            render_flow_path(cx, vertices, steps),
            strip_flow_step(cx.graph, vertices[0], vertices[1], steps[0]),
        ),
        KnowEvidence::DeFactoTerminal => (
            format!("implicit edge {} -> {}", cx.name(x), cx.name(y)),
            FixIt::StripImplicit {
                src: x,
                dst: y,
                rights: tg_graph::Rights::ALL,
            },
        ),
        KnowEvidence::Chain {
            initial,
            subjects,
            links,
            terminal,
        } => {
            let mut parts = Vec::new();
            if let Some(sp) = initial {
                parts.push(format!(
                    "initial span {} to {}",
                    format_word(&sp.word),
                    cx.name(sp.subject)
                ));
            }
            parts.push(format!(
                "chain {}",
                subjects
                    .iter()
                    .map(|s| cx.name(*s).to_string())
                    .collect::<Vec<_>>()
                    .join(" => ")
            ));
            for link in links {
                parts.push(render_link(cx, link));
            }
            if let Some(sp) = terminal {
                parts.push(format!(
                    "terminal span {} from {}",
                    format_word(&sp.word),
                    cx.name(sp.subject)
                ));
            }
            let fix = if let Some(link) = links.first() {
                quarantine_path_edge(cx.graph, link.path[0], link.path[1])
            } else if let Some(sp) = initial.as_ref().or(terminal.as_ref()) {
                quarantine_path_edge(cx.graph, sp.path[0], sp.path[1])
            } else {
                // A one-subject chain with null spans degenerates to x == y.
                unreachable!("chain evidence joins distinct vertices")
            };
            (parts.join("; "), fix)
        }
    };
    let (fa, fb) = fix.edge();
    let label = match fix {
        FixIt::QuarantineEdge { .. } => {
            format!("quarantine edge {} -> {}", cx.name(fa), cx.name(fb))
        }
        FixIt::StripExplicit { rights, .. } => {
            format!(
                "strip `{rights}` from edge {} -> {}",
                cx.name(fa),
                cx.name(fb)
            )
        }
        FixIt::StripImplicit { rights, .. } => format!(
            "strip implicit `{rights}` from edge {} -> {}",
            cx.name(fa),
            cx.name(fb)
        ),
    };
    Diagnostic::new(
        "TG005",
        Severity::Error,
        format!(
            "hierarchy inversion: `{}` (derived level {}) can come to know `{}` (derived level {}) above it",
            cx.name(x),
            cx.rw.level_of(x).expect("checked"),
            cx.name(y),
            cx.rw.level_of(y).expect("checked"),
        ),
        LabeledSpan::new(
            cx.edge_span(fa, fb),
            format!("inversion channel uses edge `{} -> {}`", cx.name(fa), cx.name(fb)),
        ),
    )
    .with_secondary(LabeledSpan::new(
        cx.vertex_span(x),
        format!("`{}` comes to know", cx.name(x)),
    ))
    .with_secondary(LabeledSpan::new(
        cx.vertex_span(y),
        format!("`{}` leaks", cx.name(y)),
    ))
    .with_witness(witness)
    .with_fix(Fix::new(fix, label))
}

/// The pass is skipped on graphs larger than this: `can_steal` is decided
/// per pair, and theft advisories on huge graphs drown the signal.
const THEFT_VERTEX_CAP: usize = 64;

/// TG006 — theft exposure: `can_steal(r, x, y)` holds, so `x` can obtain
/// an explicit `r` right to `y` although no owner of that right grants it
/// (Snyder's theft predicate, §2). Advisory: theft needs no cooperation
/// from the owners, only from the thief's accomplices.
pub struct TheftExposure;

impl Lint for TheftExposure {
    fn rule(&self) -> &'static RuleInfo {
        rule("TG006").unwrap()
    }

    fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        if cx.graph.vertex_count() > THEFT_VERTEX_CAP {
            return Vec::new();
        }
        let subjects: Vec<VertexId> = cx.graph.subjects().collect();
        let mut out = Vec::new();
        for y in cx.graph.vertex_ids() {
            let thieves: Vec<VertexId> = subjects
                .iter()
                .copied()
                .filter(|&x| x != y && can_steal(cx.graph, Right::Read, x, y))
                .collect();
            if thieves.is_empty() {
                continue;
            }
            let shown: Vec<String> = thieves
                .iter()
                .take(3)
                .map(|&t| format!("`{}`", cx.name(t)))
                .collect();
            let suffix = if thieves.len() > 3 {
                format!(" and {} more", thieves.len() - 3)
            } else {
                String::new()
            };
            // Point at the edge the right would be stolen from: the first
            // explicit r edge into y.
            let owner_edge = cx
                .graph
                .edges()
                .find(|e| e.dst == y && e.rights.explicit.contains(Right::Read));
            let primary = match &owner_edge {
                Some(e) => LabeledSpan::new(
                    cx.edge_span(e.src, e.dst),
                    format!("`{}` holds `r` to `{}`", cx.name(e.src), cx.name(y)),
                ),
                None => {
                    LabeledSpan::new(cx.vertex_span(y), format!("`{}` declared here", cx.name(y)))
                }
            };
            out.push(
                Diagnostic::new(
                    "TG006",
                    Severity::Warn,
                    format!(
                        "theft exposure: `r` to `{}` can be stolen by {}{suffix}",
                        cx.name(y),
                        shown.join(", "),
                    ),
                    primary,
                )
                .with_witness(format!(
                    "can_steal(r, {}, {})",
                    cx.name(thieves[0]),
                    cx.name(y)
                )),
            );
        }
        out
    }
}

/// TG007 — the Section 5 provisos assume every vertex carries a level;
/// an unassigned vertex is invisible to the hierarchy checks and can
/// launder flows between levels.
pub struct UnassignedVertices;

impl Lint for UnassignedVertices {
    fn rule(&self) -> &'static RuleInfo {
        rule("TG007").unwrap()
    }

    fn needs_policy(&self) -> bool {
        true
    }

    fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        let levels = cx.levels.expect("policy-gated pass");
        cx.graph
            .vertex_ids()
            .filter(|&v| levels.level_of(v).is_none())
            .map(|v| {
                Diagnostic::new(
                    "TG007",
                    Severity::Warn,
                    format!("the policy assigns no level to `{}`", cx.name(v)),
                    LabeledSpan::new(cx.vertex_span(v), format!("`{}` declared here", cx.name(v))),
                )
            })
            .collect()
    }
}

/// The flow-closure passes are skipped on graphs larger than this: every
/// flagged pair synthesizes and replays a rules derivation, which is
/// per-pair work on top of the shared closure.
const CONSPIRACY_VERTEX_CAP: usize = 256;

/// Synthesizes a derivation witnessing `can_know(x, y)` and replays it
/// through `tg_rules`, returning `true` only when the replayed graph
/// actually carries the claimed implicit edge. The flow-closure passes
/// refuse to report any flow that fails this gate: the analysis can never
/// claim a flow the rule system cannot derive.
fn replays_through_rules(graph: &ProtectionGraph, x: VertexId, y: VertexId) -> bool {
    let Ok(derivation) = know_witness(graph, x, y) else {
        return false;
    };
    let Ok(done) = derivation.replayed(graph) else {
        return false;
    };
    x == y || know_edge_exists(&done, x, y)
}

/// TG009 — conspiracy-reachable downward flow: the whole-graph flow
/// closure (Theorem 5.5) shows `x` can come to know `y` although the
/// policy does not let `x` dominate `y`, and the flow exists *only*
/// through a cooperating subject chain (Theorem 3.2). The witness is the
/// minimum conspirator set with its typed bridge word; every report is
/// gated on a successful rules replay.
pub struct ConspiracyFlow;

impl Lint for ConspiracyFlow {
    fn rule(&self) -> &'static RuleInfo {
        rule("TG009").unwrap()
    }

    fn needs_policy(&self) -> bool {
        true
    }

    fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        let levels = cx.levels.expect("policy-gated pass");
        if cx.graph.vertex_count() > CONSPIRACY_VERTEX_CAP {
            return Vec::new();
        }
        let mut out = Vec::new();
        for x in cx.graph.vertex_ids() {
            let Some(lx) = levels.level_of(x) else {
                continue;
            };
            for y in cx.graph.vertex_ids() {
                if x == y {
                    continue;
                }
                let Some(ly) = levels.level_of(y) else {
                    continue;
                };
                // Reading down is what the policy authorizes; a flow the
                // knower dominates is not a finding.
                if levels.dominates(lx, ly) {
                    continue;
                }
                // Only chain-mediated flows: a flow that already rides an
                // rw-path needs no conspiracy and is TG004/TG005 ground.
                if !cx.closure.chain_only(x, y) {
                    continue;
                }
                let Some(conspiracy) = min_flow_conspirators(cx.graph, x, y) else {
                    continue;
                };
                if !replays_through_rules(cx.graph, x, y) {
                    continue;
                }
                let names: Vec<String> = conspiracy
                    .subjects
                    .iter()
                    .map(|&s| format!("`{}`", cx.name(s)))
                    .collect();
                out.push(
                    Diagnostic::new(
                        "TG009",
                        Severity::Warn,
                        format!(
                            "conspiracy flow: `{}` (level {}) can come to know `{}` (level {}) with {} conspirator{}",
                            cx.name(x),
                            levels.name(lx),
                            cx.name(y),
                            levels.name(ly),
                            conspiracy.subjects.len(),
                            if conspiracy.subjects.len() == 1 { "" } else { "s" },
                        ),
                        LabeledSpan::new(
                            cx.vertex_span(x),
                            format!("`{}` comes to know", cx.name(x)),
                        ),
                    )
                    .with_secondary(LabeledSpan::new(
                        cx.vertex_span(y),
                        format!("`{}` leaks", cx.name(y)),
                    ))
                    .with_witness(format!(
                        "conspirators {}; bridge word {}",
                        names.join(", "),
                        conspiracy.bridge_word()
                    )),
                );
            }
        }
        out
    }
}

/// TG010 — rights laundering: a subject `s` legitimately reads `y` (the
/// grant runs down the order), but that read is the *sole conduit*
/// through which some subject the policy does not authorize comes to
/// know `y` — `s` relays what it reads, in the style of a trojan relay.
/// Detected by recomputing the flow closure with the single `r` right
/// stripped and comparing verdicts; reports are replay-gated like TG009.
pub struct RightsLaundering;

impl Lint for RightsLaundering {
    fn rule(&self) -> &'static RuleInfo {
        rule("TG010").unwrap()
    }

    fn needs_policy(&self) -> bool {
        true
    }

    fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        let levels = cx.levels.expect("policy-gated pass");
        if cx.graph.vertex_count() > CONSPIRACY_VERTEX_CAP {
            return Vec::new();
        }
        let subjects: Vec<VertexId> = cx.graph.subjects().collect();
        let mut out = Vec::new();
        for edge in cx.graph.edges() {
            if !edge.rights.explicit.contains(Right::Read) {
                continue;
            }
            let (s, y) = (edge.src, edge.dst);
            if !cx.graph.is_subject(s) {
                continue;
            }
            let (Some(ls), Some(ly)) = (levels.level_of(s), levels.level_of(y)) else {
                continue;
            };
            // The conduit itself must be authorized: laundering is a
            // *legitimate* grant abused, not a read-up (that is TG001).
            if !levels.dominates(ls, ly) {
                continue;
            }
            let candidates: Vec<VertexId> = subjects
                .iter()
                .copied()
                .filter(|&c| {
                    c != s
                        && c != y
                        && levels
                            .level_of(c)
                            .is_some_and(|lc| !levels.dominates(lc, ly))
                        && cx.closure.can_know(c, y)
                })
                .collect();
            if candidates.is_empty() {
                continue;
            }
            // Strip the one right and recompute: survivors of the cut are
            // reachable some other way and not laundered through s.
            let mut without = cx.graph.clone();
            without
                .remove_explicit_rights(s, y, tg_graph::Rights::R)
                .expect("the edge was just enumerated");
            let closure_without = tg_flow::FlowClosure::compute(&without);
            let laundered: Vec<VertexId> = candidates
                .into_iter()
                .filter(|&c| !closure_without.can_know(c, y))
                .filter(|&c| replays_through_rules(cx.graph, c, y))
                .collect();
            if laundered.is_empty() {
                continue;
            }
            let shown: Vec<String> = laundered
                .iter()
                .take(3)
                .map(|&c| format!("`{}`", cx.name(c)))
                .collect();
            let suffix = if laundered.len() > 3 {
                format!(" and {} more", laundered.len() - 3)
            } else {
                String::new()
            };
            out.push(
                Diagnostic::new(
                    "TG010",
                    Severity::Warn,
                    format!(
                        "rights laundering: `{}`'s read of `{}` is the sole conduit through which {}{suffix} can come to know `{}`",
                        cx.name(s),
                        cx.name(y),
                        shown.join(", "),
                        cx.name(y),
                    ),
                    LabeledSpan::new(
                        cx.edge_span(s, y),
                        format!("`{}` reads `{}` here", cx.name(s), cx.name(y)),
                    ),
                )
                .with_secondary(LabeledSpan::new(
                    cx.vertex_span(laundered[0]),
                    format!("`{}` is not cleared for `{}`", cx.name(laundered[0]), cx.name(y)),
                ))
                .with_witness(format!(
                    "can_know({}, {}) holds, and fails once `r` is stripped from {} -> {}",
                    cx.name(laundered[0]),
                    cx.name(y),
                    cx.name(s),
                    cx.name(y),
                ))
                .with_fix(Fix::new(
                    FixIt::StripExplicit {
                        src: s,
                        dst: y,
                        rights: tg_graph::Rights::R,
                    },
                    format!("strip `r` from edge {} -> {}", cx.name(s), cx.name(y)),
                )),
            );
        }
        out
    }
}

/// TG011 — statically refused trace step: when the context carries a
/// planned mutation trace (`tgq plan`), this pass replays it against a
/// scratch reference monitor (Corollary 5.7) *without touching the real
/// graph* and reports the first step the monitor would refuse.
pub struct RefusedTraceStep;

impl Lint for RefusedTraceStep {
    fn rule(&self) -> &'static RuleInfo {
        rule("TG011").unwrap()
    }

    fn needs_policy(&self) -> bool {
        true
    }

    fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        let levels = cx.levels.expect("policy-gated pass");
        let Some(trace) = cx.trace else {
            return Vec::new();
        };
        let mut monitor = Monitor::new(
            cx.graph.clone(),
            levels.clone(),
            Box::new(CombinedRestriction),
        );
        for (i, step) in trace.steps.iter().enumerate() {
            let Err(err) = monitor.try_apply(step) else {
                continue;
            };
            tg_obs::add(tg_obs::Counter::PlanRefusals, 1);
            let actor = step.actor();
            // The actor may be a vertex the trace itself created; only
            // vertices of the original graph have names and spans.
            let primary = if actor.index() < cx.graph.vertex_count() {
                LabeledSpan::new(
                    cx.vertex_span(actor),
                    format!("`{}` acts here", cx.name(actor)),
                )
            } else {
                LabeledSpan::new(
                    None,
                    "the actor is created earlier in the trace".to_string(),
                )
            };
            return vec![Diagnostic::new(
                "TG011",
                Severity::Error,
                format!(
                    "the monitor refuses step {} of the trace: {step} ({err})",
                    i + 1
                ),
                primary,
            )
            .with_witness(format!(
                "{i} accepted step{} precede the refusal",
                if i == 1 { "" } else { "s" }
            ))];
        }
        Vec::new()
    }
}

/// TG008 — a vertex with no edges at all holds no authority and no
/// information channel; it is either dead weight or a sign the graph text
/// dropped its edges.
pub struct IsolatedVertices;

impl Lint for IsolatedVertices {
    fn rule(&self) -> &'static RuleInfo {
        rule("TG008").unwrap()
    }

    fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut connected = vec![false; cx.graph.vertex_count()];
        for edge in cx.graph.edges() {
            connected[edge.src.index()] = true;
            connected[edge.dst.index()] = true;
        }
        cx.graph
            .vertex_ids()
            .filter(|v| !connected[v.index()])
            .map(|v| {
                Diagnostic::new(
                    "TG008",
                    Severity::Info,
                    format!("`{}` is isolated: it participates in no edge", cx.name(v)),
                    LabeledSpan::new(cx.vertex_span(v), format!("`{}` declared here", cx.name(v))),
                )
            })
            .collect()
    }
}
