//! `tg-lint`: a multi-pass static analyzer for Take-Grant protection
//! graphs.
//!
//! The analyzer runs a [`Registry`] of named lints over a parsed
//! [`ProtectionGraph`] — plus, optionally, a policy
//! ([`LevelAssignment`]) and a [`SourceMap`] from
//! [`parse_graph_with_spans`](tg_graph::parse_graph_with_spans) — and
//! produces structured [`Diagnostic`]s: each has a stable code (`TG001`…),
//! a [`Severity`], a message, source spans into the graph's text file, an
//! optional witness (the offending rw-path or bridge), and an optional
//! machine-applicable [`Fix`].
//!
//! Every lint is grounded in a result of the paper (Bishop, "Hierarchical
//! Take-Grant Protection Systems", SOSP 1981); the [`RULES`] table records
//! the mapping. The fix engine ([`apply_fixes`]) applies all
//! error-severity fix-its and re-lints to a fixpoint; because every fix
//! removes at least one right from some label, the loop terminates, and
//! because `TG005` mirrors [`tg_hierarchy::secure_derived`] exactly, a
//! lint-clean graph is secure in the derived sense.
//!
//! # Examples
//!
//! ```
//! use tg_graph::{parse_graph_with_spans, Severity};
//! use tg_lint::{LintContext, Registry};
//!
//! let text = "subject a\nsubject b\nedge a -> b : r\nedge b -> a : r\n";
//! let (graph, map) = parse_graph_with_spans(text).unwrap();
//! let registry = Registry::with_default_lints();
//! let diags = registry.run(&LintContext::new(&graph, None, Some(&map)));
//! // Mutual reads merge `a` and `b` into one rw-level: nothing to invert.
//! assert!(diags.iter().all(|d| d.severity < Severity::Error));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod passes;
pub mod render;

use std::collections::HashSet;

use tg_analysis::FlowGraph;
use tg_graph::{ProtectionGraph, Rights, SourceMap, Span, VertexId};
use tg_hierarchy::{rw_levels, CombinedRestriction, DerivedLevels, LevelAssignment};
use tg_inc::IncEngine;

pub use tg_graph::diag::{Diagnostic, Fix, FixIt, LabeledSpan, Severity};

/// One entry of the static rule table: a lint code, its kebab-case name,
/// a one-line summary, and the paper result it is grounded in.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable code, e.g. `"TG001"`.
    pub code: &'static str,
    /// Kebab-case rule name, e.g. `"read-up"`.
    pub name: &'static str,
    /// One-line description (used for SARIF `rules`).
    pub summary: &'static str,
    /// The paper result the lint checks, e.g. `"Theorem 5.5(a)"`.
    pub paper: &'static str,
}

/// The rule table: every code the analyzer can emit, with its grounding.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "TG000",
        name: "restricted-edge",
        summary: "an explicit edge violates a custom restriction's invariant",
        paper: "Corollary 5.6",
    },
    RuleInfo {
        code: "TG001",
        name: "read-up",
        summary: "an explicit `r` edge reads a vertex its source does not dominate",
        paper: "Theorem 5.5(a)",
    },
    RuleInfo {
        code: "TG002",
        name: "write-down",
        summary: "an explicit `w` edge writes a vertex that does not dominate its source",
        paper: "Theorem 5.5(b)",
    },
    RuleInfo {
        code: "TG003",
        name: "cross-level-link",
        summary: "a bridge or connection joins subjects against the dominance order",
        paper: "Theorem 5.2",
    },
    RuleInfo {
        code: "TG004",
        name: "order-collapse",
        summary: "de facto flow merges distinct assigned levels into one rw-level, so dominance is not a strict partial order",
        paper: "Proposition 4.4",
    },
    RuleInfo {
        code: "TG005",
        name: "hierarchy-inversion",
        summary: "the de jure rules let a lower vertex of the derived hierarchy come to know a higher one",
        paper: "Theorem 5.2 / secure_derived",
    },
    RuleInfo {
        code: "TG006",
        name: "theft-exposure",
        summary: "a read right can be stolen without any owner granting it",
        paper: "can_steal (Snyder, §2)",
    },
    RuleInfo {
        code: "TG007",
        name: "unassigned-vertex",
        summary: "the policy assigns this vertex no level, so the hierarchy checks cannot see it",
        paper: "Section 5 provisos",
    },
    RuleInfo {
        code: "TG008",
        name: "isolated-vertex",
        summary: "the vertex participates in no edge, explicit or implicit",
        paper: "Section 1 (protection graph)",
    },
    RuleInfo {
        code: "TG009",
        name: "conspiracy-flow",
        summary: "a subject-chain conspiracy lets a vertex come to know one the policy places above it",
        paper: "Theorem 5.5 / Theorem 3.2",
    },
    RuleInfo {
        code: "TG010",
        name: "rights-laundering",
        summary: "a read right granted down the order is the sole conduit through which an unauthorized subject learns the target",
        paper: "Theorem 5.5 (de facto closure)",
    },
    RuleInfo {
        code: "TG011",
        name: "refused-trace-step",
        summary: "a planned mutation trace contains a step the reference monitor would refuse",
        paper: "Corollary 5.7",
    },
];

/// Looks up a rule by code.
pub fn rule(code: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.code == code)
}

/// Everything a lint pass may consult: the graph, the optional policy,
/// the optional source map, and analyses shared across passes (computed
/// once per run).
pub struct LintContext<'a> {
    /// The graph under analysis.
    pub graph: &'a ProtectionGraph,
    /// The policy (level assignment), when linting against one.
    pub levels: Option<&'a LevelAssignment>,
    /// Source locations, when the graph was parsed from text.
    pub srcmap: Option<&'a SourceMap>,
    /// The derived rw-levels of the graph (§4).
    pub rw: DerivedLevels,
    /// The one-step de facto flow structure.
    pub flow: FlowGraph,
    /// The whole-graph flow closure (Theorem 5.5): the full `can_know`
    /// relation, shared by the flow-aware passes.
    pub closure: tg_flow::FlowClosure,
    /// A planned mutation trace to vet statically (`tgq plan`), when one
    /// was supplied. Only [`passes::RefusedTraceStep`] consumes it.
    pub trace: Option<&'a tg_rules::Derivation>,
}

impl<'a> LintContext<'a> {
    /// Builds a context, computing the shared analyses.
    pub fn new(
        graph: &'a ProtectionGraph,
        levels: Option<&'a LevelAssignment>,
        srcmap: Option<&'a SourceMap>,
    ) -> LintContext<'a> {
        let closure = {
            let _span = tg_obs::span(tg_obs::SpanKind::FlowClosure);
            tg_flow::FlowClosure::compute(graph)
        };
        tg_obs::add(tg_obs::Counter::FlowClosures, 1);
        LintContext {
            graph,
            levels,
            srcmap,
            rw: rw_levels(graph),
            flow: FlowGraph::compute(graph),
            closure,
            trace: None,
        }
    }

    /// Attaches a planned mutation trace for static vetting
    /// ([`passes::RefusedTraceStep`] / `tgq plan`).
    pub fn with_trace(mut self, trace: &'a tg_rules::Derivation) -> LintContext<'a> {
        self.trace = Some(trace);
        self
    }

    /// The vertex's display name.
    pub fn name(&self, v: VertexId) -> &str {
        &self.graph.vertex(v).name
    }

    /// The declaration span of a vertex, if recorded.
    pub fn vertex_span(&self, v: VertexId) -> Option<Span> {
        self.srcmap.and_then(|m| m.vertex_span(v))
    }

    /// The declaring directive span of an edge, if recorded.
    pub fn edge_span(&self, src: VertexId, dst: VertexId) -> Option<Span> {
        self.srcmap.and_then(|m| m.edge_span(src, dst))
    }
}

/// One lint pass.
///
/// Passes must be `Sync`: the registry's parallel driver
/// ([`Registry::run_parallel`]) shares every registered pass across
/// worker threads. Passes are stateless decision procedures over the
/// [`LintContext`], so this costs implementations nothing.
pub trait Lint: Sync {
    /// The rule this pass emits (its entry in [`RULES`]); passes that emit
    /// several codes return the lowest.
    fn rule(&self) -> &'static RuleInfo;

    /// Whether the pass is meaningless without a policy (it is skipped
    /// when the context has no [`LevelAssignment`]).
    fn needs_policy(&self) -> bool {
        false
    }

    /// Runs the pass.
    fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic>;
}

/// An ordered collection of lint passes.
pub struct Registry {
    lints: Vec<Box<dyn Lint>>,
}

impl Registry {
    /// An empty registry.
    pub fn empty() -> Registry {
        Registry { lints: Vec::new() }
    }

    /// The default registry: all paper-grounded passes.
    pub fn with_default_lints() -> Registry {
        let mut reg = Registry::empty();
        reg.register(Box::new(passes::EdgeInvariants));
        reg.register(Box::new(passes::CrossLevelLinks));
        reg.register(Box::new(passes::OrderCollapse));
        reg.register(Box::new(passes::HierarchyInversion));
        reg.register(Box::new(passes::TheftExposure));
        reg.register(Box::new(passes::UnassignedVertices));
        reg.register(Box::new(passes::IsolatedVertices));
        reg.register(Box::new(passes::ConspiracyFlow));
        reg.register(Box::new(passes::RightsLaundering));
        reg.register(Box::new(passes::RefusedTraceStep));
        reg
    }

    /// Adds a pass.
    pub fn register(&mut self, lint: Box<dyn Lint>) {
        self.lints.push(lint);
    }

    /// The registered passes.
    pub fn lints(&self) -> impl Iterator<Item = &dyn Lint> {
        self.lints.iter().map(|l| l.as_ref())
    }

    /// Runs every applicable pass and returns the diagnostics sorted by
    /// severity (errors first), code, then source location, with the
    /// message as a final tie-break — a *total* canonical order, so the
    /// output is byte-identical to [`Registry::run_parallel`] at any job
    /// count.
    pub fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        let _span = tg_obs::span(tg_obs::SpanKind::LintRun);
        let mut out = Vec::new();
        for lint in &self.lints {
            if lint.needs_policy() && cx.levels.is_none() {
                continue;
            }
            let _pass = tg_obs::span(pass_span(lint.rule().code));
            let diags = lint.run(cx);
            tg_obs::add(tg_obs::Counter::LintDiagnostics, diags.len() as u64);
            out.extend(diags);
        }
        out.sort_by(Diagnostic::canonical_cmp);
        out
    }

    /// Runs the applicable passes concurrently across `pool` and merges
    /// their diagnostics into the same canonical order [`Registry::run`]
    /// produces. The passes are independent analyses over one immutable
    /// [`LintContext`], so the only coordination point is the merge —
    /// per-pass diagnostics are concatenated in registration order
    /// (the pool returns results in item order) and then stable-sorted
    /// with the same total comparator, making the output byte-identical
    /// to the sequential driver.
    ///
    /// Per-pass timing spans are skipped here (span event capture is
    /// thread-local in `tg_obs`); the whole run is timed under
    /// `lint.run` and the fan-out reports `par.shards`/`par.steals`.
    pub fn run_parallel(&self, cx: &LintContext<'_>, pool: &tg_par::Pool) -> Vec<Diagnostic> {
        let _span = tg_obs::span(tg_obs::SpanKind::LintRun);
        let applicable: Vec<&dyn Lint> = self
            .lints
            .iter()
            .map(|l| l.as_ref())
            .filter(|l| !(l.needs_policy() && cx.levels.is_none()))
            .collect();
        tg_obs::add(tg_obs::Counter::ParShards, applicable.len() as u64);
        let (per_pass, steals) = pool.run(&applicable, |lint| lint.run(cx));
        tg_obs::add(tg_obs::Counter::ParSteals, steals);
        for diags in &per_pass {
            tg_obs::add(tg_obs::Counter::LintDiagnostics, diags.len() as u64);
        }
        let _merge = tg_obs::span(tg_obs::SpanKind::ParMerge);
        let mut out: Vec<Diagnostic> = per_pass.into_iter().flatten().collect();
        out.sort_by(Diagnostic::canonical_cmp);
        out
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::with_default_lints()
    }
}

/// The per-pass timing span for a pass whose lowest code is `code`
/// (passes registered outside the default set time under
/// [`tg_obs::SpanKind::LintOtherPass`]). Public so the observability
/// drift test can assert every registry code has a dedicated span.
pub fn pass_span(code: &str) -> tg_obs::SpanKind {
    match code {
        "TG000" | "TG001" | "TG002" => tg_obs::SpanKind::LintEdgeInvariants,
        "TG003" => tg_obs::SpanKind::LintCrossLevelLinks,
        "TG004" => tg_obs::SpanKind::LintOrderCollapse,
        "TG005" => tg_obs::SpanKind::LintHierarchyInversion,
        "TG006" => tg_obs::SpanKind::LintTheftExposure,
        "TG007" => tg_obs::SpanKind::LintUnassignedVertices,
        "TG008" => tg_obs::SpanKind::LintIsolatedVertices,
        "TG009" => tg_obs::SpanKind::LintConspiracyFlow,
        "TG010" => tg_obs::SpanKind::LintRightsLaundering,
        "TG011" => tg_obs::SpanKind::LintRefusedTraceStep,
        _ => tg_obs::SpanKind::LintOtherPass,
    }
}

/// Promotes diagnostics matched by a deny list to [`Severity::Error`].
///
/// Each entry is a code (`"TG006"`), a severity name (`"warn"` promotes
/// every warning, `"info"` every advisory), or `"all"`.
pub fn apply_deny(diags: &mut [Diagnostic], deny: &[String]) {
    for diag in diags {
        let hit = deny.iter().any(|d| {
            d == "all"
                || d.eq_ignore_ascii_case(diag.code)
                || Severity::parse(d) == Some(diag.severity)
        });
        if hit && diag.severity < Severity::Error {
            diag.severity = Severity::Error;
        }
    }
}

/// What [`apply_fixes`] did.
#[derive(Clone, Debug)]
pub struct FixReport {
    /// Fix-its that removed something from the graph.
    pub applied: usize,
    /// Lint/fix rounds run (1 means the graph was already clean or one
    /// round sufficed).
    pub rounds: usize,
    /// Diagnostics still present after the fixpoint (never error-severity
    /// with an applicable fix).
    pub remaining: Vec<Diagnostic>,
    /// Independent certification of the fix trail: the applied fixes,
    /// replayed on an incremental engine seeded with the *pre-fix* graph,
    /// drove the edge invariants (TG000–TG002) clean. `None` when no
    /// policy was supplied (there are no edge invariants without one).
    pub certified: Option<bool>,
}

/// Replays a fix trail on an [`IncEngine`] seeded with `graph` and
/// returns the maintained edge-invariant verdict after the last fix.
///
/// This is the lint analogue of the monitor's quarantine cross-check:
/// each strip costs one Corollary 5.7 recheck of the touched edge
/// instead of the Corollary 5.6 whole-graph rescan per round that
/// [`apply_fixes`] already pays, so the certificate is independent of
/// the fixpoint loop's own re-lints.
pub fn certify_edge_fixes(
    graph: ProtectionGraph,
    levels: &LevelAssignment,
    fixes: &[FixIt],
) -> bool {
    let mut engine = IncEngine::new(graph, levels.clone(), Box::new(CombinedRestriction));
    for fix in fixes {
        match *fix {
            FixIt::StripExplicit { src, dst, rights } => {
                let _ = engine.remove_edge(src, dst, rights);
            }
            FixIt::StripImplicit { src, dst, rights } => {
                let _ = engine.remove_implicit(src, dst, rights);
            }
            FixIt::QuarantineEdge { src, dst } => {
                let _ = engine.remove_edge(src, dst, Rights::ALL);
                let _ = engine.remove_implicit(src, dst, Rights::ALL);
            }
        }
    }
    engine.audit_clean()
}

/// Applies every error-severity fix-it and re-lints until a fixpoint:
/// no error diagnostics remain, or no fix makes progress.
///
/// Termination: each applied fix strictly removes rights from some edge
/// label and no lint fix adds rights, so the total right count strictly
/// decreases every productive round.
pub fn apply_fixes(
    registry: &Registry,
    graph: &mut ProtectionGraph,
    levels: Option<&LevelAssignment>,
) -> FixReport {
    let _span = tg_obs::span(tg_obs::SpanKind::LintFix);
    let seed = levels.map(|_| graph.clone());
    let mut trail: Vec<FixIt> = Vec::new();
    let mut applied = 0;
    let mut rounds = 0;
    let remaining = loop {
        rounds += 1;
        let diags = registry.run(&LintContext::new(graph, levels, None));
        let mut seen = HashSet::new();
        let fixes: Vec<FixIt> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .filter_map(|d| d.fix.as_ref().map(|f| f.edit))
            .filter(|f| seen.insert(*f))
            .collect();
        if fixes.is_empty() {
            break diags;
        }
        let mut progressed = false;
        for fix in fixes {
            let removed = fix.apply(graph).expect("lint fixes target live vertices");
            progressed |= removed;
            applied += usize::from(removed);
            if removed {
                tg_obs::add(tg_obs::Counter::LintFixesApplied, 1);
                trail.push(fix);
            }
        }
        if !progressed {
            break diags;
        }
    };
    let certified =
        seed.map(|pre| certify_edge_fixes(pre, levels.expect("seed implies policy"), &trail));
    FixReport {
        applied,
        rounds,
        remaining,
        certified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::Rights;

    #[test]
    fn rule_table_is_sorted_and_unique() {
        for pair in RULES.windows(2) {
            assert!(pair[0].code < pair[1].code);
        }
        assert_eq!(rule("TG001").unwrap().name, "read-up");
        assert!(rule("TG999").is_none());
    }

    #[test]
    fn deny_list_promotes_by_code_and_severity() {
        let mk = |code, sev| Diagnostic::new(code, sev, "m", LabeledSpan::new(None, "p"));
        let mut diags = vec![
            mk("TG006", Severity::Warn),
            mk("TG008", Severity::Info),
            mk("TG007", Severity::Warn),
        ];
        apply_deny(&mut diags, &["TG006".to_string()]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[2].severity, Severity::Warn);
        apply_deny(&mut diags, &["warn".to_string()]);
        assert_eq!(diags[2].severity, Severity::Error);
        assert_eq!(diags[1].severity, Severity::Info);
        apply_deny(&mut diags, &["all".to_string()]);
        assert_eq!(diags[1].severity, Severity::Error);
    }

    #[test]
    fn fix_engine_reaches_a_fixpoint_on_an_inverted_pair() {
        // hi's information leaks down to lo through a shared buffer.
        let mut g = ProtectionGraph::new();
        let hi = g.add_subject("hi");
        let lo = g.add_subject("lo");
        let buf = g.add_object("buf");
        g.add_edge(hi, buf, Rights::W).unwrap();
        g.add_edge(lo, buf, Rights::R).unwrap();
        // And lo can also take from hi: a de jure inversion channel.
        g.add_edge(lo, hi, Rights::T).unwrap();

        let registry = Registry::with_default_lints();
        let report = apply_fixes(&registry, &mut g, None);
        assert!(report
            .remaining
            .iter()
            .all(|d| d.severity < Severity::Error));
        // Without a policy there are no edge invariants to certify.
        assert_eq!(report.certified, None);
        assert!(tg_hierarchy::secure_derived(&g).is_ok());
    }

    #[test]
    fn fix_trail_is_certified_incrementally_against_a_policy() {
        let mut g = ProtectionGraph::new();
        let hi = g.add_subject("hi");
        let lo = g.add_subject("lo");
        let mut levels = LevelAssignment::linear(&["low", "high"]);
        levels.assign(hi, 1).unwrap();
        levels.assign(lo, 0).unwrap();
        // A read-up edge: TG001, error severity, strip fix.
        g.add_edge(lo, hi, Rights::R).unwrap();

        // The replayed trail must land on the same clean verdict the
        // fixpoint loop reports — certified independently, one Cor 5.7
        // edge recheck per strip.
        let registry = Registry::with_default_lints();
        let report = apply_fixes(&registry, &mut g, Some(&levels));
        assert!(report.applied >= 1);
        assert_eq!(report.certified, Some(true));

        // And a trail that fixes nothing on a dirty graph certifies dirty.
        let mut dirty = ProtectionGraph::new();
        let a = dirty.add_subject("a");
        let b = dirty.add_subject("b");
        dirty.add_edge(a, b, Rights::R).unwrap();
        let mut pol = LevelAssignment::linear(&["low", "high"]);
        pol.assign(a, 0).unwrap();
        pol.assign(b, 1).unwrap();
        assert!(!certify_edge_fixes(dirty, &pol, &[]));
    }
}
