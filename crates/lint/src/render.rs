//! Diagnostic renderers: rustc-style text, JSON, and SARIF 2.1.0.
//!
//! All three are hand-rolled (the workspace is offline and carries no
//! serde); the JSON emitters escape strings per RFC 8259.

use core::fmt::Write as _;

use tg_graph::diag::{Diagnostic, LabeledSpan, Severity};
use tg_graph::Span;

use crate::{RuleInfo, RULES};

/// Counts diagnostics by severity: `(errors, warnings, infos)`.
pub fn tally(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut t = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Error => t.0 += 1,
            Severity::Warn => t.1 += 1,
            Severity::Info => t.2 += 1,
        }
    }
    t
}

// ---------------------------------------------------------------- text --

fn push_excerpt(out: &mut String, source: &str, span: Span, label: &str, gutter: usize) {
    let Some(line_text) = source.lines().nth(span.line - 1) else {
        return;
    };
    let _ = writeln!(out, "{:gutter$} |", "");
    let _ = writeln!(out, "{:>gutter$} | {}", span.line, line_text);
    let carets = "^".repeat(span.len.max(1));
    let _ = writeln!(
        out,
        "{:gutter$} | {:pad$}{carets} {label}",
        "",
        "",
        pad = span.col.saturating_sub(1),
    );
}

fn push_note(out: &mut String, path: &str, gutter: usize, kind: &str, s: &LabeledSpan) {
    match s.span {
        Some(sp) => {
            let _ = writeln!(out, "{:gutter$} = {kind}: {} [{path}:{sp}]", "", s.label);
        }
        None => {
            let _ = writeln!(out, "{:gutter$} = {kind}: {}", "", s.label);
        }
    }
}

/// Renders diagnostics the way rustc does: a header line, the source
/// excerpt with a caret underline (when `source` is given and the span is
/// known), secondary notes, the witness, and the suggested fix. Ends with
/// a one-line tally.
pub fn render_text(diags: &[Diagnostic], path: &str, source: Option<&str>, out: &mut String) {
    let gutter = diags
        .iter()
        .filter_map(|d| d.primary.span)
        .map(|s| s.line.to_string().len())
        .max()
        .unwrap_or(1);
    for diag in diags {
        let _ = writeln!(out, "{}[{}]: {}", diag.severity, diag.code, diag.message);
        if let Some(span) = diag.primary.span {
            let _ = writeln!(out, "{:gutter$}--> {path}:{span}", "");
            if let Some(src) = source {
                push_excerpt(out, src, span, &diag.primary.label, gutter);
            } else {
                push_note(out, path, gutter, "note", &diag.primary);
            }
        } else {
            let _ = writeln!(out, "{:gutter$}--> {path}", "");
            let _ = writeln!(out, "{:gutter$} = note: {}", "", diag.primary.label);
        }
        for sec in &diag.secondary {
            push_note(out, path, gutter, "note", sec);
        }
        if let Some(w) = &diag.witness {
            let _ = writeln!(out, "{:gutter$} = witness: {w}", "");
        }
        if let Some(fix) = &diag.fix {
            let _ = writeln!(out, "{:gutter$} = help: {}", "", fix.label);
        }
        out.push('\n');
    }
    let (e, w, i) = tally(diags);
    let _ = writeln!(out, "{e} error(s), {w} warning(s), {i} info(s)");
}

// ---------------------------------------------------------------- json --

/// Escapes a string for a JSON literal (RFC 8259 §7).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_span(span: Option<Span>) -> String {
    match span {
        Some(s) => format!(
            "{{\"line\":{},\"col\":{},\"len\":{}}}",
            s.line, s.col, s.len
        ),
        None => "null".to_string(),
    }
}

fn json_label(s: &LabeledSpan) -> String {
    format!(
        "{{\"span\":{},\"label\":\"{}\"}}",
        json_span(s.span),
        esc(&s.label)
    )
}

fn json_opt_str(s: Option<&str>) -> String {
    match s {
        Some(s) => format!("\"{}\"", esc(s)),
        None => "null".to_string(),
    }
}

/// Renders diagnostics as a single JSON object:
/// `{"file":…,"diagnostics":[…],"summary":{…}}`.
pub fn render_json(diags: &[Diagnostic], path: &str) -> String {
    let mut items = Vec::with_capacity(diags.len());
    for d in diags {
        let labels: Vec<String> = d.secondary.iter().map(json_label).collect();
        items.push(format!(
            "    {{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"primary\":{},\"secondary\":[{}],\"witness\":{},\"fix\":{}}}",
            d.code,
            d.severity,
            esc(&d.message),
            json_label(&d.primary),
            labels.join(","),
            json_opt_str(d.witness.as_deref()),
            json_opt_str(d.fix.as_ref().map(|f| f.label.as_str())),
        ));
    }
    let (e, w, i) = tally(diags);
    format!(
        "{{\n  \"file\": \"{}\",\n  \"diagnostics\": [\n{}\n  ],\n  \"summary\": {{\"error\": {e}, \"warn\": {w}, \"info\": {i}}}\n}}\n",
        esc(path),
        items.join(",\n"),
    )
}

// --------------------------------------------------------------- sarif --

fn sarif_level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warn => "warning",
        Severity::Info => "note",
    }
}

fn sarif_rule(r: &RuleInfo) -> String {
    format!(
        "          {{\"id\":\"{}\",\"name\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\"properties\":{{\"paper\":\"{}\"}}}}",
        r.code,
        r.name,
        esc(r.summary),
        esc(r.paper),
    )
}

fn sarif_result(d: &Diagnostic, path: &str) -> String {
    let rule_index = RULES
        .iter()
        .position(|r| r.code == d.code)
        .expect("every emitted code is in the rule table");
    let location = d.primary.span.map(|s| {
        format!(
            "{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{},\"startColumn\":{},\"endColumn\":{}}}}},\"message\":{{\"text\":\"{}\"}}}}",
            esc(path),
            s.line,
            s.col,
            s.col + s.len,
            esc(&d.primary.label),
        )
    });
    let mut props = Vec::new();
    if let Some(w) = &d.witness {
        props.push(format!("\"witness\":\"{}\"", esc(w)));
    }
    if let Some(f) = &d.fix {
        props.push(format!("\"fix\":\"{}\"", esc(&f.label)));
    }
    format!(
        "        {{\"ruleId\":\"{}\",\"ruleIndex\":{rule_index},\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\"locations\":[{}],\"properties\":{{{}}}}}",
        d.code,
        sarif_level(d.severity),
        esc(&d.message),
        location.unwrap_or_default(),
        props.join(","),
    )
}

/// Renders diagnostics as a SARIF 2.1.0 log with a single run whose rule
/// metadata is the full [`RULES`] table.
pub fn render_sarif(diags: &[Diagnostic], path: &str) -> String {
    let rules: Vec<String> = RULES.iter().map(sarif_rule).collect();
    let results: Vec<String> = diags.iter().map(|d| sarif_result(d, path)).collect();
    format!(
        concat!(
            "{{\n",
            "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n",
            "  \"version\": \"2.1.0\",\n",
            "  \"runs\": [\n",
            "    {{\n",
            "      \"tool\": {{\n",
            "        \"driver\": {{\n",
            "          \"name\": \"tg-lint\",\n",
            "          \"version\": \"0.1.0\",\n",
            "          \"informationUri\": \"https://example.org/take-grant\",\n",
            "          \"rules\": [\n{rules}\n          ]\n",
            "        }}\n",
            "      }},\n",
            "      \"results\": [\n{results}\n      ]\n",
            "    }}\n",
            "  ]\n",
            "}}\n",
        ),
        rules = rules.join(",\n"),
        results = if results.is_empty() {
            String::new()
        } else {
            results.join(",\n")
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::diag::LabeledSpan;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic::new(
            "TG001",
            Severity::Error,
            "read-up: explicit `r` edge",
            LabeledSpan::new(Some(Span::new(3, 1, 15)), "edge `a -> b` carries `r`"),
        )
        .with_witness("a \"quoted\" witness")]
    }

    #[test]
    fn text_renders_excerpt_and_tally() {
        let mut out = String::new();
        let source = "subject a\nsubject b\nedge a -> b : r\n";
        render_text(&sample(), "g.tg", Some(source), &mut out);
        assert!(out.contains("error[TG001]: read-up"));
        assert!(out.contains("--> g.tg:3:1"));
        assert!(out.contains("edge a -> b : r"));
        assert!(out.contains("^^^^^^^^^^^^^^^"));
        assert!(out.contains("1 error(s), 0 warning(s), 0 info(s)"));
    }

    #[test]
    fn json_escapes_and_tallies() {
        let json = render_json(&sample(), "g.tg");
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"summary\": {\"error\": 1, \"warn\": 0, \"info\": 0}"));
        assert!(json.contains("\"span\":{\"line\":3,\"col\":1,\"len\":15}"));
    }

    #[test]
    fn sarif_has_schema_rules_and_regions() {
        let sarif = render_sarif(&sample(), "g.tg");
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("sarif-2.1.0.json"));
        assert!(
            sarif.contains("\"id\":\"TG005\""),
            "full rule table present"
        );
        assert!(sarif.contains("\"startLine\":3"));
        assert!(sarif.contains("\"endColumn\":16"));
        let empty = render_sarif(&[], "g.tg");
        assert!(empty.contains("\"results\": [\n\n      ]"));
    }
}
