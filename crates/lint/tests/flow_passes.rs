//! Targeted tests for the flow-closure passes: TG009 (conspiracy flow),
//! TG010 (rights laundering) and TG011 (refused trace step).

use tg_graph::{ProtectionGraph, Rights, Severity, VertexId};
use tg_hierarchy::LevelAssignment;
use tg_lint::{LintContext, Registry};
use tg_rules::{DeJureRule, Derivation};

fn codes(diags: &[tg_lint::Diagnostic], code: &str) -> usize {
    diags.iter().filter(|d| d.code == code).count()
}

/// `a -t-> m -r-> y`: `a` can come to know `y` only by taking the read
/// right first — a chain flow with `a` as sole conspirator.
fn chain_graph() -> (ProtectionGraph, VertexId, VertexId, VertexId) {
    let mut g = ProtectionGraph::new();
    let a = g.add_subject("a");
    let m = g.add_object("m");
    let y = g.add_object("y");
    g.add_edge(a, m, Rights::T).unwrap();
    g.add_edge(m, y, Rights::R).unwrap();
    (g, a, m, y)
}

#[test]
fn tg009_fires_on_chain_only_downward_flow() {
    let (g, a, m, y) = chain_graph();
    let mut levels = LevelAssignment::linear(&["low", "high"]);
    levels.assign(a, 0).unwrap();
    levels.assign(m, 0).unwrap();
    levels.assign(y, 1).unwrap();
    let registry = Registry::with_default_lints();
    let diags = registry.run(&LintContext::new(&g, Some(&levels), None));
    let found: Vec<_> = diags.iter().filter(|d| d.code == "TG009").collect();
    assert_eq!(found.len(), 1, "one conspiracy flow: {diags:?}");
    let d = found[0];
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("`a`") && d.message.contains("`y`"));
    let witness = d.witness.as_deref().unwrap();
    assert!(witness.contains("conspirators `a`"), "witness: {witness}");
    assert!(witness.contains("bridge word"), "witness: {witness}");
}

#[test]
fn tg009_is_silent_when_the_knower_dominates() {
    let (g, a, m, y) = chain_graph();
    let mut levels = LevelAssignment::linear(&["low", "high"]);
    levels.assign(a, 1).unwrap();
    levels.assign(m, 0).unwrap();
    levels.assign(y, 0).unwrap();
    let registry = Registry::with_default_lints();
    let diags = registry.run(&LintContext::new(&g, Some(&levels), None));
    assert_eq!(
        codes(&diags, "TG009"),
        0,
        "read-down is authorized: {diags:?}"
    );
}

#[test]
fn tg009_is_silent_on_plain_de_facto_flow() {
    // `a -r-> y` flows without any conspiracy: TG001/TG005 territory.
    let mut g = ProtectionGraph::new();
    let a = g.add_subject("a");
    let y = g.add_object("y");
    g.add_edge(a, y, Rights::R).unwrap();
    let mut levels = LevelAssignment::linear(&["low", "high"]);
    levels.assign(a, 0).unwrap();
    levels.assign(y, 1).unwrap();
    let registry = Registry::with_default_lints();
    let diags = registry.run(&LintContext::new(&g, Some(&levels), None));
    assert_eq!(codes(&diags, "TG009"), 0, "{diags:?}");
    assert!(
        codes(&diags, "TG001") > 0,
        "the read-up is still caught: {diags:?}"
    );
}

#[test]
fn tg010_fires_on_a_trojan_relay() {
    // `server` legitimately reads `secret` (same level); `spy` below
    // reads the server and learns the secret only through that read.
    let mut g = ProtectionGraph::new();
    let server = g.add_subject("server");
    let spy = g.add_subject("spy");
    let secret = g.add_object("secret");
    g.add_edge(server, secret, Rights::R).unwrap();
    g.add_edge(spy, server, Rights::R).unwrap();
    let mut levels = LevelAssignment::linear(&["low", "high"]);
    levels.assign(server, 1).unwrap();
    levels.assign(spy, 0).unwrap();
    levels.assign(secret, 1).unwrap();
    let registry = Registry::with_default_lints();
    let diags = registry.run(&LintContext::new(&g, Some(&levels), None));
    let found: Vec<_> = diags.iter().filter(|d| d.code == "TG010").collect();
    assert_eq!(found.len(), 1, "one laundering conduit: {diags:?}");
    let d = found[0];
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("`server`") && d.message.contains("`spy`"));
    let fix = d.fix.as_ref().expect("stripping the conduit is the fix");
    assert!(fix.label.contains("strip `r`"), "fix: {}", fix.label);
}

#[test]
fn tg010_is_silent_when_the_flow_survives_the_cut() {
    // The spy also reads the secret directly, so the server's read is
    // not the sole conduit.
    let mut g = ProtectionGraph::new();
    let server = g.add_subject("server");
    let spy = g.add_subject("spy");
    let secret = g.add_object("secret");
    g.add_edge(server, secret, Rights::R).unwrap();
    g.add_edge(spy, server, Rights::R).unwrap();
    g.add_edge(spy, secret, Rights::R).unwrap();
    let mut levels = LevelAssignment::linear(&["low", "high"]);
    levels.assign(server, 1).unwrap();
    levels.assign(spy, 0).unwrap();
    levels.assign(secret, 1).unwrap();
    let registry = Registry::with_default_lints();
    let diags = registry.run(&LintContext::new(&g, Some(&levels), None));
    assert_eq!(codes(&diags, "TG010"), 0, "{diags:?}");
}

fn plan_setup() -> (
    ProtectionGraph,
    LevelAssignment,
    VertexId,
    VertexId,
    VertexId,
) {
    let mut g = ProtectionGraph::new();
    let a = g.add_subject("a");
    let b = g.add_subject("b");
    let o = g.add_object("o");
    g.add_edge(a, b, Rights::T).unwrap();
    g.add_edge(b, o, Rights::R).unwrap();
    let mut levels = LevelAssignment::linear(&["low", "high"]);
    levels.assign(a, 1).unwrap();
    levels.assign(b, 1).unwrap();
    levels.assign(o, 0).unwrap();
    (g, levels, a, b, o)
}

#[test]
fn tg011_reports_the_first_refused_step() {
    let (g, levels, a, b, o) = plan_setup();
    let mut trace = Derivation::new();
    // Step 1 is fine; step 2 lacks the `g` right and is refused.
    trace.push(DeJureRule::Take {
        actor: a,
        via: b,
        target: o,
        rights: Rights::R,
    });
    trace.push(DeJureRule::Grant {
        actor: a,
        via: b,
        target: o,
        rights: Rights::R,
    });
    let registry = Registry::with_default_lints();
    let cx = LintContext::new(&g, Some(&levels), None).with_trace(&trace);
    let diags = registry.run(&cx);
    let found: Vec<_> = diags.iter().filter(|d| d.code == "TG011").collect();
    assert_eq!(found.len(), 1, "{diags:?}");
    let d = found[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("step 2"), "message: {}", d.message);
    assert!(
        d.witness.as_deref().unwrap().contains("1 accepted step"),
        "witness: {:?}",
        d.witness
    );
}

#[test]
fn tg011_vets_without_applying() {
    let (g, levels, a, b, o) = plan_setup();
    let snapshot = g.clone();
    let mut trace = Derivation::new();
    trace.push(DeJureRule::Take {
        actor: a,
        via: b,
        target: o,
        rights: Rights::R,
    });
    let registry = Registry::with_default_lints();
    let cx = LintContext::new(&g, Some(&levels), None).with_trace(&trace);
    let diags = registry.run(&cx);
    assert_eq!(
        codes(&diags, "TG011"),
        0,
        "a legal trace is clean: {diags:?}"
    );
    assert_eq!(g, snapshot, "vetting must not mutate the graph");
}

#[test]
fn tg011_catches_restriction_refusals_not_just_preconditions() {
    // `a` (low) takes `r` over `o` (high): the de jure preconditions
    // hold but the combined restriction refuses the read-up.
    let mut g = ProtectionGraph::new();
    let a = g.add_subject("a");
    let b = g.add_subject("b");
    let o = g.add_object("o");
    g.add_edge(a, b, Rights::T).unwrap();
    g.add_edge(b, o, Rights::R).unwrap();
    let mut levels = LevelAssignment::linear(&["low", "high"]);
    levels.assign(a, 0).unwrap();
    levels.assign(b, 1).unwrap();
    levels.assign(o, 1).unwrap();
    let mut trace = Derivation::new();
    trace.push(DeJureRule::Take {
        actor: a,
        via: b,
        target: o,
        rights: Rights::R,
    });
    let registry = Registry::with_default_lints();
    let cx = LintContext::new(&g, Some(&levels), None).with_trace(&trace);
    let diags = registry.run(&cx);
    let found: Vec<_> = diags.iter().filter(|d| d.code == "TG011").collect();
    assert_eq!(found.len(), 1, "{diags:?}");
    assert!(found[0].message.contains("step 1"));
}

#[test]
fn tg011_is_silent_without_a_trace() {
    let (g, levels, _, _, _) = plan_setup();
    let registry = Registry::with_default_lints();
    let diags = registry.run(&LintContext::new(&g, Some(&levels), None));
    assert_eq!(codes(&diags, "TG011"), 0, "{diags:?}");
}

#[test]
fn flow_passes_are_deterministic_under_parallel_runs() {
    let (g, a, m, y) = chain_graph();
    let mut levels = LevelAssignment::linear(&["low", "high"]);
    levels.assign(a, 0).unwrap();
    levels.assign(m, 0).unwrap();
    levels.assign(y, 1).unwrap();
    let registry = Registry::with_default_lints();
    let cx = LintContext::new(&g, Some(&levels), None);
    let sequential = registry.run(&cx);
    for jobs in [1, 4] {
        let pool = tg_par::Pool::new(jobs);
        let parallel = registry.run_parallel(&cx, &pool);
        assert_eq!(sequential, parallel, "jobs={jobs}");
    }
}
