//! Property tests tying the analyzer to the paper's security notions:
//!
//! * **Soundness of TG005**: a graph with zero error-severity diagnostics
//!   (no policy given) satisfies `secure_derived` — and vice versa, an
//!   insecure graph always produces an error.
//! * **Fix-it soundness**: applying all fix-its to a fixpoint yields a
//!   lint-clean graph that satisfies `secure_derived`, and (with a
//!   policy) a clean monitor audit.

use proptest::prelude::*;

use tg_graph::{Right, Severity};
use tg_hierarchy::{audit_graph, secure_derived, CombinedRestriction};
use tg_lint::{apply_fixes, LintContext, Registry};
use tg_sim::gen::{GraphGen, HierarchyGen};

fn small_graph(seed: u64) -> tg_graph::ProtectionGraph {
    GraphGen {
        vertices: 12,
        subject_ratio: 0.6,
        out_degree: 1.8,
        rights_weights: vec![
            (Right::Read, 0.5),
            (Right::Write, 0.4),
            (Right::Take, 0.3),
            (Right::Grant, 0.2),
        ],
        seed,
    }
    .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Without a policy the only error-severity lint is TG005, which must
    /// agree exactly with `secure_derived`.
    #[test]
    fn errors_iff_derived_insecurity(seed in 0u64..10_000) {
        let graph = small_graph(seed);
        let registry = Registry::with_default_lints();
        let diags = registry.run(&LintContext::new(&graph, None, None));
        let has_error = diags.iter().any(|d| d.severity == Severity::Error);
        prop_assert_eq!(
            has_error,
            secure_derived(&graph).is_err(),
            "lint errors must match the checker's verdict"
        );
    }

    /// Fix-it soundness, derived sense: after `apply_fixes` the graph is
    /// lint-clean and `secure_derived` holds.
    #[test]
    fn fixes_restore_derived_security(seed in 0u64..10_000) {
        let mut graph = small_graph(seed);
        let registry = Registry::with_default_lints();
        let report = apply_fixes(&registry, &mut graph, None);
        prop_assert!(
            report.remaining.iter().all(|d| d.severity < Severity::Error),
            "fixpoint leaves no errors"
        );
        prop_assert!(secure_derived(&graph).is_ok());
    }

    /// Fix-it soundness, policy sense: a noisy hierarchy repaired by the
    /// fix engine passes the reference monitor's audit (TG001/TG002 are
    /// gone) and keeps `secure_derived`.
    #[test]
    fn fixes_restore_policy_security(seed in 0u64..10_000, noise in 1usize..8) {
        let built = HierarchyGen {
            levels: 3,
            per_level: 2,
            noise_edges: noise,
            seed,
        }
        .build();
        let mut graph = built.graph;
        let levels = built.assignment;
        let registry = Registry::with_default_lints();
        let report = apply_fixes(&registry, &mut graph, Some(&levels));
        prop_assert!(
            report.remaining.iter().all(|d| d.severity < Severity::Error),
            "fixpoint leaves no errors"
        );
        prop_assert!(
            audit_graph(&graph, &levels, &CombinedRestriction).is_empty(),
            "edge invariants hold after fixing"
        );
        prop_assert!(secure_derived(&graph).is_ok());
    }
}
