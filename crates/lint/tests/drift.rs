//! Drift tests: the rule registry, the observability catalog and the
//! documentation must move together. A new lint code that forgets its
//! `tg_obs` span or its DESIGN/GLOSSARY mention fails here, not in
//! review.

use tg_lint::{pass_span, RULES};
use tg_obs::SpanKind;

const DESIGN: &str = include_str!("../../../DESIGN.md");
const GLOSSARY: &str = include_str!("../../../docs/GLOSSARY.md");
const README: &str = include_str!("../../../README.md");

#[test]
fn every_rule_code_has_a_dedicated_catalog_span() {
    for rule in RULES {
        let span = pass_span(rule.code);
        assert_ne!(
            span,
            SpanKind::LintOtherPass,
            "{} ({}) is registered without a dedicated tg_obs span",
            rule.code,
            rule.name,
        );
        assert!(
            !span.name().is_empty(),
            "{}'s span has no catalog name",
            rule.code
        );
    }
}

#[test]
fn every_rule_code_is_documented() {
    for rule in RULES {
        assert!(
            DESIGN.contains(rule.code) || GLOSSARY.contains(rule.code),
            "{} ({}) is mentioned in neither DESIGN.md nor docs/GLOSSARY.md",
            rule.code,
            rule.name,
        );
    }
}

#[test]
fn the_flow_lints_are_in_the_readme() {
    for code in ["TG009", "TG010", "TG011"] {
        assert!(
            README.contains(code),
            "{code} is missing from the README walkthrough"
        );
    }
}
