//! A compact, dependency-free text encoding of rules and derivations.
//!
//! The workspace builds offline, so instead of serde the persistence layer
//! (the monitor's write-ahead journal in `tg-hierarchy`) uses this codec:
//! one rule per line, space-separated fields, names percent-escaped so a
//! record never contains a raw newline. The format is stable and
//! self-describing enough to hand-edit:
//!
//! ```text
//! take 0 1 2 x1          # x takes (δ to z) from y; rights as hex bits
//! grant 0 1 2 x3
//! create 0 s x9 worker%20pool
//! remove 0 2 x1
//! post 0 1 2             # de facto rules carry the paper's x, y, z
//! pass 0 1 2
//! spy 0 1 2
//! find 0 1 2
//! ```
//!
//! Vertex ids are dense indices (see [`VertexId::from_index`]); rights are
//! the raw bitmask in hex prefixed with `x`, so custom rights beyond the
//! five named ones round-trip too.

use core::fmt;

use tg_graph::{Rights, VertexId, VertexKind};

use crate::derivation::Derivation;
use crate::rule::{DeFactoRule, DeJureRule, Rule};

/// A decoding failure. The codec never panics on malformed input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The line was empty.
    Empty,
    /// The leading token names no rule form.
    UnknownForm(String),
    /// The line had the wrong number of fields for its form.
    Arity {
        /// The rule form being decoded.
        form: &'static str,
        /// Number of fields the form requires (incl. the form token).
        expected: usize,
        /// Number of fields present.
        got: usize,
    },
    /// A vertex-id field was not a decimal number.
    BadVertex(String),
    /// A rights field was not `x<hex>`.
    BadRights(String),
    /// A create-kind field was neither `s` nor `o`.
    BadKind(String),
    /// A name field contained an invalid `%` escape.
    BadEscape(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Empty => write!(f, "empty rule line"),
            CodecError::UnknownForm(t) => write!(f, "unknown rule form `{t}`"),
            CodecError::Arity {
                form,
                expected,
                got,
            } => write!(f, "`{form}` takes {expected} fields, got {got}"),
            CodecError::BadVertex(t) => write!(f, "bad vertex id `{t}`"),
            CodecError::BadRights(t) => write!(f, "bad rights `{t}` (expected x<hex>)"),
            CodecError::BadKind(t) => write!(f, "bad vertex kind `{t}` (expected s or o)"),
            CodecError::BadEscape(t) => write!(f, "bad %-escape in name `{t}`"),
        }
    }
}

impl std::error::Error for CodecError {}

fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'%' | b' ' | b'\t' | b'\n' | b'\r' => {
                out.push('%');
                out.push_str(&format!("{b:02x}"));
            }
            _ => out.push(b as char),
        }
    }
    // An empty name still needs a field to occupy.
    if out.is_empty() {
        out.push_str("%00");
    }
    out
}

fn unescape_name(field: &str) -> Result<String, CodecError> {
    let bytes = field.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| CodecError::BadEscape(field.to_string()))?;
            let hex =
                core::str::from_utf8(hex).map_err(|_| CodecError::BadEscape(field.to_string()))?;
            let b = u8::from_str_radix(hex, 16)
                .map_err(|_| CodecError::BadEscape(field.to_string()))?;
            if b != 0 {
                out.push(b);
            }
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| CodecError::BadEscape(field.to_string()))
}

fn encode_vertex(v: VertexId) -> String {
    v.index().to_string()
}

fn decode_vertex(field: &str) -> Result<VertexId, CodecError> {
    field
        .parse::<usize>()
        .map(VertexId::from_index)
        .map_err(|_| CodecError::BadVertex(field.to_string()))
}

fn encode_rights(r: Rights) -> String {
    format!("x{:x}", r.bits())
}

fn decode_rights(field: &str) -> Result<Rights, CodecError> {
    let hex = field
        .strip_prefix('x')
        .ok_or_else(|| CodecError::BadRights(field.to_string()))?;
    u16::from_str_radix(hex, 16)
        .map(Rights::from_bits)
        .map_err(|_| CodecError::BadRights(field.to_string()))
}

/// Encodes one rule as a single line (no trailing newline).
pub fn encode_rule(rule: &Rule) -> String {
    match rule {
        Rule::DeJure(DeJureRule::Take {
            actor,
            via,
            target,
            rights,
        }) => format!(
            "take {} {} {} {}",
            encode_vertex(*actor),
            encode_vertex(*via),
            encode_vertex(*target),
            encode_rights(*rights)
        ),
        Rule::DeJure(DeJureRule::Grant {
            actor,
            via,
            target,
            rights,
        }) => format!(
            "grant {} {} {} {}",
            encode_vertex(*actor),
            encode_vertex(*via),
            encode_vertex(*target),
            encode_rights(*rights)
        ),
        Rule::DeJure(DeJureRule::Create {
            actor,
            kind,
            rights,
            name,
        }) => format!(
            "create {} {} {} {}",
            encode_vertex(*actor),
            match kind {
                VertexKind::Subject => "s",
                VertexKind::Object => "o",
            },
            encode_rights(*rights),
            escape_name(name)
        ),
        Rule::DeJure(DeJureRule::Remove {
            actor,
            target,
            rights,
        }) => format!(
            "remove {} {} {}",
            encode_vertex(*actor),
            encode_vertex(*target),
            encode_rights(*rights)
        ),
        Rule::DeFacto(df) => {
            let (form, x, y, z) = match df {
                DeFactoRule::Post { x, y, z } => ("post", x, y, z),
                DeFactoRule::Pass { x, y, z } => ("pass", x, y, z),
                DeFactoRule::Spy { x, y, z } => ("spy", x, y, z),
                DeFactoRule::Find { x, y, z } => ("find", x, y, z),
            };
            format!(
                "{form} {} {} {}",
                encode_vertex(*x),
                encode_vertex(*y),
                encode_vertex(*z)
            )
        }
    }
}

/// Decodes one rule line produced by [`encode_rule`].
pub fn decode_rule(line: &str) -> Result<Rule, CodecError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    let Some(&form) = fields.first() else {
        return Err(CodecError::Empty);
    };
    let arity = |expected: usize, form: &'static str| {
        if fields.len() == expected {
            Ok(())
        } else {
            Err(CodecError::Arity {
                form,
                expected,
                got: fields.len(),
            })
        }
    };
    match form {
        "take" | "grant" => {
            arity(5, if form == "take" { "take" } else { "grant" })?;
            let actor = decode_vertex(fields[1])?;
            let via = decode_vertex(fields[2])?;
            let target = decode_vertex(fields[3])?;
            let rights = decode_rights(fields[4])?;
            Ok(Rule::DeJure(if form == "take" {
                DeJureRule::Take {
                    actor,
                    via,
                    target,
                    rights,
                }
            } else {
                DeJureRule::Grant {
                    actor,
                    via,
                    target,
                    rights,
                }
            }))
        }
        "create" => {
            arity(5, "create")?;
            let actor = decode_vertex(fields[1])?;
            let kind = match fields[2] {
                "s" => VertexKind::Subject,
                "o" => VertexKind::Object,
                other => return Err(CodecError::BadKind(other.to_string())),
            };
            let rights = decode_rights(fields[3])?;
            let name = unescape_name(fields[4])?;
            Ok(Rule::DeJure(DeJureRule::Create {
                actor,
                kind,
                rights,
                name,
            }))
        }
        "remove" => {
            arity(4, "remove")?;
            Ok(Rule::DeJure(DeJureRule::Remove {
                actor: decode_vertex(fields[1])?,
                target: decode_vertex(fields[2])?,
                rights: decode_rights(fields[3])?,
            }))
        }
        "post" | "pass" | "spy" | "find" => {
            arity(
                4,
                match form {
                    "post" => "post",
                    "pass" => "pass",
                    "spy" => "spy",
                    _ => "find",
                },
            )?;
            let x = decode_vertex(fields[1])?;
            let y = decode_vertex(fields[2])?;
            let z = decode_vertex(fields[3])?;
            Ok(Rule::DeFacto(match form {
                "post" => DeFactoRule::Post { x, y, z },
                "pass" => DeFactoRule::Pass { x, y, z },
                "spy" => DeFactoRule::Spy { x, y, z },
                _ => DeFactoRule::Find { x, y, z },
            }))
        }
        other => Err(CodecError::UnknownForm(other.to_string())),
    }
}

/// Encodes a derivation as one rule per line (with trailing newline when
/// nonempty).
pub fn encode_derivation(derivation: &Derivation) -> String {
    let mut out = String::new();
    for rule in &derivation.steps {
        out.push_str(&encode_rule(rule));
        out.push('\n');
    }
    out
}

/// Decodes the output of [`encode_derivation`]. Blank lines and `#`
/// comment lines are skipped.
pub fn decode_derivation(text: &str) -> Result<Derivation, CodecError> {
    let mut steps = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        steps.push(decode_rule(line)?);
    }
    Ok(Derivation { steps })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_with_spaces_round_trip() {
        let rule = Rule::DeJure(DeJureRule::Create {
            actor: VertexId::from_index(3),
            kind: VertexKind::Object,
            rights: Rights::RW,
            name: "worker pool %1\n".to_string(),
        });
        let line = encode_rule(&rule);
        assert!(!line.contains('\n'));
        assert_eq!(decode_rule(&line).unwrap(), rule);
    }

    #[test]
    fn empty_names_round_trip() {
        let rule = Rule::DeJure(DeJureRule::Create {
            actor: VertexId::from_index(0),
            kind: VertexKind::Subject,
            rights: Rights::EMPTY,
            name: String::new(),
        });
        assert_eq!(decode_rule(&encode_rule(&rule)).unwrap(), rule);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert_eq!(decode_rule(""), Err(CodecError::Empty));
        assert!(matches!(
            decode_rule("steal 0 1 2"),
            Err(CodecError::UnknownForm(_))
        ));
        assert!(matches!(
            decode_rule("take 0 1 2"),
            Err(CodecError::Arity { form: "take", .. })
        ));
        assert!(matches!(
            decode_rule("take a 1 2 x1"),
            Err(CodecError::BadVertex(_))
        ));
        assert!(matches!(
            decode_rule("take 0 1 2 r"),
            Err(CodecError::BadRights(_))
        ));
        assert!(matches!(
            decode_rule("create 0 q x1 n"),
            Err(CodecError::BadKind(_))
        ));
        assert!(matches!(
            decode_rule("create 0 s x1 bad%zz"),
            Err(CodecError::BadEscape(_))
        ));
    }

    #[test]
    fn derivations_round_trip_with_comments() {
        let d: Derivation = vec![
            Rule::DeFacto(DeFactoRule::Spy {
                x: VertexId::from_index(0),
                y: VertexId::from_index(1),
                z: VertexId::from_index(2),
            }),
            Rule::DeJure(DeJureRule::Remove {
                actor: VertexId::from_index(0),
                target: VertexId::from_index(2),
                rights: Rights::T,
            }),
        ]
        .into_iter()
        .collect();
        let text = format!("# header comment\n{}\n", encode_derivation(&d));
        assert_eq!(decode_derivation(&text).unwrap(), d);
    }
}
