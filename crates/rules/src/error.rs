//! Rule precondition failures.

use core::fmt;

use tg_graph::{GraphError, Right, VertexId};

/// Why a rule application was rejected. Rules never partially apply: either
/// every precondition holds and the graph changes, or an error is returned
/// and the graph is untouched.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuleError {
    /// The rule's vertices must be pairwise distinct.
    VerticesNotDistinct,
    /// A vertex that the rule requires to be a subject is an object.
    /// The string names the rule's formal parameter (`x`, `y`, `z`).
    NotSubject(VertexId, &'static str),
    /// A required explicit edge right is missing.
    MissingExplicit {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
        /// The absent right.
        right: Right,
    },
    /// A required `r`/`w` edge (explicit or implicit) is missing.
    MissingAny {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
        /// The absent right.
        right: Right,
    },
    /// The rights δ being moved are not a subset of the edge label β.
    NotSubset {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
    },
    /// `remove` requires an existing explicit edge.
    NoEdgeToRemove {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
    },
    /// The underlying graph rejected the mutation.
    Graph(GraphError),
    /// An [`Effect`](crate::Effect) was materialized against a rule of a
    /// different shape — an internal pairing violation, surfaced as a
    /// typed error instead of a panic so callers fail closed.
    EffectMismatch,
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::VerticesNotDistinct => {
                write!(f, "rule vertices must be pairwise distinct")
            }
            RuleError::NotSubject(v, role) => {
                write!(f, "vertex {v} (parameter {role}) must be a subject")
            }
            RuleError::MissingExplicit { src, dst, right } => {
                write!(f, "no explicit {right} right on edge {src} -> {dst}")
            }
            RuleError::MissingAny { src, dst, right } => {
                write!(
                    f,
                    "no {right} right (explicit or implicit) on edge {src} -> {dst}"
                )
            }
            RuleError::NotSubset { src, dst } => {
                write!(
                    f,
                    "rights to move are not a subset of the {src} -> {dst} label"
                )
            }
            RuleError::NoEdgeToRemove { src, dst } => {
                write!(f, "no explicit edge {src} -> {dst} to remove rights from")
            }
            RuleError::Graph(e) => write!(f, "graph error: {e}"),
            RuleError::EffectMismatch => {
                write!(f, "effect does not match the rule that produced it")
            }
        }
    }
}

impl std::error::Error for RuleError {}

impl From<GraphError> for RuleError {
    fn from(e: GraphError) -> RuleError {
        RuleError::Graph(e)
    }
}
