//! Rule definitions, precondition checking and application.

use core::fmt;

use tg_graph::{ProtectionGraph, Right, Rights, VertexId, VertexKind};

use crate::error::RuleError;

/// A de jure rule (paper §2): transfers *authority* by manipulating
/// explicit edges. Only subjects may invoke rules.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DeJureRule {
    /// *x takes (δ to z) from y*: requires subject `x`, explicit `t` on
    /// `x → y` and `δ ⊆ β` on `y → z`; adds explicit `x → z : δ`.
    Take {
        /// The acting subject `x`.
        actor: VertexId,
        /// The vertex `y` taken from.
        via: VertexId,
        /// The vertex `z` the rights refer to.
        target: VertexId,
        /// The rights δ to copy.
        rights: Rights,
    },
    /// *x grants (δ to z) to y*: requires subject `x`, explicit `g` on
    /// `x → y` and `δ ⊆ β` on `x → z`; adds explicit `y → z : δ`.
    Grant {
        /// The acting subject `x`.
        actor: VertexId,
        /// The vertex `y` receiving the rights.
        via: VertexId,
        /// The vertex `z` the rights refer to.
        target: VertexId,
        /// The rights δ to give.
        rights: Rights,
    },
    /// *x creates (δ to) new {subject|object} y*: adds a fresh vertex `y`
    /// and, if δ is nonempty, an explicit edge `x → y : δ`.
    Create {
        /// The acting subject `x`.
        actor: VertexId,
        /// Whether the new vertex is a subject or an object.
        kind: VertexKind,
        /// The rights δ the creator receives over the new vertex.
        rights: Rights,
        /// Display name for the new vertex.
        name: String,
    },
    /// *x removes (α to) y*: deletes the rights `α ∩ β` from the explicit
    /// edge `x → y : β`; the edge disappears if its label empties.
    Remove {
        /// The acting subject `x`.
        actor: VertexId,
        /// The vertex `y` whose incoming rights are removed.
        target: VertexId,
        /// The rights α to delete.
        rights: Rights,
    },
}

/// A de facto rule (paper §3, after Bishop–Snyder 1979): exhibits potential
/// *information flow* by adding an implicit edge labelled `r`. The `r`/`w`
/// edges a de facto rule consumes may themselves be explicit or implicit.
///
/// All four rules use the paper's `x, y, z` naming; an implicit edge
/// `x ⇢ z : r` (the conclusion of each rule) means information can flow
/// from `z` to `x`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DeFactoRule {
    /// `x →r y ← w← z`, with `x` and `z` subjects: `z` writes into the
    /// shared vertex `y` and `x` reads it. Adds `x ⇢ z : r`.
    Post {
        /// The reading subject `x`.
        x: VertexId,
        /// The shared vertex `y` (may be an object).
        y: VertexId,
        /// The writing subject `z`.
        z: VertexId,
    },
    /// `y →w x` and `y →r z`, with `y` a subject: `y` reads `z` and writes
    /// what it read into `x`. Adds `x ⇢ z : r`.
    Pass {
        /// The receiving vertex `x` (may be an object).
        x: VertexId,
        /// The forwarding subject `y`.
        y: VertexId,
        /// The vertex `z` being read.
        z: VertexId,
    },
    /// `x →r y` and `y →r z`, with `x` and `y` subjects: `x` reads over
    /// `y`'s shoulder. Adds `x ⇢ z : r`.
    Spy {
        /// The spying subject `x`.
        x: VertexId,
        /// The intermediate subject `y`.
        y: VertexId,
        /// The vertex `z` being read.
        z: VertexId,
    },
    /// `y →w x` and `z →w y`, with `y` and `z` subjects: `z` forwards its
    /// information through `y` into `x`. Adds `x ⇢ z : r`.
    Find {
        /// The receiving vertex `x` (may be an object).
        x: VertexId,
        /// The intermediate subject `y`.
        y: VertexId,
        /// The originating subject `z`.
        z: VertexId,
    },
}

/// Any rewriting rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Rule {
    /// A de jure (authority) rule.
    DeJure(DeJureRule),
    /// A de facto (information) rule.
    DeFacto(DeFactoRule),
}

impl From<DeJureRule> for Rule {
    fn from(r: DeJureRule) -> Rule {
        Rule::DeJure(r)
    }
}

impl From<DeFactoRule> for Rule {
    fn from(r: DeFactoRule) -> Rule {
        Rule::DeFacto(r)
    }
}

impl Rule {
    /// The subject invoking the rule. For de facto rules this is the
    /// vertex gaining the implicit edge if it is a subject, else the
    /// cooperating subject named first by the rule.
    pub fn actor(&self) -> VertexId {
        match self {
            Rule::DeJure(r) => match r {
                DeJureRule::Take { actor, .. }
                | DeJureRule::Grant { actor, .. }
                | DeJureRule::Create { actor, .. }
                | DeJureRule::Remove { actor, .. } => *actor,
            },
            Rule::DeFacto(r) => match r {
                DeFactoRule::Post { x, .. } | DeFactoRule::Spy { x, .. } => *x,
                DeFactoRule::Pass { y, .. } => *y,
                DeFactoRule::Find { y, .. } => *y,
            },
        }
    }

    /// Whether this is a de jure rule.
    pub fn is_de_jure(&self) -> bool {
        matches!(self, Rule::DeJure(_))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::DeJure(DeJureRule::Take {
                actor,
                via,
                target,
                rights,
            }) => write!(f, "{actor} takes ({rights} to {target}) from {via}"),
            Rule::DeJure(DeJureRule::Grant {
                actor,
                via,
                target,
                rights,
            }) => write!(f, "{actor} grants ({rights} to {target}) to {via}"),
            Rule::DeJure(DeJureRule::Create {
                actor,
                kind,
                rights,
                name,
            }) => write!(f, "{actor} creates ({rights} to) new {kind} \"{name}\""),
            Rule::DeJure(DeJureRule::Remove {
                actor,
                target,
                rights,
            }) => write!(f, "{actor} removes ({rights} to) {target}"),
            Rule::DeFacto(DeFactoRule::Post { x, y, z }) => {
                write!(f, "post: {z} writes {y}, {x} reads {y}")
            }
            Rule::DeFacto(DeFactoRule::Pass { x, y, z }) => {
                write!(f, "pass: {y} reads {z} and writes {x}")
            }
            Rule::DeFacto(DeFactoRule::Spy { x, y, z }) => {
                write!(f, "spy: {x} reads {y}, {y} reads {z}")
            }
            Rule::DeFacto(DeFactoRule::Find { x, y, z }) => {
                write!(f, "find: {z} writes {y}, {y} writes {x}")
            }
        }
    }
}

/// The change a successfully applied rule makes.
///
/// Effects record the *delta*: the rights that were genuinely new on the
/// edge, not the (possibly overlapping) set the rule requested. A take of
/// `{r, w}` over an edge that already carried `r` yields
/// `ExplicitAdded { rights: {w} }` — and an empty delta when nothing was
/// new. This makes [`Effect::invert`] an exact inverse, which the
/// monitor's transactional rollback depends on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Effect {
    /// An explicit edge gained `rights` (de jure take/grant).
    ExplicitAdded {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
        /// The rights newly added: the requested set minus whatever the
        /// edge already carried. May be empty.
        rights: Rights,
    },
    /// An implicit edge gained `rights` (de facto rules; `{r}` or empty if
    /// the implicit edge already existed).
    ImplicitAdded {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
        /// The rights newly added. May be empty.
        rights: Rights,
    },
    /// A vertex was created, with `rights` on the creator's edge to it.
    /// `id` is the id the new vertex receives (or would receive, for
    /// [`preview`]).
    Created {
        /// The new vertex's id.
        id: VertexId,
        /// The creating subject.
        creator: VertexId,
        /// The creator's rights over the new vertex.
        rights: Rights,
    },
    /// Explicit rights were removed from an edge.
    Removed {
        /// Edge source.
        src: VertexId,
        /// Edge destination.
        dst: VertexId,
        /// The rights actually deleted (`α ∩ β`).
        removed: Rights,
    },
}

impl Effect {
    /// Undoes this effect on `graph`, restoring the state from before the
    /// rule ran. Effects record exact deltas, so inversion is lossless:
    /// added rights are removed, removed rights are re-added, and a
    /// created vertex is retracted via
    /// [`ProtectionGraph::pop_vertex`].
    ///
    /// A sequence of effects must be inverted in **reverse** application
    /// order — in particular a `Created` effect can only be inverted while
    /// its vertex is still the newest one, which reverse order guarantees.
    /// The monitor's transactional batch application
    /// (`Monitor::try_apply_all` in `tg-hierarchy`) rolls back exactly
    /// this way.
    pub fn invert(&self, graph: &mut ProtectionGraph) -> Result<(), RuleError> {
        match self {
            Effect::ExplicitAdded { src, dst, rights } => {
                if !rights.is_empty() {
                    graph.remove_explicit_rights(*src, *dst, *rights)?;
                }
            }
            Effect::ImplicitAdded { src, dst, rights } => {
                if !rights.is_empty() {
                    graph.remove_implicit_rights(*src, *dst, *rights)?;
                }
            }
            Effect::Created { id, .. } => {
                graph.pop_vertex(*id)?;
            }
            Effect::Removed { src, dst, removed } => {
                if !removed.is_empty() {
                    graph.add_edge(*src, *dst, *removed)?;
                }
            }
        }
        Ok(())
    }
}

fn distinct3(a: VertexId, b: VertexId, c: VertexId) -> Result<(), RuleError> {
    if a == b || b == c || a == c {
        Err(RuleError::VerticesNotDistinct)
    } else {
        Ok(())
    }
}

fn require_subject(g: &ProtectionGraph, v: VertexId, role: &'static str) -> Result<(), RuleError> {
    if !g.contains_vertex(v) {
        return Err(RuleError::Graph(tg_graph::GraphError::UnknownVertex(v)));
    }
    if g.is_subject(v) {
        Ok(())
    } else {
        Err(RuleError::NotSubject(v, role))
    }
}

fn require_vertex(g: &ProtectionGraph, v: VertexId) -> Result<(), RuleError> {
    if g.contains_vertex(v) {
        Ok(())
    } else {
        Err(RuleError::Graph(tg_graph::GraphError::UnknownVertex(v)))
    }
}

fn require_explicit(
    g: &ProtectionGraph,
    src: VertexId,
    dst: VertexId,
    right: Right,
) -> Result<(), RuleError> {
    if g.rights(src, dst).explicit().contains(right) {
        Ok(())
    } else {
        Err(RuleError::MissingExplicit { src, dst, right })
    }
}

fn require_any(
    g: &ProtectionGraph,
    src: VertexId,
    dst: VertexId,
    right: Right,
) -> Result<(), RuleError> {
    if g.rights(src, dst).combined().contains(right) {
        Ok(())
    } else {
        Err(RuleError::MissingAny { src, dst, right })
    }
}

/// Checks every precondition of `rule` against `graph` and returns the
/// [`Effect`] it *would* have, without mutating anything. The reference
/// monitor's constant-time restriction check (Corollary 5.7) is built on
/// this.
pub fn preview(graph: &ProtectionGraph, rule: &Rule) -> Result<Effect, RuleError> {
    match rule {
        Rule::DeJure(DeJureRule::Take {
            actor,
            via,
            target,
            rights,
        }) => {
            distinct3(*actor, *via, *target)?;
            require_subject(graph, *actor, "x")?;
            require_vertex(graph, *via)?;
            require_vertex(graph, *target)?;
            require_explicit(graph, *actor, *via, Right::Take)?;
            let beta = graph.rights(*via, *target).explicit();
            if !beta.contains_all(*rights) {
                return Err(RuleError::NotSubset {
                    src: *via,
                    dst: *target,
                });
            }
            if rights.is_empty() {
                return Err(RuleError::Graph(tg_graph::GraphError::EmptyRights));
            }
            let already = graph.rights(*actor, *target).explicit();
            Ok(Effect::ExplicitAdded {
                src: *actor,
                dst: *target,
                rights: rights.difference(already),
            })
        }
        Rule::DeJure(DeJureRule::Grant {
            actor,
            via,
            target,
            rights,
        }) => {
            distinct3(*actor, *via, *target)?;
            require_subject(graph, *actor, "x")?;
            require_vertex(graph, *via)?;
            require_vertex(graph, *target)?;
            require_explicit(graph, *actor, *via, Right::Grant)?;
            let beta = graph.rights(*actor, *target).explicit();
            if !beta.contains_all(*rights) {
                return Err(RuleError::NotSubset {
                    src: *actor,
                    dst: *target,
                });
            }
            if rights.is_empty() {
                return Err(RuleError::Graph(tg_graph::GraphError::EmptyRights));
            }
            let already = graph.rights(*via, *target).explicit();
            Ok(Effect::ExplicitAdded {
                src: *via,
                dst: *target,
                rights: rights.difference(already),
            })
        }
        Rule::DeJure(DeJureRule::Create { actor, rights, .. }) => {
            require_subject(graph, *actor, "x")?;
            Ok(Effect::Created {
                id: VertexId::from_index(graph.vertex_count()),
                creator: *actor,
                rights: *rights,
            })
        }
        Rule::DeJure(DeJureRule::Remove {
            actor,
            target,
            rights,
        }) => {
            if actor == target {
                return Err(RuleError::VerticesNotDistinct);
            }
            require_subject(graph, *actor, "x")?;
            require_vertex(graph, *target)?;
            let beta = graph.rights(*actor, *target).explicit();
            if beta.is_empty() {
                return Err(RuleError::NoEdgeToRemove {
                    src: *actor,
                    dst: *target,
                });
            }
            Ok(Effect::Removed {
                src: *actor,
                dst: *target,
                removed: beta.intersection(*rights),
            })
        }
        Rule::DeFacto(rule) => {
            let (x, y, z) = match rule {
                DeFactoRule::Post { x, y, z }
                | DeFactoRule::Pass { x, y, z }
                | DeFactoRule::Spy { x, y, z }
                | DeFactoRule::Find { x, y, z } => (*x, *y, *z),
            };
            distinct3(x, y, z)?;
            require_vertex(graph, x)?;
            require_vertex(graph, y)?;
            require_vertex(graph, z)?;
            match rule {
                DeFactoRule::Post { .. } => {
                    require_subject(graph, x, "x")?;
                    require_subject(graph, z, "z")?;
                    require_any(graph, x, y, Right::Read)?;
                    require_any(graph, z, y, Right::Write)?;
                }
                DeFactoRule::Pass { .. } => {
                    require_subject(graph, y, "y")?;
                    require_any(graph, y, x, Right::Write)?;
                    require_any(graph, y, z, Right::Read)?;
                }
                DeFactoRule::Spy { .. } => {
                    require_subject(graph, x, "x")?;
                    require_subject(graph, y, "y")?;
                    require_any(graph, x, y, Right::Read)?;
                    require_any(graph, y, z, Right::Read)?;
                }
                DeFactoRule::Find { .. } => {
                    require_subject(graph, y, "y")?;
                    require_subject(graph, z, "z")?;
                    require_any(graph, y, x, Right::Write)?;
                    require_any(graph, z, y, Right::Write)?;
                }
            }
            let already = graph.rights(x, z).implicit();
            Ok(Effect::ImplicitAdded {
                src: x,
                dst: z,
                rights: Rights::R.difference(already),
            })
        }
    }
}

/// Applies `rule` to `graph`, returning the resulting [`Effect`]. The graph
/// is unchanged on error.
pub fn apply(graph: &mut ProtectionGraph, rule: &Rule) -> Result<Effect, RuleError> {
    let effect = preview(graph, rule)?;
    match &effect {
        Effect::ExplicitAdded { src, dst, rights } => {
            if !rights.is_empty() {
                graph.add_edge(*src, *dst, *rights)?;
            }
        }
        Effect::ImplicitAdded { src, dst, rights } => {
            if !rights.is_empty() {
                graph.add_implicit_edge(*src, *dst, *rights)?;
            }
        }
        Effect::Created {
            creator, rights, ..
        } => {
            // preview() only returns Created for Create rules; if that
            // pairing is ever violated, refuse rather than panic.
            let Rule::DeJure(DeJureRule::Create { kind, name, .. }) = rule else {
                return Err(RuleError::EffectMismatch);
            };
            let id = graph.add_vertex(*kind, name.clone());
            if !rights.is_empty() {
                graph.add_edge(*creator, id, *rights)?;
            }
        }
        Effect::Removed { src, dst, removed } => {
            if !removed.is_empty() {
                graph.remove_explicit_rights(*src, *dst, *removed)?;
            }
        }
    }
    Ok(effect)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ProtectionGraph, VertexId, VertexId, VertexId) {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let y = g.add_subject("y");
        let z = g.add_object("z");
        (g, x, y, z)
    }

    #[test]
    fn take_copies_rights() {
        let (mut g, x, y, z) = setup();
        g.add_edge(x, y, Rights::T).unwrap();
        g.add_edge(y, z, Rights::RW).unwrap();
        let effect = apply(
            &mut g,
            &Rule::DeJure(DeJureRule::Take {
                actor: x,
                via: y,
                target: z,
                rights: Rights::R,
            }),
        )
        .unwrap();
        assert_eq!(
            effect,
            Effect::ExplicitAdded {
                src: x,
                dst: z,
                rights: Rights::R
            }
        );
        assert!(g.has_explicit(x, z, Right::Read));
        // The source edge is untouched (take copies).
        assert_eq!(g.rights(y, z).explicit(), Rights::RW);
    }

    #[test]
    fn take_requires_subject_actor() {
        let (mut g, x, y, z) = setup();
        g.add_edge(z, y, Rights::T).unwrap();
        g.add_edge(y, x, Rights::R).unwrap();
        let err = apply(
            &mut g,
            &Rule::DeJure(DeJureRule::Take {
                actor: z,
                via: y,
                target: x,
                rights: Rights::R,
            }),
        )
        .unwrap_err();
        assert_eq!(err, RuleError::NotSubject(z, "x"));
    }

    #[test]
    fn take_requires_take_right_and_subset() {
        let (mut g, x, y, z) = setup();
        g.add_edge(x, y, Rights::G).unwrap();
        g.add_edge(y, z, Rights::R).unwrap();
        let take = |rights| {
            Rule::DeJure(DeJureRule::Take {
                actor: x,
                via: y,
                target: z,
                rights,
            })
        };
        assert_eq!(
            preview(&g, &take(Rights::R)).unwrap_err(),
            RuleError::MissingExplicit {
                src: x,
                dst: y,
                right: Right::Take
            }
        );
        g.add_edge(x, y, Rights::T).unwrap();
        assert_eq!(
            preview(&g, &take(Rights::W)).unwrap_err(),
            RuleError::NotSubset { src: y, dst: z }
        );
        assert!(preview(&g, &take(Rights::R)).is_ok());
    }

    #[test]
    fn take_ignores_implicit_edges() {
        let (mut g, x, y, z) = setup();
        g.add_edge(x, y, Rights::T).unwrap();
        g.add_implicit_edge(y, z, Rights::R).unwrap();
        let err = preview(
            &g,
            &Rule::DeJure(DeJureRule::Take {
                actor: x,
                via: y,
                target: z,
                rights: Rights::R,
            }),
        )
        .unwrap_err();
        assert_eq!(err, RuleError::NotSubset { src: y, dst: z });
    }

    #[test]
    fn grant_gives_own_rights() {
        let (mut g, x, y, z) = setup();
        g.add_edge(x, y, Rights::G).unwrap();
        g.add_edge(x, z, Rights::RW).unwrap();
        apply(
            &mut g,
            &Rule::DeJure(DeJureRule::Grant {
                actor: x,
                via: y,
                target: z,
                rights: Rights::W,
            }),
        )
        .unwrap();
        assert!(g.has_explicit(y, z, Right::Write));
        assert!(!g.has_explicit(y, z, Right::Read));
    }

    #[test]
    fn grant_requires_grant_right() {
        let (mut g, x, y, z) = setup();
        g.add_edge(x, y, Rights::T).unwrap();
        g.add_edge(x, z, Rights::R).unwrap();
        let err = preview(
            &g,
            &Rule::DeJure(DeJureRule::Grant {
                actor: x,
                via: y,
                target: z,
                rights: Rights::R,
            }),
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::MissingExplicit { .. }));
    }

    #[test]
    fn create_adds_vertex_and_edge() {
        let (mut g, x, _, _) = setup();
        let effect = apply(
            &mut g,
            &Rule::DeJure(DeJureRule::Create {
                actor: x,
                kind: VertexKind::Object,
                rights: Rights::TG,
                name: "buf".to_string(),
            }),
        )
        .unwrap();
        let Effect::Created { id, .. } = effect else {
            panic!("expected Created");
        };
        assert!(g.is_object(id));
        assert_eq!(g.rights(x, id).explicit(), Rights::TG);
        assert_eq!(g.vertex(id).name, "buf");
    }

    #[test]
    fn create_with_empty_rights_adds_isolated_vertex() {
        let (mut g, x, _, _) = setup();
        let effect = apply(
            &mut g,
            &Rule::DeJure(DeJureRule::Create {
                actor: x,
                kind: VertexKind::Subject,
                rights: Rights::EMPTY,
                name: "lonely".to_string(),
            }),
        )
        .unwrap();
        let Effect::Created { id, .. } = effect else {
            panic!("expected Created");
        };
        assert_eq!(g.out_edges(x).count(), 0);
        assert!(g.is_subject(id));
    }

    #[test]
    fn create_requires_subject() {
        let (mut g, _, _, z) = setup();
        let err = apply(
            &mut g,
            &Rule::DeJure(DeJureRule::Create {
                actor: z,
                kind: VertexKind::Object,
                rights: Rights::R,
                name: "n".to_string(),
            }),
        )
        .unwrap_err();
        assert_eq!(err, RuleError::NotSubject(z, "x"));
    }

    #[test]
    fn remove_deletes_intersection_only() {
        let (mut g, x, y, _) = setup();
        g.add_edge(x, y, Rights::RW).unwrap();
        let effect = apply(
            &mut g,
            &Rule::DeJure(DeJureRule::Remove {
                actor: x,
                target: y,
                rights: Rights::R | Rights::T,
            }),
        )
        .unwrap();
        assert_eq!(
            effect,
            Effect::Removed {
                src: x,
                dst: y,
                removed: Rights::R
            }
        );
        assert_eq!(g.rights(x, y).explicit(), Rights::W);
    }

    #[test]
    fn remove_requires_existing_edge() {
        let (mut g, x, y, _) = setup();
        let err = apply(
            &mut g,
            &Rule::DeJure(DeJureRule::Remove {
                actor: x,
                target: y,
                rights: Rights::R,
            }),
        )
        .unwrap_err();
        assert_eq!(err, RuleError::NoEdgeToRemove { src: x, dst: y });
    }

    #[test]
    fn post_needs_two_subjects_and_shared_vertex() {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let y = g.add_object("y");
        let z = g.add_subject("z");
        g.add_edge(x, y, Rights::R).unwrap();
        g.add_edge(z, y, Rights::W).unwrap();
        let effect = apply(&mut g, &Rule::DeFacto(DeFactoRule::Post { x, y, z })).unwrap();
        assert_eq!(
            effect,
            Effect::ImplicitAdded {
                src: x,
                dst: z,
                rights: Rights::R
            }
        );
        assert!(g.rights(x, z).implicit().contains(Right::Read));
        assert!(g.rights(x, z).explicit().is_empty());
    }

    #[test]
    fn post_rejects_object_endpoints() {
        let mut g = ProtectionGraph::new();
        let x = g.add_object("x");
        let y = g.add_object("y");
        let z = g.add_subject("z");
        g.add_edge(x, y, Rights::R).unwrap();
        g.add_edge(z, y, Rights::W).unwrap();
        let err = preview(&g, &Rule::DeFacto(DeFactoRule::Post { x, y, z })).unwrap_err();
        assert_eq!(err, RuleError::NotSubject(x, "x"));
    }

    #[test]
    fn pass_needs_subject_middle_only() {
        let mut g = ProtectionGraph::new();
        let x = g.add_object("x");
        let y = g.add_subject("y");
        let z = g.add_object("z");
        g.add_edge(y, x, Rights::W).unwrap();
        g.add_edge(y, z, Rights::R).unwrap();
        apply(&mut g, &Rule::DeFacto(DeFactoRule::Pass { x, y, z })).unwrap();
        assert!(g.rights(x, z).implicit().contains(Right::Read));
    }

    #[test]
    fn spy_chains_reads() {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let y = g.add_subject("y");
        let z = g.add_object("z");
        g.add_edge(x, y, Rights::R).unwrap();
        g.add_edge(y, z, Rights::R).unwrap();
        apply(&mut g, &Rule::DeFacto(DeFactoRule::Spy { x, y, z })).unwrap();
        assert!(g.rights(x, z).implicit().contains(Right::Read));
    }

    #[test]
    fn spy_requires_middle_subject() {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let y = g.add_object("y");
        let z = g.add_object("z");
        g.add_edge(x, y, Rights::R).unwrap();
        g.add_edge(y, z, Rights::R).unwrap();
        let err = preview(&g, &Rule::DeFacto(DeFactoRule::Spy { x, y, z })).unwrap_err();
        assert_eq!(err, RuleError::NotSubject(y, "y"));
    }

    #[test]
    fn find_chains_writes() {
        let mut g = ProtectionGraph::new();
        let x = g.add_object("x");
        let y = g.add_subject("y");
        let z = g.add_subject("z");
        g.add_edge(y, x, Rights::W).unwrap();
        g.add_edge(z, y, Rights::W).unwrap();
        apply(&mut g, &Rule::DeFacto(DeFactoRule::Find { x, y, z })).unwrap();
        assert!(g.rights(x, z).implicit().contains(Right::Read));
    }

    #[test]
    fn de_facto_rules_compose_over_implicit_edges() {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let y = g.add_subject("y");
        let z = g.add_object("z");
        g.add_implicit_edge(x, y, Rights::R).unwrap();
        g.add_edge(y, z, Rights::R).unwrap();
        assert!(preview(&g, &Rule::DeFacto(DeFactoRule::Spy { x, y, z })).is_ok());
    }

    #[test]
    fn de_facto_requires_missing_edge_error() {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let y = g.add_subject("y");
        let z = g.add_subject("z");
        g.add_edge(x, y, Rights::R).unwrap();
        let err = preview(&g, &Rule::DeFacto(DeFactoRule::Spy { x, y, z })).unwrap_err();
        assert_eq!(
            err,
            RuleError::MissingAny {
                src: y,
                dst: z,
                right: Right::Read
            }
        );
    }

    #[test]
    fn distinctness_is_enforced_everywhere() {
        let (mut g, x, y, _) = setup();
        g.add_edge(x, y, Rights::TG).unwrap();
        let err = apply(
            &mut g,
            &Rule::DeJure(DeJureRule::Take {
                actor: x,
                via: y,
                target: x,
                rights: Rights::R,
            }),
        )
        .unwrap_err();
        assert_eq!(err, RuleError::VerticesNotDistinct);
        let err = preview(&g, &Rule::DeFacto(DeFactoRule::Post { x, y: x, z: y })).unwrap_err();
        assert_eq!(err, RuleError::VerticesNotDistinct);
    }

    #[test]
    fn unknown_vertices_are_graph_errors() {
        let (g, x, y, _) = setup();
        let bogus = VertexId::from_index(42);
        let err = preview(
            &g,
            &Rule::DeJure(DeJureRule::Take {
                actor: x,
                via: y,
                target: bogus,
                rights: Rights::R,
            }),
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::Graph(_)));
    }

    #[test]
    fn preview_does_not_mutate() {
        let (mut g, x, y, z) = setup();
        g.add_edge(x, y, Rights::T).unwrap();
        g.add_edge(y, z, Rights::R).unwrap();
        let snapshot = g.clone();
        preview(
            &g,
            &Rule::DeJure(DeJureRule::Take {
                actor: x,
                via: y,
                target: z,
                rights: Rights::R,
            }),
        )
        .unwrap();
        assert_eq!(g, snapshot);
    }

    #[test]
    fn effects_record_deltas_not_requests() {
        let (mut g, x, y, z) = setup();
        g.add_edge(x, y, Rights::T).unwrap();
        g.add_edge(y, z, Rights::RW).unwrap();
        g.add_edge(x, z, Rights::R).unwrap(); // x already holds r on z
        let effect = apply(
            &mut g,
            &Rule::DeJure(DeJureRule::Take {
                actor: x,
                via: y,
                target: z,
                rights: Rights::RW,
            }),
        )
        .unwrap();
        // Only w was new.
        assert_eq!(
            effect,
            Effect::ExplicitAdded {
                src: x,
                dst: z,
                rights: Rights::W
            }
        );
    }

    #[test]
    fn invert_restores_the_prior_graph() {
        let (mut g, x, y, z) = setup();
        g.add_edge(x, y, Rights::TG).unwrap();
        g.add_edge(y, z, Rights::RW).unwrap();
        g.add_edge(x, z, Rights::R).unwrap();
        let rules: Vec<Rule> = vec![
            DeJureRule::Take {
                actor: x,
                via: y,
                target: z,
                rights: Rights::RW, // r duplicates, w is new
            }
            .into(),
            DeJureRule::Create {
                actor: x,
                kind: tg_graph::VertexKind::Object,
                rights: Rights::RW,
                name: "scratch".to_string(),
            }
            .into(),
            DeFactoRule::Spy { x, y: x, z }.into(), // malformed; skipped below
            DeJureRule::Remove {
                actor: x,
                target: z,
                rights: Rights::R,
            }
            .into(),
        ];
        let snapshot = g.clone();
        let mut effects = Vec::new();
        for rule in &rules {
            if let Ok(effect) = apply(&mut g, rule) {
                effects.push(effect);
            }
        }
        assert_eq!(effects.len(), 3);
        assert_ne!(g, snapshot);
        for effect in effects.iter().rev() {
            effect.invert(&mut g).unwrap();
        }
        assert_eq!(g, snapshot);
    }

    #[test]
    fn invert_of_duplicate_de_facto_is_a_noop() {
        let (mut g, x, y, z) = setup();
        g.add_edge(x, y, Rights::R).unwrap();
        g.add_edge(y, z, Rights::R).unwrap();
        let spy = Rule::DeFacto(DeFactoRule::Spy { x, y, z });
        apply(&mut g, &spy).unwrap();
        let snapshot = g.clone();
        // Second application adds nothing; inverting it must not delete
        // the implicit edge the first application created.
        let effect = apply(&mut g, &spy).unwrap();
        assert_eq!(
            effect,
            Effect::ImplicitAdded {
                src: x,
                dst: z,
                rights: Rights::EMPTY
            }
        );
        effect.invert(&mut g).unwrap();
        assert_eq!(g, snapshot);
    }

    #[test]
    fn rule_display_is_readable() {
        let (_, x, y, z) = setup();
        let rule = Rule::DeJure(DeJureRule::Take {
            actor: x,
            via: y,
            target: z,
            rights: Rights::R,
        });
        assert_eq!(rule.to_string(), "v0 takes (r to v2) from v1");
    }
}
