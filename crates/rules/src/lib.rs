//! The Take-Grant rewriting rules.
//!
//! Two rule families act on a protection graph (paper §2–§3):
//!
//! * **De jure rules** transfer *authority* and manipulate explicit edges
//!   only: [`DeJureRule::Take`], [`DeJureRule::Grant`],
//!   [`DeJureRule::Create`], [`DeJureRule::Remove`].
//! * **De facto rules** exhibit *information flow* and add implicit edges
//!   labelled `r`: [`DeFactoRule::Post`], [`DeFactoRule::Pass`],
//!   [`DeFactoRule::Spy`], [`DeFactoRule::Find`]. They may consume either
//!   explicit or implicit `r`/`w` edges.
//!
//! Every rule application is checked against the paper's exact
//! preconditions and yields an [`Effect`] describing the change; sequences
//! of rules are recorded as replayable [`Derivation`]s. The edge-reversal
//! constructions behind the paper's Lemmas 2.1 and 2.2 are provided in
//! [`lemmas`].
//!
//! # Examples
//!
//! ```
//! use tg_graph::{ProtectionGraph, Rights};
//! use tg_rules::{apply, DeJureRule, Rule};
//!
//! // s --t--> a --r--> o : s takes (r to o) from a.
//! let mut g = ProtectionGraph::new();
//! let s = g.add_subject("s");
//! let a = g.add_object("a");
//! let o = g.add_object("o");
//! g.add_edge(s, a, Rights::T).unwrap();
//! g.add_edge(a, o, Rights::R).unwrap();
//!
//! apply(&mut g, &Rule::DeJure(DeJureRule::Take {
//!     actor: s, via: a, target: o, rights: Rights::R,
//! })).unwrap();
//! assert!(g.rights(s, o).explicit().contains_all(Rights::R));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod derivation;
mod error;
pub mod lemmas;
mod rule;

pub use derivation::{Derivation, ReplayError, Session};
pub use error::RuleError;
pub use rule::{apply, preview, DeFactoRule, DeJureRule, Effect, Rule};
