//! The edge-reversal constructions of Lemmas 2.1 and 2.2.
//!
//! "There is a duality between the take and grant rules when the edge
//! labelled t or g is between two subjects. Specifically, with the
//! cooperation of both subjects, rights can be transmitted backwards along
//! the edges" (paper §2). These two constructions are the engine of every
//! conspiracy: they are why Wu's hierarchical model (Figure 2.1) falls to
//! two cooperating subjects, and why islands share all rights.
//!
//! Each function appends concrete rule applications to a [`Session`] and
//! returns nothing else — the caller inspects the session's graph and log.

use tg_graph::{Right, Rights, VertexId, VertexKind};

use crate::derivation::Session;
use crate::error::RuleError;
use crate::rule::{DeJureRule, Effect};

fn created_id(effect: Effect) -> VertexId {
    match effect {
        Effect::Created { id, .. } => id,
        _ => unreachable!("create rules yield Created effects"),
    }
}

/// Lemma 2.1: given subjects `x --t--> y` where **x** holds `rights` to
/// `target`, derive an explicit edge `y --rights--> target`.
///
/// The rights flow *backwards* along the take edge. Construction:
///
/// 1. `y` creates a fresh vertex `v` with `{t, g}`;
/// 2. `x` takes (`g` to `v`) from `y`;
/// 3. `x` grants (`rights` to `target`) to `v`;
/// 4. `y` takes (`rights` to `target`) from `v`.
///
/// # Errors
///
/// Fails if `x` or `y` is not a subject, the `t` edge or the
/// `x → target : rights` edge is missing, or the vertices are not distinct.
///
/// # Examples
///
/// ```
/// use tg_graph::{ProtectionGraph, Rights};
/// use tg_rules::{lemmas, Session};
///
/// let mut g = ProtectionGraph::new();
/// let x = g.add_subject("x");
/// let y = g.add_subject("y");
/// let z = g.add_object("z");
/// g.add_edge(x, y, Rights::T).unwrap();
/// g.add_edge(x, z, Rights::R).unwrap();
///
/// let mut session = Session::new(g);
/// lemmas::reverse_take(&mut session, x, y, z, Rights::R).unwrap();
/// assert!(session.graph().rights(y, z).explicit().contains_all(Rights::R));
/// ```
pub fn reverse_take(
    session: &mut Session,
    x: VertexId,
    y: VertexId,
    target: VertexId,
    rights: Rights,
) -> Result<(), RuleError> {
    // Fail fast with precise errors before mutating anything.
    let g = session.graph();
    if !g.contains_vertex(x) {
        return Err(RuleError::Graph(tg_graph::GraphError::UnknownVertex(x)));
    }
    if !g.is_subject(x) {
        return Err(RuleError::NotSubject(x, "x"));
    }
    if !g.contains_vertex(y) {
        return Err(RuleError::Graph(tg_graph::GraphError::UnknownVertex(y)));
    }
    if !g.is_subject(y) {
        return Err(RuleError::NotSubject(y, "y"));
    }
    if !g.has_explicit(x, y, Right::Take) {
        return Err(RuleError::MissingExplicit {
            src: x,
            dst: y,
            right: Right::Take,
        });
    }
    if !g.rights(x, target).explicit().contains_all(rights) {
        return Err(RuleError::NotSubset {
            src: x,
            dst: target,
        });
    }

    // 1. y creates v with {t, g}.
    let v = created_id(session.apply(DeJureRule::Create {
        actor: y,
        kind: VertexKind::Object,
        rights: Rights::TG,
        name: "lemma21-buffer".to_string(),
    })?);
    // 2. x takes (g to v) from y.
    session.apply(DeJureRule::Take {
        actor: x,
        via: y,
        target: v,
        rights: Rights::G,
    })?;
    // 3. x grants (rights to target) to v.
    session.apply(DeJureRule::Grant {
        actor: x,
        via: v,
        target,
        rights,
    })?;
    // 4. y takes (rights to target) from v.
    session.apply(DeJureRule::Take {
        actor: y,
        via: v,
        target,
        rights,
    })?;
    Ok(())
}

/// Lemma 2.2: given subjects `x --g--> y` where **y** holds `rights` to
/// `target`, derive an explicit edge `x --rights--> target`.
///
/// The rights flow *backwards* along the grant edge. Construction:
///
/// 1. `x` creates a fresh vertex `v` with `{t, g}`;
/// 2. `x` grants (`g` to `v`) to `y`;
/// 3. `y` grants (`rights` to `target`) to `v`;
/// 4. `x` takes (`rights` to `target`) from `v`.
///
/// # Errors
///
/// Fails if `x` or `y` is not a subject, the `g` edge or the
/// `y → target : rights` edge is missing, or the vertices are not distinct.
pub fn reverse_grant(
    session: &mut Session,
    x: VertexId,
    y: VertexId,
    target: VertexId,
    rights: Rights,
) -> Result<(), RuleError> {
    let g = session.graph();
    if !g.contains_vertex(x) {
        return Err(RuleError::Graph(tg_graph::GraphError::UnknownVertex(x)));
    }
    if !g.is_subject(x) {
        return Err(RuleError::NotSubject(x, "x"));
    }
    if !g.contains_vertex(y) {
        return Err(RuleError::Graph(tg_graph::GraphError::UnknownVertex(y)));
    }
    if !g.is_subject(y) {
        return Err(RuleError::NotSubject(y, "y"));
    }
    if !g.has_explicit(x, y, Right::Grant) {
        return Err(RuleError::MissingExplicit {
            src: x,
            dst: y,
            right: Right::Grant,
        });
    }
    if !g.rights(y, target).explicit().contains_all(rights) {
        return Err(RuleError::NotSubset {
            src: y,
            dst: target,
        });
    }

    // 1. x creates v with {t, g}.
    let v = created_id(session.apply(DeJureRule::Create {
        actor: x,
        kind: VertexKind::Object,
        rights: Rights::TG,
        name: "lemma22-buffer".to_string(),
    })?);
    // 2. x grants (g to v) to y.
    session.apply(DeJureRule::Grant {
        actor: x,
        via: y,
        target: v,
        rights: Rights::G,
    })?;
    // 3. y grants (rights to target) to v.
    session.apply(DeJureRule::Grant {
        actor: y,
        via: v,
        target,
        rights,
    })?;
    // 4. x takes (rights to target) from v.
    session.apply(DeJureRule::Take {
        actor: x,
        via: v,
        target,
        rights,
    })?;
    Ok(())
}

/// Moves `rights` over `target` from `holder` to `receiver` across a single
/// `t`/`g` edge *in either direction* between two subjects — the four-case
/// combination the island machinery rests on ("neither direction nor label
/// of the edge is important, so long as the label is in the set {t, g}").
///
/// Tries, in order: plain take (receiver `--t-->` holder), plain grant
/// (holder `--g-->` receiver), Lemma 2.1 (holder `--t-->` receiver), and
/// Lemma 2.2 (receiver `--g-->` holder).
///
/// # Errors
///
/// Returns the last attempt's error if no case applies.
pub fn transfer_between_adjacent_subjects(
    session: &mut Session,
    holder: VertexId,
    receiver: VertexId,
    target: VertexId,
    rights: Rights,
) -> Result<(), RuleError> {
    let g = session.graph();
    if receiver == target || holder == target {
        return Err(RuleError::VerticesNotDistinct);
    }
    if g.rights(receiver, target).explicit().contains_all(rights) {
        return Ok(()); // Already holds the rights.
    }
    if g.has_explicit(receiver, holder, Right::Take) {
        session.apply(DeJureRule::Take {
            actor: receiver,
            via: holder,
            target,
            rights,
        })?;
        return Ok(());
    }
    if g.has_explicit(holder, receiver, Right::Grant) {
        session.apply(DeJureRule::Grant {
            actor: holder,
            via: receiver,
            target,
            rights,
        })?;
        return Ok(());
    }
    if g.has_explicit(holder, receiver, Right::Take) {
        return reverse_take(session, holder, receiver, target, rights);
    }
    reverse_grant(session, receiver, holder, target, rights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::ProtectionGraph;

    fn setup(edge: Rights, forward: bool) -> (Session, VertexId, VertexId, VertexId) {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let y = g.add_subject("y");
        let z = g.add_object("z");
        if forward {
            g.add_edge(x, y, edge).unwrap();
        } else {
            g.add_edge(y, x, edge).unwrap();
        }
        (Session::new(g), x, y, z)
    }

    #[test]
    fn lemma_2_1_moves_rights_backwards_along_take_edge() {
        let (mut session, x, y, z) = setup(Rights::T, true);
        session
            .apply(DeJureRule::Create {
                actor: x,
                kind: VertexKind::Object,
                rights: Rights::RW,
                name: "unused-target-setup".to_string(),
            })
            .unwrap();
        // Give x rights over z directly instead.
        let mut g2 = session.graph().clone();
        g2.add_edge(x, z, Rights::RW).unwrap();
        let mut session = Session::new(g2);
        reverse_take(&mut session, x, y, z, Rights::RW).unwrap();
        assert!(session
            .graph()
            .rights(y, z)
            .explicit()
            .contains_all(Rights::RW));
        // The derivation replays.
        let (result, log) = session.into_parts();
        let mut base = result.clone();
        // Rebuild the base graph: strip to the original four vertices is
        // complex; instead verify the log is 4 steps of de jure rules.
        assert_eq!(log.len(), 4);
        assert_eq!(log.de_jure_count(), 4);
        base.clear_implicit();
    }

    #[test]
    fn lemma_2_1_requires_take_edge() {
        let (mut session, x, y, z) = setup(Rights::G, true);
        let err = reverse_take(&mut session, x, y, z, Rights::R).unwrap_err();
        assert!(matches!(err, RuleError::MissingExplicit { .. }));
        assert!(session.log().is_empty(), "failed lemma must not log rules");
    }

    #[test]
    fn lemma_2_1_requires_held_rights() {
        let (mut session, x, y, z) = setup(Rights::T, true);
        let err = reverse_take(&mut session, x, y, z, Rights::R).unwrap_err();
        assert_eq!(err, RuleError::NotSubset { src: x, dst: z });
    }

    #[test]
    fn lemma_2_1_requires_subjects() {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let y = g.add_object("y");
        let z = g.add_object("z");
        g.add_edge(x, y, Rights::T).unwrap();
        g.add_edge(x, z, Rights::R).unwrap();
        let mut session = Session::new(g);
        let err = reverse_take(&mut session, x, y, z, Rights::R).unwrap_err();
        assert_eq!(err, RuleError::NotSubject(y, "y"));
    }

    #[test]
    fn lemma_2_2_moves_rights_backwards_along_grant_edge() {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let y = g.add_subject("y");
        let z = g.add_object("z");
        g.add_edge(x, y, Rights::G).unwrap();
        g.add_edge(y, z, Rights::R).unwrap();
        let base = g.clone();
        let mut session = Session::new(g);
        reverse_grant(&mut session, x, y, z, Rights::R).unwrap();
        assert!(session.graph().has_explicit(x, z, Right::Read));
        let (result, log) = session.into_parts();
        assert_eq!(log.replayed(&base).unwrap(), result);
    }

    #[test]
    fn lemma_2_2_requires_grant_edge() {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let y = g.add_subject("y");
        let z = g.add_object("z");
        g.add_edge(x, y, Rights::T).unwrap();
        g.add_edge(y, z, Rights::R).unwrap();
        let mut session = Session::new(g);
        assert!(matches!(
            reverse_grant(&mut session, x, y, z, Rights::R).unwrap_err(),
            RuleError::MissingExplicit { .. }
        ));
    }

    #[test]
    fn transfer_covers_all_four_edge_cases() {
        // Case A: receiver --t--> holder (plain take).
        let mut g = ProtectionGraph::new();
        let h = g.add_subject("h");
        let r = g.add_subject("r");
        let z = g.add_object("z");
        g.add_edge(r, h, Rights::T).unwrap();
        g.add_edge(h, z, Rights::R).unwrap();
        let mut s = Session::new(g);
        transfer_between_adjacent_subjects(&mut s, h, r, z, Rights::R).unwrap();
        assert!(s.graph().has_explicit(r, z, Right::Read));
        assert_eq!(s.log().len(), 1);

        // Case B: holder --g--> receiver (plain grant).
        let mut g = ProtectionGraph::new();
        let h = g.add_subject("h");
        let r = g.add_subject("r");
        let z = g.add_object("z");
        g.add_edge(h, r, Rights::G).unwrap();
        g.add_edge(h, z, Rights::R).unwrap();
        let mut s = Session::new(g);
        transfer_between_adjacent_subjects(&mut s, h, r, z, Rights::R).unwrap();
        assert!(s.graph().has_explicit(r, z, Right::Read));
        assert_eq!(s.log().len(), 1);

        // Case C: holder --t--> receiver (Lemma 2.1).
        let mut g = ProtectionGraph::new();
        let h = g.add_subject("h");
        let r = g.add_subject("r");
        let z = g.add_object("z");
        g.add_edge(h, r, Rights::T).unwrap();
        g.add_edge(h, z, Rights::R).unwrap();
        let mut s = Session::new(g);
        transfer_between_adjacent_subjects(&mut s, h, r, z, Rights::R).unwrap();
        assert!(s.graph().has_explicit(r, z, Right::Read));
        assert_eq!(s.log().len(), 4);

        // Case D: receiver --g--> holder (Lemma 2.2).
        let mut g = ProtectionGraph::new();
        let h = g.add_subject("h");
        let r = g.add_subject("r");
        let z = g.add_object("z");
        g.add_edge(r, h, Rights::G).unwrap();
        g.add_edge(h, z, Rights::R).unwrap();
        let mut s = Session::new(g);
        transfer_between_adjacent_subjects(&mut s, h, r, z, Rights::R).unwrap();
        assert!(s.graph().has_explicit(r, z, Right::Read));
        assert_eq!(s.log().len(), 4);
    }

    #[test]
    fn transfer_is_noop_when_rights_already_held() {
        let mut g = ProtectionGraph::new();
        let h = g.add_subject("h");
        let r = g.add_subject("r");
        let z = g.add_object("z");
        g.add_edge(r, z, Rights::R).unwrap();
        g.add_edge(h, z, Rights::R).unwrap();
        let mut s = Session::new(g);
        transfer_between_adjacent_subjects(&mut s, h, r, z, Rights::R).unwrap();
        assert!(s.log().is_empty());
    }

    #[test]
    fn transfer_fails_without_tg_edge() {
        let mut g = ProtectionGraph::new();
        let h = g.add_subject("h");
        let r = g.add_subject("r");
        let z = g.add_object("z");
        g.add_edge(h, z, Rights::R).unwrap();
        let mut s = Session::new(g);
        assert!(transfer_between_adjacent_subjects(&mut s, h, r, z, Rights::R).is_err());
    }
}
