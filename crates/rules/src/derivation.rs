//! Replayable rule sequences.
//!
//! A [`Derivation`] is the concrete object behind every `G ⊢* G'` statement
//! in the paper: an ordered list of rule applications. Because vertex ids
//! are assigned densely in creation order, a derivation recorded against a
//! graph replays deterministically on any equal graph — `create` steps
//! yield the same ids. The witness synthesizers in `tg-analysis` return
//! derivations, and the property tests replay them to prove the decision
//! procedures sound.

use core::fmt;

use tg_graph::ProtectionGraph;

use crate::rule::{apply, Effect, Rule};
use crate::RuleError;

/// An ordered sequence of rules.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct Derivation {
    /// The rules, in application order.
    pub steps: Vec<Rule>,
}

/// A replay failure: which step failed and why.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplayError {
    /// Index of the failing step.
    pub step: usize,
    /// The rule that failed.
    pub rule: Rule,
    /// The precondition error.
    pub error: RuleError,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {} ({}) failed: {}",
            self.step, self.rule, self.error
        )
    }
}

impl std::error::Error for ReplayError {}

impl Derivation {
    /// The empty derivation (`G ⊢* G` in zero steps).
    pub fn new() -> Derivation {
        Derivation::default()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the derivation has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a rule.
    pub fn push(&mut self, rule: impl Into<Rule>) {
        self.steps.push(rule.into());
    }

    /// Appends every step of `other`.
    pub fn extend(&mut self, other: Derivation) {
        self.steps.extend(other.steps);
    }

    /// Applies every step to `graph` in order, returning the effects.
    /// On failure the graph is left in the state reached by the preceding
    /// steps (callers that need atomicity should use [`Derivation::replayed`]).
    pub fn replay(&self, graph: &mut ProtectionGraph) -> Result<Vec<Effect>, ReplayError> {
        let mut effects = Vec::with_capacity(self.steps.len());
        for (step, rule) in self.steps.iter().enumerate() {
            match apply(graph, rule) {
                Ok(effect) => effects.push(effect),
                Err(error) => {
                    return Err(ReplayError {
                        step,
                        rule: rule.clone(),
                        error,
                    })
                }
            }
        }
        Ok(effects)
    }

    /// Replays onto a clone of `graph`, returning the resulting graph and
    /// leaving the original untouched.
    pub fn replayed(&self, graph: &ProtectionGraph) -> Result<ProtectionGraph, ReplayError> {
        let mut clone = graph.clone();
        self.replay(&mut clone)?;
        Ok(clone)
    }

    /// Number of de jure steps.
    pub fn de_jure_count(&self) -> usize {
        self.steps.iter().filter(|r| r.is_de_jure()).count()
    }

    /// Number of de facto steps.
    pub fn de_facto_count(&self) -> usize {
        self.len() - self.de_jure_count()
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(empty derivation)");
        }
        for (i, rule) in self.steps.iter().enumerate() {
            writeln!(f, "{:>3}. {rule}", i + 1)?;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for Derivation {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Derivation {
        Derivation {
            steps: iter.into_iter().collect(),
        }
    }
}

/// A graph being rewritten together with the log of rules applied so far.
///
/// Witness synthesis works against a `Session`: rules are applied eagerly
/// (so later steps can depend on earlier effects, including fresh vertex
/// ids) and the log is extracted at the end as a [`Derivation`].
///
/// # Examples
///
/// ```
/// use tg_graph::{ProtectionGraph, Rights, VertexKind};
/// use tg_rules::{DeJureRule, Session};
///
/// let mut g = ProtectionGraph::new();
/// let s = g.add_subject("s");
///
/// let mut session = Session::new(g.clone());
/// session.apply(DeJureRule::Create {
///     actor: s,
///     kind: VertexKind::Object,
///     rights: Rights::RW,
///     name: "buffer".to_string(),
/// }).unwrap();
///
/// let (result, derivation) = session.into_parts();
/// // The log replays onto the original graph and reproduces the result.
/// assert_eq!(derivation.replayed(&g).unwrap(), result);
/// ```
#[derive(Clone, Debug)]
pub struct Session {
    graph: ProtectionGraph,
    log: Derivation,
}

impl Session {
    /// Starts a session from `graph`.
    pub fn new(graph: ProtectionGraph) -> Session {
        Session {
            graph,
            log: Derivation::new(),
        }
    }

    /// The current graph state.
    pub fn graph(&self) -> &ProtectionGraph {
        &self.graph
    }

    /// The rules applied so far.
    pub fn log(&self) -> &Derivation {
        &self.log
    }

    /// Applies a rule, recording it on success.
    pub fn apply(&mut self, rule: impl Into<Rule>) -> Result<Effect, RuleError> {
        let rule = rule.into();
        let effect = apply(&mut self.graph, &rule)?;
        self.log.push(rule);
        Ok(effect)
    }

    /// Applies every step of `derivation` through the session (each step
    /// is checked and logged). On failure the session retains the steps
    /// that succeeded.
    pub fn run(&mut self, derivation: &Derivation) -> Result<(), ReplayError> {
        for (step, rule) in derivation.steps.iter().enumerate() {
            if let Err(error) = self.apply(rule.clone()) {
                return Err(ReplayError {
                    step,
                    rule: rule.clone(),
                    error,
                });
            }
        }
        Ok(())
    }

    /// Consumes the session, yielding the final graph and the log.
    pub fn into_parts(self) -> (ProtectionGraph, Derivation) {
        (self.graph, self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::DeJureRule;
    use tg_graph::{Rights, VertexKind};

    #[test]
    fn empty_derivation_replays_to_identity() {
        let mut g = ProtectionGraph::new();
        g.add_subject("s");
        let snapshot = g.clone();
        let d = Derivation::new();
        assert!(d.replay(&mut g).unwrap().is_empty());
        assert_eq!(g, snapshot);
    }

    #[test]
    fn replay_reports_failing_step() {
        let mut g = ProtectionGraph::new();
        let s = g.add_subject("s");
        let o = g.add_object("o");
        let mut d = Derivation::new();
        d.push(DeJureRule::Create {
            actor: s,
            kind: VertexKind::Object,
            rights: Rights::R,
            name: "n".to_string(),
        });
        // Step 2 lacks the `t` right on s -> o, so it must fail.
        d.push(DeJureRule::Take {
            actor: s,
            via: o,
            target: tg_graph::VertexId::from_index(2),
            rights: Rights::R,
        });
        let err = d.replayed(&g).unwrap_err();
        assert_eq!(err.step, 1);
        assert!(err.to_string().contains("step 1"));
    }

    #[test]
    fn creates_replay_with_stable_ids() {
        let mut g = ProtectionGraph::new();
        let s = g.add_subject("s");
        let mut session = Session::new(g.clone());
        let Effect::Created { id, .. } = session
            .apply(DeJureRule::Create {
                actor: s,
                kind: VertexKind::Object,
                rights: Rights::TG,
                name: "v".to_string(),
            })
            .unwrap()
        else {
            panic!("expected Created");
        };
        // Use the created vertex in a later step.
        session
            .apply(DeJureRule::Remove {
                actor: s,
                target: id,
                rights: Rights::G,
            })
            .unwrap();
        let (result, log) = session.into_parts();
        assert_eq!(log.len(), 2);
        assert_eq!(log.de_jure_count(), 2);
        assert_eq!(log.de_facto_count(), 0);
        let replayed = log.replayed(&g).unwrap();
        assert_eq!(replayed, result);
        assert_eq!(replayed.rights(s, id).explicit(), Rights::T);
    }

    #[test]
    fn display_lists_steps() {
        let mut g = ProtectionGraph::new();
        let s = g.add_subject("s");
        let mut d = Derivation::new();
        d.push(DeJureRule::Create {
            actor: s,
            kind: VertexKind::Subject,
            rights: Rights::G,
            name: "n".to_string(),
        });
        let text = d.to_string();
        assert!(text.contains("1."));
        assert!(text.contains("creates"));
        assert_eq!(Derivation::new().to_string(), "(empty derivation)");
    }
}
