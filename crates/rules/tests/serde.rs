//! Serialization round trips for rules and derivations — the on-disk form
//! a monitoring deployment would log and replay.

#![cfg(feature = "serde")]

use tg_graph::{ProtectionGraph, Rights, VertexId, VertexKind};
use tg_rules::{DeFactoRule, DeJureRule, Derivation, Rule};

fn sample_rules() -> Vec<Rule> {
    let v = VertexId::from_index;
    vec![
        Rule::DeJure(DeJureRule::Take {
            actor: v(0),
            via: v(1),
            target: v(2),
            rights: Rights::R | Rights::T,
        }),
        Rule::DeJure(DeJureRule::Grant {
            actor: v(0),
            via: v(2),
            target: v(1),
            rights: Rights::E,
        }),
        Rule::DeJure(DeJureRule::Create {
            actor: v(0),
            kind: VertexKind::Object,
            rights: Rights::TG,
            name: "buffer".to_string(),
        }),
        Rule::DeJure(DeJureRule::Remove {
            actor: v(0),
            target: v(1),
            rights: Rights::RW,
        }),
        Rule::DeFacto(DeFactoRule::Post {
            x: v(0),
            y: v(1),
            z: v(2),
        }),
        Rule::DeFacto(DeFactoRule::Pass {
            x: v(1),
            y: v(0),
            z: v(2),
        }),
        Rule::DeFacto(DeFactoRule::Spy {
            x: v(0),
            y: v(2),
            z: v(1),
        }),
        Rule::DeFacto(DeFactoRule::Find {
            x: v(2),
            y: v(0),
            z: v(1),
        }),
    ]
}

#[test]
fn every_rule_round_trips_through_json() {
    for rule in sample_rules() {
        let json = serde_json::to_string(&rule).unwrap();
        let back: Rule = serde_json::from_str(&json).unwrap();
        assert_eq!(rule, back, "{json}");
    }
}

#[test]
fn derivations_round_trip_and_still_replay() {
    // A real derivation from a session, serialized, deserialized, replayed.
    let mut g = ProtectionGraph::new();
    let s = g.add_subject("s");
    let q = g.add_object("q");
    let o = g.add_object("o");
    g.add_edge(s, q, Rights::T).unwrap();
    g.add_edge(q, o, Rights::R).unwrap();

    let mut d = Derivation::new();
    d.push(DeJureRule::Take {
        actor: s,
        via: q,
        target: o,
        rights: Rights::R,
    });
    d.push(DeJureRule::Create {
        actor: s,
        kind: VertexKind::Object,
        rights: Rights::RW,
        name: "copy".to_string(),
    });

    let json = serde_json::to_string_pretty(&d).unwrap();
    let back: Derivation = serde_json::from_str(&json).unwrap();
    assert_eq!(d, back);
    let from_original = d.replayed(&g).unwrap();
    let from_wire = back.replayed(&g).unwrap();
    assert_eq!(from_original, from_wire);
    assert!(from_wire.has_explicit(s, o, tg_graph::Right::Read));
}

#[test]
fn malformed_json_is_rejected() {
    assert!(serde_json::from_str::<Rule>("{\"DeJure\":{\"Take\":{}}}").is_err());
    assert!(serde_json::from_str::<Derivation>("{\"steps\": 3}").is_err());
}
