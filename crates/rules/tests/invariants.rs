//! Rule-engine invariants under random rule streams: whatever sequence of
//! (attempted) rules runs, the graph stays structurally well-formed and
//! the two edge families evolve only the ways the model allows.

use proptest::prelude::*;
use tg_graph::{ProtectionGraph, Rights, VertexId, VertexKind};
use tg_rules::{apply, DeFactoRule, DeJureRule, Rule};

fn base_graph(kinds: &[bool], edges: &[(usize, usize, u8)]) -> ProtectionGraph {
    let mut g = ProtectionGraph::new();
    for (i, &is_subject) in kinds.iter().enumerate() {
        if is_subject {
            g.add_subject(format!("s{i}"));
        } else {
            g.add_object(format!("o{i}"));
        }
    }
    let n = kinds.len();
    for &(a, b, bits) in edges {
        let src = VertexId::from_index(a % n);
        let dst = VertexId::from_index(b % n);
        if src == dst {
            continue;
        }
        let rights = Rights::from_bits(u16::from(bits) & 0b11111);
        if rights.is_empty() {
            continue;
        }
        g.add_edge(src, dst, rights).unwrap();
    }
    g
}

fn decode_rule(g: &ProtectionGraph, raw: (u8, usize, usize, usize, u8)) -> Rule {
    let n = g.vertex_count();
    let v = |i: usize| VertexId::from_index(i % n);
    let (kind, a, b, c, bits) = raw;
    let rights = {
        let r = Rights::from_bits(u16::from(bits) & 0b11111);
        if r.is_empty() {
            Rights::R
        } else {
            r
        }
    };
    match kind % 8 {
        0 => Rule::DeJure(DeJureRule::Take {
            actor: v(a),
            via: v(b),
            target: v(c),
            rights,
        }),
        1 => Rule::DeJure(DeJureRule::Grant {
            actor: v(a),
            via: v(b),
            target: v(c),
            rights,
        }),
        2 => Rule::DeJure(DeJureRule::Create {
            actor: v(a),
            kind: if bits % 2 == 0 {
                VertexKind::Object
            } else {
                VertexKind::Subject
            },
            rights,
            name: "fresh".to_string(),
        }),
        3 => Rule::DeJure(DeJureRule::Remove {
            actor: v(a),
            target: v(b),
            rights,
        }),
        4 => Rule::DeFacto(DeFactoRule::Post {
            x: v(a),
            y: v(b),
            z: v(c),
        }),
        5 => Rule::DeFacto(DeFactoRule::Pass {
            x: v(a),
            y: v(b),
            z: v(c),
        }),
        6 => Rule::DeFacto(DeFactoRule::Spy {
            x: v(a),
            y: v(b),
            z: v(c),
        }),
        _ => Rule::DeFacto(DeFactoRule::Find {
            x: v(a),
            y: v(b),
            z: v(c),
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_rule_streams_preserve_structural_invariants(
        kinds in prop::collection::vec(prop::bool::weighted(0.6), 2..6),
        edges in prop::collection::vec((0usize..6, 0usize..6, 0u8..32), 0..10),
        stream in prop::collection::vec(
            (0u8..8, 0usize..8, 0usize..8, 0usize..8, 0u8..32),
            0..40
        ),
    ) {
        let mut g = base_graph(&kinds, &edges);
        let initial_vertices = g.vertex_count();
        let mut implicit_pairs: Vec<(VertexId, VertexId)> = g
            .edges()
            .filter(|e| !e.rights.implicit.is_empty())
            .map(|e| (e.src, e.dst))
            .collect();

        for raw in stream {
            let rule = decode_rule(&g, raw);
            let before = g.clone();
            match apply(&mut g, &rule) {
                Ok(_) => {}
                Err(_) => {
                    // Failed rules must not mutate.
                    prop_assert_eq!(&g, &before, "a rejected rule changed the graph");
                    continue;
                }
            }
            // Vertices never disappear.
            prop_assert!(g.vertex_count() >= before.vertex_count());
            // No self-edges ever.
            for e in g.edges() {
                prop_assert_ne!(e.src, e.dst);
            }
            // Implicit rights only grow (no rule removes them).
            for &(s, d) in &implicit_pairs {
                prop_assert!(
                    !g.rights(s, d).implicit().is_empty(),
                    "an implicit edge vanished"
                );
            }
            implicit_pairs = g
                .edges()
                .filter(|e| !e.rights.implicit.is_empty())
                .map(|e| (e.src, e.dst))
                .collect();
            // De facto rules never touch explicit edges.
            if !rule.is_de_jure() {
                let explicit_now: Vec<_> = g
                    .edges()
                    .filter(|e| !e.rights.explicit.is_empty())
                    .map(|e| (e.src, e.dst, e.rights.explicit))
                    .collect();
                let explicit_before: Vec<_> = before
                    .edges()
                    .filter(|e| !e.rights.explicit.is_empty())
                    .map(|e| (e.src, e.dst, e.rights.explicit))
                    .collect();
                prop_assert_eq!(explicit_now, explicit_before);
            }
        }
        prop_assert!(g.vertex_count() >= initial_vertices);
    }

    /// Replaying a session log on the base graph reproduces the session's
    /// final graph, whatever the (valid) rule mix was.
    #[test]
    fn session_logs_replay_exactly(
        kinds in prop::collection::vec(prop::bool::weighted(0.7), 2..5),
        edges in prop::collection::vec((0usize..5, 0usize..5, 0u8..32), 0..8),
        stream in prop::collection::vec(
            (0u8..8, 0usize..6, 0usize..6, 0usize..6, 0u8..32),
            0..25
        ),
    ) {
        let base = base_graph(&kinds, &edges);
        let mut session = tg_rules::Session::new(base.clone());
        for raw in stream {
            let rule = decode_rule(session.graph(), raw);
            let _ = session.apply(rule);
        }
        let (final_graph, log) = session.into_parts();
        let replayed = log.replayed(&base).expect("logged rules replay");
        prop_assert_eq!(replayed, final_graph);
    }
}
