//! Codec round trips for rules and derivations — the on-disk form the
//! monitor's write-ahead journal logs and replays.

use tg_graph::{ProtectionGraph, Rights, VertexId, VertexKind};
use tg_rules::codec::{decode_derivation, decode_rule, encode_derivation, encode_rule};
use tg_rules::{DeFactoRule, DeJureRule, Derivation, Rule};

fn sample_rules() -> Vec<Rule> {
    let v = VertexId::from_index;
    vec![
        Rule::DeJure(DeJureRule::Take {
            actor: v(0),
            via: v(1),
            target: v(2),
            rights: Rights::R | Rights::T,
        }),
        Rule::DeJure(DeJureRule::Grant {
            actor: v(0),
            via: v(2),
            target: v(1),
            rights: Rights::E,
        }),
        Rule::DeJure(DeJureRule::Create {
            actor: v(0),
            kind: VertexKind::Object,
            rights: Rights::TG,
            name: "buffer".to_string(),
        }),
        Rule::DeJure(DeJureRule::Remove {
            actor: v(0),
            target: v(1),
            rights: Rights::RW,
        }),
        Rule::DeFacto(DeFactoRule::Post {
            x: v(0),
            y: v(1),
            z: v(2),
        }),
        Rule::DeFacto(DeFactoRule::Pass {
            x: v(1),
            y: v(0),
            z: v(2),
        }),
        Rule::DeFacto(DeFactoRule::Spy {
            x: v(0),
            y: v(2),
            z: v(1),
        }),
        Rule::DeFacto(DeFactoRule::Find {
            x: v(2),
            y: v(0),
            z: v(1),
        }),
    ]
}

#[test]
fn every_rule_round_trips_through_the_codec() {
    for rule in sample_rules() {
        let line = encode_rule(&rule);
        let back = decode_rule(&line).unwrap();
        assert_eq!(rule, back, "{line}");
    }
}

#[test]
fn derivations_round_trip_and_still_replay() {
    // A real derivation from a session, encoded, decoded, replayed.
    let mut g = ProtectionGraph::new();
    let s = g.add_subject("s");
    let q = g.add_object("q");
    let o = g.add_object("o");
    g.add_edge(s, q, Rights::T).unwrap();
    g.add_edge(q, o, Rights::R).unwrap();

    let mut d = Derivation::new();
    d.push(DeJureRule::Take {
        actor: s,
        via: q,
        target: o,
        rights: Rights::R,
    });
    d.push(DeJureRule::Create {
        actor: s,
        kind: VertexKind::Object,
        rights: Rights::RW,
        name: "copy".to_string(),
    });

    let text = encode_derivation(&d);
    let back = decode_derivation(&text).unwrap();
    assert_eq!(d, back);
    let from_original = d.replayed(&g).unwrap();
    let from_wire = back.replayed(&g).unwrap();
    assert_eq!(from_original, from_wire);
    assert!(from_wire.has_explicit(s, o, tg_graph::Right::Read));
}

#[test]
fn malformed_lines_are_rejected() {
    assert!(decode_rule("take").is_err());
    assert!(decode_rule("take 0 1 2 x1 extra").is_err());
    assert!(decode_rule("borrow 0 1 2").is_err());
    assert!(decode_rule("post 0 one 2").is_err());
    assert!(decode_derivation("take 0 1 2 x1\ngarbage line\n").is_err());
}

#[test]
fn custom_rights_beyond_the_named_five_round_trip() {
    let rule = Rule::DeJure(DeJureRule::Take {
        actor: VertexId::from_index(0),
        via: VertexId::from_index(1),
        target: VertexId::from_index(2),
        rights: Rights::from_bits(0b1010_0000_0010_0001),
    });
    assert_eq!(decode_rule(&encode_rule(&rule)).unwrap(), rule);
}
