//! The acceptance soak: ≥ 32 concurrent sessions, ≥ 10 000 requests,
//! a commit log underneath, and a byte-identical offline replay at the
//! end. Writes `BENCH_serve.json` at the workspace root.

use tg_serve::soak::{run_soak, SoakConfig};

#[test]
fn soak_thirty_two_sessions_ten_thousand_requests() {
    let log_dir = std::env::temp_dir().join(format!("tg-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&log_dir);
    let config = SoakConfig {
        sessions: 32,
        requests_per_session: 320, // 10 240 total
        batch_window: 16,
        seed: 42,
        scale: 96,
        log_dir: log_dir.clone(),
    };
    let report = run_soak(&config).expect("soak run");
    let _ = std::fs::remove_dir_all(&log_dir);

    assert_eq!(report.sessions, 32);
    assert!(
        report.requests >= 10_000,
        "acceptance floor: {} requests",
        report.requests
    );
    // Every request got a verdict, and none were transport errors. The
    // corpus trace applies random (sometimes ill-formed) rules, so
    // refusals are expected workload — errors are not.
    assert_eq!(report.ok + report.refused + report.errors, report.requests);
    assert_eq!(report.errors, 0, "error verdicts in a well-formed trace");
    assert!(report.refused > 0, "a corpus trace always trips refusals");
    // Zero admitted-but-unlogged mutations: the daemon's final graph is
    // byte-identical to an offline recovery of its commit log.
    assert!(report.replay_identical, "live state diverged from replay");
    assert!(report.final_epoch > 0, "no mutations were logged");
    // The latency percentiles are ordered and populated.
    assert!(report.p50_us <= report.p99_us);
    assert!(report.p99_us <= report.max_us);
    assert!(report.throughput_rps > 0.0);
    // The daemon really multiplexed: every session was accepted and
    // batching coalesced requests (fewer batches than mutations).
    assert_eq!(report.server.sessions as usize, 33); // 32 + control
    assert!(report.server.batches > 0);
    assert_eq!(report.server.protocol_errors, 0);

    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("soak summary ({path}):\n{json}");
}
