//! Live-daemon integration tests: real sockets, real threads, one
//! gateway. Every test boots a server on an ephemeral loopback port (or
//! a Unix socket), talks TGP1 to it, and shuts it down through the
//! protocol.

use std::io::{Read, Write};
use std::net::TcpStream;

use tg_graph::{ProtectionGraph, Rights};
use tg_hierarchy::{CombinedRestriction, LevelAssignment, Monitor};
use tg_par::Pool;
use tg_serve::proto::{encode_frame, read_frame, write_magic, ProtoError, MAX_FRAME};
use tg_serve::{Bind, Client, Frame, Opcode, ServeConfig, Server};

/// Two subjects and two documents at one level; `s1 -t-> s2`, `s2`
/// reads both documents.
fn system() -> (ProtectionGraph, LevelAssignment) {
    let mut g = ProtectionGraph::new();
    let s1 = g.add_subject("s1");
    let s2 = g.add_subject("s2");
    let doc_a = g.add_object("doc_a");
    let doc_b = g.add_object("doc_b");
    g.add_edge(s1, s2, Rights::T).unwrap();
    g.add_edge(s2, doc_a, Rights::R).unwrap();
    g.add_edge(s2, doc_b, Rights::R).unwrap();
    let mut levels = LevelAssignment::linear(&["only"]);
    for v in [s1, s2, doc_a, doc_b] {
        levels.assign(v, 0).unwrap();
    }
    (g, levels)
}

fn boot(batch_window: usize) -> Server {
    let (g, levels) = system();
    let monitor = Monitor::new(g, levels, Box::new(CombinedRestriction));
    Server::start(
        Bind::Tcp("127.0.0.1:0".to_string()),
        monitor,
        None,
        ServeConfig { batch_window },
        Pool::new(2),
    )
    .expect("boot server")
}

#[test]
fn a_session_round_trips_every_request_kind() {
    let server = boot(4);
    let mut client = Client::connect_tcp(server.local_addr()).unwrap();

    let pong = client.request(Opcode::Ping, "").unwrap();
    assert_eq!(
        (pong.opcode, pong.payload_text()),
        (Opcode::Ok, "pong".into())
    );

    // s1 takes r over doc_a through s2.
    let applied = client.request(Opcode::Apply, "take 0 1 2 x1").unwrap();
    assert_eq!(applied.opcode, Opcode::Ok);
    assert_eq!(applied.payload_text(), "applied");

    let shared = client.request(Opcode::CanShare, "r s1 doc_b").unwrap();
    assert_eq!(shared.payload_text(), "true");
    let know = client.request(Opcode::CanKnow, "s1 doc_a").unwrap();
    assert_eq!(know.opcode, Opcode::Ok);
    let island = client.request(Opcode::SameIsland, "s1 s2").unwrap();
    assert_eq!(island.payload_text(), "true");
    let audit = client.request(Opcode::Audit, "").unwrap();
    assert_eq!(audit.payload_text(), "clean");
    let stats = client.request(Opcode::Stats, "").unwrap();
    assert!(stats.payload_text().starts_with("permitted 1 "));

    let bye = client.request(Opcode::Shutdown, "").unwrap();
    assert_eq!((bye.opcode, bye.payload_text()), (Opcode::Ok, "bye".into()));
    let (report, monitor, _) = server.join().unwrap();
    assert_eq!(report.sessions, 1);
    assert_eq!(report.frames, 8);
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(monitor.stats().permitted, 1);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = boot(3);
    let mut client = Client::connect_tcp(server.local_addr()).unwrap();
    // Three mutations fill the window; the pings land after.
    for payload in ["take 0 1 2 x1", "take 0 1 3 x1"] {
        client.send(Opcode::Apply, payload).unwrap();
    }
    client.send(Opcode::Stats, "").unwrap();
    client.send(Opcode::Ping, "").unwrap();
    let first = client.recv().unwrap();
    let second = client.recv().unwrap();
    let stats = client.recv().unwrap();
    let ping = client.recv().unwrap();
    assert_eq!(first.request_id, 1);
    assert_eq!(second.request_id, 2);
    assert_eq!(first.payload_text(), "applied");
    assert_eq!(second.payload_text(), "applied");
    // The stats query flushed the batch before answering, so both
    // admissions are visible.
    assert!(stats.payload_text().starts_with("permitted 2 "));
    assert_eq!(ping.payload_text(), "pong");
    server.shutdown_now();
    server.join().unwrap();
}

#[test]
fn concurrent_sessions_all_get_answers() {
    let server = boot(8);
    let addr = server.local_addr().to_string();
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).unwrap();
                for _ in 0..25 {
                    let frame = client.request(Opcode::CanShare, "r s1 doc_a").unwrap();
                    assert_eq!(frame.opcode, Opcode::Ok);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    server.shutdown_now();
    let (report, _, _) = server.join().unwrap();
    assert_eq!(report.sessions, 8);
    assert_eq!(report.frames, 200);
}

#[test]
fn bad_magic_is_refused_and_the_connection_closes() {
    let server = boot(4);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(b"HTTP").unwrap();
    let reply = read_frame(&mut stream).unwrap();
    assert_eq!(reply.opcode, Opcode::Error);
    assert!(reply.payload_text().starts_with("bad-magic"));
    // The server closed the connection: the next read sees EOF.
    let mut buf = [0u8; 1];
    assert_eq!(stream.read(&mut buf).unwrap(), 0);
    // And the daemon is still alive for well-behaved clients.
    let mut client = Client::connect_tcp(server.local_addr()).unwrap();
    assert_eq!(
        client.request(Opcode::Ping, "").unwrap().payload_text(),
        "pong"
    );
    server.shutdown_now();
    let (report, _, _) = server.join().unwrap();
    assert_eq!(report.protocol_errors, 1);
}

#[test]
fn oversized_frames_fail_closed() {
    let server = boot(4);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_magic(&mut stream).unwrap();
    stream.write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
    let reply = read_frame(&mut stream).unwrap();
    assert_eq!(reply.opcode, Opcode::Error);
    assert!(reply.payload_text().starts_with("oversized-frame"));
    let mut buf = [0u8; 1];
    assert_eq!(stream.read(&mut buf).unwrap(), 0);
    server.shutdown_now();
    server.join().unwrap();
}

#[test]
fn unknown_opcodes_answer_error_but_keep_the_session() {
    let server = boot(4);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_magic(&mut stream).unwrap();
    // Opcode 0x42 is unassigned: decoding fails as a framing violation.
    let mut bytes = encode_frame(&Frame::text(7, Opcode::Ping, "")).to_vec();
    bytes[12] = 0x42;
    stream.write_all(&bytes).unwrap();
    let reply = read_frame(&mut stream).unwrap();
    assert_eq!(reply.opcode, Opcode::Error);
    assert!(reply.payload_text().starts_with("bad-opcode"));
    server.shutdown_now();
    server.join().unwrap();
}

#[test]
fn response_opcodes_in_requests_answer_error_and_keep_the_session() {
    let server = boot(4);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_magic(&mut stream).unwrap();
    // `Ok` decodes as a frame but is not a request: the session
    // survives with an error verdict.
    stream
        .write_all(&encode_frame(&Frame::text(7, Opcode::Ok, "")))
        .unwrap();
    let reply = read_frame(&mut stream).unwrap();
    assert_eq!((reply.request_id, reply.opcode), (7, Opcode::Error));
    assert!(reply.payload_text().starts_with("bad-opcode"));
    stream
        .write_all(&encode_frame(&Frame::text(8, Opcode::Ping, "")))
        .unwrap();
    let pong = read_frame(&mut stream).unwrap();
    assert_eq!((pong.request_id, pong.opcode), (8, Opcode::Ok));
    server.shutdown_now();
    server.join().unwrap();
}

#[test]
fn truncated_frames_fail_closed() {
    let server = boot(4);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_magic(&mut stream).unwrap();
    // Announce 100 bytes, send 20, then half-close.
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(&[0u8; 20]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let reply = read_frame(&mut stream).unwrap();
    assert_eq!(reply.opcode, Opcode::Error);
    assert!(reply.payload_text().starts_with("truncated-frame"));
    server.shutdown_now();
    server.join().unwrap();
}

#[cfg(unix)]
#[test]
fn unix_sockets_serve_and_refuse_occupied_paths() {
    let dir = std::env::temp_dir().join(format!("tg-serve-unix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("daemon.sock");

    let (g, levels) = system();
    let monitor = Monitor::new(g, levels, Box::new(CombinedRestriction));
    let server = Server::start(
        Bind::Unix(path.clone()),
        monitor,
        None,
        ServeConfig::default(),
        Pool::new(2),
    )
    .unwrap();

    // A second bind on the same path is refused while the first lives.
    let (g, levels) = system();
    let monitor = Monitor::new(g, levels, Box::new(CombinedRestriction));
    let err = match Server::start(
        Bind::Unix(path.clone()),
        monitor,
        None,
        ServeConfig::default(),
        Pool::new(2),
    ) {
        Err(err) => err,
        Ok(_) => panic!("second bind on an occupied path must fail"),
    };
    assert!(err.contains("already exists"), "{err}");

    let mut client = Client::connect_unix(&path).unwrap();
    assert_eq!(
        client.request(Opcode::Ping, "").unwrap().payload_text(),
        "pong"
    );
    assert_eq!(
        client.request(Opcode::Shutdown, "").unwrap().payload_text(),
        "bye"
    );
    server.join().unwrap();
    // The daemon removed its socket file on the way out.
    assert!(!path.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn script_runner_drives_a_live_daemon() {
    let server = boot(2);
    let mut client = Client::connect_tcp(server.local_addr()).unwrap();
    let lines = tg_serve::parse_script(
        "# exercise the whole dialect\n\
         ping\n\
         apply take 0 1 2 x1\n\
         apply take 0 1 3 x1\n\
         can-share r s1 doc_a\n\
         can-know nosuch doc_a\n\
         audit\n\
         stats\n\
         shutdown\n",
    )
    .unwrap();
    let mut out = String::new();
    let outcome = tg_serve::run_script(&mut client, &lines, &mut out).unwrap();
    assert_eq!(outcome.ok, 7);
    assert_eq!(outcome.refused, 0);
    assert_eq!(outcome.errors, 1); // the unknown vertex
    assert!(out.contains("1 ok: pong"));
    assert!(out.contains("5 error: unknown-vertex"));
    assert!(out.contains("8 ok: bye"));
    server.join().unwrap();
}

#[test]
fn proto_error_display_is_the_wire_code() {
    // The Display impls double as the stable error codes PROTOCOL.md
    // documents; a rename here is a protocol change.
    assert!(ProtoError::BadMagic(*b"HTTP")
        .to_string()
        .starts_with("bad-magic"));
    assert!(ProtoError::Oversized(MAX_FRAME + 1)
        .to_string()
        .starts_with("oversized-frame"));
    assert!(ProtoError::Undersized(3)
        .to_string()
        .starts_with("short-frame"));
    assert!(ProtoError::BadOpcode(0x42)
        .to_string()
        .starts_with("bad-opcode"));
    assert!(ProtoError::Truncated {
        expected: 100,
        got: 20
    }
    .to_string()
    .starts_with("truncated-frame"));
}
