//! Crash-during-batch: tear the chain file mid-record and show recovery
//! lands exactly on the last fully-admitted batch the gateway flushed.

use tg_graph::{render_graph, ProtectionGraph, Rights};
use tg_hierarchy::{CombinedRestriction, LevelAssignment};
use tg_log::{CommitLog, DirStore, LogConfig, CHAIN_FILE};
use tg_par::Pool;
use tg_rules::{DeJureRule, Rule};
use tg_serve::Gateway;

/// `s1 -t-> s2`; `s2` holds a right over each of four documents, so
/// four independent takes admit cleanly.
fn system() -> (ProtectionGraph, LevelAssignment) {
    let mut g = ProtectionGraph::new();
    let s1 = g.add_subject("s1");
    let s2 = g.add_subject("s2");
    g.add_edge(s1, s2, Rights::T).unwrap();
    let mut ids = vec![s1, s2];
    for i in 0..4 {
        let doc = g.add_object(format!("doc{i}"));
        g.add_edge(s2, doc, Rights::R).unwrap();
        ids.push(doc);
    }
    let mut levels = LevelAssignment::linear(&["only"]);
    for v in ids {
        levels.assign(v, 0).unwrap();
    }
    (g, levels)
}

fn take(g: &ProtectionGraph, target: &str) -> Box<Rule> {
    let v = |n: &str| g.find_by_name(n).expect("vertex");
    Box::new(Rule::DeJure(DeJureRule::Take {
        actor: v("s1"),
        via: v("s2"),
        target: v(target),
        rights: Rights::R,
    }))
}

#[test]
fn recovery_lands_on_the_last_fully_admitted_batch() {
    let dir = std::env::temp_dir().join(format!("tg-serve-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let (g, levels) = system();
    let genesis = tg_log::seed_digest(&g, &levels);
    let log_config = LogConfig {
        snapshot_interval: 0, // recovery must come from the chain alone
        write_through: true,
    };
    let store = DirStore::open(&dir).unwrap();
    let (log, monitor) = CommitLog::create(
        Box::new(store),
        g.clone(),
        levels,
        Box::new(CombinedRestriction),
        log_config,
    )
    .unwrap();

    let pool = Pool::sequential();
    let mut gateway: Gateway<u32> = Gateway::new(monitor, Some(log), 2);

    // Batch 1 admits and persists; remember its durable length and the
    // graph it left behind.
    for (i, doc) in ["doc0", "doc1"].iter().enumerate() {
        for (_, verdict) in gateway.submit_mutation(i as u32, take(&g, doc)) {
            assert!(matches!(verdict, tg_serve::Verdict::Ok(_)));
        }
    }
    let _ = pool; // gateway flushes on the window boundary; no waves here
    let chain_path = dir.join(CHAIN_FILE);
    let after_batch_1 = std::fs::metadata(&chain_path).unwrap().len();
    let (graph_after_batch_1, epoch_after_batch_1) = {
        // Render via a replay so the reference is what durability holds,
        // not what memory holds.
        let store = DirStore::open(&dir).unwrap();
        let (_, m, report) = CommitLog::open(
            Box::new(store),
            Box::new(CombinedRestriction),
            log_config,
            Some(genesis),
        )
        .unwrap();
        (render_graph(m.graph()), report.end_epoch)
    };

    // Batch 2 admits and persists too…
    for (i, doc) in ["doc2", "doc3"].iter().enumerate() {
        for (_, verdict) in gateway.submit_mutation(2 + i as u32, take(&g, doc)) {
            assert!(matches!(verdict, tg_serve::Verdict::Ok(_)));
        }
    }
    let after_batch_2 = std::fs::metadata(&chain_path).unwrap().len();
    assert!(after_batch_2 > after_batch_1);
    drop(gateway);

    // …but the daemon "crashes" mid-write: the chain file ends ten
    // bytes into batch 2's first record — mid-line, far from any record
    // boundary, with no commit marker in sight.
    let torn_len = after_batch_1 + 10;
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&chain_path)
        .unwrap();
    file.set_len(torn_len).unwrap();
    drop(file);

    // Recovery discards the torn tail and lands exactly on batch 1.
    let store = DirStore::open(&dir).unwrap();
    let (_, recovered, report) = CommitLog::open(
        Box::new(store),
        Box::new(CombinedRestriction),
        log_config,
        Some(genesis),
    )
    .unwrap();
    assert!(report.torn.is_some(), "the tear must be detected");
    assert_eq!(render_graph(recovered.graph()), graph_after_batch_1);
    assert_eq!(
        report.end_epoch, epoch_after_batch_1,
        "recovery must land on the last fully-admitted batch"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The other crash shape: the file ends cleanly on a record boundary,
/// but inside an uncommitted batch. Recovery must drop the whole open
/// batch — a batch is admitted only when its commit marker is durable.
#[test]
fn recovery_discards_a_trailing_uncommitted_batch() {
    let dir = std::env::temp_dir().join(format!("tg-serve-openbatch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let (g, levels) = system();
    let genesis = tg_log::seed_digest(&g, &levels);
    let log_config = LogConfig {
        snapshot_interval: 0,
        write_through: true,
    };
    let store = DirStore::open(&dir).unwrap();
    let (log, monitor) = CommitLog::create(
        Box::new(store),
        g.clone(),
        levels,
        Box::new(CombinedRestriction),
        log_config,
    )
    .unwrap();
    let mut gateway: Gateway<u32> = Gateway::new(monitor, Some(log), 2);
    for (i, doc) in ["doc0", "doc1"].iter().enumerate() {
        let _ = gateway.submit_mutation(i as u32, take(&g, doc));
    }
    let chain_path = dir.join(CHAIN_FILE);
    let after_batch_1 = std::fs::metadata(&chain_path).unwrap().len();
    for (i, doc) in ["doc2", "doc3"].iter().enumerate() {
        let _ = gateway.submit_mutation(2 + i as u32, take(&g, doc));
    }
    drop(gateway);

    // Cut the file back to batch 1 plus batch 2's first whole lines,
    // stopping before the commit marker: scan for the last newline that
    // leaves at least one batch-2 record but no commit.
    let bytes = std::fs::read(&chain_path).unwrap();
    let cut = bytes[..bytes.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .unwrap() as u64
        + 1;
    assert!(cut > after_batch_1, "cut must leave part of batch 2");
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&chain_path)
        .unwrap();
    file.set_len(cut).unwrap();
    drop(file);

    let store = DirStore::open(&dir).unwrap();
    let (_, recovered, report) = CommitLog::open(
        Box::new(store),
        Box::new(CombinedRestriction),
        log_config,
        Some(genesis),
    )
    .unwrap();
    // No torn line — every kept record is intact — but the open batch
    // is gone: only batch 1's two takes survive in the graph.
    assert!(report.torn.is_none());
    let recovered_render = render_graph(recovered.graph());
    assert!(recovered_render.contains("doc0") && recovered_render.contains("doc1"));
    let s1 = recovered.graph().find_by_name("s1").unwrap();
    let doc3 = recovered.graph().find_by_name("doc3").unwrap();
    assert!(
        !recovered.graph().has_any(s1, doc3, tg_graph::Right::Read),
        "an uncommitted admission must not survive recovery"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
