//! The PROTOCOL.md conformance suite: every frame example in the
//! normative document must encode and decode byte-for-byte against the
//! one implementation, and every example here must appear verbatim in
//! the document. `docs/PROTOCOL.md` and `crates/serve/src/proto.rs`
//! cannot drift apart without failing this test.

use tg_serve::proto::{decode_frame, encode_frame, MAGIC, MAX_FRAME};
use tg_serve::{Frame, Opcode};

fn protocol_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
    std::fs::read_to_string(path).expect("read docs/PROTOCOL.md")
}

fn unhex(hex: &str) -> Vec<u8> {
    assert!(hex.len().is_multiple_of(2), "odd hex length in {hex:?}");
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("hex digit"))
        .collect()
}

/// Every `hex:` example from PROTOCOL.md §7, paired with the frame the
/// document says it encodes. One entry per opcode — the loop below
/// asserts the catalog is covered.
fn examples() -> Vec<(&'static str, Frame)> {
    vec![
        (
            "00000009000000000000000101",
            Frame::text(1, Opcode::Ping, ""),
        ),
        (
            "0000000d000000000000000180706f6e67",
            Frame::text(1, Opcode::Ok, "pong"),
        ),
        (
            "0000001600000000000000020274616b65203020312032207831",
            Frame::text(2, Opcode::Apply, "take 0 1 2 x1"),
        ),
        (
            "0000000f00000000000000028164656e696564",
            Frame::text(2, Opcode::Refused, "denied"),
        ),
        (
            "000000170000000000000003037220616c696365207265706f7274",
            Frame::text(3, Opcode::CanShare, "r alice report"),
        ),
        (
            "00000015000000000000000404616c696365207265706f7274",
            Frame::text(4, Opcode::CanKnow, "alice report"),
        ),
        (
            "00000012000000000000000505616c69636520626f62",
            Frame::text(5, Opcode::SameIsland, "alice bob"),
        ),
        (
            "00000009000000000000000606",
            Frame::text(6, Opcode::Audit, ""),
        ),
        (
            "00000009000000000000000707",
            Frame::text(7, Opcode::Stats, ""),
        ),
        (
            "0000000900000000000000087f",
            Frame::text(8, Opcode::Shutdown, ""),
        ),
        (
            "000000190000000000000000826261642d6f70636f64653a2030783432",
            Frame::text(0, Opcode::Error, "bad-opcode: 0x42"),
        ),
    ]
}

#[test]
fn every_documented_frame_round_trips_byte_for_byte() {
    for (hex, frame) in examples() {
        let bytes = unhex(hex);
        assert_eq!(
            encode_frame(&frame),
            bytes,
            "encoding {frame:?} must produce the documented bytes {hex}"
        );
        assert_eq!(
            decode_frame(&bytes).expect(hex),
            frame,
            "decoding {hex} must produce the documented frame"
        );
    }
}

#[test]
fn every_example_appears_verbatim_in_the_document() {
    let doc = protocol_md();
    for (hex, _) in examples() {
        assert!(
            doc.contains(&format!("hex: `{hex}`")),
            "PROTOCOL.md lost the example `{hex}`"
        );
    }
    // The magic preamble example too.
    let magic_hex: String = MAGIC.iter().map(|b| format!("{b:02x}")).collect();
    assert!(doc.contains(&format!("hex: `{magic_hex}`")));
}

#[test]
fn the_document_has_no_undocumented_examples() {
    // Symmetry: every `hex:` line in the document is either the magic
    // or one of the frames this suite round-trips. A new example added
    // to the document without a conformance entry fails here.
    let doc = protocol_md();
    let known: Vec<String> = examples()
        .iter()
        .map(|(hex, _)| (*hex).to_string())
        .chain([MAGIC.iter().map(|b| format!("{b:02x}")).collect()])
        .collect();
    let mut found = 0;
    for line in doc.lines() {
        let Some(rest) = line.strip_prefix("hex: `") else {
            continue;
        };
        let hex = rest.trim_end_matches('`');
        assert!(
            known.iter().any(|k| k == hex),
            "PROTOCOL.md documents `{hex}` but the conformance suite does not cover it"
        );
        found += 1;
    }
    assert_eq!(
        found,
        known.len(),
        "every known example must appear exactly once"
    );
}

#[test]
fn the_example_set_covers_the_whole_opcode_catalog() {
    let covered: Vec<Opcode> = examples().iter().map(|(_, f)| f.opcode).collect();
    for byte in 0..=u8::MAX {
        if let Some(op) = Opcode::from_byte(byte) {
            assert!(
                covered.contains(&op),
                "opcode {op:?} ({byte:#04x}) has no documented frame example"
            );
        }
    }
}

#[test]
fn documented_constants_match_the_implementation() {
    let doc = protocol_md();
    // The opcode table bytes.
    for (byte, name) in [
        (0x01u8, "Ping"),
        (0x02, "Apply"),
        (0x03, "CanShare"),
        (0x04, "CanKnow"),
        (0x05, "SameIsland"),
        (0x06, "Audit"),
        (0x07, "Stats"),
        (0x7F, "Shutdown"),
        (0x80, "Ok"),
        (0x81, "Refused"),
        (0x82, "Error"),
    ] {
        assert_eq!(Opcode::from_byte(byte), Opcode::from_byte(byte));
        assert!(
            doc.contains(&format!("| 0x{byte:02X} | {name} |")),
            "opcode table row for {name} (0x{byte:02X}) missing from PROTOCOL.md"
        );
    }
    // The frame cap, stated as both prose and number.
    assert_eq!(MAX_FRAME, 1 << 20);
    assert!(doc.contains("MAX_FRAME = 1048576"));
    // Every stable error code is documented.
    for code in [
        "bad-magic",
        "oversized-frame",
        "short-frame",
        "truncated-frame",
        "bad-opcode",
        "bad-payload",
        "unknown-vertex",
        "log-failure",
    ] {
        assert!(
            doc.contains(&format!("| `{code}` |")),
            "error code {code} missing from the PROTOCOL.md table"
        );
    }
}
