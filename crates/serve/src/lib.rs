//! `tg-serve`: a resident Take-Grant policy-decision daemon.
//!
//! The workspace's other crates answer policy questions in one process,
//! one invocation at a time. This crate keeps a [`Monitor`] resident
//! and lets many clients share it over a socket, without weakening any
//! guarantee the monitor gives:
//!
//! - **One choke point.** Every request — mutation or query — funnels
//!   through the [`gateway::Gateway`], in a single canonical serial
//!   order. There is no second path to the monitor.
//! - **A hand-rolled wire protocol.** [`proto`] implements TGP1, a
//!   length-prefixed binary framing over TCP or Unix sockets whose
//!   payloads are the workspace's existing text codecs. The normative
//!   spec lives in `docs/PROTOCOL.md`; `tests/conformance.rs` pins this
//!   implementation to that document byte for byte.
//! - **Admission batching.** Pending mutations coalesce into one
//!   transactional [`Monitor::try_apply_all`] plus one incremental
//!   re-audit, with exact per-request verdict attribution when the
//!   batch aborts and rolls back ([`gateway`]).
//! - **Fail-closed durability.** With a commit log attached, an
//!   admission is acknowledged only after the `tg-log` chain accepts
//!   it; a persistence failure flips the gateway into a degraded mode
//!   that refuses all further mutations.
//! - **Proof under load.** [`soak`] boots a real daemon, drives it from
//!   dozens of concurrent sessions, and cross-checks the final state
//!   against an offline replay of the commit log.
//!
//! `tgq serve` and `tgq client` (in the CLI crate) are thin wrappers
//! over [`server::Server`] and [`client::Client`].
//!
//! [`Monitor`]: tg_hierarchy::Monitor
//! [`Monitor::try_apply_all`]: tg_hierarchy::Monitor::try_apply_all

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod gateway;
pub mod proto;
pub mod server;
pub mod soak;

pub use client::{parse_script, run_script, Client, ScriptLine, ScriptOutcome};
pub use gateway::{parse_request, Gateway, Request, Verdict};
pub use proto::{Frame, Opcode, ProtoError};
pub use server::{Bind, ServeConfig, Server, ServerReport};
pub use soak::{run_soak, SoakConfig, SoakReport};
