//! The gateway: the daemon's single choke point.
//!
//! Every mutation and query a session sends enters here, in the order
//! the gateway consumes it — that consumption order **is** the canonical
//! serial order of the daemon (see `DESIGN.md` §15). Mutations are
//! *admission batched*: up to `batch_window` pending rules coalesce into
//! one [`Monitor::try_apply_all`] transactional batch plus one
//! incremental re-audit through the attached `tg-inc` index. When the
//! fast-path batch aborts, the gateway replays the same rules one by one
//! through [`Monitor::try_apply`], so the final state is exactly the
//! sequential application of the arrival order and every request gets
//! the verdict *its own rule* earned — exact per-request attribution on
//! partial rollback, never a collective "batch failed".

use tg_graph::{Right, VertexId};
use tg_hierarchy::{CombinedRestriction, Monitor};
use tg_inc::SharedIndex;
use tg_log::CommitLog;
use tg_par::{par_queries, Pool, Query};
use tg_rules::Rule;

use crate::proto::{Frame, Opcode};

/// A decoded request body, one per request opcode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Apply one rule through the monitor.
    Apply(Box<Rule>),
    /// `can_share(right, x, y)` by vertex name (Theorem 2.3).
    CanShare(Right, String, String),
    /// `can_know(x, y)` by vertex name (Theorem 3.2).
    CanKnow(String, String),
    /// Do `x` and `y` share an island (paper §2)?
    SameIsland(String, String),
    /// The audit verdict (Corollary 5.6, maintained incrementally).
    Audit,
    /// Monitor counters and commit-log epoch.
    Stats,
    /// Graceful stop.
    Shutdown,
}

impl Request {
    /// Whether this request mutates monitor state (and therefore joins
    /// the admission batch instead of being answered immediately).
    pub fn is_mutation(&self) -> bool {
        matches!(self, Request::Apply(_))
    }
}

/// Decodes a request frame's payload. Errors are `bad-payload` texts
/// destined for an [`Opcode::Error`] response; they never reach the
/// monitor.
pub fn parse_request(frame: &Frame) -> Result<Request, String> {
    let text = core::str::from_utf8(&frame.payload)
        .map_err(|_| "bad-payload: payload is not UTF-8".to_string())?;
    let text = text.trim();
    let two = |text: &str| -> Result<(String, String), String> {
        let parts: Vec<&str> = text.split_whitespace().collect();
        match parts.as_slice() {
            [x, y] => Ok((x.to_string(), y.to_string())),
            _ => Err(format!("bad-payload: expected `<x> <y>`, got {text:?}")),
        }
    };
    let empty = |text: &str, req: Request| -> Result<Request, String> {
        if text.is_empty() {
            Ok(req)
        } else {
            Err(format!("bad-payload: expected empty payload, got {text:?}"))
        }
    };
    match frame.opcode {
        Opcode::Ping => empty(text, Request::Ping),
        Opcode::Apply => {
            let rule =
                tg_rules::codec::decode_rule(text).map_err(|e| format!("bad-payload: {e}"))?;
            Ok(Request::Apply(Box::new(rule)))
        }
        Opcode::CanShare => {
            let parts: Vec<&str> = text.split_whitespace().collect();
            let [right, x, y] = parts.as_slice() else {
                return Err(format!(
                    "bad-payload: expected `<right> <x> <y>`, got {text:?}"
                ));
            };
            let right = Right::parse(right)
                .ok_or_else(|| format!("bad-payload: unknown right {right:?}"))?;
            Ok(Request::CanShare(right, x.to_string(), y.to_string()))
        }
        Opcode::CanKnow => two(text).map(|(x, y)| Request::CanKnow(x, y)),
        Opcode::SameIsland => two(text).map(|(x, y)| Request::SameIsland(x, y)),
        Opcode::Audit => empty(text, Request::Audit),
        Opcode::Stats => empty(text, Request::Stats),
        Opcode::Shutdown => empty(text, Request::Shutdown),
        other => Err(format!("bad-opcode: {:#04x} is not a request", other as u8)),
    }
}

/// The gateway's answer to one request, ready to become a response
/// frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The request was served; the payload is the answer.
    Ok(String),
    /// The monitor refused the mutation (denial, malformed rule,
    /// degraded mode). The payload is the reason.
    Refused(String),
    /// The request itself was unusable (`<code>: <detail>`).
    Error(String),
}

impl Verdict {
    /// The response frame for this verdict, echoing `request_id`.
    pub fn into_frame(self, request_id: u64) -> Frame {
        match self {
            Verdict::Ok(text) => Frame::text(request_id, Opcode::Ok, &text),
            Verdict::Refused(text) => Frame::text(request_id, Opcode::Refused, &text),
            Verdict::Error(text) => Frame::text(request_id, Opcode::Error, &text),
        }
    }
}

/// The daemon's reference-monitor front end. `T` tags each request with
/// whatever the caller needs to route the verdict back (the server uses
/// a session handle plus the wire request id).
pub struct Gateway<T> {
    monitor: Monitor,
    log: Option<CommitLog>,
    index: SharedIndex,
    batch_window: usize,
    pending: Vec<(T, Box<Rule>)>,
    /// Set on the first commit-log persistence failure; from then on
    /// every mutation fails closed with this message (the in-memory
    /// state may be ahead of the durable log, so no further admission
    /// may claim success).
    degraded: Option<String>,
    batches: u64,
    refusals: u64,
}

impl<T> Gateway<T> {
    /// Builds a gateway over `monitor`, wiring a fresh incremental index
    /// to it. `log` is the commit log the monitor is already sinking
    /// into (from [`CommitLog::create`]/[`CommitLog::open`]), if any.
    pub fn new(mut monitor: Monitor, log: Option<CommitLog>, batch_window: usize) -> Gateway<T> {
        let index = SharedIndex::new(monitor.graph(), monitor.levels(), &CombinedRestriction);
        monitor.attach_observer(index.observer());
        Gateway {
            monitor,
            log,
            index,
            batch_window: batch_window.max(1),
            pending: Vec::new(),
            degraded: None,
            batches: 0,
            refusals: 0,
        }
    }

    /// Whether mutations are waiting for admission.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Admission batches flushed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Mutations refused so far.
    pub fn refusals(&self) -> u64 {
        self.refusals
    }

    /// Queues one mutation. When the batch window fills, the batch is
    /// flushed and every queued request's verdict is returned; otherwise
    /// the verdict is deferred to the next flush.
    pub fn submit_mutation(&mut self, tag: T, rule: Box<Rule>) -> Vec<(T, Verdict)> {
        self.pending.push((tag, rule));
        if self.pending.len() >= self.batch_window {
            self.flush()
        } else {
            Vec::new()
        }
    }

    /// Flushes the pending admission batch: one
    /// [`Monitor::try_apply_all`] fast path, the sequential replay on
    /// abort, one snapshot opportunity, one incremental re-audit. The
    /// returned verdicts are in submission order.
    pub fn flush(&mut self) -> Vec<(T, Verdict)> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let _flush_span = tg_obs::span(tg_obs::SpanKind::ServeFlush);
        let pending = std::mem::take(&mut self.pending);
        self.batches += 1;
        tg_obs::add(tg_obs::Counter::ServeBatches, 1);
        if let Some(reason) = &self.degraded {
            // Fail closed: a gateway that cannot make admissions durable
            // stops admitting (the answer a crashed daemon would give).
            let reason = reason.clone();
            self.refusals += pending.len() as u64;
            return pending
                .into_iter()
                .map(|(tag, _)| (tag, Verdict::Error(format!("log-failure: {reason}"))))
                .collect();
        }
        let rules: Vec<Rule> = pending.iter().map(|(_, rule)| (**rule).clone()).collect();
        let verdicts: Vec<Verdict> = {
            let _batch_span = tg_obs::span(tg_obs::SpanKind::ServeBatch);
            match self.monitor.try_apply_all(&rules) {
                // Fast path: the whole window admitted as one
                // transaction.
                Ok(effects) => effects
                    .iter()
                    .map(|_| Verdict::Ok("applied".into()))
                    .collect(),
                // The transactional batch aborted and rolled back in
                // full. Replay the same rules sequentially so the final
                // state equals per-rule application of the arrival
                // order, and each request learns what *its* rule did —
                // rules after the batch's first refusal may still
                // legitimately succeed against the updated state.
                Err(_) => rules
                    .iter()
                    .map(|rule| match self.monitor.try_apply(rule) {
                        Ok(_) => Verdict::Ok("applied".into()),
                        Err(e) => Verdict::Refused(e.to_string()),
                    })
                    .collect(),
            }
        };
        self.refusals += verdicts
            .iter()
            .filter(|v| matches!(v, Verdict::Refused(_)))
            .count() as u64;
        tg_obs::add(
            tg_obs::Counter::ServeRefusals,
            verdicts
                .iter()
                .filter(|v| matches!(v, Verdict::Refused(_)))
                .count() as u64,
        );
        if let Some(log) = &self.log {
            let persisted = log
                .maybe_snapshot(&self.monitor)
                .map(|_| ())
                .and_then(|()| log.persist());
            if let Err(e) = persisted {
                self.degraded = Some(e.to_string());
            }
        }
        // The one incremental re-audit per admission batch: a read of
        // the maintained violation set, not a Corollary 5.6 rescan.
        let _ = self.index.audit_clean();
        pending
            .into_iter()
            .map(|(tag, _)| tag)
            .zip(verdicts)
            .collect()
    }

    /// Answers a wave of read-only requests, flushing the pending batch
    /// first so every query observes all mutations that arrived before
    /// it. `can_share`/`can_know` queries in the wave are evaluated
    /// together on the pool (Theorem 2.3/3.2 queries are independent);
    /// the rest are answered from the maintained index. Returned
    /// verdicts: flush verdicts first, then the wave in order.
    pub fn query_wave(&mut self, wave: Vec<(T, Request)>, pool: &Pool) -> Vec<(T, Verdict)> {
        let mut out = self.flush();
        // First pass: resolve names and collect the parallelizable
        // queries; `None` marks slots answered inline.
        let mut parallel: Vec<Query> = Vec::new();
        let mut slots: Vec<Option<usize>> = Vec::with_capacity(wave.len());
        let mut inline: Vec<Option<Verdict>> = Vec::with_capacity(wave.len());
        for (_, request) in &wave {
            match request {
                Request::CanShare(right, x, y) => match self.resolve_pair(x, y) {
                    Ok((vx, vy)) => {
                        slots.push(Some(parallel.len()));
                        parallel.push(Query::CanShare(*right, vx, vy));
                        inline.push(None);
                    }
                    Err(e) => {
                        slots.push(None);
                        inline.push(Some(Verdict::Error(e)));
                    }
                },
                Request::CanKnow(x, y) => match self.resolve_pair(x, y) {
                    Ok((vx, vy)) => {
                        slots.push(Some(parallel.len()));
                        parallel.push(Query::CanKnow(vx, vy));
                        inline.push(None);
                    }
                    Err(e) => {
                        slots.push(None);
                        inline.push(Some(Verdict::Error(e)));
                    }
                },
                other => {
                    slots.push(None);
                    inline.push(Some(self.answer_inline(other)));
                }
            }
        }
        let answers = if parallel.is_empty() {
            Vec::new()
        } else {
            par_queries(self.monitor.graph(), &parallel, pool)
        };
        for ((tag, _), (slot, inline)) in wave.into_iter().zip(slots.into_iter().zip(inline)) {
            let verdict = match slot {
                Some(i) => Verdict::Ok(answers[i].to_string()),
                None => inline.expect("inline slots carry a verdict"),
            };
            out.push((tag, verdict));
        }
        out
    }

    /// Answers the requests that need no pool: audit, stats, ping,
    /// same-island, shutdown acknowledgement.
    fn answer_inline(&self, request: &Request) -> Verdict {
        match request {
            Request::Ping => Verdict::Ok("pong".into()),
            Request::Audit => {
                let violations = self.index.violations();
                if violations.is_empty() {
                    Verdict::Ok("clean".into())
                } else {
                    Verdict::Ok(format!("violating {}", violations.len()))
                }
            }
            Request::Stats => {
                let s = self.monitor.stats();
                let epoch = self.log.as_ref().map(|l| l.end_epoch()).unwrap_or(0);
                Verdict::Ok(format!(
                    "permitted {} denied {} malformed {} refused {} epoch {}",
                    s.permitted, s.denied, s.malformed, s.refused, epoch
                ))
            }
            Request::SameIsland(x, y) => match self.resolve_pair(x, y) {
                Ok((vx, vy)) => Verdict::Ok(
                    self.index
                        .same_island(self.monitor.graph(), vx, vy)
                        .to_string(),
                ),
                Err(e) => Verdict::Error(e),
            },
            Request::Shutdown => Verdict::Ok("bye".into()),
            Request::Apply(_) | Request::CanShare(..) | Request::CanKnow(..) => {
                unreachable!("mutations and pool queries are routed elsewhere")
            }
        }
    }

    fn resolve_pair(&self, x: &str, y: &str) -> Result<(VertexId, VertexId), String> {
        let graph = self.monitor.graph();
        let resolve = |name: &str| {
            graph
                .find_by_name(name)
                .ok_or_else(|| format!("unknown-vertex: no vertex named {name:?}"))
        };
        Ok((resolve(x)?, resolve(y)?))
    }

    /// Flushes any remaining batch, persists the log, and surrenders the
    /// monitor (and log) for post-shutdown inspection — the soak test
    /// compares this state byte-for-byte against an offline replay of
    /// the commit log.
    pub fn finish(mut self) -> Result<(Monitor, Option<CommitLog>), String> {
        let _ = self.flush();
        if let Some(reason) = &self.degraded {
            return Err(format!("log-failure: {reason}"));
        }
        if let Some(log) = &self.log {
            log.maybe_snapshot(&self.monitor)
                .map_err(|e| e.to_string())?;
            log.persist().map_err(|e| e.to_string())?;
        }
        Ok((self.monitor, self.log))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::{ProtectionGraph, Rights};
    use tg_hierarchy::LevelAssignment;
    use tg_rules::DeJureRule;

    /// Two subjects at `high`, `s1 -t-> s2`; `s2` reads two high
    /// documents and writes one low document. Taking a read at the same
    /// level is admissible; taking the write to the low document is a
    /// write-down the combined restriction denies.
    fn system() -> (ProtectionGraph, LevelAssignment) {
        let mut g = ProtectionGraph::new();
        let s1 = g.add_subject("s1");
        let s2 = g.add_subject("s2");
        let doc_a = g.add_object("doc_a");
        let doc_b = g.add_object("doc_b");
        let low = g.add_object("low");
        g.add_edge(s1, s2, Rights::T).unwrap();
        g.add_edge(s2, doc_a, Rights::R).unwrap();
        g.add_edge(s2, doc_b, Rights::R).unwrap();
        g.add_edge(s2, low, Rights::W).unwrap();
        let mut levels = LevelAssignment::linear(&["low", "high"]);
        for v in [s1, s2, doc_a, doc_b] {
            levels.assign(v, 1).unwrap();
        }
        levels.assign(low, 0).unwrap();
        (g, levels)
    }

    fn monitor_of(g: &ProtectionGraph, levels: &LevelAssignment) -> Monitor {
        Monitor::new(g.clone(), levels.clone(), Box::new(CombinedRestriction))
    }

    fn take(g: &ProtectionGraph, target: &str, rights: Rights) -> Box<Rule> {
        let v = |n: &str| g.find_by_name(n).expect("vertex");
        Box::new(Rule::DeJure(DeJureRule::Take {
            actor: v("s1"),
            via: v("s2"),
            target: v(target),
            rights,
        }))
    }

    #[test]
    fn window_defers_until_full() {
        let (g, levels) = system();
        let mut gw: Gateway<u64> = Gateway::new(monitor_of(&g, &levels), None, 2);
        assert!(gw
            .submit_mutation(1, take(&g, "doc_a", Rights::R))
            .is_empty());
        assert!(gw.has_pending());
        let verdicts = gw.submit_mutation(2, take(&g, "doc_b", Rights::R));
        assert_eq!(verdicts.len(), 2);
        assert!(!gw.has_pending());
        assert_eq!(gw.batches(), 1);
        for (_, v) in &verdicts {
            assert_eq!(v, &Verdict::Ok("applied".into()));
        }
    }

    #[test]
    fn rollback_attributes_verdicts_exactly() {
        let (g, levels) = system();
        // Window of 3 with a denied rule in the middle: the fast-path
        // batch aborts and rolls back in full, and the sequential replay
        // must admit rules 1 and 3 while refusing only rule 2 —
        // identical to a monitor fed the three rules one at a time.
        let mut gw: Gateway<u64> = Gateway::new(monitor_of(&g, &levels), None, 3);
        let mut seq = monitor_of(&g, &levels);
        let rules = [
            take(&g, "doc_a", Rights::R),
            take(&g, "low", Rights::W), // write-down: denied
            take(&g, "doc_b", Rights::R),
        ];
        let mut batched = Vec::new();
        for (i, rule) in rules.iter().enumerate() {
            batched.extend(gw.submit_mutation(i as u64, rule.clone()));
        }
        let sequential: Vec<Verdict> = rules
            .iter()
            .map(|rule| match seq.try_apply(rule) {
                Ok(_) => Verdict::Ok("applied".into()),
                Err(e) => Verdict::Refused(e.to_string()),
            })
            .collect();
        assert_eq!(batched.len(), 3);
        for ((tag, got), want) in batched.iter().zip(&sequential) {
            assert_eq!(got, want, "verdict for request {tag}");
        }
        assert!(matches!(batched[0].1, Verdict::Ok(_)));
        assert!(matches!(batched[1].1, Verdict::Refused(_)));
        assert!(matches!(batched[2].1, Verdict::Ok(_)));
        assert_eq!(gw.refusals(), 1);
        // And the state is the sequential state, byte for byte.
        let (monitor, _) = gw.finish().unwrap();
        assert_eq!(
            tg_graph::render_graph(monitor.graph()),
            tg_graph::render_graph(seq.graph())
        );
    }

    #[test]
    fn queries_observe_prior_mutations() {
        let (g, levels) = system();
        let mut gw: Gateway<u64> = Gateway::new(monitor_of(&g, &levels), None, 64);
        let pool = Pool::sequential();
        // Queue a mutation, then query: the wave must flush it first,
        // so `stats` reports the admission and the flush verdict leads.
        let _ = gw.submit_mutation(2, take(&g, "doc_a", Rights::R));
        assert!(gw.has_pending());
        let out = gw.query_wave(
            vec![
                (
                    3,
                    Request::CanShare(Right::Read, "s1".into(), "doc_a".into()),
                ),
                (4, Request::Audit),
                (5, Request::Stats),
                (6, Request::SameIsland("s1".into(), "s2".into())),
                (7, Request::Ping),
            ],
            &pool,
        );
        assert_eq!(out[0], (2, Verdict::Ok("applied".into())));
        assert_eq!(out[1], (3, Verdict::Ok("true".into())));
        // The seed edge `s2 -w-> low` is a standing write-down, and the
        // maintained index reports exactly that one violation.
        assert_eq!(out[2], (4, Verdict::Ok("violating 1".into())));
        assert!(matches!(&out[3].1, Verdict::Ok(s) if s.starts_with("permitted 1 ")));
        assert_eq!(out[4], (6, Verdict::Ok("true".into())));
        assert_eq!(out[5], (7, Verdict::Ok("pong".into())));
    }

    #[test]
    fn unknown_vertices_error_without_touching_the_monitor() {
        let (g, levels) = system();
        let mut gw: Gateway<u64> = Gateway::new(monitor_of(&g, &levels), None, 4);
        let pool = Pool::sequential();
        let out = gw.query_wave(
            vec![(1, Request::CanKnow("nope".into(), "doc_a".into()))],
            &pool,
        );
        assert!(matches!(&out[0].1, Verdict::Error(e) if e.starts_with("unknown-vertex")));
        let (monitor, _) = gw.finish().unwrap();
        let s = monitor.stats();
        assert_eq!((s.permitted, s.denied, s.malformed), (0, 0, 0));
    }

    #[test]
    fn request_parsing_fails_closed() {
        let ok = parse_request(&Frame::text(1, Opcode::Apply, "take 0 1 2 x1"));
        assert!(matches!(ok, Ok(Request::Apply(_))));
        for (opcode, payload) in [
            (Opcode::Apply, "frobnicate 1 2"),
            (Opcode::CanShare, "r onlyone"),
            (Opcode::CanShare, "zz a b"),
            (Opcode::CanKnow, "three part payload"),
            (Opcode::Ping, "unexpected"),
            (Opcode::Audit, "unexpected"),
        ] {
            let err = parse_request(&Frame::text(1, opcode, payload)).unwrap_err();
            assert!(err.starts_with("bad-payload"), "{opcode:?}: {err}");
        }
        // A response opcode is not a request.
        let err = parse_request(&Frame::text(1, Opcode::Ok, "")).unwrap_err();
        assert!(err.starts_with("bad-opcode"));
    }
}
