//! The `TGP1` wire protocol: length-prefixed binary frames over a byte
//! stream.
//!
//! The normative specification lives in `docs/PROTOCOL.md`; this module
//! is its one implementation, and `tests/conformance.rs` pins the two
//! together by round-tripping every frame example from the document
//! byte-for-byte. Change either side and the conformance test fails.
//!
//! A connection starts with a 4-byte magic (`TGP1`) from the client.
//! After that, both directions carry frames:
//!
//! ```text
//! +---------+------------+--------+---------------------+
//! | len u32 | request id | opcode | payload (len-9 B)   |
//! | BE      | u64 BE     | u8     | UTF-8 text codecs   |
//! +---------+------------+--------+---------------------+
//! ```
//!
//! `len` counts everything after itself (so `len >= 9`), capped at
//! [`MAX_FRAME`]. Every violation of the framing rules is **fail
//! closed**: the peer answers with an [`Opcode::Error`] frame where it
//! can, then drops the connection — a malformed byte stream never
//! reaches the monitor.

use std::io::{Read, Write};

/// The connection preamble: a client's first four bytes. A server that
/// reads anything else answers one `Error` frame (`bad-magic`) and
/// closes. An incompatible protocol revision would bump the digit.
pub const MAGIC: [u8; 4] = *b"TGP1";

/// Hard cap on `len` (the byte count after the length word): 1 MiB.
/// Oversized frames are refused and the connection is closed — a
/// corrupt or hostile length prefix must not drive allocation.
pub const MAX_FRAME: u32 = 1 << 20;

/// Bytes of header inside the length-counted region: request id (8)
/// plus opcode (1).
pub const HEADER: u32 = 9;

/// Every frame kind, request and response. The discriminant is the wire
/// opcode byte; ids at or above `0x80` are responses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe. Empty payload; answered `Ok` with payload `pong`.
    Ping = 0x01,
    /// Apply one rule. Payload: one `tg-rules` codec line.
    Apply = 0x02,
    /// Theorem 2.3 query. Payload: `<right> <x> <y>` (vertex names).
    CanShare = 0x03,
    /// Theorem 3.2 query. Payload: `<x> <y>`.
    CanKnow = 0x04,
    /// Island query (paper §2). Payload: `<x> <y>`.
    SameIsland = 0x05,
    /// Audit verdict (Corollary 5.6). Empty payload.
    Audit = 0x06,
    /// Monitor counters and log epoch. Empty payload.
    Stats = 0x07,
    /// Graceful stop: drain, persist, exit. Empty payload.
    Shutdown = 0x7F,
    /// Success response; payload is the answer text.
    Ok = 0x80,
    /// The monitor admitted the request to the gateway but **refused**
    /// it (Corollary 5.7 denial, malformed rule, degraded mode).
    /// Payload is the refusal reason. A refusal is a verdict, not an
    /// error: the connection stays up.
    Refused = 0x81,
    /// Protocol or input error (`<code>: <detail>` payload). Framing
    /// errors additionally close the connection.
    Error = 0x82,
}

impl Opcode {
    /// Decodes a wire opcode byte.
    pub fn from_byte(byte: u8) -> Option<Opcode> {
        Some(match byte {
            0x01 => Opcode::Ping,
            0x02 => Opcode::Apply,
            0x03 => Opcode::CanShare,
            0x04 => Opcode::CanKnow,
            0x05 => Opcode::SameIsland,
            0x06 => Opcode::Audit,
            0x07 => Opcode::Stats,
            0x7F => Opcode::Shutdown,
            0x80 => Opcode::Ok,
            0x81 => Opcode::Refused,
            0x82 => Opcode::Error,
            _ => return None,
        })
    }

    /// Whether this opcode is a response (id `>= 0x80`).
    pub fn is_response(self) -> bool {
        self as u8 >= 0x80
    }
}

/// One decoded frame: everything after the length word.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// What the frame asks or answers.
    pub opcode: Opcode,
    /// Opcode-specific body in the existing text codecs.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with a UTF-8 payload.
    pub fn text(request_id: u64, opcode: Opcode, payload: &str) -> Frame {
        Frame {
            request_id,
            opcode,
            payload: payload.as_bytes().to_vec(),
        }
    }

    /// The payload as text (lossy only for non-UTF-8 bytes, which no
    /// conforming peer sends).
    pub fn payload_text(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }
}

/// Why a byte stream failed to yield a frame. Every variant is fail
/// closed at the transport: the reader answers `Error` where possible
/// and drops the connection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtoError {
    /// The four preamble bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// `len` exceeded [`MAX_FRAME`].
    Oversized(u32),
    /// `len` was below [`HEADER`] — no room for id and opcode.
    Undersized(u32),
    /// The opcode byte is not in the catalog.
    BadOpcode(u8),
    /// The stream ended mid-frame (`expected`, `got` bytes).
    Truncated {
        /// Bytes the length prefix promised.
        expected: usize,
        /// Bytes actually read before EOF.
        got: usize,
    },
    /// The peer closed cleanly between frames.
    Closed,
    /// Transport failure (message text; `std::io::Error` is not `Eq`).
    Io(String),
}

impl core::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtoError::BadMagic(m) => write!(f, "bad-magic: expected TGP1, got {m:02x?}"),
            ProtoError::Oversized(len) => {
                write!(f, "oversized-frame: len {len} exceeds {MAX_FRAME}")
            }
            ProtoError::Undersized(len) => {
                write!(f, "short-frame: len {len} below header size {HEADER}")
            }
            ProtoError::BadOpcode(b) => write!(f, "bad-opcode: {b:#04x}"),
            ProtoError::Truncated { expected, got } => {
                write!(f, "truncated-frame: expected {expected} bytes, got {got}")
            }
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

/// Encodes `frame` as wire bytes, length prefix included.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let len = HEADER + frame.payload.len() as u32;
    let mut bytes = Vec::with_capacity(4 + len as usize);
    bytes.extend_from_slice(&len.to_be_bytes());
    bytes.extend_from_slice(&frame.request_id.to_be_bytes());
    bytes.push(frame.opcode as u8);
    bytes.extend_from_slice(&frame.payload);
    bytes
}

/// Decodes one complete wire frame (length prefix included) from
/// `bytes`, which must contain exactly one frame — the in-memory
/// counterpart of [`read_frame`], used by the conformance tests.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, ProtoError> {
    if bytes.len() < 4 {
        return Err(ProtoError::Truncated {
            expected: 4,
            got: bytes.len(),
        });
    }
    let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized(len));
    }
    if len < HEADER {
        return Err(ProtoError::Undersized(len));
    }
    let body = &bytes[4..];
    if body.len() != len as usize {
        return Err(ProtoError::Truncated {
            expected: len as usize,
            got: body.len(),
        });
    }
    let request_id = u64::from_be_bytes(body[..8].try_into().expect("8 bytes"));
    let opcode = Opcode::from_byte(body[8]).ok_or(ProtoError::BadOpcode(body[8]))?;
    Ok(Frame {
        request_id,
        opcode,
        payload: body[9..].to_vec(),
    })
}

/// Reads and validates the connection preamble.
pub fn read_magic(reader: &mut dyn Read) -> Result<(), ProtoError> {
    let mut magic = [0u8; 4];
    read_exact_or(reader, &mut magic, 0)?;
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    Ok(())
}

/// Writes the connection preamble.
pub fn write_magic(writer: &mut dyn Write) -> std::io::Result<()> {
    writer.write_all(&MAGIC)
}

/// Reads one frame from a stream. EOF on the length word's first byte
/// is a clean [`ProtoError::Closed`]; EOF anywhere later is
/// [`ProtoError::Truncated`].
pub fn read_frame(reader: &mut dyn Read) -> Result<Frame, ProtoError> {
    let mut len_bytes = [0u8; 4];
    read_exact_or(reader, &mut len_bytes, 0)?;
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized(len));
    }
    if len < HEADER {
        return Err(ProtoError::Undersized(len));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_or(reader, &mut body, 4).map_err(|e| match e {
        ProtoError::Closed => ProtoError::Truncated {
            expected: len as usize,
            got: 0,
        },
        other => other,
    })?;
    let request_id = u64::from_be_bytes(body[..8].try_into().expect("8 bytes"));
    let opcode = Opcode::from_byte(body[8]).ok_or(ProtoError::BadOpcode(body[8]))?;
    Ok(Frame {
        request_id,
        opcode,
        payload: body[9..].to_vec(),
    })
}

/// Writes one frame to a stream.
pub fn write_frame(writer: &mut dyn Write, frame: &Frame) -> std::io::Result<()> {
    writer.write_all(&encode_frame(frame))
}

/// `read_exact` that maps EOF-at-start to [`ProtoError::Closed`] and
/// EOF-midway to [`ProtoError::Truncated`] (with `already` bytes of
/// earlier context counted into the expectation).
fn read_exact_or(reader: &mut dyn Read, buf: &mut [u8], already: usize) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && already == 0 {
                    Err(ProtoError::Closed)
                } else {
                    Err(ProtoError::Truncated {
                        expected: already + buf.len(),
                        got: already + filled,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e.to_string())),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let frame = Frame::text(7, Opcode::Apply, "take 0 1 2 x1");
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), frame);
    }

    #[test]
    fn framing_violations_fail_closed() {
        // Oversized length prefix: rejected before any allocation.
        let mut bytes = ((MAX_FRAME + 1).to_be_bytes()).to_vec();
        bytes.extend_from_slice(&[0; 16]);
        assert_eq!(
            decode_frame(&bytes),
            Err(ProtoError::Oversized(MAX_FRAME + 1))
        );
        // Undersized: no room for the header.
        let bytes = 4u32.to_be_bytes().to_vec();
        assert_eq!(decode_frame(&bytes), Err(ProtoError::Undersized(4)));
        // Unknown opcode byte.
        let mut bytes = HEADER.to_be_bytes().to_vec();
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.push(0x55);
        assert_eq!(decode_frame(&bytes), Err(ProtoError::BadOpcode(0x55)));
        // Torn mid-frame.
        let full = encode_frame(&Frame::text(1, Opcode::Ping, ""));
        let mut cursor = std::io::Cursor::new(&full[..full.len() - 1]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::Truncated { .. })
        ));
    }

    #[test]
    fn magic_is_checked() {
        let mut good = std::io::Cursor::new(MAGIC.to_vec());
        assert!(read_magic(&mut good).is_ok());
        let mut bad = std::io::Cursor::new(b"TGP9".to_vec());
        assert_eq!(read_magic(&mut bad), Err(ProtoError::BadMagic(*b"TGP9")));
    }

    #[test]
    fn opcode_bytes_are_stable() {
        for op in [
            Opcode::Ping,
            Opcode::Apply,
            Opcode::CanShare,
            Opcode::CanKnow,
            Opcode::SameIsland,
            Opcode::Audit,
            Opcode::Stats,
            Opcode::Shutdown,
            Opcode::Ok,
            Opcode::Refused,
            Opcode::Error,
        ] {
            assert_eq!(Opcode::from_byte(op as u8), Some(op));
        }
        assert_eq!(Opcode::from_byte(0x00), None);
    }
}
