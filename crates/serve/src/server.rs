//! The resident daemon: listeners, sessions, and the gateway thread.
//!
//! One thread accepts connections; each session gets a reader thread
//! (socket → decoded requests) and a writer thread (verdict frames →
//! socket). Every request funnels into **one** gateway thread over an
//! mpsc channel — the channel's consumption order is the daemon's
//! canonical serial order, so concurrent sessions are exactly as
//! deterministic as some interleaving of their request streams (see
//! `DESIGN.md` §15 for the contract). The gateway drains the channel in
//! waves: runs of mutations join the admission batch, runs of read-only
//! queries are answered together on the `tg-par` pool.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use tg_hierarchy::Monitor;
use tg_log::CommitLog;
use tg_par::Pool;

use crate::gateway::{parse_request, Gateway, Request, Verdict};
use crate::proto::{read_frame, read_magic, write_frame, Frame, Opcode, ProtoError};

/// Where the daemon listens.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Bind {
    /// A TCP address (`host:port`; port `0` picks a free one).
    Tcp(String),
    /// A Unix domain socket path. Binding fails if the path exists —
    /// an occupied or stale socket is never silently stolen.
    Unix(std::path::PathBuf),
}

/// Daemon tuning knobs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServeConfig {
    /// Admission batch window: how many pending mutations coalesce into
    /// one `try_apply_all` before a forced flush. The gateway also
    /// flushes when a query arrives or the request channel idles, so a
    /// large window never delays a verdict indefinitely.
    pub batch_window: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { batch_window: 16 }
    }
}

/// What the daemon did over its lifetime, reported at shutdown.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServerReport {
    /// Sessions that completed the preamble.
    pub sessions: u64,
    /// Frames read, decoded and routed.
    pub frames: u64,
    /// Connections dropped for framing violations (fail closed).
    pub protocol_errors: u64,
    /// Admission batches flushed by the gateway.
    pub batches: u64,
    /// Mutations the monitor refused.
    pub refusals: u64,
}

/// Shared per-server tallies, written by session threads.
#[derive(Default)]
struct Tallies {
    sessions: AtomicU64,
    frames: AtomicU64,
    protocol_errors: AtomicU64,
}

/// One request's routing tag: where the verdict frame goes.
struct Tag {
    reply: mpsc::Sender<Frame>,
    request_id: u64,
}

impl Tag {
    fn send(&self, verdict: Verdict) {
        // A session that vanished mid-request is not an error.
        let _ = self.reply.send(verdict.into_frame(self.request_id));
    }
}

/// One queued unit of work for the gateway thread.
struct Job {
    tag: Tag,
    request: Request,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Server::join`] (blocks until a `Shutdown` frame arrives) or
/// [`Server::shutdown_now`] first.
pub struct Server {
    addr: String,
    unix_path: Option<std::path::PathBuf>,
    accept: thread::JoinHandle<()>,
    gateway: GatewayHandle,
    tallies: Arc<Tallies>,
    shutdown: Arc<AtomicBool>,
}

type GatewayResult = (u64, u64, Result<(Monitor, Option<CommitLog>), String>);
type GatewayHandle = thread::JoinHandle<GatewayResult>;

impl Server {
    /// Binds `bind` and starts the accept, session and gateway threads.
    /// `monitor` (and the commit `log` it is already sinking into, if
    /// any) become the gateway's guarded state.
    ///
    /// # Errors
    ///
    /// A bind failure — malformed address, occupied port or socket
    /// path, missing directory — is returned as text; nothing has been
    /// spawned at that point, so failing closed is just returning.
    pub fn start(
        bind: Bind,
        monitor: Monitor,
        log: Option<CommitLog>,
        config: ServeConfig,
        pool: Pool,
    ) -> Result<Server, String> {
        let (listener, addr, unix_path) = match &bind {
            Bind::Tcp(spec) => {
                let listener =
                    TcpListener::bind(spec).map_err(|e| format!("cannot bind {spec}: {e}"))?;
                let addr = listener
                    .local_addr()
                    .map_err(|e| format!("cannot resolve bound address: {e}"))?
                    .to_string();
                (Listener::Tcp(listener), addr, None)
            }
            Bind::Unix(path) => {
                #[cfg(unix)]
                {
                    if path.exists() {
                        return Err(format!(
                            "cannot bind {}: socket path already exists",
                            path.display()
                        ));
                    }
                    let listener = std::os::unix::net::UnixListener::bind(path)
                        .map_err(|e| format!("cannot bind {}: {e}", path.display()))?;
                    (
                        Listener::Unix(listener),
                        path.display().to_string(),
                        Some(path.clone()),
                    )
                }
                #[cfg(not(unix))]
                {
                    return Err(format!(
                        "cannot bind {}: unix sockets are unsupported on this platform",
                        path.display()
                    ));
                }
            }
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let tallies = Arc::new(Tallies::default());
        let (tx, rx) = mpsc::channel::<Job>();
        let gateway = {
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || gateway_loop(monitor, log, config, pool, rx, shutdown))
        };
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let tallies = Arc::clone(&tallies);
            thread::spawn(move || accept_loop(listener, tx, shutdown, tallies))
        };
        Ok(Server {
            addr,
            unix_path,
            accept,
            gateway,
            tallies,
            shutdown,
        })
    }

    /// The bound address: `ip:port` for TCP (the real port, resolved
    /// after a `:0` bind), the socket path for Unix.
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Requests an immediate stop without waiting for a `Shutdown`
    /// frame (used by tests and signal handling; in-flight batches
    /// still flush and the log still persists).
    pub fn shutdown_now(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the daemon to stop (a `Shutdown` frame, or
    /// [`Server::shutdown_now`]), then returns its lifetime report and
    /// the final guarded state for inspection.
    ///
    /// # Errors
    ///
    /// Commit-log persistence failures surface here as text; the
    /// gateway refused all admissions after the first such failure.
    pub fn join(self) -> Result<(ServerReport, Monitor, Option<CommitLog>), String> {
        let _ = self.accept.join();
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        let (batches, refusals, state) = self
            .gateway
            .join()
            .map_err(|_| "gateway thread panicked".to_string())?;
        let (monitor, log) = state?;
        let report = ServerReport {
            sessions: self.tallies.sessions.load(Ordering::SeqCst),
            frames: self.tallies.frames.load(Ordering::SeqCst),
            protocol_errors: self.tallies.protocol_errors.load(Ordering::SeqCst),
            batches,
            refusals,
        };
        Ok((report, monitor, log))
    }
}

/// A blocking reader that turns socket read timeouts into polls of the
/// shutdown flag: when the daemon is stopping, pending reads yield EOF
/// so idle sessions unwind instead of hanging `join` forever.
struct PatientReader<R: Read> {
    inner: R,
    shutdown: Arc<AtomicBool>,
}

impl<R: Read> Read for PatientReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Ok(0);
                    }
                }
                other => return other,
            }
        }
    }
}

fn accept_loop(
    listener: Listener,
    tx: mpsc::Sender<Job>,
    shutdown: Arc<AtomicBool>,
    tallies: Arc<Tallies>,
) {
    match &listener {
        Listener::Tcp(l) => l.set_nonblocking(true).expect("nonblocking listener"),
        #[cfg(unix)]
        Listener::Unix(l) => l.set_nonblocking(true).expect("nonblocking listener"),
    }
    let mut sessions: Vec<thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        // Accept one connection as a (reader, writer) pair of stream
        // handles; `None` means "nothing pending, sleep briefly".
        let accepted: Option<(Box<dyn Read + Send>, Box<dyn Write + Send>)> = match &listener {
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).expect("blocking stream");
                    stream
                        .set_read_timeout(Some(Duration::from_millis(50)))
                        .expect("read timeout");
                    let writer = stream.try_clone().expect("clone tcp stream");
                    Some((Box::new(stream), Box::new(writer)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(_) => break,
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).expect("blocking stream");
                    stream
                        .set_read_timeout(Some(Duration::from_millis(50)))
                        .expect("read timeout");
                    let writer = stream.try_clone().expect("clone unix stream");
                    Some((Box::new(stream), Box::new(writer)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(_) => break,
            },
        };
        match accepted {
            Some((reader, writer)) => {
                let tx = tx.clone();
                let shutdown = Arc::clone(&shutdown);
                let tallies = Arc::clone(&tallies);
                sessions.push(thread::spawn(move || {
                    session_loop(reader, writer, tx, shutdown, tallies)
                }));
            }
            None => thread::sleep(Duration::from_millis(5)),
        }
    }
    // The master job sender drops here; once every session follows, the
    // gateway's channel disconnects and it finishes.
    drop(tx);
    for session in sessions {
        let _ = session.join();
    }
}

/// One session: preamble check, then frames until EOF, error or
/// shutdown. A companion writer thread owns the socket's write half so
/// pipelined verdicts never interleave with the read loop.
fn session_loop(
    reader: Box<dyn Read + Send>,
    mut writer: Box<dyn Write + Send>,
    tx: mpsc::Sender<Job>,
    shutdown: Arc<AtomicBool>,
    tallies: Arc<Tallies>,
) {
    let mut reader = PatientReader {
        inner: reader,
        shutdown: Arc::clone(&shutdown),
    };
    {
        let _span = tg_obs::span(tg_obs::SpanKind::ServeAccept);
        if let Err(e) = read_magic(&mut reader) {
            tallies.protocol_errors.fetch_add(1, Ordering::SeqCst);
            let _ = write_frame(&mut writer, &Frame::text(0, Opcode::Error, &e.to_string()));
            return;
        }
    }
    tallies.sessions.fetch_add(1, Ordering::SeqCst);
    tg_obs::add(tg_obs::Counter::ServeSessionsOpened, 1);
    let (reply_tx, reply_rx) = mpsc::channel::<Frame>();
    let writer_thread = thread::spawn(move || {
        for frame in reply_rx {
            if write_frame(&mut writer, &frame).is_err() {
                break;
            }
            let _ = writer.flush();
        }
        writer
    });
    loop {
        let frame = {
            let _span = tg_obs::span(tg_obs::SpanKind::ServeFrame);
            read_frame(&mut reader)
        };
        let frame = match frame {
            Ok(frame) => frame,
            Err(ProtoError::Closed) => break,
            Err(e) => {
                // Framing violation: answer once, then fail closed by
                // dropping the connection.
                tallies.protocol_errors.fetch_add(1, Ordering::SeqCst);
                let _ = reply_tx.send(Frame::text(0, Opcode::Error, &e.to_string()));
                break;
            }
        };
        tallies.frames.fetch_add(1, Ordering::SeqCst);
        tg_obs::add(tg_obs::Counter::ServeFrames, 1);
        let request_id = frame.request_id;
        let request = match parse_request(&frame) {
            Ok(request) => request,
            Err(message) => {
                // Well-framed but unusable: an error verdict, and the
                // session continues.
                let _ = reply_tx.send(Frame::text(request_id, Opcode::Error, &message));
                continue;
            }
        };
        let job = Job {
            tag: Tag {
                reply: reply_tx.clone(),
                request_id,
            },
            request,
        };
        if tx.send(job).is_err() {
            // The gateway is gone (shutdown drain): nothing more can be
            // answered.
            break;
        }
    }
    drop(reply_tx);
    let _ = writer_thread.join();
    tg_obs::add(tg_obs::Counter::ServeSessionsClosed, 1);
}

/// The gateway thread: consumes the job channel in waves, batching
/// mutations and answering query runs on the pool, until a shutdown
/// request (or channel disconnect) drains it.
fn gateway_loop(
    monitor: Monitor,
    log: Option<CommitLog>,
    config: ServeConfig,
    pool: Pool,
    rx: mpsc::Receiver<Job>,
    shutdown: Arc<AtomicBool>,
) -> GatewayResult {
    let mut gw: Gateway<Tag> = Gateway::new(monitor, log, config.batch_window);
    let mut stopping = false;
    loop {
        // One job, obtained according to phase: normally a blocking
        // receive; with a pending batch, a short poll so an idle channel
        // flushes rather than starving deferred verdicts; when stopping,
        // a drain that ends the loop at the first empty read.
        let first = if stopping {
            rx.try_recv().ok()
        } else if gw.has_pending() {
            match rx.recv_timeout(Duration::from_millis(1)) {
                Ok(job) => Some(job),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    for (tag, verdict) in gw.flush() {
                        tag.send(verdict);
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => None,
            }
        } else {
            rx.recv().ok()
        };
        let Some(first) = first else { break };
        // Opportunistically drain what else is already queued: this is
        // where concurrent sessions actually coalesce.
        let mut jobs = vec![first];
        while jobs.len() < 512 {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        // Process in arrival order. Consecutive read-only requests pool
        // into one wave; a mutation first answers the accumulated wave
        // (which must not observe it), then joins the admission batch.
        let mut wave: Vec<(Tag, Request)> = Vec::new();
        for job in jobs {
            match job.request {
                Request::Apply(rule) => {
                    for (tag, verdict) in gw.query_wave(std::mem::take(&mut wave), &pool) {
                        tag.send(verdict);
                    }
                    for (tag, verdict) in gw.submit_mutation(job.tag, rule) {
                        tag.send(verdict);
                    }
                }
                Request::Shutdown => {
                    for (tag, verdict) in gw.query_wave(std::mem::take(&mut wave), &pool) {
                        tag.send(verdict);
                    }
                    for (tag, verdict) in gw.flush() {
                        tag.send(verdict);
                    }
                    job.tag.send(Verdict::Ok("bye".into()));
                    shutdown.store(true, Ordering::SeqCst);
                    stopping = true;
                }
                other => wave.push((job.tag, other)),
            }
        }
        for (tag, verdict) in gw.query_wave(wave, &pool) {
            tag.send(verdict);
        }
    }
    let batches = gw.batches();
    let refusals = gw.refusals();
    (batches, refusals, gw.finish())
}
