//! A blocking TGP1 client and the line-oriented script runner behind
//! `tgq client`.
//!
//! The client owns request-id assignment (monotonically increasing
//! from 1) and supports both lock-step use ([`Client::request`]) and
//! pipelining: [`Client::send`] a burst, then [`Client::recv`] the
//! responses — the daemon answers each session in request order, so no
//! reordering buffer is needed.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;

use crate::proto::{read_frame, write_frame, write_magic, Frame, Opcode, ProtoError};

/// A connected TGP1 session.
pub struct Client {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
    /// Ids of sent-but-unanswered requests, oldest first.
    in_flight: VecDeque<u64>,
}

impl Client {
    /// Connects over TCP and sends the `TGP1` preamble.
    ///
    /// # Errors
    ///
    /// Connection refusal, resolution failure, or a failed preamble
    /// write, as text.
    pub fn connect_tcp(addr: &str) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        Client::handshake(Box::new(stream), Box::new(writer))
    }

    /// Connects over a Unix domain socket and sends the preamble.
    ///
    /// # Errors
    ///
    /// Connection or preamble failure, as text.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> Result<Client, String> {
        let stream = std::os::unix::net::UnixStream::connect(path)
            .map_err(|e| format!("cannot connect to {}: {e}", path.display()))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        Client::handshake(Box::new(stream), Box::new(writer))
    }

    fn handshake(
        reader: Box<dyn Read + Send>,
        mut writer: Box<dyn Write + Send>,
    ) -> Result<Client, String> {
        write_magic(&mut writer).map_err(|e| format!("cannot send preamble: {e}"))?;
        writer.flush().map_err(|e| format!("cannot flush: {e}"))?;
        Ok(Client {
            reader,
            writer,
            next_id: 1,
            in_flight: VecDeque::new(),
        })
    }

    /// Sends one request frame without waiting; returns its request id.
    ///
    /// # Errors
    ///
    /// Transport failure, as text.
    pub fn send(&mut self, opcode: Opcode, payload: &str) -> Result<u64, String> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = Frame::text(id, opcode, payload);
        write_frame(&mut self.writer, &frame).map_err(|e| format!("send failed: {e}"))?;
        self.writer
            .flush()
            .map_err(|e| format!("flush failed: {e}"))?;
        self.in_flight.push_back(id);
        Ok(id)
    }

    /// Receives the next response frame, which must answer the oldest
    /// in-flight request (the daemon preserves per-session order).
    ///
    /// # Errors
    ///
    /// Transport failure, an unexpectedly closed connection, a non-
    /// response opcode, or a response id that is not the oldest
    /// in-flight id.
    pub fn recv(&mut self) -> Result<Frame, String> {
        let expected = self
            .in_flight
            .pop_front()
            .ok_or_else(|| "no request in flight".to_string())?;
        let frame = match read_frame(&mut self.reader) {
            Ok(frame) => frame,
            Err(ProtoError::Closed) => return Err("connection closed before response".to_string()),
            Err(e) => return Err(format!("receive failed: {e}")),
        };
        if !frame.opcode.is_response() {
            return Err(format!(
                "protocol violation: request opcode {:#04x} in response",
                frame.opcode as u8
            ));
        }
        if frame.request_id != expected {
            return Err(format!(
                "protocol violation: response id {} while {} is oldest in flight",
                frame.request_id, expected
            ));
        }
        Ok(frame)
    }

    /// Lock-step round trip: [`Client::send`] then [`Client::recv`].
    ///
    /// # Errors
    ///
    /// As for the two halves.
    pub fn request(&mut self, opcode: Opcode, payload: &str) -> Result<Frame, String> {
        self.send(opcode, payload)?;
        self.recv()
    }
}

/// One parsed script line: the request to send.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScriptLine {
    /// Request opcode.
    pub opcode: Opcode,
    /// Request payload text.
    pub payload: String,
}

/// Parses the `tgq client` script dialect: one request per line, blank
/// lines and `#` comments skipped. Verbs: `ping`, `audit`, `stats`,
/// `shutdown` (bare); `apply <rule-line>`; `can-share <right> <x> <y>`;
/// `can-know <x> <y>`; `same-island <x> <y>`.
///
/// # Errors
///
/// An unknown verb or an arity the server would reject anyway, with the
/// 1-based line number.
pub fn parse_script(text: &str) -> Result<Vec<ScriptLine>, String> {
    let mut lines = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((verb, rest)) => (verb, rest.trim()),
            None => (line, ""),
        };
        let arity = |n: usize, shape: &str| -> Result<(), String> {
            if rest.split_whitespace().count() == n {
                Ok(())
            } else {
                Err(format!("line {}: {verb} takes {shape}", i + 1))
            }
        };
        let parsed = match verb {
            "ping" => {
                arity(0, "no arguments")?;
                ScriptLine {
                    opcode: Opcode::Ping,
                    payload: String::new(),
                }
            }
            "audit" => {
                arity(0, "no arguments")?;
                ScriptLine {
                    opcode: Opcode::Audit,
                    payload: String::new(),
                }
            }
            "stats" => {
                arity(0, "no arguments")?;
                ScriptLine {
                    opcode: Opcode::Stats,
                    payload: String::new(),
                }
            }
            "shutdown" => {
                arity(0, "no arguments")?;
                ScriptLine {
                    opcode: Opcode::Shutdown,
                    payload: String::new(),
                }
            }
            "apply" => {
                if rest.is_empty() {
                    return Err(format!("line {}: apply takes `<rule-line>`", i + 1));
                }
                ScriptLine {
                    opcode: Opcode::Apply,
                    payload: rest.to_string(),
                }
            }
            "can-share" => {
                arity(3, "`<right> <x> <y>`")?;
                ScriptLine {
                    opcode: Opcode::CanShare,
                    payload: rest.to_string(),
                }
            }
            "can-know" => {
                arity(2, "`<x> <y>`")?;
                ScriptLine {
                    opcode: Opcode::CanKnow,
                    payload: rest.to_string(),
                }
            }
            "same-island" => {
                arity(2, "`<x> <y>`")?;
                ScriptLine {
                    opcode: Opcode::SameIsland,
                    payload: rest.to_string(),
                }
            }
            other => return Err(format!("line {}: unknown verb {other:?}", i + 1)),
        };
        lines.push(parsed);
    }
    Ok(lines)
}

/// Outcome of a script run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ScriptOutcome {
    /// Requests answered `ok`.
    pub ok: u64,
    /// Requests answered `refused` (a policy decision, not a failure).
    pub refused: u64,
    /// Requests answered `error` (the exit-1 condition).
    pub errors: u64,
}

/// Runs a parsed script over `client`, appending one line per response
/// to `out` in the form `<id> <ok|refused|error>: <payload>`. Requests
/// are pipelined in bursts of up to 32. Stops early if the daemon
/// acknowledged a `shutdown` (later lines would meet a dead socket).
///
/// # Errors
///
/// Transport or protocol failure, as text; policy refusals and error
/// verdicts are *not* run errors — they are tallied in the outcome.
pub fn run_script(
    client: &mut Client,
    lines: &[ScriptLine],
    out: &mut String,
) -> Result<ScriptOutcome, String> {
    let mut outcome = ScriptOutcome::default();
    let mut stop = false;
    for burst in lines.chunks(32) {
        if stop {
            break;
        }
        for line in burst {
            client.send(line.opcode, &line.payload)?;
        }
        for line in burst {
            let frame = client.recv()?;
            let kind = match frame.opcode {
                Opcode::Ok => {
                    outcome.ok += 1;
                    "ok"
                }
                Opcode::Refused => {
                    outcome.refused += 1;
                    "refused"
                }
                _ => {
                    outcome.errors += 1;
                    "error"
                }
            };
            out.push_str(&format!(
                "{} {kind}: {}\n",
                frame.request_id,
                frame.payload_text()
            ));
            if line.opcode == Opcode::Shutdown && frame.opcode == Opcode::Ok {
                stop = true;
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_parse_to_requests() {
        let script = "\
# liveness first
ping
apply take 0 1 2 rw
can-share r alice report
can-know alice report
same-island alice bob
audit
stats
shutdown
";
        let lines = parse_script(script).unwrap();
        let opcodes: Vec<Opcode> = lines.iter().map(|l| l.opcode).collect();
        assert_eq!(
            opcodes,
            vec![
                Opcode::Ping,
                Opcode::Apply,
                Opcode::CanShare,
                Opcode::CanKnow,
                Opcode::SameIsland,
                Opcode::Audit,
                Opcode::Stats,
                Opcode::Shutdown,
            ]
        );
        assert_eq!(lines[1].payload, "take 0 1 2 rw");
        assert_eq!(lines[2].payload, "r alice report");
    }

    #[test]
    fn script_errors_carry_line_numbers() {
        for (script, needle) in [
            ("frobnicate", "line 1: unknown verb"),
            ("ping\ncan-know onlyone", "line 2: can-know takes"),
            ("\n\napply", "line 3: apply takes"),
            ("ping extra", "line 1: ping takes no arguments"),
        ] {
            let err = parse_script(script).unwrap_err();
            assert!(err.contains(needle), "{script:?}: {err}");
        }
    }
}
