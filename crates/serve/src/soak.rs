//! The soak harness: thousands of simulated principals hammering one
//! daemon, with tail latency and a replay cross-check.
//!
//! A soak run generates a `tg-gen` corpus scenario, boots a real server
//! on a loopback TCP socket with a commit log, and drives it from many
//! concurrent client sessions, each replaying a deterministic
//! [`corpus_trace`] of mixed mutations
//! and queries in lock-step (one round trip per request, so every
//! latency sample is a true request latency, not a pipeline artifact).
//! After shutdown it reopens the commit log **offline** and checks the
//! daemon's final graph is byte-identical to the recovered one — the
//! "zero admitted-but-unlogged mutations" acceptance gate.

use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use tg_gen::{generate, Family, GenConfig};
use tg_graph::render_graph;
use tg_hierarchy::CombinedRestriction;
use tg_log::{CommitLog, DirStore, LogConfig};
use tg_par::Pool;
use tg_sim::workload::{corpus_trace, render_script};

use crate::client::{parse_script, Client, ScriptLine};
use crate::proto::Opcode;
use crate::server::{Bind, ServeConfig, Server, ServerReport};

/// Shape of one soak run.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Requests each session sends (plus the harness's own control
    /// requests).
    pub requests_per_session: usize,
    /// The daemon's admission batch window.
    pub batch_window: usize,
    /// Seed for the corpus scenario and every per-session trace.
    pub seed: u64,
    /// `tg-gen` scale knob: approximate subject count of the corpus.
    pub scale: usize,
    /// Directory for the commit log. Must not already hold a chain; the
    /// run leaves it in place so callers can inspect or clean it.
    pub log_dir: std::path::PathBuf,
}

/// What a soak run measured.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Sessions driven.
    pub sessions: usize,
    /// Total requests answered across all sessions.
    pub requests: u64,
    /// `ok` verdicts.
    pub ok: u64,
    /// `refused` verdicts (policy denials are expected workload).
    pub refused: u64,
    /// `error` verdicts (should be zero on a well-formed trace).
    pub errors: u64,
    /// Wall-clock for the request phase, milliseconds.
    pub elapsed_ms: f64,
    /// Requests per second over the request phase.
    pub throughput_rps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Worst request latency, microseconds.
    pub max_us: u64,
    /// The daemon's own lifetime report.
    pub server: ServerReport,
    /// Commit-log epoch at shutdown.
    pub final_epoch: u64,
    /// Whether the daemon's final graph was byte-identical to an
    /// offline recovery of its commit log.
    pub replay_identical: bool,
    /// Pool width the daemon ran with.
    pub jobs: usize,
    /// `std::thread::available_parallelism` on this host.
    pub host_parallelism: usize,
}

impl SoakReport {
    /// The report as a small hand-rolled JSON object (the workspace has
    /// no serialization dependency), shaped like the other
    /// `BENCH_*.json` files.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"bench_serve\",\n",
                "  \"sessions\": {},\n  \"requests\": {},\n",
                "  \"ok\": {},\n  \"refused\": {},\n  \"errors\": {},\n",
                "  \"elapsed_ms\": {:.1},\n  \"throughput_rps\": {:.0},\n",
                "  \"latency_us\": {{ \"p50\": {}, \"p99\": {}, \"max\": {} }},\n",
                "  \"server\": {{ \"sessions\": {}, \"frames\": {}, ",
                "\"batches\": {}, \"refusals\": {}, \"protocol_errors\": {} }},\n",
                "  \"final_epoch\": {},\n  \"replay_identical\": {},\n",
                "  \"jobs\": {},\n  \"host_parallelism\": {}\n",
                "}}\n"
            ),
            self.sessions,
            self.requests,
            self.ok,
            self.refused,
            self.errors,
            self.elapsed_ms,
            self.throughput_rps,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.server.sessions,
            self.server.frames,
            self.server.batches,
            self.server.refusals,
            self.server.protocol_errors,
            self.final_epoch,
            self.replay_identical,
            self.jobs,
            self.host_parallelism,
        )
    }
}

/// One session's share of the work: lock-step round trips with latency
/// sampling.
fn drive_session(
    addr: String,
    lines: Vec<ScriptLine>,
) -> Result<(Vec<u64>, u64, u64, u64), String> {
    let mut client = Client::connect_tcp(&addr)?;
    let mut latencies = Vec::with_capacity(lines.len());
    let (mut ok, mut refused, mut errors) = (0u64, 0u64, 0u64);
    for line in &lines {
        let started = Instant::now();
        let frame = client.request(line.opcode, &line.payload)?;
        latencies.push(started.elapsed().as_micros() as u64);
        match frame.opcode {
            Opcode::Ok => ok += 1,
            Opcode::Refused => refused += 1,
            _ => errors += 1,
        }
    }
    Ok((latencies, ok, refused, errors))
}

/// Runs one soak. See the module docs for the phases; the commit log is
/// left in `config.log_dir` for post-mortem inspection.
///
/// # Errors
///
/// Any setup, transport, or cross-check failure, as text. A refused
/// mutation is workload, not failure; a latency sample set of zero, a
/// session error, or a replay mismatch is failure.
pub fn run_soak(config: &SoakConfig) -> Result<SoakReport, String> {
    // Corpus: one military-lattice scenario scaled to `scale` subjects.
    let scenario = generate(&GenConfig::new(Family::Military, config.scale, config.seed));
    let principals = scenario.principal_names();
    if principals.is_empty() {
        return Err("scenario generated no principals".to_string());
    }

    // Durable state: a fresh commit log in the caller's directory.
    std::fs::create_dir_all(&config.log_dir)
        .map_err(|e| format!("cannot create {}: {e}", config.log_dir.display()))?;
    let store = DirStore::open(&config.log_dir).map_err(|e| e.to_string())?;
    let log_config = LogConfig {
        snapshot_interval: 256,
        // Buffered appends: the gateway persists after every admission
        // batch, which is the durability point the replay check relies
        // on; per-record write-through would only measure the disk.
        write_through: false,
    };
    let (log, monitor) = CommitLog::create(
        Box::new(store),
        scenario.graph.clone(),
        scenario.levels.clone(),
        Box::new(CombinedRestriction),
        log_config,
    )
    .map_err(|e| e.to_string())?;
    let genesis = tg_log::seed_digest(&scenario.graph, &scenario.levels);

    // The daemon under test.
    let pool = Pool::from_env_or_available();
    let server = Server::start(
        Bind::Tcp("127.0.0.1:0".to_string()),
        monitor,
        Some(log),
        ServeConfig {
            batch_window: config.batch_window,
        },
        pool,
    )?;
    let addr = server.local_addr().to_string();

    // One deterministic script per session, derived from the corpus
    // trace family with a per-session seed. Parsing our own rendered
    // script keeps the soak honest: it exercises the exact dialect
    // `tgq client` speaks.
    let scripts: Vec<Vec<ScriptLine>> = (0..config.sessions)
        .map(|i| {
            let trace = corpus_trace(
                &scenario.graph,
                &scenario.levels,
                config.requests_per_session,
                config.seed.wrapping_add(i as u64 + 1),
            );
            parse_script(&render_script(&scenario.graph, &trace))
        })
        .collect::<Result<_, _>>()?;

    // Request phase: every session in its own thread.
    let started = Instant::now();
    let (tx, rx) = mpsc::channel();
    let mut workers = Vec::new();
    for lines in scripts {
        let addr = addr.clone();
        let tx = tx.clone();
        workers.push(thread::spawn(move || {
            let _ = tx.send(drive_session(addr, lines));
        }));
    }
    drop(tx);
    let mut latencies: Vec<u64> = Vec::new();
    let (mut ok, mut refused, mut errors) = (0u64, 0u64, 0u64);
    for outcome in rx {
        let (lat, o, r, e) = outcome?;
        latencies.extend(lat);
        ok += o;
        refused += r;
        errors += e;
    }
    for worker in workers {
        let _ = worker.join();
    }
    let elapsed = started.elapsed();

    // Shutdown via the protocol, like any client would.
    let mut control = Client::connect_tcp(&addr)?;
    let bye = control.request(Opcode::Shutdown, "")?;
    if bye.opcode != Opcode::Ok {
        return Err(format!("shutdown not acknowledged: {}", bye.payload_text()));
    }
    let (server_report, live_monitor, live_log) = server.join()?;
    let live_log = live_log.ok_or_else(|| "soak server lost its commit log".to_string())?;
    let final_epoch = live_log.end_epoch();
    let live_render = render_graph(live_monitor.graph());
    drop(live_log);
    drop(live_monitor);

    // Offline replay: recover a second monitor purely from the durable
    // chain and compare graphs byte for byte.
    let store = DirStore::open(&config.log_dir).map_err(|e| e.to_string())?;
    let (_replayed_log, replayed_monitor, recovery) = CommitLog::open(
        Box::new(store),
        Box::new(CombinedRestriction),
        log_config,
        Some(genesis),
    )
    .map_err(|e| e.to_string())?;
    if recovery.end_epoch != final_epoch {
        return Err(format!(
            "replay recovered epoch {} but the daemon stopped at {}",
            recovery.end_epoch, final_epoch
        ));
    }
    let replay_identical = render_graph(replayed_monitor.graph()) == live_render;

    if latencies.is_empty() {
        return Err("no latency samples collected".to_string());
    }
    latencies.sort_unstable();
    let percentile = |p: usize| latencies[(latencies.len() - 1) * p / 100];
    let requests = latencies.len() as u64;
    let elapsed_ms = elapsed.as_secs_f64() * 1000.0;
    Ok(SoakReport {
        sessions: config.sessions,
        requests,
        ok,
        refused,
        errors,
        elapsed_ms,
        throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile(50),
        p99_us: percentile(99),
        max_us: *latencies.last().expect("nonempty"),
        server: server_report,
        final_epoch,
        replay_identical,
        jobs: pool.jobs(),
        host_parallelism: thread::available_parallelism().map_or(1, |n| n.get()),
    })
}
