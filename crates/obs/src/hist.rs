//! Log-bucketed latency histograms.
//!
//! One bucket per power of two of nanoseconds — 64 buckets cover the
//! full `u64` range, the layout is fixed-size (it flattens into the
//! global atomic span table), and recording is a bit-width computation
//! plus one increment. Quantiles are read back at bucket resolution
//! (within a factor of two), which is plenty for a p50/p99 column.

/// Index of the log2 bucket that `ns` falls in: `0` for 0–1ns, else the
/// position of the highest set bit. `bucket_of(ns) == b` implies
/// `ns < 2^(b+1)`.
pub(crate) fn bucket_of(ns: u64) -> usize {
    (63 - (ns | 1).leading_zeros()) as usize
}

/// Lower edge of bucket `b` in nanoseconds (`2^b`, with bucket 0
/// starting at 0).
fn bucket_floor(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << b
    }
}

/// A latency distribution with log2 buckets plus exact count, sum and
/// max.
///
/// The fields are public because the global span table stores the same
/// layout flattened into atomics and [`crate::Session::snapshot`] copies
/// it out field by field; treat them as read-only and go through
/// [`LogHistogram::record`] otherwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    /// `buckets[b]` counts samples with `bucket_of(ns) == b`.
    pub buckets: [u64; 64],
    /// Number of samples recorded.
    pub count: u64,
    /// Exact sum of all samples in nanoseconds.
    pub total_ns: u64,
    /// Largest single sample in nanoseconds.
    pub max_ns: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one sample of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// The exact mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The quantile `q` in `[0, 1]`, at bucket resolution: the lower
    /// edge of the bucket holding the `ceil(q * count)`-th sample,
    /// clamped to [`LogHistogram::max_ns`]. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_floor(b).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        for b in 0..64 {
            assert_eq!(bucket_of(bucket_floor(b).max(1)), b);
        }
    }

    #[test]
    fn record_tracks_exact_count_sum_max() {
        let mut h = LogHistogram::new();
        for ns in [10, 20, 30, 4000] {
            h.record(ns);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.total_ns, 4060);
        assert_eq!(h.max_ns, 4000);
        assert_eq!(h.mean_ns(), 1015);
        assert_eq!(h.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn quantiles_hit_bucket_floors() {
        let mut h = LogHistogram::new();
        // 90 fast samples in bucket 5 (32–63ns), 10 slow in bucket 13.
        for _ in 0..90 {
            h.record(40);
        }
        for _ in 0..10 {
            h.record(9000);
        }
        assert_eq!(h.quantile_ns(0.50), 32);
        assert_eq!(h.quantile_ns(0.99), 8192);
        assert_eq!(h.quantile_ns(1.0), 8192);
        // Quantiles never exceed the observed max: one 5ns sample lands
        // in the 4–7ns bucket, whose floor (4) is below the max.
        let mut single = LogHistogram::new();
        single.record(5);
        assert_eq!(single.quantile_ns(1.0), 4);
        assert_eq!(LogHistogram::new().quantile_ns(0.5), 0);
    }
}
