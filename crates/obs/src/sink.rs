//! Trace renderers: captured [`Event`] streams to JSONL or Chrome
//! `trace_event` JSON.
//!
//! Both writers are hand-rolled string builders, like the SARIF writer
//! in `tg-lint` — the workspace is offline and carries no serde. Every
//! string they interpolate is a static catalog name (lowercase dotted
//! ASCII), so no RFC 8259 escaping is ever needed; the golden test in
//! the CLI still runs the output through the embedded JSON validator.

use crate::catalog::{Counter, SpanKind};

/// One captured instrumentation event, timestamped in nanoseconds since
/// the process's trace epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A completed span: entered at `start_ns`, lasted `dur_ns`.
    Span {
        /// Which timed region.
        kind: SpanKind,
        /// Entry time, ns since the trace epoch.
        start_ns: u64,
        /// Duration in ns.
        dur_ns: u64,
    },
    /// A counter increment.
    Count {
        /// Which counter.
        counter: Counter,
        /// Amount added.
        delta: u64,
        /// When, ns since the trace epoch.
        at_ns: u64,
    },
}

/// Consumes an event stream and produces one rendered document.
/// [`render`] is the driving loop; implement this for new output
/// formats.
pub trait TraceSink {
    /// Feeds one event, in stream order.
    fn event(&mut self, event: &Event);

    /// Closes the document and returns it.
    fn finish(&mut self) -> String;
}

/// Feeds every event of `events` into `sink`, in order, and returns the
/// finished document.
pub fn render(events: &[Event], sink: &mut dyn TraceSink) -> String {
    for event in events {
        sink.event(event);
    }
    sink.finish()
}

/// Nanoseconds as decimal microseconds with nanosecond precision — the
/// unit Chrome's `trace_event` format expects for `ts` and `dur`.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// One self-describing JSON object per line: spans as
/// `{"type":"span","id":…,"name":…,"start_ns":…,"dur_ns":…}`, counter
/// increments as `{"type":"count","id":…,"name":…,"delta":…,"at_ns":…}`.
/// Grep- and `jq`-friendly; the stable `id` survives catalog renames.
#[derive(Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> JsonlSink {
        JsonlSink::default()
    }
}

impl TraceSink for JsonlSink {
    fn event(&mut self, event: &Event) {
        use std::fmt::Write as _;
        match *event {
            Event::Span {
                kind,
                start_ns,
                dur_ns,
            } => {
                let _ = writeln!(
                    self.out,
                    concat!(
                        "{{\"type\":\"span\",\"id\":{},\"name\":\"{}\",",
                        "\"start_ns\":{},\"dur_ns\":{}}}"
                    ),
                    kind.id(),
                    kind.name(),
                    start_ns,
                    dur_ns
                );
            }
            Event::Count {
                counter,
                delta,
                at_ns,
            } => {
                let _ = writeln!(
                    self.out,
                    concat!(
                        "{{\"type\":\"count\",\"id\":{},\"name\":\"{}\",",
                        "\"delta\":{},\"at_ns\":{}}}"
                    ),
                    counter.id(),
                    counter.name(),
                    delta,
                    at_ns
                );
            }
        }
    }

    fn finish(&mut self) -> String {
        std::mem::take(&mut self.out)
    }
}

/// Chrome / Perfetto `trace_event` JSON (`chrome://tracing`,
/// <https://ui.perfetto.dev>): spans as `"ph":"X"` complete events with
/// `ts`/`dur` in microseconds, counters as `"ph":"C"` events carrying
/// the **running total** so the viewer draws a cumulative series. The
/// catalog's subsystem becomes the `cat` field.
pub struct ChromeSink {
    body: String,
    first: bool,
    totals: [u64; Counter::COUNT],
}

impl ChromeSink {
    /// An empty sink.
    pub fn new() -> ChromeSink {
        ChromeSink {
            body: String::new(),
            first: true,
            totals: [0; Counter::COUNT],
        }
    }

    fn sep(&mut self) -> &'static str {
        if self.first {
            self.first = false;
            ""
        } else {
            ","
        }
    }
}

impl Default for ChromeSink {
    fn default() -> ChromeSink {
        ChromeSink::new()
    }
}

impl TraceSink for ChromeSink {
    fn event(&mut self, event: &Event) {
        use std::fmt::Write as _;
        let sep = self.sep();
        match *event {
            Event::Span {
                kind,
                start_ns,
                dur_ns,
            } => {
                let _ = write!(
                    self.body,
                    concat!(
                        "{}\n  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",",
                        "\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1}}"
                    ),
                    sep,
                    kind.name(),
                    kind.category(),
                    micros(start_ns),
                    micros(dur_ns)
                );
            }
            Event::Count {
                counter,
                delta,
                at_ns,
            } => {
                self.totals[counter.id() as usize] += delta;
                let total = self.totals[counter.id() as usize];
                let _ = write!(
                    self.body,
                    concat!(
                        "{}\n  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",",
                        "\"ts\":{},\"pid\":1,\"tid\":1,",
                        "\"args\":{{\"total\":{}}}}}"
                    ),
                    sep,
                    counter.name(),
                    counter.category(),
                    micros(at_ns),
                    total
                );
            }
        }
    }

    fn finish(&mut self) -> String {
        let body = std::mem::take(&mut self.body);
        self.first = true;
        self.totals = [0; Counter::COUNT];
        format!(
            "{{\"traceEvents\":[{}\n],\"displayTimeUnit\":\"ns\"}}\n",
            body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event::Span {
                kind: SpanKind::MonitorApply,
                start_ns: 1_500,
                dur_ns: 250,
            },
            Event::Count {
                counter: Counter::IncEdgeChecks,
                delta: 2,
                at_ns: 1_600,
            },
            Event::Count {
                counter: Counter::IncEdgeChecks,
                delta: 3,
                at_ns: 1_700,
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = render(&sample(), &mut JsonlSink::new());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"type\":\"span\",\"id\":0,\"name\":\"monitor.apply\",\"start_ns\":1500,\"dur_ns\":250}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"count\",\"id\":7,\"name\":\"inc.edge_checks\",\"delta\":3,\"at_ns\":1700}"
        );
    }

    #[test]
    fn chrome_emits_complete_and_counter_events() {
        let text = render(&sample(), &mut ChromeSink::new());
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ts\":1.500"));
        assert!(text.contains("\"dur\":0.250"));
        // Counter events carry the running total: 2, then 2+3.
        assert!(text.contains("\"args\":{\"total\":2}"));
        assert!(text.contains("\"args\":{\"total\":5}"));
        assert!(text.contains("\"cat\":\"inc\""));
        // Balanced braces/brackets — the CLI golden test runs the full
        // RFC 8259 validator; this is the in-crate smoke version.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_stream_renders_valid_documents() {
        assert_eq!(render(&[], &mut JsonlSink::new()), "");
        let chrome = render(&[], &mut ChromeSink::new());
        assert!(chrome.contains("\"traceEvents\":[\n]"));
    }
}
