//! The closed catalog of instrumentation points.
//!
//! Ids are **stable**: they appear in persisted traces (`tgq trace`
//! output, `BENCH_obs.json`) and must never be renumbered — new points
//! are appended with fresh ids. Each entry documents the paper result it
//! makes observable, mirroring the `RULES` table of `tg-lint`.

/// One kind of timed region. The discriminant is the span's stable id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u32)]
pub enum SpanKind {
    /// One `Monitor::try_apply`: preview, Corollary 5.7 restriction
    /// check, commit.
    MonitorApply = 0,
    /// One `Monitor::try_apply_all` transactional batch.
    MonitorBatch = 1,
    /// The inverse-effect rollback of a failed batch.
    MonitorRollback = 2,
    /// One write-ahead journal append (before any mutation).
    JournalWrite = 3,
    /// `journal::recover`: parse, verify and replay a journal.
    JournalRecover = 4,
    /// One whole-graph audit (Corollary 5.6 scan, or the maintained-set
    /// read when an incremental index is attached).
    MonitorAudit = 5,
    /// One `Monitor::quarantine` repair cycle.
    MonitorQuarantine = 6,
    /// The one full scan that builds an incremental index.
    IncBuild = 7,
    /// An island rebuild forced by a `t`/`g` removal between subjects
    /// (the union-find split case, Theorem 5.2's island structure).
    IncIslandRebuild = 8,
    /// An incremental batch abort rolling back to saved epochs.
    IncRollback = 9,
    /// One full lint run over a graph (all registered passes).
    LintRun = 10,
    /// The `TG000`–`TG002` edge-invariant pass (Corollary 5.6).
    LintEdgeInvariants = 11,
    /// The `TG003` cross-level-link pass (Theorem 5.2).
    LintCrossLevelLinks = 12,
    /// The `TG004` order-collapse pass (Proposition 4.4).
    LintOrderCollapse = 13,
    /// The `TG005` hierarchy-inversion pass (`secure_derived`).
    LintHierarchyInversion = 14,
    /// The `TG006` theft-exposure pass (`can_steal`).
    LintTheftExposure = 15,
    /// The `TG007` unassigned-vertex pass.
    LintUnassignedVertices = 16,
    /// The `TG008` isolated-vertex pass.
    LintIsolatedVertices = 17,
    /// A lint pass registered outside the default registry.
    LintOtherPass = 18,
    /// One `apply_fixes` fixpoint (lint, strip, re-lint until clean).
    LintFix = 19,
    /// One whole `tgq` subcommand, parse to output.
    CliCommand = 20,
    /// One sharded parallel audit (Corollary 5.6 scan across a pool).
    ParAudit = 21,
    /// One batched parallel query evaluation (Thm 2.3/3.2/4.1).
    ParQueries = 22,
    /// The deterministic merge of per-shard results (canonical sort).
    ParMerge = 23,
    /// One hash-chained commit-log record append.
    LogCommit = 24,
    /// One atomic epoch snapshot write (temp file + fsync + rename).
    LogSnapshot = 25,
    /// Commit-log recovery: chain verify, snapshot load, suffix replay.
    LogRecover = 26,
    /// One compaction: differential proof, chain rewrite, pruning.
    LogCompact = 27,
    /// One whole-graph flow closure (Theorem 5.5 via typed bridges).
    FlowClosure = 28,
    /// The `TG009` conspiracy-reachable downward-flow pass.
    LintConspiracyFlow = 29,
    /// The `TG010` rights-laundering / trojan-exposure pass.
    LintRightsLaundering = 30,
    /// The `TG011` statically-refused trace-step pass (`tgq plan`).
    LintRefusedTraceStep = 31,
    /// One island-sharded parallel flow closure.
    ParClosure = 32,
    /// One accepted daemon connection, preamble check included.
    ServeAccept = 33,
    /// One wire frame read, decoded and routed to the gateway.
    ServeFrame = 34,
    /// One admission batch through `Monitor::try_apply_all` (plus the
    /// sequential verdict-attribution replay when the batch aborts).
    ServeBatch = 35,
    /// One gateway flush cycle: admission batch, snapshot opportunity,
    /// incremental re-audit.
    ServeFlush = 36,
}

impl SpanKind {
    /// Number of span kinds (ids are `0..COUNT`).
    pub const COUNT: usize = 37;

    /// Every kind, in id order.
    pub const ALL: &'static [SpanKind] = &[
        SpanKind::MonitorApply,
        SpanKind::MonitorBatch,
        SpanKind::MonitorRollback,
        SpanKind::JournalWrite,
        SpanKind::JournalRecover,
        SpanKind::MonitorAudit,
        SpanKind::MonitorQuarantine,
        SpanKind::IncBuild,
        SpanKind::IncIslandRebuild,
        SpanKind::IncRollback,
        SpanKind::LintRun,
        SpanKind::LintEdgeInvariants,
        SpanKind::LintCrossLevelLinks,
        SpanKind::LintOrderCollapse,
        SpanKind::LintHierarchyInversion,
        SpanKind::LintTheftExposure,
        SpanKind::LintUnassignedVertices,
        SpanKind::LintIsolatedVertices,
        SpanKind::LintOtherPass,
        SpanKind::LintFix,
        SpanKind::CliCommand,
        SpanKind::ParAudit,
        SpanKind::ParQueries,
        SpanKind::ParMerge,
        SpanKind::LogCommit,
        SpanKind::LogSnapshot,
        SpanKind::LogRecover,
        SpanKind::LogCompact,
        SpanKind::FlowClosure,
        SpanKind::LintConspiracyFlow,
        SpanKind::LintRightsLaundering,
        SpanKind::LintRefusedTraceStep,
        SpanKind::ParClosure,
        SpanKind::ServeAccept,
        SpanKind::ServeFrame,
        SpanKind::ServeBatch,
        SpanKind::ServeFlush,
    ];

    /// The stable id (the `repr` discriminant).
    pub fn id(self) -> u32 {
        self as u32
    }

    /// The dotted name used in rendered traces and tables.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::MonitorApply => "monitor.apply",
            SpanKind::MonitorBatch => "monitor.batch",
            SpanKind::MonitorRollback => "monitor.rollback",
            SpanKind::JournalWrite => "journal.write",
            SpanKind::JournalRecover => "journal.recover",
            SpanKind::MonitorAudit => "monitor.audit",
            SpanKind::MonitorQuarantine => "monitor.quarantine",
            SpanKind::IncBuild => "inc.build",
            SpanKind::IncIslandRebuild => "inc.island_rebuild",
            SpanKind::IncRollback => "inc.rollback",
            SpanKind::LintRun => "lint.run",
            SpanKind::LintEdgeInvariants => "lint.edge_invariants",
            SpanKind::LintCrossLevelLinks => "lint.cross_level_links",
            SpanKind::LintOrderCollapse => "lint.order_collapse",
            SpanKind::LintHierarchyInversion => "lint.hierarchy_inversion",
            SpanKind::LintTheftExposure => "lint.theft_exposure",
            SpanKind::LintUnassignedVertices => "lint.unassigned_vertices",
            SpanKind::LintIsolatedVertices => "lint.isolated_vertices",
            SpanKind::LintOtherPass => "lint.other_pass",
            SpanKind::LintFix => "lint.fix",
            SpanKind::CliCommand => "cli.command",
            SpanKind::ParAudit => "par.audit",
            SpanKind::ParQueries => "par.queries",
            SpanKind::ParMerge => "par.merge",
            SpanKind::LogCommit => "log.commit",
            SpanKind::LogSnapshot => "log.snapshot",
            SpanKind::LogRecover => "log.recover",
            SpanKind::LogCompact => "log.compact",
            SpanKind::FlowClosure => "flow.closure",
            SpanKind::LintConspiracyFlow => "lint.conspiracy_flow",
            SpanKind::LintRightsLaundering => "lint.rights_laundering",
            SpanKind::LintRefusedTraceStep => "lint.refused_trace_step",
            SpanKind::ParClosure => "par.closure",
            SpanKind::ServeAccept => "serve.accept",
            SpanKind::ServeFrame => "serve.frame",
            SpanKind::ServeBatch => "serve.batch",
            SpanKind::ServeFlush => "serve.flush",
        }
    }

    /// The subsystem (the part before the dot) — Chrome's `cat` field.
    pub fn category(self) -> &'static str {
        let name = self.name();
        &name[..name.find('.').expect("names are dotted")]
    }

    /// What the span measures, citing the paper result where one
    /// applies.
    pub fn doc(self) -> &'static str {
        match self {
            SpanKind::MonitorApply => "one rule through the monitor (Cor 5.7 check + commit)",
            SpanKind::MonitorBatch => "one transactional rule batch",
            SpanKind::MonitorRollback => "inverse-effect rollback of a failed batch",
            SpanKind::JournalWrite => "one write-ahead journal append",
            SpanKind::JournalRecover => "journal parse, verify and replay",
            SpanKind::MonitorAudit => "whole-graph audit (Cor 5.6 scan or maintained-set read)",
            SpanKind::MonitorQuarantine => "strip-and-reaudit repair cycle",
            SpanKind::IncBuild => "the one full scan building the incremental index",
            SpanKind::IncIslandRebuild => "island rebuild after a t/g cut (Thm 5.2 structure)",
            SpanKind::IncRollback => "incremental epoch rollback on batch abort",
            SpanKind::LintRun => "one full lint run (all passes)",
            SpanKind::LintEdgeInvariants => "TG000-TG002 edge invariants (Cor 5.6)",
            SpanKind::LintCrossLevelLinks => "TG003 bridge/connection search (Thm 5.2)",
            SpanKind::LintOrderCollapse => "TG004 rw-level collapse (Prop 4.4)",
            SpanKind::LintHierarchyInversion => "TG005 derived-security check (Thm 5.2)",
            SpanKind::LintTheftExposure => "TG006 can_steal sweep",
            SpanKind::LintUnassignedVertices => "TG007 policy coverage",
            SpanKind::LintIsolatedVertices => "TG008 isolated vertices",
            SpanKind::LintOtherPass => "a custom lint pass",
            SpanKind::LintFix => "lint/strip/re-lint fixpoint",
            SpanKind::CliCommand => "one tgq subcommand end to end",
            SpanKind::ParAudit => "island-sharded parallel audit (Cor 5.6 across a pool)",
            SpanKind::ParQueries => "batched parallel Thm 2.3/3.2/4.1 queries",
            SpanKind::ParMerge => "deterministic merge of per-shard results",
            SpanKind::LogCommit => "one hash-chained commit-log append",
            SpanKind::LogSnapshot => "one atomic epoch snapshot write",
            SpanKind::LogRecover => "commit-log chain verify + snapshot + replay",
            SpanKind::LogCompact => "compaction proof, chain rewrite and pruning",
            SpanKind::FlowClosure => "whole-graph flow closure (Thm 5.5 via typed bridges)",
            SpanKind::LintConspiracyFlow => "TG009 conspiracy-reachable downward flows",
            SpanKind::LintRightsLaundering => "TG010 rights-laundering exposure",
            SpanKind::LintRefusedTraceStep => "TG011 static trace vetting (tgq plan)",
            SpanKind::ParClosure => "island-sharded parallel flow closure",
            SpanKind::ServeAccept => "one accepted daemon connection (TGP1 preamble)",
            SpanKind::ServeFrame => "one wire frame read, decode, route",
            SpanKind::ServeBatch => "one admission batch (Cor 5.7 checks en bloc)",
            SpanKind::ServeFlush => "one gateway flush: batch + snapshot + re-audit",
        }
    }

    /// The kind with stable id `id`, if it exists.
    pub fn from_id(id: u32) -> Option<SpanKind> {
        SpanKind::ALL.get(id as usize).copied()
    }
}

/// One monotonic counter. The discriminant is the counter's stable id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u32)]
pub enum Counter {
    /// Rules applied and persisted.
    MonitorPermitted = 0,
    /// Rules denied by the restriction (Corollary 5.7 rejections).
    MonitorDenied = 1,
    /// Rules rejected by their own preconditions.
    MonitorMalformed = 2,
    /// De jure rules refused while the monitor was degraded.
    MonitorRefused = 3,
    /// Violating edges stripped by quarantine.
    MonitorQuarantined = 4,
    /// Returns from degraded mode to clean service.
    MonitorRecoveries = 5,
    /// Records appended to the write-ahead journal.
    JournalRecords = 6,
    /// Per-edge restriction rechecks (Corollary 5.7 applications) in the
    /// incremental index.
    IncEdgeChecks = 7,
    /// Effective island union operations.
    IncIslandUnions = 8,
    /// Island rebuilds forced by a `t`/`g` removal between subjects.
    IncIslandRebuilds = 9,
    /// Memoized `can_share`/`can_know` answers served without
    /// recomputation.
    IncMemoHits = 10,
    /// Queries decided fresh (Theorem 2.3 / 3.2) and then memoized.
    IncMemoMisses = 11,
    /// Incremental batch aborts rolled back via union-find epochs.
    IncRollbacks = 12,
    /// Diagnostics emitted by lint passes.
    LintDiagnostics = 13,
    /// Fix-its that removed something from the graph.
    LintFixesApplied = 14,
    /// Work shards created by parallel evaluation (audit shards plus
    /// query chunks).
    ParShards = 15,
    /// Work-stealing claims beyond a worker's fair static share.
    ParSteals = 16,
    /// Records appended to the hash-chained commit log.
    LogCommits = 17,
    /// Epoch snapshots written atomically.
    LogSnapshots = 18,
    /// Compactions that folded dead history below a snapshot.
    LogCompactions = 19,
    /// Chain records replayed during commit-log recovery or time travel.
    LogReplayed = 20,
    /// Whole-graph flow closures assembled.
    FlowClosures = 21,
    /// Island take-reaches served from a generation-stamped cache.
    FlowIslandsReused = 22,
    /// Trace steps a static `tgq plan` vetting found the monitor would
    /// refuse.
    PlanRefusals = 23,
    /// Daemon sessions opened (accepted connections with a valid
    /// preamble). With [`Counter::ServeSessionsClosed`] this is the
    /// in-flight session gauge: open − closed = live now.
    ServeSessionsOpened = 24,
    /// Daemon sessions closed (EOF, error, or shutdown drain).
    ServeSessionsClosed = 25,
    /// Wire frames the daemon read and routed.
    ServeFrames = 26,
    /// Admission batches the gateway flushed.
    ServeBatches = 27,
    /// Mutations the gateway's monitor refused.
    ServeRefusals = 28,
    /// Shard-lock acquisitions that found the lock held (the contention
    /// gauge of the island-sharded index: Cor 5.6 predicts near-zero
    /// when work stays island-local).
    ParLockWait = 29,
}

impl Counter {
    /// Number of counters (ids are `0..COUNT`).
    pub const COUNT: usize = 30;

    /// Every counter, in id order.
    pub const ALL: &'static [Counter] = &[
        Counter::MonitorPermitted,
        Counter::MonitorDenied,
        Counter::MonitorMalformed,
        Counter::MonitorRefused,
        Counter::MonitorQuarantined,
        Counter::MonitorRecoveries,
        Counter::JournalRecords,
        Counter::IncEdgeChecks,
        Counter::IncIslandUnions,
        Counter::IncIslandRebuilds,
        Counter::IncMemoHits,
        Counter::IncMemoMisses,
        Counter::IncRollbacks,
        Counter::LintDiagnostics,
        Counter::LintFixesApplied,
        Counter::ParShards,
        Counter::ParSteals,
        Counter::LogCommits,
        Counter::LogSnapshots,
        Counter::LogCompactions,
        Counter::LogReplayed,
        Counter::FlowClosures,
        Counter::FlowIslandsReused,
        Counter::PlanRefusals,
        Counter::ServeSessionsOpened,
        Counter::ServeSessionsClosed,
        Counter::ServeFrames,
        Counter::ServeBatches,
        Counter::ServeRefusals,
        Counter::ParLockWait,
    ];

    /// The stable id (the `repr` discriminant).
    pub fn id(self) -> u32 {
        self as u32
    }

    /// The dotted name used in rendered traces and tables.
    pub fn name(self) -> &'static str {
        match self {
            Counter::MonitorPermitted => "monitor.permitted",
            Counter::MonitorDenied => "monitor.denied",
            Counter::MonitorMalformed => "monitor.malformed",
            Counter::MonitorRefused => "monitor.refused",
            Counter::MonitorQuarantined => "monitor.quarantined",
            Counter::MonitorRecoveries => "monitor.recoveries",
            Counter::JournalRecords => "journal.records",
            Counter::IncEdgeChecks => "inc.edge_checks",
            Counter::IncIslandUnions => "inc.island_unions",
            Counter::IncIslandRebuilds => "inc.island_rebuilds",
            Counter::IncMemoHits => "inc.memo_hits",
            Counter::IncMemoMisses => "inc.memo_misses",
            Counter::IncRollbacks => "inc.rollbacks",
            Counter::LintDiagnostics => "lint.diagnostics",
            Counter::LintFixesApplied => "lint.fixes_applied",
            Counter::ParShards => "par.shards",
            Counter::ParSteals => "par.steals",
            Counter::LogCommits => "log.commits",
            Counter::LogSnapshots => "log.snapshots",
            Counter::LogCompactions => "log.compactions",
            Counter::LogReplayed => "log.replayed",
            Counter::FlowClosures => "flow.closures",
            Counter::FlowIslandsReused => "flow.islands_reused",
            Counter::PlanRefusals => "cli.plan_refusals",
            Counter::ServeSessionsOpened => "serve.sessions_opened",
            Counter::ServeSessionsClosed => "serve.sessions_closed",
            Counter::ServeFrames => "serve.frames",
            Counter::ServeBatches => "serve.batches",
            Counter::ServeRefusals => "serve.refusals",
            Counter::ParLockWait => "par.lock_wait",
        }
    }

    /// The subsystem (the part before the dot).
    pub fn category(self) -> &'static str {
        let name = self.name();
        &name[..name.find('.').expect("names are dotted")]
    }

    /// What the counter measures, citing the paper result where one
    /// applies.
    pub fn doc(self) -> &'static str {
        match self {
            Counter::MonitorPermitted => "rules applied and persisted",
            Counter::MonitorDenied => "rules denied by the restriction (Cor 5.7)",
            Counter::MonitorMalformed => "rules failing their own preconditions",
            Counter::MonitorRefused => "de jure rules refused while degraded (fail closed)",
            Counter::MonitorQuarantined => "violating edges stripped by quarantine",
            Counter::MonitorRecoveries => "returns from degraded mode to clean service",
            Counter::JournalRecords => "write-ahead journal records appended",
            Counter::IncEdgeChecks => "per-edge restriction rechecks (Cor 5.7 per mutation)",
            Counter::IncIslandUnions => "island union-find merges (paper section 2)",
            Counter::IncIslandRebuilds => "island rebuilds after a t/g cut (Thm 5.2 islands)",
            Counter::IncMemoHits => "memoized Thm 2.3/3.2 answers served",
            Counter::IncMemoMisses => "Thm 2.3/3.2 decisions computed fresh",
            Counter::IncRollbacks => "incremental epoch rollbacks on batch abort",
            Counter::LintDiagnostics => "lint diagnostics emitted",
            Counter::LintFixesApplied => "lint fix-its that removed rights",
            Counter::ParShards => "parallel work shards created",
            Counter::ParSteals => "work-steal claims beyond the fair share",
            Counter::LogCommits => "hash-chained commit-log records appended",
            Counter::LogSnapshots => "epoch snapshots written atomically",
            Counter::LogCompactions => "compactions folding dead history",
            Counter::LogReplayed => "chain records replayed (recovery + time travel)",
            Counter::FlowClosures => "whole-graph flow closures assembled (Thm 5.5)",
            Counter::FlowIslandsReused => "island take-reaches served from cache",
            Counter::PlanRefusals => "trace steps statically refused by tgq plan",
            Counter::ServeSessionsOpened => "daemon sessions opened (in-flight = opened - closed)",
            Counter::ServeSessionsClosed => "daemon sessions closed",
            Counter::ServeFrames => "wire frames read and routed",
            Counter::ServeBatches => "admission batches flushed",
            Counter::ServeRefusals => "daemon mutations refused by the monitor",
            Counter::ParLockWait => "shard-lock acquisitions that had to wait (contention)",
        }
    }

    /// The counter with stable id `id`, if it exists.
    pub fn from_id(id: u32) -> Option<Counter> {
        Counter::ALL.get(id as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        assert_eq!(SpanKind::ALL.len(), SpanKind::COUNT);
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        for (i, kind) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(kind.id() as usize, i, "span ids are their index");
            assert_eq!(SpanKind::from_id(kind.id()), Some(*kind));
        }
        for (i, counter) in Counter::ALL.iter().enumerate() {
            assert_eq!(counter.id() as usize, i, "counter ids are their index");
            assert_eq!(Counter::from_id(counter.id()), Some(*counter));
        }
        assert_eq!(SpanKind::from_id(999), None);
        assert_eq!(Counter::from_id(999), None);
    }

    #[test]
    fn names_are_dotted_and_unique() {
        let mut names: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        names.extend(Counter::ALL.iter().map(|c| c.name()));
        for name in &names {
            assert!(name.contains('.'), "{name} is subsystem-dotted");
        }
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "names are unique");
        assert_eq!(SpanKind::MonitorApply.category(), "monitor");
        assert_eq!(Counter::IncEdgeChecks.category(), "inc");
    }
}
