//! `tg-obs`: structured tracing and metrics for the enforcement core.
//!
//! The paper's cost claims are *per-operation*: Corollary 5.7 bounds one
//! rule check by a constant number of level comparisons, Corollary 5.6
//! bounds a whole-graph audit by one pass over the edges, and Theorem 5.2
//! reduces hierarchy security to island/bridge structure. A production
//! monitor should be able to *show* those costs on live traffic, not just
//! assert them in benchmarks. This crate is the instrumentation layer
//! that makes them visible:
//!
//! * [`SpanKind`] / [`Counter`] — a closed catalog of instrumentation
//!   points with **stable numeric ids**, each documented with the paper
//!   result it measures ([`SpanKind::doc`], [`Counter::doc`]).
//! * [`Recorder`] — the abstract consumer of span enter/exit events and
//!   counter increments. [`Tally`] is the aggregating implementation
//!   (monotonic counters plus [`LogHistogram`] latency histograms);
//!   [`replay`] drives any recorder from a captured event stream.
//! * A global facade — [`span`], [`add`], [`Session`] — whose disabled
//!   fast path is one relaxed atomic load, so instrumented hot paths
//!   (`Monitor::try_apply`, the `tg-inc` per-edge rechecks, the lint
//!   passes) stay within the bench-enforced ≤10% overhead budget (see
//!   `BENCH_obs.json`).
//! * [`Event`] buffering — a thread-local, lock-free-on-the-hot-path
//!   buffer drained through a [`TraceSink`]: [`JsonlSink`] (one JSON
//!   object per line) or [`ChromeSink`] (Chrome `about:tracing` /
//!   Perfetto `trace_event` JSON), both hand-rolled like the SARIF
//!   writer in `tg-lint` — the workspace is offline and carries no
//!   serde.
//!
//! # Examples
//!
//! Recording and aggregating in-process:
//!
//! ```
//! use tg_obs::{Counter, SpanKind, Tally};
//!
//! let session = tg_obs::Session::start(true, true);
//! {
//!     let _span = tg_obs::span(SpanKind::MonitorApply);
//!     tg_obs::add(Counter::IncEdgeChecks, 3);
//! } // span closes here
//! let snapshot = session.snapshot();
//! assert_eq!(snapshot.counter(Counter::IncEdgeChecks), 3);
//! assert_eq!(snapshot.span(SpanKind::MonitorApply).count, 1);
//!
//! // The same numbers can be rebuilt from the captured event stream by
//! // any `Recorder`; `Tally` is the built-in aggregator.
//! let events = session.drain_events();
//! let tally = Tally::from_events(&events);
//! assert_eq!(tally.counters[Counter::IncEdgeChecks as usize], 3);
//! ```
//!
//! Rendering a trace for `chrome://tracing`:
//!
//! ```
//! use tg_obs::{ChromeSink, SpanKind};
//!
//! let session = tg_obs::Session::start(false, true);
//! drop(tg_obs::span(SpanKind::LintRun));
//! let events = session.drain_events();
//! let json = tg_obs::render(&events, &mut ChromeSink::new());
//! assert!(json.contains("\"traceEvents\""));
//! assert!(json.contains("\"lint.run\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod hist;
mod sink;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

pub use catalog::{Counter, SpanKind};
pub use hist::LogHistogram;
pub use sink::{render, ChromeSink, Event, JsonlSink, TraceSink};

/// Consumes instrumentation as it happens (or as it is replayed).
///
/// The enforcement crates do not call a `Recorder` directly — they go
/// through the near-zero-cost global facade ([`span`], [`add`]) — but
/// every captured [`Event`] stream can be driven into a `Recorder` with
/// [`replay`], and [`Tally`] is the standard aggregating implementation.
/// Implement this to compute custom aggregations over a trace.
///
/// # Examples
///
/// ```
/// use tg_obs::{Counter, Event, Recorder, SpanKind};
///
/// /// Counts monitor.apply spans and nothing else.
/// #[derive(Default)]
/// struct ApplyCounter(u64);
///
/// impl Recorder for ApplyCounter {
///     fn span_enter(&mut self, _kind: SpanKind, _at_ns: u64) {}
///     fn span_exit(&mut self, kind: SpanKind, _at_ns: u64, _dur_ns: u64) {
///         if kind == SpanKind::MonitorApply {
///             self.0 += 1;
///         }
///     }
///     fn add(&mut self, _counter: Counter, _delta: u64, _at_ns: u64) {}
/// }
///
/// let events = [Event::Span {
///     kind: SpanKind::MonitorApply,
///     start_ns: 0,
///     dur_ns: 10,
/// }];
/// let mut rec = ApplyCounter::default();
/// tg_obs::replay(&events, &mut rec);
/// assert_eq!(rec.0, 1);
/// ```
pub trait Recorder {
    /// A span of `kind` was entered at `at_ns` (nanoseconds since the
    /// process's trace epoch).
    fn span_enter(&mut self, kind: SpanKind, at_ns: u64);

    /// The span of `kind` entered at `at_ns - dur_ns` exited.
    fn span_exit(&mut self, kind: SpanKind, at_ns: u64, dur_ns: u64);

    /// Counter `counter` was incremented by `delta` at `at_ns`.
    fn add(&mut self, counter: Counter, delta: u64, at_ns: u64);
}

/// Drives `recorder` with every event of a captured stream, in order.
/// Spans are delivered as an enter immediately followed by its exit
/// (complete events carry both endpoints).
pub fn replay(events: &[Event], recorder: &mut dyn Recorder) {
    for event in events {
        match *event {
            Event::Span {
                kind,
                start_ns,
                dur_ns,
            } => {
                recorder.span_enter(kind, start_ns);
                recorder.span_exit(kind, start_ns + dur_ns, dur_ns);
            }
            Event::Count {
                counter,
                delta,
                at_ns,
            } => recorder.add(counter, delta, at_ns),
        }
    }
}

// ------------------------------------------------------- global state --

const MODE_METRICS: u8 = 1;
const MODE_EVENTS: u8 = 2;

/// Which recording paths are live. `0` is the fast path: [`span`] and
/// [`add`] reduce to one relaxed load and a branch.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Per-counter monotonic totals.
static COUNTERS: [AtomicU64; Counter::COUNT] = zeroed();

/// Per-span aggregates, flattened: `[count, total_ns, max_ns, b0..b63]`
/// per [`SpanKind`].
const SPAN_STRIDE: usize = 3 + 64;
static SPANS: [AtomicU64; SpanKind::COUNT * SPAN_STRIDE] = zeroed();

/// `const` zero-initializer for atomic arrays (`AtomicU64` is not
/// `Copy`, so the usual `[0; N]` form needs a `const` item).
const fn zeroed<const N: usize>() -> [AtomicU64; N] {
    #[allow(clippy::declare_interior_mutable_const)]
    const Z: AtomicU64 = AtomicU64::new(0);
    [Z; N]
}

/// Cap on the per-thread event buffer; beyond it events are counted as
/// dropped rather than grown without bound (a long `tgq trace` of a
/// pathological workload must not OOM the monitor it is observing).
const MAX_BUFFERED_EVENTS: usize = 1 << 20;

thread_local! {
    static EVENTS: RefCell<Vec<Event>> = const { RefCell::new(Vec::new()) };
    static DROPPED: RefCell<u64> = const { RefCell::new(0) };
}

/// The process's trace epoch: all timestamps are nanoseconds since the
/// first instrumented operation (or [`Session::start`]).
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn push_event(event: Event) {
    EVENTS.with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.len() < MAX_BUFFERED_EVENTS {
            buf.push(event);
        } else {
            DROPPED.with(|d| *d.borrow_mut() += 1);
        }
    });
}

// ------------------------------------------------------------ facade --

/// Increments `counter` by `delta`. One relaxed atomic load when
/// recording is off; one relaxed `fetch_add` (plus an event push when a
/// trace is being captured) when on.
#[inline]
pub fn add(counter: Counter, delta: u64) {
    let mode = MODE.load(Ordering::Relaxed);
    if mode == 0 {
        return;
    }
    if mode & MODE_METRICS != 0 {
        COUNTERS[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }
    if mode & MODE_EVENTS != 0 {
        push_event(Event::Count {
            counter,
            delta,
            at_ns: now_ns(),
        });
    }
}

/// An RAII span: created by [`span`], records its duration on drop.
/// Inert (no timestamp taken) when recording is off.
#[must_use = "a span records its duration when dropped"]
pub struct SpanGuard {
    kind: SpanKind,
    start_ns: u64,
    live: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let end_ns = now_ns();
        let dur_ns = end_ns.saturating_sub(self.start_ns);
        let mode = MODE.load(Ordering::Relaxed);
        if mode & MODE_METRICS != 0 {
            let base = self.kind as usize * SPAN_STRIDE;
            SPANS[base].fetch_add(1, Ordering::Relaxed);
            SPANS[base + 1].fetch_add(dur_ns, Ordering::Relaxed);
            SPANS[base + 2].fetch_max(dur_ns, Ordering::Relaxed);
            SPANS[base + 3 + hist::bucket_of(dur_ns)].fetch_add(1, Ordering::Relaxed);
        }
        if mode & MODE_EVENTS != 0 {
            push_event(Event::Span {
                kind: self.kind,
                start_ns: self.start_ns,
                dur_ns,
            });
        }
    }
}

/// Opens a span of `kind`; the returned guard records the span's latency
/// (into the histogram, and into the event buffer when a trace is being
/// captured) when dropped. When recording is off this is one relaxed
/// atomic load.
#[inline]
pub fn span(kind: SpanKind) -> SpanGuard {
    if MODE.load(Ordering::Relaxed) == 0 {
        return SpanGuard {
            kind,
            start_ns: 0,
            live: false,
        };
    }
    SpanGuard {
        kind,
        start_ns: now_ns(),
        live: true,
    }
}

/// Whether any recording (metrics or event capture) is currently on.
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != 0
}

// ----------------------------------------------------------- session --

/// Serializes sessions: global counters and the mode flag are shared, so
/// two concurrent sessions (e.g. parallel tests) must not interleave.
fn session_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A panic inside a session poisons nothing we care about: the state
    // is reset at the next `Session::start`.
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// An exclusive recording window: [`Session::start`] resets the global
/// metrics and the calling thread's event buffer, turns recording on,
/// and turns it off again on drop. Only one session exists at a time
/// (concurrent starters block), so snapshots are attributable.
pub struct Session {
    _lock: MutexGuard<'static, ()>,
}

impl Session {
    /// Starts a session recording metrics, a trace of [`Event`]s, or
    /// both. Blocks while another session is live.
    pub fn start(metrics: bool, events: bool) -> Session {
        let lock = session_lock();
        for c in &COUNTERS {
            c.store(0, Ordering::Relaxed);
        }
        for s in &SPANS {
            s.store(0, Ordering::Relaxed);
        }
        EVENTS.with(|buf| buf.borrow_mut().clear());
        DROPPED.with(|d| *d.borrow_mut() = 0);
        let _ = epoch();
        let mode = if metrics { MODE_METRICS } else { 0 } | if events { MODE_EVENTS } else { 0 };
        MODE.store(mode, Ordering::Relaxed);
        Session { _lock: lock }
    }

    /// Reads the current aggregates into a plain [`Tally`].
    pub fn snapshot(&self) -> Tally {
        let mut tally = Tally::new();
        for (i, c) in COUNTERS.iter().enumerate() {
            tally.counters[i] = c.load(Ordering::Relaxed);
        }
        for kind in SpanKind::ALL {
            let base = *kind as usize * SPAN_STRIDE;
            let hist = &mut tally.spans[*kind as usize];
            hist.count = SPANS[base].load(Ordering::Relaxed);
            hist.total_ns = SPANS[base + 1].load(Ordering::Relaxed);
            hist.max_ns = SPANS[base + 2].load(Ordering::Relaxed);
            for b in 0..64 {
                hist.buckets[b] = SPANS[base + 3 + b].load(Ordering::Relaxed);
            }
        }
        tally
    }

    /// Takes the calling thread's captured events (oldest first),
    /// leaving the buffer empty. Events captured on other threads stay
    /// in their threads' buffers.
    pub fn drain_events(&self) -> Vec<Event> {
        EVENTS.with(|buf| std::mem::take(&mut *buf.borrow_mut()))
    }

    /// Events discarded on this thread because the buffer hit its cap.
    pub fn dropped_events(&self) -> u64 {
        DROPPED.with(|d| *d.borrow())
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        MODE.store(0, Ordering::Relaxed);
    }
}

// ------------------------------------------------------------- tally --

/// Plain aggregated metrics: one monotonic total per [`Counter`] and one
/// [`LogHistogram`] per [`SpanKind`]. Produced by [`Session::snapshot`]
/// or rebuilt from an event stream ([`Tally::from_events`]); this is
/// what `tgq --stats` renders.
#[derive(Clone, Debug)]
pub struct Tally {
    /// Totals, indexed by `Counter as usize`.
    pub counters: Vec<u64>,
    /// Latency histograms, indexed by `SpanKind as usize`.
    pub spans: Vec<LogHistogram>,
}

impl Tally {
    /// An all-zero tally.
    pub fn new() -> Tally {
        Tally {
            counters: vec![0; Counter::COUNT],
            spans: vec![LogHistogram::new(); SpanKind::COUNT],
        }
    }

    /// Aggregates a captured event stream.
    pub fn from_events(events: &[Event]) -> Tally {
        let mut tally = Tally::new();
        replay(events, &mut tally);
        tally
    }

    /// The total of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// The latency histogram of one span kind.
    pub fn span(&self, kind: SpanKind) -> &LogHistogram {
        &self.spans[kind as usize]
    }

    /// Renders the non-zero rows as the aligned table `tgq --stats`
    /// prints: spans with count, total, mean, p50/p99 and max; counters
    /// with their totals and the paper result they measure.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "span", "count", "total", "mean", "p50", "p99", "max"
        );
        let mut any = false;
        for kind in SpanKind::ALL {
            let h = self.span(*kind);
            if h.count == 0 {
                continue;
            }
            any = true;
            let _ = writeln!(
                out,
                "{:<22} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10}",
                kind.name(),
                h.count,
                fmt_ns(h.total_ns),
                fmt_ns(h.mean_ns()),
                fmt_ns(h.quantile_ns(0.50)),
                fmt_ns(h.quantile_ns(0.99)),
                fmt_ns(h.max_ns),
            );
        }
        if !any {
            let _ = writeln!(out, "(no spans recorded)");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<22} {:>9}  measures", "counter", "total");
        any = false;
        for counter in Counter::ALL {
            let v = self.counter(*counter);
            if v == 0 {
                continue;
            }
            any = true;
            let _ = writeln!(out, "{:<22} {:>9}  {}", counter.name(), v, counter.doc());
        }
        if !any {
            let _ = writeln!(out, "(no counters recorded)");
        }
        out
    }
}

impl Default for Tally {
    fn default() -> Tally {
        Tally::new()
    }
}

impl Recorder for Tally {
    fn span_enter(&mut self, _kind: SpanKind, _at_ns: u64) {}

    fn span_exit(&mut self, kind: SpanKind, _at_ns: u64, dur_ns: u64) {
        self.spans[kind as usize].record(dur_ns);
    }

    fn add(&mut self, counter: Counter, delta: u64, _at_ns: u64) {
        self.counters[counter as usize] += delta;
    }
}

/// Renders nanoseconds with a human unit (`ns`, `µs`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{}µs", ns / 1_000),
        10_000_000..=9_999_999_999 => format!("{}ms", ns / 1_000_000),
        _ => format!("{}s", ns / 1_000_000_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_facade_records_nothing() {
        // No session: the fast path must not record.
        add(Counter::IncEdgeChecks, 5);
        drop(span(SpanKind::MonitorApply));
        let session = Session::start(true, false);
        assert_eq!(session.snapshot().counter(Counter::IncEdgeChecks), 0);
        assert_eq!(session.snapshot().span(SpanKind::MonitorApply).count, 0);
    }

    #[test]
    fn session_aggregates_spans_and_counters() {
        let session = Session::start(true, true);
        for _ in 0..3 {
            let _s = span(SpanKind::LintRun);
            add(Counter::LintDiagnostics, 2);
        }
        let snap = session.snapshot();
        assert_eq!(snap.span(SpanKind::LintRun).count, 3);
        assert!(snap.span(SpanKind::LintRun).total_ns >= snap.span(SpanKind::LintRun).max_ns);
        assert_eq!(snap.counter(Counter::LintDiagnostics), 6);

        // The event stream rebuilds the same aggregates.
        let events = session.drain_events();
        assert_eq!(events.len(), 6);
        let tally = Tally::from_events(&events);
        assert_eq!(tally.counter(Counter::LintDiagnostics), 6);
        assert_eq!(tally.span(SpanKind::LintRun).count, 3);
        assert_eq!(session.dropped_events(), 0);
    }

    #[test]
    fn sessions_reset_state() {
        {
            let session = Session::start(true, false);
            add(Counter::MonitorPermitted, 7);
            assert_eq!(session.snapshot().counter(Counter::MonitorPermitted), 7);
        }
        let session = Session::start(true, false);
        assert_eq!(session.snapshot().counter(Counter::MonitorPermitted), 0);
    }

    #[test]
    fn table_renders_nonzero_rows_with_docs() {
        let session = Session::start(true, false);
        add(Counter::IncEdgeChecks, 41);
        drop(span(SpanKind::MonitorAudit));
        let table = session.snapshot().render_table();
        assert!(table.contains("monitor.audit"));
        assert!(table.contains("inc.edge_checks"));
        assert!(table.contains("41"));
        assert!(table.contains("Cor 5.7"), "docs cite the paper: {table}");
        assert!(!table.contains("lint.run"), "zero rows are elided");
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(25_000), "25µs");
        assert_eq!(fmt_ns(25_000_000), "25ms");
        assert_eq!(fmt_ns(25_000_000_000), "25s");
    }
}
