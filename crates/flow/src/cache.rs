//! Generation-stamped closure memoization.
//!
//! [`FlowClosure::compute`] is a whole-graph pass; an incremental engine
//! that lints after every mutation would pay it each time. The cache
//! splits the pass at its only island-dependent seam — the per-island
//! take-reach — and memoizes those reaches under three stamps supplied by
//! the caller:
//!
//! * **`graph_epoch`** — bumped on *every* mutation. While it is
//!   unchanged the assembled closure is returned as-is.
//! * **`t_epoch`** — bumped whenever an explicit `t` right appears or
//!   disappears anywhere. Take-reaches follow explicit `t` edges through
//!   arbitrary vertices, so any such change invalidates every cached
//!   reach at once.
//! * **per-island generation** — a counter that changes whenever the
//!   island's membership changes (`tg_inc`'s region generations). While
//!   `t_epoch` holds, an island whose generation is unchanged keeps its
//!   reach; only touched islands are re-searched.
//!
//! The assembly phase ([`FlowClosure::from_island_reaches`]) always
//! reruns on a changed `graph_epoch`: it reads `r`/`w`/`g` edges and the
//! de facto acquires relation, which the stamps above do not track. It is
//! a near-linear bitset pass, so the expensive part — one BFS per island
//! — is what the stamps protect.

use std::collections::HashMap;

use tg_graph::{ProtectionGraph, VertexId};

use crate::closure::{island_reach, FlowClosure};
use tg_analysis::Islands;

/// Hit/miss counters for a [`ClosureCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Island reaches served from the cache.
    pub islands_reused: u64,
    /// Island reaches recomputed by BFS.
    pub islands_recomputed: u64,
    /// Full closures assembled from island reaches.
    pub closures_assembled: u64,
    /// Closures returned without any recomputation.
    pub closures_reused: u64,
}

/// A memoized [`FlowClosure`] keyed by caller-supplied generation stamps.
///
/// The caller owns the invalidation contract (see the module docs); the
/// cache itself never inspects edges. `tg_inc`'s engine threads its
/// mutation epochs and region generations through here so repeated
/// whole-graph lints between sparse mutations cost one bitset assembly —
/// or nothing at all.
#[derive(Debug, Default)]
pub struct ClosureCache {
    /// Stamp of the cached assembly, if any.
    assembled_at: Option<u64>,
    /// `t_epoch` the cached reaches were computed under.
    reaches_at: Option<u64>,
    /// Island root (smallest member index) → (island generation, reach).
    reaches: HashMap<usize, (u64, Vec<VertexId>)>,
    closure: Option<FlowClosure>,
    stats: CacheStats,
}

impl ClosureCache {
    /// An empty cache.
    pub fn new() -> ClosureCache {
        ClosureCache::default()
    }

    /// The closure for `graph`, reusing whatever the stamps allow.
    ///
    /// `island_gen(v)` must return the current generation of the island
    /// containing `v`; it is queried on each island's smallest member.
    /// The stamps must obey the contract in the module docs or stale
    /// verdicts will be served.
    pub fn closure<F>(
        &mut self,
        graph: &ProtectionGraph,
        graph_epoch: u64,
        t_epoch: u64,
        island_gen: F,
    ) -> &FlowClosure
    where
        F: Fn(VertexId) -> u64,
    {
        if self.assembled_at == Some(graph_epoch) && self.closure.is_some() {
            self.stats.closures_reused += 1;
        } else {
            if self.reaches_at != Some(t_epoch) {
                self.reaches.clear();
                self.reaches_at = Some(t_epoch);
            }
            let islands = Islands::compute(graph);
            let mut fresh: HashMap<usize, (u64, Vec<VertexId>)> =
                HashMap::with_capacity(islands.len());
            let mut reaches: Vec<Vec<VertexId>> = Vec::with_capacity(islands.len());
            for members in islands.iter() {
                let root = members[0].index();
                let gen = island_gen(members[0]);
                let reach = match self.reaches.get(&root) {
                    Some((cached_gen, cached)) if *cached_gen == gen => {
                        self.stats.islands_reused += 1;
                        cached.clone()
                    }
                    _ => {
                        self.stats.islands_recomputed += 1;
                        island_reach(graph, members)
                    }
                };
                fresh.insert(root, (gen, reach.clone()));
                reaches.push(reach);
            }
            self.reaches = fresh;
            self.stats.closures_assembled += 1;
            self.closure = Some(FlowClosure::from_island_reaches(graph, &islands, &reaches));
            self.assembled_at = Some(graph_epoch);
        }
        self.closure.as_ref().expect("assembled above")
    }

    /// The most recently assembled closure, if any, without checking any
    /// stamp or touching the counters. Callers that just called
    /// [`closure`](Self::closure) can use this to re-borrow the result
    /// after inspecting [`stats`](Self::stats).
    pub fn cached(&self) -> Option<&FlowClosure> {
        self.closure.as_ref()
    }

    /// Counters since construction (or the last [`clear`](Self::clear)).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops everything, including the counters.
    pub fn clear(&mut self) {
        *self = ClosureCache::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::Rights;

    #[test]
    fn same_epoch_reuses_the_closure() {
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        g.add_edge(a, b, Rights::T).unwrap();
        let mut cache = ClosureCache::new();
        assert!(cache.closure(&g, 0, 0, |_| 0).can_know(a, b));
        assert!(cache.closure(&g, 0, 0, |_| 0).can_know(a, b));
        let stats = cache.stats();
        assert_eq!(stats.closures_assembled, 1);
        assert_eq!(stats.closures_reused, 1);
    }

    #[test]
    fn unchanged_islands_keep_their_reaches() {
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let o = g.add_object("o");
        let b = g.add_subject("b");
        g.add_edge(a, o, Rights::T).unwrap();
        let mut cache = ClosureCache::new();
        cache.closure(&g, 0, 0, |_| 0);
        let first = cache.stats().islands_recomputed;
        assert!(first >= 2);

        // A read edge changes the graph but neither t-structure nor
        // membership: bump graph_epoch only. All reaches are reused.
        g.add_edge(b, o, Rights::R).unwrap();
        let verdict = cache.closure(&g, 1, 0, |_| 0).can_know(b, o);
        assert!(verdict);
        let stats = cache.stats();
        assert_eq!(stats.islands_recomputed, first);
        assert!(stats.islands_reused >= 2);
        assert_eq!(stats.closures_assembled, 2);
    }

    #[test]
    fn t_epoch_bump_drops_every_reach() {
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        let o = g.add_object("o");
        g.add_edge(a, o, Rights::R).unwrap();
        let mut cache = ClosureCache::new();
        cache.closure(&g, 0, 0, |_| 0);
        let first = cache.stats().islands_recomputed;

        g.add_edge(b, a, Rights::T).unwrap();
        assert!(cache.closure(&g, 1, 1, |_| 0).can_know(b, o));
        let stats = cache.stats();
        assert_eq!(stats.islands_reused, 0);
        assert!(stats.islands_recomputed > first);
    }

    #[test]
    fn island_generation_recomputes_only_that_island() {
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let _b = g.add_subject("b");
        let mut cache = ClosureCache::new();
        cache.closure(&g, 0, 0, |_| 0);
        assert_eq!(cache.stats().islands_recomputed, 2);

        // Pretend island `a` changed membership: its gen moves, b's holds.
        cache.closure(&g, 1, 0, |v| u64::from(v == a));
        let stats = cache.stats();
        assert_eq!(stats.islands_recomputed, 3);
        assert_eq!(stats.islands_reused, 1);
    }

    #[test]
    fn stale_free_verdicts_across_a_mutation_series() {
        let mut g = ProtectionGraph::new();
        let mut cache = ClosureCache::new();
        let (mut graph_epoch, mut t_epoch) = (0u64, 0u64);
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        let c = g.add_subject("c");
        let o = g.add_object("o");
        for (src, dst, rights) in [
            (a, b, Rights::T),
            (b, o, Rights::W),
            (c, o, Rights::R),
            (b, c, Rights::G),
        ] {
            g.add_edge(src, dst, rights).unwrap();
            graph_epoch += 1;
            if rights.contains(tg_graph::Right::Take) {
                t_epoch += 1;
            }
            // Island membership may shift on t/g edges between subjects:
            // fold both epochs into the per-island stamp conservatively.
            let gen = graph_epoch;
            let closure = cache.closure(&g, graph_epoch, t_epoch, |_| gen);
            for x in g.vertex_ids() {
                for y in g.vertex_ids() {
                    assert_eq!(
                        closure.can_know(x, y),
                        tg_analysis::can_know(&g, x, y),
                        "stale verdict at ({x}, {y}) after epoch {graph_epoch}"
                    );
                }
            }
        }
    }
}
