//! A dense row-major bit matrix, the workhorse of the closure phases.
//!
//! Rows are fixed-width bit sets packed into `u64` words; the closure uses
//! them for class reachability, per-vertex class memberships, and the de
//! facto component reach. Nothing here is specific to protection graphs.

/// A `rows × cols` bit matrix.
#[derive(Clone, Debug, Default)]
pub(crate) struct BitMatrix {
    words_per_row: usize,
    cols: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero matrix.
    pub(crate) fn new(rows: usize, cols: usize) -> BitMatrix {
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            words_per_row,
            cols,
            bits: vec![0; rows * words_per_row],
        }
    }

    /// Sets bit `(row, col)`.
    pub(crate) fn set(&mut self, row: usize, col: usize) {
        debug_assert!(col < self.cols);
        self.bits[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// Reads bit `(row, col)`.
    pub(crate) fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(col < self.cols);
        self.bits[row * self.words_per_row + col / 64] & (1u64 << (col % 64)) != 0
    }

    /// `dst |= src`, both rows of `self`.
    pub(crate) fn or_row(&mut self, dst: usize, src: usize) {
        let w = self.words_per_row;
        let (d, s) = (dst * w, src * w);
        for i in 0..w {
            let v = self.bits[s + i];
            self.bits[d + i] |= v;
        }
    }

    /// `dst (in self) |= src (in other)`; the matrices must share a width.
    pub(crate) fn or_row_from(&mut self, dst: usize, other: &BitMatrix, src: usize) {
        debug_assert_eq!(self.words_per_row, other.words_per_row);
        let w = self.words_per_row;
        for i in 0..w {
            self.bits[dst * w + i] |= other.bits[src * w + i];
        }
    }

    /// Whether row `a` of `self` and row `b` of `other` share a set bit.
    pub(crate) fn rows_intersect(&self, a: usize, other: &BitMatrix, b: usize) -> bool {
        debug_assert_eq!(self.words_per_row, other.words_per_row);
        let w = self.words_per_row;
        (0..w).any(|i| self.bits[a * w + i] & other.bits[b * w + i] != 0)
    }

    /// Iterates the set column indices of a row in ascending order.
    pub(crate) fn iter_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let w = self.words_per_row;
        let words = &self.bits[row * w..(row + 1) * w];
        words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Whether any bit of the row is set.
    pub(crate) fn row_any(&self, row: usize) -> bool {
        let w = self.words_per_row;
        self.bits[row * w..(row + 1) * w].iter().any(|&x| x != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_iterate() {
        let mut m = BitMatrix::new(2, 130);
        m.set(0, 0);
        m.set(0, 64);
        m.set(0, 129);
        m.set(1, 63);
        assert!(m.get(0, 129) && !m.get(1, 129));
        assert_eq!(m.iter_row(0).collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(m.iter_row(1).collect::<Vec<_>>(), vec![63]);
        assert!(m.row_any(0));
        assert!(!BitMatrix::new(1, 10).row_any(0));
    }

    #[test]
    fn row_ops_union_and_intersect() {
        let mut m = BitMatrix::new(3, 70);
        m.set(0, 5);
        m.set(1, 69);
        m.or_row(0, 1);
        assert!(m.get(0, 69) && m.get(0, 5) && !m.get(1, 5));
        let mut other = BitMatrix::new(1, 70);
        assert!(!m.rows_intersect(0, &other, 0));
        other.set(0, 69);
        assert!(m.rows_intersect(0, &other, 0));
        let mut dst = BitMatrix::new(1, 70);
        dst.or_row_from(0, &m, 0);
        assert_eq!(dst.iter_row(0).collect::<Vec<_>>(), vec![5, 69],);
    }
}
