//! Conspiracy attribution: *who* has to cooperate for a flow to happen.
//!
//! Theorem 3.2 characterizes `can_know(x, y)` by a subject chain
//! `u1 … un`; every chain subject must actively apply rules, so the chain
//! is a conspiracy and the shortest chain is a minimum conspirator set
//! (in the access-set style of arXiv 1208.0108, specialized to flows).
//! This module finds a shortest chain with the same typed oracle the
//! closure uses — per-subject take-closures plus set algebra for the four
//! bridge shapes and three connection shapes — and labels every link with
//! its shape, giving lints a human-readable "bridge word" per hop.

use std::collections::VecDeque;

use tg_graph::{ProtectionGraph, Right, VertexId};

/// The shape of one subject-chain link, i.e. which B∪C word joins the two
/// subjects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkShape {
    /// Bridge `t>+`: `from` takes along the path to `to`.
    TakeForward,
    /// Bridge `<t+`: `to` takes along the path to `from`.
    TakeReverse,
    /// Bridge `t>* g> <t*`: both take toward a grant edge crossing
    /// forward.
    GrantForward,
    /// Bridge `t>* <g <t*`: both take toward a grant edge crossing
    /// backward.
    GrantReverse,
    /// Connection `t>* r>`: `from` takes then reads `to`.
    ReadConnection,
    /// Connection `<w <t*`: `to` takes then writes `from`.
    WriteConnection,
    /// Connection `t>* r> <w <t*`: both take toward a middle vertex that
    /// `from` reads and `to` writes.
    ReadWriteConnection,
}

impl LinkShape {
    /// The link's word (the paper's path-language notation).
    pub fn word(self) -> &'static str {
        match self {
            LinkShape::TakeForward => "t>+",
            LinkShape::TakeReverse => "<t+",
            LinkShape::GrantForward => "t>* g> <t*",
            LinkShape::GrantReverse => "t>* <g <t*",
            LinkShape::ReadConnection => "t>* r>",
            LinkShape::WriteConnection => "<w <t*",
            LinkShape::ReadWriteConnection => "t>* r> <w <t*",
        }
    }

    /// Whether the word is a bridge (authority moves) rather than a
    /// connection (information moves).
    pub fn is_bridge(self) -> bool {
        matches!(
            self,
            LinkShape::TakeForward
                | LinkShape::TakeReverse
                | LinkShape::GrantForward
                | LinkShape::GrantReverse
        )
    }
}

/// One typed link of a conspiracy chain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TypedLink {
    /// The chain subject nearer `x`.
    pub from: VertexId,
    /// The chain subject nearer `y`.
    pub to: VertexId,
    /// Which B∪C shape joins them.
    pub shape: LinkShape,
}

/// A minimum conspirator set for one flow, with its typed chain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Conspiracy {
    /// The conspiring subjects in chain order (`u1 … un`); empty when the
    /// flow needs no active subject (trivial or implicit-terminal flows).
    pub subjects: Vec<VertexId>,
    /// Links joining consecutive subjects (`subjects.len() - 1` entries,
    /// empty for de facto flows, whose subjects act in path order).
    pub links: Vec<TypedLink>,
}

impl Conspiracy {
    /// Number of conspirators.
    pub fn len(&self) -> usize {
        self.subjects.len()
    }

    /// Whether the flow needs no conspirator at all.
    pub fn is_empty(&self) -> bool {
        self.subjects.is_empty()
    }

    /// The chain's bridge word: each link's shape joined with `·`, or `ν`
    /// for linkless flows.
    pub fn bridge_word(&self) -> String {
        if self.links.is_empty() {
            "ν".to_string()
        } else {
            let words: Vec<&str> = self.links.iter().map(|l| l.shape.word()).collect();
            words.join(" · ")
        }
    }
}

/// Per-subject closure sets, each a bitset over vertices.
struct SubjectSets {
    /// Take reach `t>*` (reflexive).
    ts: Vec<u64>,
    /// `{m : ∃a ∈ ts, a -r-> m}` — everything the subject can read after
    /// taking.
    reads: Vec<u64>,
    /// `{m : ∃b ∈ ts, b -w-> m}` — everything the subject can write after
    /// taking.
    writes: Vec<u64>,
    /// `{b : ∃a ∈ ts, a -g-> b}` — grant-edge targets in take reach.
    gt: Vec<u64>,
    /// `{b : ∃a ∈ ts, b -g-> a}` — grant-edge sources into take reach.
    gs: Vec<u64>,
}

fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1 << (i % 64)) != 0
}

fn bits_intersect(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

fn subject_sets(graph: &ProtectionGraph, s: VertexId) -> SubjectSets {
    let n = graph.vertex_count();
    let w = n.div_ceil(64).max(1);
    let mut sets = SubjectSets {
        ts: vec![0; w],
        reads: vec![0; w],
        writes: vec![0; w],
        gt: vec![0; w],
        gs: vec![0; w],
    };
    let mut queue = VecDeque::from([s]);
    bit_set(&mut sets.ts, s.index());
    let mut order = vec![s];
    while let Some(v) = queue.pop_front() {
        for (u, rights) in graph.out_edges(v) {
            if rights.explicit().contains(Right::Take) && !bit_get(&sets.ts, u.index()) {
                bit_set(&mut sets.ts, u.index());
                order.push(u);
                queue.push_back(u);
            }
        }
    }
    for a in order {
        for (m, rights) in graph.out_edges(a) {
            let explicit = rights.explicit();
            if explicit.contains(Right::Read) {
                bit_set(&mut sets.reads, m.index());
            }
            if explicit.contains(Right::Write) {
                bit_set(&mut sets.writes, m.index());
            }
            if explicit.contains(Right::Grant) {
                bit_set(&mut sets.gt, m.index());
            }
        }
        for (b, rights) in graph.in_edges(a) {
            if rights.explicit().contains(Right::Grant) {
                bit_set(&mut sets.gs, b.index());
            }
        }
    }
    sets
}

/// Classifies the B∪C link from `u` to `v`, if any, preferring bridges
/// over connections and shorter shapes over longer ones.
fn link_shape(u: &SubjectSets, v: &SubjectSets, ui: usize, vi: usize) -> Option<LinkShape> {
    if bit_get(&u.ts, vi) {
        return Some(LinkShape::TakeForward);
    }
    if bit_get(&v.ts, ui) {
        return Some(LinkShape::TakeReverse);
    }
    if bits_intersect(&u.gt, &v.ts) {
        return Some(LinkShape::GrantForward);
    }
    if bits_intersect(&u.gs, &v.ts) {
        return Some(LinkShape::GrantReverse);
    }
    if bit_get(&u.reads, vi) {
        return Some(LinkShape::ReadConnection);
    }
    if bit_get(&v.writes, ui) {
        return Some(LinkShape::WriteConnection);
    }
    if bits_intersect(&u.reads, &v.writes) {
        return Some(LinkShape::ReadWriteConnection);
    }
    None
}

/// A minimum conspirator set witnessing `can_know(x, y)`, or `None` when
/// the flow is impossible. Runs one take-closure per subject plus a BFS
/// over subjects, so cost grows with `subjects × edges` — callers lint
/// whole graphs through [`crate::FlowClosure`] and reserve this for the
/// pairs they flag.
///
/// # Panics
///
/// Panics if `x` or `y` does not belong to `graph`.
///
/// # Examples
///
/// ```
/// use tg_graph::{ProtectionGraph, Rights};
/// use tg_flow::min_flow_conspirators;
///
/// let mut g = ProtectionGraph::new();
/// let x = g.add_subject("x");
/// let u = g.add_subject("u");
/// let y = g.add_object("y");
/// g.add_edge(x, u, Rights::R).unwrap();
/// g.add_edge(u, y, Rights::T).unwrap();
/// let mut g2 = g.clone();
/// let q = g2.add_object("q");
/// g2.add_edge(u, q, Rights::T).unwrap();
/// g2.add_edge(q, y, Rights::R).unwrap();
///
/// let conspiracy = min_flow_conspirators(&g2, x, y).unwrap();
/// assert_eq!(conspiracy.subjects, vec![x, u]);
/// ```
pub fn min_flow_conspirators(
    graph: &ProtectionGraph,
    x: VertexId,
    y: VertexId,
) -> Option<Conspiracy> {
    if x == y {
        return Some(Conspiracy {
            subjects: Vec::new(),
            links: Vec::new(),
        });
    }
    // Pure de facto flows first, mirroring the decision order of
    // can_know_detail: the conspirators are the subjects along the
    // admissible rw-path (each applies a de facto rule).
    if let Some((vertices, _steps)) = tg_analysis::can_know_f_path(graph, x, y) {
        let subjects: Vec<VertexId> = vertices
            .into_iter()
            .filter(|&v| graph.is_subject(v))
            .collect();
        return Some(Conspiracy {
            subjects,
            links: Vec::new(),
        });
    }
    if tg_analysis::can_know_f(graph, x, y) {
        // Implicit-edge terminal case: the flow is already exhibited.
        return Some(Conspiracy {
            subjects: Vec::new(),
            links: Vec::new(),
        });
    }

    let subjects: Vec<VertexId> = graph.subjects().collect();
    let sets: Vec<SubjectSets> = subjects.iter().map(|&s| subject_sets(graph, s)).collect();

    // Chain heads: subjects rw-initially spanning x (t>* w> into x), plus
    // x itself; tails: subjects rw-terminally spanning y (t>* r> into y),
    // plus y itself.
    let is_head = |i: usize| -> bool { bit_get(&sets[i].writes, x.index()) || subjects[i] == x };
    let is_tail = |i: usize| -> bool { bit_get(&sets[i].reads, y.index()) || subjects[i] == y };

    let mut parent: Vec<Option<usize>> = vec![None; subjects.len()];
    let mut seen = vec![false; subjects.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut goal: Option<usize> = None;
    for (i, seen_i) in seen.iter_mut().enumerate() {
        if is_head(i) {
            *seen_i = true;
            if is_tail(i) {
                goal = Some(i);
                break;
            }
            queue.push_back(i);
        }
    }
    while goal.is_none() {
        let Some(i) = queue.pop_front() else {
            break;
        };
        for j in 0..subjects.len() {
            if seen[j]
                || link_shape(&sets[i], &sets[j], subjects[i].index(), subjects[j].index())
                    .is_none()
            {
                continue;
            }
            seen[j] = true;
            parent[j] = Some(i);
            if is_tail(j) {
                goal = Some(j);
                break;
            }
            queue.push_back(j);
        }
    }

    let mut at = goal?;
    let mut chain = vec![at];
    while let Some(p) = parent[at] {
        chain.push(p);
        at = p;
    }
    chain.reverse();
    let links: Vec<TypedLink> = chain
        .windows(2)
        .map(|w| {
            let (i, j) = (w[0], w[1]);
            let shape = link_shape(&sets[i], &sets[j], subjects[i].index(), subjects[j].index())
                .expect("chain edges came from link_shape");
            TypedLink {
                from: subjects[i],
                to: subjects[j],
                shape,
            }
        })
        .collect();
    Some(Conspiracy {
        subjects: chain.into_iter().map(|i| subjects[i]).collect(),
        links,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::Rights;

    #[test]
    fn trivial_flows_need_nobody() {
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let c = min_flow_conspirators(&g, a, a).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.bridge_word(), "ν");
    }

    #[test]
    fn de_facto_path_subjects_conspire() {
        // x -r-> o <w- s -r-> y: x and s cooperate (post then spy).
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let o = g.add_object("o");
        let s = g.add_subject("s");
        let y = g.add_object("y");
        g.add_edge(x, o, Rights::R).unwrap();
        g.add_edge(s, o, Rights::W).unwrap();
        g.add_edge(s, y, Rights::R).unwrap();
        let c = min_flow_conspirators(&g, x, y).unwrap();
        assert_eq!(c.subjects, vec![x, s]);
        assert!(c.links.is_empty());
    }

    #[test]
    fn bridge_chain_is_typed() {
        // x -t-> u (bridge), u -t-> q -r-> y (terminal span).
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let u = g.add_subject("u");
        let q = g.add_object("q");
        let y = g.add_object("y");
        g.add_edge(x, u, Rights::T).unwrap();
        g.add_edge(u, q, Rights::T).unwrap();
        g.add_edge(q, y, Rights::R).unwrap();
        let c = min_flow_conspirators(&g, x, y).unwrap();
        // x itself rw-terminally spans y through the take chain, so the
        // minimum conspiracy is x alone.
        assert_eq!(c.subjects, vec![x]);

        // Cut x's own take edge into u: now two conspirators are needed.
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let u = g.add_subject("u");
        let q = g.add_object("q");
        let y = g.add_object("y");
        g.add_edge(u, x, Rights::T).unwrap(); // u -t-> x: shape <t+ from x
        g.add_edge(u, q, Rights::T).unwrap();
        g.add_edge(q, y, Rights::R).unwrap();
        let c = min_flow_conspirators(&g, x, y).unwrap();
        assert_eq!(c.subjects, vec![x, u]);
        assert_eq!(c.links.len(), 1);
        assert_eq!(c.links[0].shape, LinkShape::TakeReverse);
        assert!(c.links[0].shape.is_bridge());
        assert_eq!(c.bridge_word(), "<t+");
    }

    #[test]
    fn grant_bridges_classify() {
        // x -t-> p, p -g-> q, u -t-> q, u -r-> y.
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let p = g.add_object("p");
        let q = g.add_object("q");
        let u = g.add_subject("u");
        let y = g.add_object("y");
        g.add_edge(x, p, Rights::T).unwrap();
        g.add_edge(p, q, Rights::G).unwrap();
        g.add_edge(u, q, Rights::T).unwrap();
        g.add_edge(u, y, Rights::R).unwrap();
        let c = min_flow_conspirators(&g, x, y).unwrap();
        assert_eq!(c.subjects, vec![x, u]);
        assert_eq!(c.links[0].shape, LinkShape::GrantForward);
        assert_eq!(c.bridge_word(), "t>* g> <t*");
    }

    #[test]
    fn connections_classify() {
        // Double connection: x -t-> a -r-> m <w- b <t- y.
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let a = g.add_object("a");
        let m = g.add_object("m");
        let b = g.add_object("b");
        let y = g.add_subject("y");
        g.add_edge(x, a, Rights::T).unwrap();
        g.add_edge(a, m, Rights::R).unwrap();
        g.add_edge(y, b, Rights::T).unwrap();
        g.add_edge(b, m, Rights::W).unwrap();
        let c = min_flow_conspirators(&g, x, y).unwrap();
        assert_eq!(c.subjects, vec![x, y]);
        assert_eq!(c.links[0].shape, LinkShape::ReadWriteConnection);
        assert!(!c.links[0].shape.is_bridge());
    }

    #[test]
    fn impossible_flows_have_no_conspiracy() {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let y = g.add_object("y");
        assert!(min_flow_conspirators(&g, x, y).is_none());
    }

    #[test]
    fn conspiracies_match_the_closure() {
        // Wherever the closure says a flow exists, a conspiracy exists.
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        let c = g.add_subject("c");
        let o = g.add_object("o");
        g.add_edge(a, b, Rights::T).unwrap();
        g.add_edge(b, c, Rights::R).unwrap();
        g.add_edge(c, o, Rights::RW).unwrap();
        let closure = crate::FlowClosure::compute(&g);
        for x in g.vertex_ids() {
            for y in g.vertex_ids() {
                assert_eq!(
                    closure.can_know(x, y),
                    min_flow_conspirators(&g, x, y).is_some(),
                    "conspiracy existence disagrees at ({x}, {y})"
                );
            }
        }
    }
}
