//! The whole-graph flow closure: one island-local fixpoint answering
//! `can_know` for *every* pair at once.
//!
//! The per-pair decision (`tg_analysis::can_know`, Theorem 3.2) runs a
//! chained product-BFS over the B∪C automaton per query. This module
//! replaces the generic automaton walk with a *typed bridge oracle*: the
//! four bridge shapes of arXiv 1208.1346 — `t>+`, `<t+`, `t>* g> <t*`,
//! `t>* <g <t*` — and the three connection shapes are each decided by
//! set algebra over per-island take-closures, so the whole relation is
//! assembled in a handful of linear passes:
//!
//! 1. **Islands** (paper §2) are the seed equivalence classes: island
//!    mates are joined by one-letter bridges.
//! 2. **Take reach.** Each island BFSes forward over explicit `t` edges
//!    once ([`island_reach`]); `rti(v)` inverts this into "the islands
//!    whose take-closure covers `v`".
//! 3. **Bridge merge.** Shape 1/2 bridges merge an island with every
//!    foreign subject its reach covers; shapes 3/4 merge everything in
//!    `rti(a) ∪ rti(b)` across each explicit grant edge `a → b`. The
//!    merged classes are exactly the components of the symmetric bridge
//!    relation — inside one class, authority travels freely.
//! 4. **Connections.** Explicit `r`/`w` edges induce *directed* links
//!    between classes through conduit vertices (`t>* r>`, `<w <t*`,
//!    `t>* r> <w <t*`); a class-level reachability matrix closes them
//!    transitively.
//! 5. **Spans.** Per vertex, the classes rw-initially / rw-terminally
//!    spanning it reduce the Theorem 3.2 chain question to one bitset
//!    intersection.
//! 6. **De facto.** The admissible rw-path relation (Theorem 3.1) is
//!    closed over the condensation of the one-step flow graph, plus the
//!    definition's implicit-edge terminal cases.
//!
//! The result answers `can_know(x, y)` for any pair in O(classes/64)
//! words — and is differentially pinned, verdict for verdict, to the
//! per-pair procedure.

use std::collections::VecDeque;

use tg_analysis::Islands;
use tg_graph::algo::{condensation, UnionFind};
use tg_graph::{ProtectionGraph, Right, VertexId};

use crate::bitset::BitMatrix;

/// Shape statistics of an assembled closure, for tests and benches.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ClosureStats {
    /// Vertices covered.
    pub vertices: usize,
    /// Islands before bridge merging.
    pub islands: usize,
    /// Flow classes after bridge merging.
    pub classes: usize,
    /// Directed conduit links (class → vertex and vertex → class).
    pub conduit_links: usize,
    /// Strongly connected components of the de facto flow graph.
    pub df_components: usize,
}

/// The complete de facto flow relation of one protection graph.
///
/// Build it once with [`FlowClosure::compute`] (or shard the take-reach
/// phase and assemble with [`FlowClosure::from_island_reaches`]); query
/// any pair with [`FlowClosure::can_know`]. Verdicts agree exactly with
/// [`tg_analysis::can_know`].
///
/// # Examples
///
/// ```
/// use tg_graph::{ProtectionGraph, Rights};
/// use tg_flow::FlowClosure;
///
/// let mut g = ProtectionGraph::new();
/// let x = g.add_subject("x");
/// let q = g.add_object("q");
/// let y = g.add_object("y");
/// g.add_edge(x, q, Rights::T).unwrap();
/// g.add_edge(q, y, Rights::R).unwrap();
///
/// let closure = FlowClosure::compute(&g);
/// assert!(closure.can_know(x, y));
/// assert!(!closure.can_know(y, x));
/// ```
#[derive(Clone, Debug)]
pub struct FlowClosure {
    vertex_count: usize,
    /// Flow class of each subject vertex (`None` for objects).
    class_of_vertex: Vec<Option<u32>>,
    /// For each vertex `x`: classes reachable from any class eligible as
    /// the chain head `u1` (reach-closed `know_from`).
    from_reach: BitMatrix,
    /// For each vertex `y`: classes eligible as the chain tail `un`.
    to_classes: BitMatrix,
    /// De facto flow component of each vertex.
    df_component: Vec<u32>,
    /// For each component: vertices reachable in the flow graph
    /// (reflexive over members).
    df_reach: BitMatrix,
    /// Implicit-edge terminal cases `(x, y)` of the `can_know_f`
    /// definition, sorted.
    terminal_pairs: Vec<(u32, u32)>,
    stats: ClosureStats,
}

/// Forward closure over explicit take edges from an island's members:
/// every vertex some member reaches with a (possibly empty) `t>*` prefix.
/// Sorted by id. This is the only phase whose cost depends on the island,
/// which makes it the unit of sharding (`tg-par`) and of memoization
/// ([`crate::ClosureCache`]).
pub fn island_reach(graph: &ProtectionGraph, members: &[VertexId]) -> Vec<VertexId> {
    let n = graph.vertex_count();
    let mut seen = vec![false; n];
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    for &m in members {
        if !seen[m.index()] {
            seen[m.index()] = true;
            queue.push_back(m);
        }
    }
    let mut out: Vec<VertexId> = members.to_vec();
    while let Some(v) = queue.pop_front() {
        for (w, rights) in graph.out_edges(v) {
            if rights.explicit().contains(Right::Take) && !seen[w.index()] {
                seen[w.index()] = true;
                out.push(w);
                queue.push_back(w);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

impl FlowClosure {
    /// Computes the closure sequentially.
    pub fn compute(graph: &ProtectionGraph) -> FlowClosure {
        let islands = Islands::compute(graph);
        let reaches: Vec<Vec<VertexId>> = islands
            .iter()
            .map(|members| island_reach(graph, members))
            .collect();
        FlowClosure::from_island_reaches(graph, &islands, &reaches)
    }

    /// Assembles the closure from precomputed per-island take reaches
    /// (`reaches[i]` must be `island_reach(graph, islands.members(i))`).
    /// All remaining phases are cheap and deterministic, so computing the
    /// reaches elsewhere — in parallel shards, or from a generation-stamped
    /// cache — yields a byte-identical closure.
    pub fn from_island_reaches(
        graph: &ProtectionGraph,
        islands: &Islands,
        reaches: &[Vec<VertexId>],
    ) -> FlowClosure {
        let n = graph.vertex_count();
        let k = islands.len();
        assert_eq!(reaches.len(), k, "one reach set per island");

        // rti[v]: islands whose take-closure covers v (ascending).
        let mut rti: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, reach) in reaches.iter().enumerate() {
            for v in reach {
                rti[v.index()].push(i as u32);
            }
        }

        // Bridge merge. Shapes 1/2: an island bridges to every foreign
        // subject in its take reach. Shapes 3/4: a grant edge a → b with
        // take-reachers on both sides bridges every pair across it.
        let mut uf = UnionFind::new(k);
        for (i, reach) in reaches.iter().enumerate() {
            for &v in reach {
                if let Some(j) = islands.island_of(v) {
                    uf.union(i, j);
                }
            }
        }
        for edge in graph.edges() {
            if !edge.rights.explicit().contains(Right::Grant) {
                continue;
            }
            let (ra, rb) = (&rti[edge.src.index()], &rti[edge.dst.index()]);
            if ra.is_empty() || rb.is_empty() {
                continue;
            }
            let anchor = ra[0] as usize;
            for &i in ra.iter().chain(rb.iter()) {
                uf.union(anchor, i as usize);
            }
        }

        // Compact classes in root order so numbering is deterministic.
        let mut class_of_island: Vec<u32> = vec![u32::MAX; k];
        let mut classes = 0u32;
        for i in 0..k {
            let root = uf.find(i);
            if class_of_island[root] == u32::MAX {
                class_of_island[root] = classes;
                classes += 1;
            }
            class_of_island[i] = class_of_island[root];
        }
        let kc = classes as usize;

        let class_of_vertex: Vec<Option<u32>> = (0..n)
            .map(|v| {
                islands
                    .island_of(VertexId::from_index(v))
                    .map(|i| class_of_island[i])
            })
            .collect();

        // Conduit links. cin[m]: classes with a read link into conduit m
        // (`t>* r>` toward m) plus m's own class; cout[m]: classes with a
        // write link out of conduit m (`<w <t*` away from m) plus m's own
        // class. A class-level step C → D exists iff some conduit has
        // C ∈ cin and D ∈ cout — exactly a connection word.
        let mut cin: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut cout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for edge in graph.edges() {
            let explicit = edge.rights.explicit();
            if explicit.contains(Right::Read) {
                for &i in &rti[edge.src.index()] {
                    cin[edge.dst.index()].push(class_of_island[i as usize]);
                }
            }
            if explicit.contains(Right::Write) {
                for &i in &rti[edge.src.index()] {
                    cout[edge.dst.index()].push(class_of_island[i as usize]);
                }
            }
        }
        for v in 0..n {
            if let Some(c) = class_of_vertex[v] {
                cin[v].push(c);
                cout[v].push(c);
            }
        }
        let mut conduit_links = 0usize;
        for list in cin.iter_mut().chain(cout.iter_mut()) {
            list.sort_unstable();
            list.dedup();
            conduit_links += list.len();
        }
        // Reverse index: conduits each class reads.
        let mut class_conduits: Vec<Vec<u32>> = vec![Vec::new(); kc];
        for (m, list) in cin.iter().enumerate() {
            for &c in list {
                class_conduits[c as usize].push(m as u32);
            }
        }

        // Transitive class reachability (reflexive): condense the
        // bipartite class → conduit → class step graph instead of one
        // BFS per class — Tarjan emits successors first, so a single
        // in-order pass of whole-row ORs closes the relation in
        // O(components · classes/64) words. Node `c` is class `c`,
        // node `kc + m` is conduit `m`.
        let mut step: Vec<Vec<usize>> = vec![Vec::new(); kc + n];
        for (c, conduits) in class_conduits.iter().enumerate() {
            step[c].extend(conduits.iter().map(|&m| kc + m as usize));
        }
        for (m, list) in cout.iter().enumerate() {
            step[kc + m].extend(list.iter().map(|&d| d as usize));
        }
        let ccond = condensation(&step);
        let mut class_reach = BitMatrix::new(ccond.len(), kc);
        for (ci, members) in ccond.components.iter().enumerate() {
            for &v in members {
                if v < kc {
                    class_reach.set(ci, v);
                }
            }
            let succs = ccond.adj[ci].clone();
            for s in succs {
                debug_assert!(s < ci, "tarjan emits successors first");
                class_reach.or_row(ci, s);
            }
        }
        // Class `c`'s reach row is its component's row (reflexive: the
        // component's own members include `c`).
        let class_row = |c: usize| ccond.component_of[c];

        // Spans. know_from[x]: classes eligible as u1 (rw-initial span
        // `t>* w>` into x, or x's own class); to_classes[y]: classes
        // eligible as un (rw-terminal span `t>* r>` into y, or y's own
        // class).
        let mut know_from = BitMatrix::new(n, kc);
        let mut to_classes = BitMatrix::new(n, kc);
        for edge in graph.edges() {
            let explicit = edge.rights.explicit();
            if explicit.contains(Right::Write) {
                for &i in &rti[edge.src.index()] {
                    know_from.set(edge.dst.index(), class_of_island[i as usize] as usize);
                }
            }
            if explicit.contains(Right::Read) {
                for &i in &rti[edge.src.index()] {
                    to_classes.set(edge.dst.index(), class_of_island[i as usize] as usize);
                }
            }
        }
        for (v, class) in class_of_vertex.iter().enumerate() {
            if let Some(c) = class {
                know_from.set(v, *c as usize);
                to_classes.set(v, *c as usize);
            }
        }
        let mut from_reach = BitMatrix::new(n, kc);
        for v in 0..n {
            let heads: Vec<usize> = know_from.iter_row(v).collect();
            for c in heads {
                from_reach.or_row_from(v, &class_reach, class_row(c));
            }
        }

        // De facto flow: close the one-step acquire relation (combined
        // rights, subject sources — the Theorem 3.1 flow graph) over its
        // condensation. Tarjan emits a component only after everything it
        // reaches, so a single in-order pass unions successor rows.
        let mut acquires: Vec<Vec<usize>> = vec![Vec::new(); n];
        for edge in graph.edges() {
            let rights = edge.rights.combined();
            if graph.is_subject(edge.src) {
                if rights.contains(Right::Read) {
                    acquires[edge.src.index()].push(edge.dst.index());
                }
                if rights.contains(Right::Write) {
                    acquires[edge.dst.index()].push(edge.src.index());
                }
            }
        }
        let cond = condensation(&acquires);
        let comps = cond.len();
        let mut df_reach = BitMatrix::new(comps, n);
        for (ci, members) in cond.components.iter().enumerate() {
            for &v in members {
                df_reach.set(ci, v);
            }
            let succs = cond.adj[ci].clone();
            for s in succs {
                debug_assert!(s < ci, "tarjan emits successors first");
                df_reach.or_row(ci, s);
            }
        }
        let df_component: Vec<u32> = (0..n).map(|v| cond.component_of[v] as u32).collect();

        // Implicit-edge terminal cases of the can_know_f definition.
        let mut terminal_pairs: Vec<(u32, u32)> = Vec::new();
        for edge in graph.edges() {
            let implicit = edge.rights.implicit();
            if implicit.contains(Right::Read) {
                terminal_pairs.push((edge.src.index() as u32, edge.dst.index() as u32));
            }
            if implicit.contains(Right::Write) {
                terminal_pairs.push((edge.dst.index() as u32, edge.src.index() as u32));
            }
        }
        terminal_pairs.sort_unstable();
        terminal_pairs.dedup();

        FlowClosure {
            vertex_count: n,
            class_of_vertex,
            from_reach,
            to_classes,
            df_component,
            df_reach,
            terminal_pairs,
            stats: ClosureStats {
                vertices: n,
                islands: k,
                classes: kc,
                conduit_links,
                df_components: comps,
            },
        }
    }

    /// Number of vertices the closure covers.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Shape statistics.
    pub fn stats(&self) -> ClosureStats {
        self.stats
    }

    /// The flow class of a subject (`None` for objects). Two subjects in
    /// one class are joined by bridges: each can obtain any right the
    /// other holds.
    pub fn class_of(&self, v: VertexId) -> Option<u32> {
        self.class_of_vertex[v.index()]
    }

    /// Whether `x` can come to know `y`'s information using any mix of de
    /// jure and de facto rules — agrees with [`tg_analysis::can_know`].
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range for the closed graph.
    pub fn can_know(&self, x: VertexId, y: VertexId) -> bool {
        x == y || self.flows_de_facto(x, y) || self.chain_flow(x, y)
    }

    /// The pure de facto component (Theorem 3.1 plus the definition's
    /// implicit-edge terminal cases) — agrees with
    /// [`tg_analysis::can_know_f`].
    pub fn flows_de_facto(&self, x: VertexId, y: VertexId) -> bool {
        if x == y {
            return true;
        }
        if self
            .df_reach
            .get(self.df_component[x.index()] as usize, y.index())
        {
            return true;
        }
        self.terminal_pairs
            .binary_search(&(x.index() as u32, y.index() as u32))
            .is_ok()
    }

    /// The Theorem 3.2 chain component: a subject chain `u1 … un` joined
    /// by bridges and connections, with `u1` rw-initially spanning `x`
    /// and `un` rw-terminally spanning `y`. True chain flows require de
    /// jure cooperation — this is the conspiracy-reachable part of the
    /// relation.
    pub fn chain_flow(&self, x: VertexId, y: VertexId) -> bool {
        self.from_reach
            .rows_intersect(x.index(), &self.to_classes, y.index())
    }

    /// Whether `x` can know `y` *only* through a de jure-assisted chain
    /// (no pure de facto path): the flows TG009 attributes to
    /// conspiracies.
    pub fn chain_only(&self, x: VertexId, y: VertexId) -> bool {
        x != y && !self.flows_de_facto(x, y) && self.chain_flow(x, y)
    }

    /// Every `y` that `x` can come to know, ascending (reflexive).
    pub fn knowable(&self, x: VertexId) -> Vec<VertexId> {
        (0..self.vertex_count)
            .map(VertexId::from_index)
            .filter(|&y| self.can_know(x, y))
            .collect()
    }

    /// Whether `x` has any chain-eligible head class at all (cheap
    /// pre-filter for pair scans).
    pub fn has_chain_heads(&self, x: VertexId) -> bool {
        self.from_reach.row_any(x.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_analysis::can_know;
    use tg_graph::Rights;

    fn pinned(g: &ProtectionGraph) {
        let closure = FlowClosure::compute(g);
        for x in g.vertex_ids() {
            for y in g.vertex_ids() {
                assert_eq!(
                    closure.can_know(x, y),
                    can_know(g, x, y),
                    "closure disagrees with can_know at ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        pinned(&ProtectionGraph::new());
        let mut g = ProtectionGraph::new();
        g.add_subject("s");
        g.add_object("o");
        pinned(&g);
    }

    #[test]
    fn figure_2_2_shapes() {
        // Paper Figure 2.2: three islands joined by bridges.
        let mut g = ProtectionGraph::new();
        let p = g.add_subject("p");
        let u = g.add_subject("u");
        let v = g.add_object("v");
        let w = g.add_subject("w");
        let x = g.add_object("x");
        let y = g.add_subject("y");
        let s_prime = g.add_subject("s'");
        let s = g.add_object("s");
        g.add_edge(p, u, Rights::G).unwrap();
        g.add_edge(u, v, Rights::T).unwrap();
        g.add_edge(w, v, Rights::T).unwrap();
        g.add_edge(w, x, Rights::T).unwrap();
        g.add_edge(x, y, Rights::T).unwrap();
        g.add_edge(y, s_prime, Rights::G).unwrap();
        g.add_edge(s_prime, s, Rights::T).unwrap();
        let closure = FlowClosure::compute(&g);
        // u -t-> v <-t- w (double take toward a shared object) is not in
        // B, so {p,u} stays apart; w -t-> x -t-> y is a shape-1 bridge
        // onto subject y, merging w's island with {y,s'}.
        assert_ne!(closure.class_of(u), closure.class_of(w));
        assert_eq!(closure.class_of(w), closure.class_of(y));
        assert_eq!(closure.class_of(y), closure.class_of(s_prime));
        pinned(&g);
    }

    #[test]
    fn all_four_bridge_shapes_merge() {
        // Shape 1: a -t-> b.
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        g.add_edge(a, b, Rights::T).unwrap();
        let c = FlowClosure::compute(&g);
        assert_eq!(c.class_of(a), c.class_of(b));

        // Shape 2: b -t-> a seen from a.
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        g.add_edge(b, a, Rights::T).unwrap();
        let c = FlowClosure::compute(&g);
        assert_eq!(c.class_of(a), c.class_of(b));

        // Shape 3: a -t-> p, p -g-> q, b -t-> q.
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        let p = g.add_object("p");
        let q = g.add_object("q");
        g.add_edge(a, p, Rights::T).unwrap();
        g.add_edge(p, q, Rights::G).unwrap();
        g.add_edge(b, q, Rights::T).unwrap();
        let c = FlowClosure::compute(&g);
        assert_eq!(c.class_of(a), c.class_of(b));
        pinned(&g);

        // Shape 4: a -t-> p, q -g-> p, b -t-> q.
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        let p = g.add_object("p");
        let q = g.add_object("q");
        g.add_edge(a, p, Rights::T).unwrap();
        g.add_edge(q, p, Rights::G).unwrap();
        g.add_edge(b, q, Rights::T).unwrap();
        let c = FlowClosure::compute(&g);
        assert_eq!(c.class_of(a), c.class_of(b));
        pinned(&g);
    }

    #[test]
    fn non_bridges_do_not_merge() {
        // Double take toward a shared object is not a bridge.
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        let p = g.add_object("p");
        g.add_edge(a, p, Rights::T).unwrap();
        g.add_edge(b, p, Rights::T).unwrap();
        let c = FlowClosure::compute(&g);
        assert_ne!(c.class_of(a), c.class_of(b));
        pinned(&g);
    }

    #[test]
    fn connections_are_directed() {
        // x -t-> q -r-> y: read connection x → y, never y → x.
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let q = g.add_object("q");
        let y = g.add_subject("y");
        g.add_edge(x, q, Rights::T).unwrap();
        g.add_edge(q, y, Rights::R).unwrap();
        let c = FlowClosure::compute(&g);
        assert!(c.can_know(x, y));
        assert!(!c.can_know(y, x));
        assert!(c.chain_only(x, y));
        pinned(&g);
    }

    #[test]
    fn double_connection_meets_in_the_middle() {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let a = g.add_object("a");
        let m = g.add_object("m");
        let b = g.add_object("b");
        let y = g.add_subject("y");
        g.add_edge(x, a, Rights::T).unwrap();
        g.add_edge(a, m, Rights::R).unwrap();
        g.add_edge(y, b, Rights::T).unwrap();
        g.add_edge(b, m, Rights::W).unwrap();
        pinned(&g);
        assert!(FlowClosure::compute(&g).can_know(x, y));
    }

    #[test]
    fn de_facto_and_terminal_cases() {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let m = g.add_object("m");
        let z = g.add_subject("z");
        g.add_edge(x, m, Rights::R).unwrap();
        g.add_edge(z, m, Rights::W).unwrap();
        pinned(&g);

        // Implicit object-sourced read edge: terminal but true.
        let mut g = ProtectionGraph::new();
        let o = g.add_object("o");
        let y = g.add_subject("y");
        g.add_implicit_edge(o, y, Rights::R).unwrap();
        let c = FlowClosure::compute(&g);
        assert!(c.can_know(o, y));
        assert!(c.flows_de_facto(o, y));
        pinned(&g);
    }

    #[test]
    fn spans_at_both_ends() {
        // u -w-> x (object), u -t-> q -r-> y: u rw-initially spans x and
        // rw-terminally spans y, so can_know(x, y) via the n = 1 chain.
        let mut g = ProtectionGraph::new();
        let u = g.add_subject("u");
        let x = g.add_object("x");
        let q = g.add_object("q");
        let y = g.add_object("y");
        g.add_edge(u, x, Rights::W).unwrap();
        g.add_edge(u, q, Rights::T).unwrap();
        g.add_edge(q, y, Rights::R).unwrap();
        let c = FlowClosure::compute(&g);
        assert!(c.can_know(x, y));
        assert!(c.has_chain_heads(x));
        pinned(&g);
    }

    #[test]
    fn multi_link_chains_compose() {
        let mut g = ProtectionGraph::new();
        let x = g.add_subject("x");
        let u = g.add_subject("u");
        let v = g.add_subject("v");
        let y = g.add_object("y");
        g.add_edge(x, u, Rights::R).unwrap();
        g.add_edge(u, v, Rights::T).unwrap();
        g.add_edge(v, y, Rights::R).unwrap();
        let c = FlowClosure::compute(&g);
        assert!(c.can_know(x, y));
        assert!(!c.can_know(y, x));
        assert_eq!(c.knowable(x), vec![x, u, v, y]);
        pinned(&g);
    }

    #[test]
    fn stats_report_shapes() {
        let mut g = ProtectionGraph::new();
        let a = g.add_subject("a");
        let b = g.add_subject("b");
        g.add_edge(a, b, Rights::T).unwrap();
        let stats = FlowClosure::compute(&g).stats();
        assert_eq!(stats.vertices, 2);
        assert_eq!(stats.islands, 1);
        assert_eq!(stats.classes, 1);
    }
}
