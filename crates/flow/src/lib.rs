//! Whole-hierarchy de facto flow closure for Take-Grant protection
//! graphs.
//!
//! The per-pair oracles in `tg_analysis` answer "*can* x learn y's
//! contents?" one pair at a time by enumerating words of the bridge and
//! connection languages. Lints, policy audits, and the `tgq` batch
//! commands want the *whole relation* — every pair at once — and the
//! per-pair search repeats nearly all of its work across pairs: take
//! reaches, bridge discovery, and the de facto flow graph are global
//! structures.
//!
//! This crate computes the full `can_know` relation in one island-local
//! fixpoint:
//!
//! 1. partition subjects into islands ([`tg_analysis::Islands`]);
//! 2. one BFS per island over explicit `t` edges ([`island_reach`]) —
//!    the only phase that depends on island structure, hence the unit of
//!    memoization ([`ClosureCache`]) and of work-sharding (`tg_par`);
//! 3. merge islands joined by a bridge into *flow classes* with a typed
//!    oracle over the four bridge shapes of the hierarchy papers
//!    (`t>+`, `<t+`, `t>* g> <t*`, `t>* <g <t*`) — set algebra on the
//!    reaches, no path-language automaton;
//! 4. link classes through *conduits* (read/write connections) and close
//!    the class-level relation;
//! 5. reduce per-vertex initial/terminal spans to class bitsets, and
//!    close the pure de facto relation by condensation.
//!
//! The result, [`FlowClosure`], answers [`can_know`](FlowClosure::can_know)
//! for any pair in O(words-per-row) bit operations and is pinned
//! verdict-for-verdict to [`tg_analysis::can_know`] by differential
//! tests. [`min_flow_conspirators`] attributes any closed flow to a
//! minimum set of cooperating subjects with a typed link per hop —
//! the flow analogue of `tg_analysis::theft::min_conspirators`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod cache;
mod closure;
mod conspiracy;

pub use cache::{CacheStats, ClosureCache};
pub use closure::{island_reach, ClosureStats, FlowClosure};
pub use conspiracy::{min_flow_conspirators, Conspiracy, LinkShape, TypedLink};
