//! Differential oracle for the whole-graph flow closure.
//!
//! The closure must be *verdict- and witness-equivalent* to the per-pair
//! reference engines it replaces:
//!
//! * `FlowClosure::can_know(x, y)` ⟺ `tg_analysis::can_know(g, x, y)`
//!   for every ordered pair, over 256 random hierarchies (and a second
//!   batch of adversarial unstructured graphs).
//! * Every closure-positive pair synthesizes a `tg_rules` derivation
//!   (`know_witness`) that replays to a graph where the know edge
//!   exists — the closure never claims a flow the rule system cannot
//!   derive.
//! * `min_flow_conspirators` answers `Some` exactly on the closure's
//!   positive pairs, and its conspirator set is non-empty whenever the
//!   flow is chain-mediated.
//! * The bounded brute-force theft search is a lower bound: a stolen
//!   read right is a de facto flow, so `can_steal_bruteforce(r, x, y)`
//!   implies `can_know(x, y)` in the closure.

use proptest::prelude::*;

use tg_analysis::reference::{can_steal_bruteforce, SearchBounds};
use tg_analysis::synthesis::know_witness;
use tg_analysis::{can_know, know_edge_exists};
use tg_flow::{min_flow_conspirators, FlowClosure};
use tg_graph::{ProtectionGraph, Right, VertexId};
use tg_sim::gen::{GraphGen, HierarchyGen};

/// How many closure-positive pairs per case get the full witness
/// synthesis + replay treatment (synthesis is the expensive leg).
const WITNESSES_PER_CASE: usize = 6;

fn random_hierarchy(seed: u64) -> ProtectionGraph {
    HierarchyGen {
        levels: 2 + (seed % 3) as usize,
        per_level: 2 + (seed % 2) as usize,
        noise_edges: (seed % 9) as usize,
        seed,
    }
    .build()
    .graph
}

fn adversarial_graph(seed: u64) -> ProtectionGraph {
    GraphGen {
        vertices: 12,
        subject_ratio: 0.6,
        out_degree: 1.9,
        rights_weights: vec![
            (Right::Read, 0.5),
            (Right::Write, 0.4),
            (Right::Take, 0.35),
            (Right::Grant, 0.25),
        ],
        seed,
    }
    .build()
}

/// The shared pinning: all-pairs verdict equality, witness replay for a
/// bounded sample of positive pairs, and conspirator agreement.
fn pin_closure(g: &ProtectionGraph) {
    let closure = FlowClosure::compute(g);
    let ids: Vec<VertexId> = g.vertex_ids().collect();
    let mut replayed = 0usize;
    for &x in &ids {
        for &y in &ids {
            if x == y {
                continue;
            }
            let whole = closure.can_know(x, y);
            let per_pair = can_know(g, x, y);
            prop_assert_eq!(
                whole,
                per_pair,
                "closure disagrees with per-pair can_know at ({}, {})\n{}",
                x,
                y,
                tg_graph::render_graph(g)
            );
            // Conspiracy attribution answers exactly on positive pairs.
            let conspiracy = min_flow_conspirators(g, x, y);
            prop_assert_eq!(
                conspiracy.is_some(),
                whole,
                "min_flow_conspirators disagrees with the closure at ({}, {})",
                x,
                y
            );
            if let Some(c) = &conspiracy {
                if closure.chain_only(x, y) {
                    prop_assert!(
                        !c.subjects.is_empty(),
                        "a chain-mediated flow needs at least one conspirator ({x}, {y})"
                    );
                }
            }
            // Witness equivalence: the rule system derives the flow.
            if whole && replayed < WITNESSES_PER_CASE {
                replayed += 1;
                let witness = know_witness(g, x, y);
                prop_assert!(
                    witness.is_ok(),
                    "closure-positive pair ({x}, {y}) has no rule witness: {:?}\n{}",
                    witness.err(),
                    tg_graph::render_graph(g)
                );
                let done = witness.unwrap().replayed(g);
                prop_assert!(done.is_ok(), "witness does not replay: {:?}", done.err());
                let done = done.unwrap();
                prop_assert!(
                    know_edge_exists(&done, x, y),
                    "replayed witness lacks the know edge ({x}, {y})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The acceptance pin: 256 random hierarchies (linear structures
    /// plus noise edges), whole-graph closure ≡ per-pair loop.
    #[test]
    fn closure_matches_per_pair_oracle_on_hierarchies(seed in 0u64..1_000_000) {
        pin_closure(&random_hierarchy(seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same pin on unstructured adversarial graphs — take/grant chains,
    /// cycles, object relays the hierarchy generator never produces.
    #[test]
    fn closure_matches_per_pair_oracle_on_adversarial_graphs(seed in 0u64..1_000_000) {
        pin_closure(&adversarial_graph(seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The theft engine lower-bounds the closure: a read right stolen by
    /// a *subject* is an explicit `r` edge that subject can exercise in
    /// some derivable world, hence a de facto flow the closure must
    /// already report. (An object can be handed the right too, but with
    /// no subject to exercise it there is no flow — `can_know` is false.)
    #[test]
    fn stolen_reads_are_closure_flows(seed in 0u64..1_000_000) {
        let g = GraphGen {
            vertices: 5,
            subject_ratio: 0.7,
            out_degree: 1.6,
            rights_weights: vec![
                (Right::Read, 0.5),
                (Right::Take, 0.4),
                (Right::Grant, 0.3),
            ],
            seed,
        }
        .build();
        let closure = FlowClosure::compute(&g);
        let bounds = SearchBounds { max_creates: 1, max_states: 20_000 };
        let ids: Vec<VertexId> = g.vertex_ids().collect();
        for &x in &ids {
            if !g.is_subject(x) {
                continue;
            }
            for &y in &ids {
                if x == y {
                    continue;
                }
                if can_steal_bruteforce(&g, Right::Read, x, y, bounds) {
                    prop_assert!(
                        closure.can_know(x, y),
                        "brute force steals r {x} -> {y} but the closure sees no flow\n{}",
                        tg_graph::render_graph(&g)
                    );
                }
            }
        }
    }
}
