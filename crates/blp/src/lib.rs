//! A small Bell–LaPadula state machine, used to validate the paper's §6
//! correspondence claim:
//!
//! > "Note that when these results are applied to the Take-Grant model of
//! > a document system, the total view of security given in [Bell–LaPadula]
//! > is obtained. As the write authority in the Take-Grant model is not a
//! > viewing right, the write authority of the Take-Grant model is the
//! > same as the append authority of Bell and LaPadula. Then, restriction
//! > (a) is equivalent to the refined simple security property, and
//! > restriction (b) is the no write down property."
//!
//! The machine tracks current accesses and enforces:
//!
//! * **simple security** (no read up): a subject may hold `Read` access to
//!   an object only if the subject's level dominates the object's;
//! * **the *-property** (no write down), in append form: a subject may
//!   hold `Append` access only if the object's level dominates the
//!   subject's.
//!
//! The correspondence test (`tests/blp_correspondence.rs` at the workspace
//! root) shows decision-level agreement: the combined Take-Grant
//! restriction permits acquiring an explicit `r`/`w` edge exactly when
//! this machine grants the matching `Read`/`Append` access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;

use tg_graph::VertexId;
use tg_hierarchy::LevelAssignment;

/// A current-access mode. Take-Grant `w` maps to [`AccessMode::Append`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum AccessMode {
    /// Viewing access (BLP *observe*).
    Read,
    /// Blind-write access (BLP *append*; no observation).
    Append,
}

/// Why an access request was refused.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BlpError {
    /// Simple security violated: reading up.
    SimpleSecurity {
        /// Requesting subject.
        subject: VertexId,
        /// Target object.
        object: VertexId,
    },
    /// The *-property violated: appending down.
    StarProperty {
        /// Requesting subject.
        subject: VertexId,
        /// Target object.
        object: VertexId,
    },
    /// One of the entities carries no level.
    Unassigned(VertexId),
}

impl core::fmt::Display for BlpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BlpError::SimpleSecurity { subject, object } => {
                write!(f, "simple security: {subject} may not read {object}")
            }
            BlpError::StarProperty { subject, object } => {
                write!(f, "*-property: {subject} may not append to {object}")
            }
            BlpError::Unassigned(v) => write!(f, "{v} has no level"),
        }
    }
}

impl std::error::Error for BlpError {}

/// A Bell–LaPadula protection state: a level lattice plus the current
/// access set *b*.
///
/// # Examples
///
/// ```
/// use tg_blp::{AccessMode, BlpState};
/// use tg_graph::VertexId;
/// use tg_hierarchy::LevelAssignment;
///
/// let mut levels = LevelAssignment::linear(&["unclassified", "secret"]);
/// let s = VertexId::from_index(0);
/// let o = VertexId::from_index(1);
/// levels.assign(s, 0).unwrap();
/// levels.assign(o, 1).unwrap();
///
/// let mut blp = BlpState::new(levels);
/// // Reading up is refused; appending up is granted.
/// assert!(blp.request(s, o, AccessMode::Read).is_err());
/// assert!(blp.request(s, o, AccessMode::Append).is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct BlpState {
    levels: LevelAssignment,
    current: BTreeSet<(VertexId, VertexId, AccessMode)>,
}

impl BlpState {
    /// Creates an empty-access state over the given lattice and
    /// assignments.
    pub fn new(levels: LevelAssignment) -> BlpState {
        BlpState {
            levels,
            current: BTreeSet::new(),
        }
    }

    /// The level lattice.
    pub fn levels(&self) -> &LevelAssignment {
        &self.levels
    }

    /// Whether `(subject, object, mode)` is in the current access set.
    pub fn has_access(&self, subject: VertexId, object: VertexId, mode: AccessMode) -> bool {
        self.current.contains(&(subject, object, mode))
    }

    /// Number of current accesses.
    pub fn access_count(&self) -> usize {
        self.current.len()
    }

    /// Pure decision: would `request` succeed in this state?
    pub fn permitted(
        &self,
        subject: VertexId,
        object: VertexId,
        mode: AccessMode,
    ) -> Result<(), BlpError> {
        let Some(ls) = self.levels.level_of(subject) else {
            return Err(BlpError::Unassigned(subject));
        };
        let Some(lo) = self.levels.level_of(object) else {
            return Err(BlpError::Unassigned(object));
        };
        match mode {
            AccessMode::Read => {
                if self.levels.dominates(ls, lo) {
                    Ok(())
                } else {
                    Err(BlpError::SimpleSecurity { subject, object })
                }
            }
            AccessMode::Append => {
                if self.levels.dominates(lo, ls) {
                    Ok(())
                } else {
                    Err(BlpError::StarProperty { subject, object })
                }
            }
        }
    }

    /// The *get-access* transition: adds the access if both properties
    /// hold.
    pub fn request(
        &mut self,
        subject: VertexId,
        object: VertexId,
        mode: AccessMode,
    ) -> Result<(), BlpError> {
        self.permitted(subject, object, mode)?;
        self.current.insert((subject, object, mode));
        Ok(())
    }

    /// The *release-access* transition. Returns whether the access was
    /// present.
    pub fn release(&mut self, subject: VertexId, object: VertexId, mode: AccessMode) -> bool {
        self.current.remove(&(subject, object, mode))
    }

    /// The basic security theorem's invariant: every *current* access
    /// satisfies both properties. Holds by construction; exposed so tests
    /// can assert it after arbitrary transition sequences.
    pub fn state_secure(&self) -> bool {
        self.current
            .iter()
            .all(|&(s, o, m)| self.permitted(s, o, m).is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BlpState, VertexId, VertexId, VertexId) {
        let mut levels = LevelAssignment::linear(&["lo", "hi"]);
        let lo_subj = VertexId::from_index(0);
        let hi_subj = VertexId::from_index(1);
        let hi_obj = VertexId::from_index(2);
        levels.assign(lo_subj, 0).unwrap();
        levels.assign(hi_subj, 1).unwrap();
        levels.assign(hi_obj, 1).unwrap();
        (BlpState::new(levels), lo_subj, hi_subj, hi_obj)
    }

    #[test]
    fn simple_security_blocks_read_up() {
        let (mut blp, lo_subj, _, hi_obj) = setup();
        assert_eq!(
            blp.request(lo_subj, hi_obj, AccessMode::Read),
            Err(BlpError::SimpleSecurity {
                subject: lo_subj,
                object: hi_obj
            })
        );
        assert!(!blp.has_access(lo_subj, hi_obj, AccessMode::Read));
    }

    #[test]
    fn star_property_blocks_append_down() {
        let (mut blp, lo_subj, hi_subj, _) = setup();
        assert_eq!(
            blp.request(hi_subj, lo_subj, AccessMode::Append),
            Err(BlpError::StarProperty {
                subject: hi_subj,
                object: lo_subj
            })
        );
    }

    #[test]
    fn read_down_and_append_up_are_granted() {
        let (mut blp, lo_subj, hi_subj, hi_obj) = setup();
        blp.request(hi_subj, lo_subj, AccessMode::Read).unwrap();
        blp.request(lo_subj, hi_obj, AccessMode::Append).unwrap();
        blp.request(hi_subj, hi_obj, AccessMode::Read).unwrap();
        blp.request(hi_subj, hi_obj, AccessMode::Append).unwrap();
        assert_eq!(blp.access_count(), 4);
        assert!(blp.state_secure());
    }

    #[test]
    fn release_removes_access() {
        let (mut blp, _, hi_subj, hi_obj) = setup();
        blp.request(hi_subj, hi_obj, AccessMode::Read).unwrap();
        assert!(blp.release(hi_subj, hi_obj, AccessMode::Read));
        assert!(!blp.release(hi_subj, hi_obj, AccessMode::Read));
        assert_eq!(blp.access_count(), 0);
    }

    #[test]
    fn unassigned_entities_fail_closed() {
        let (mut blp, lo_subj, _, _) = setup();
        let stranger = VertexId::from_index(9);
        assert_eq!(
            blp.request(lo_subj, stranger, AccessMode::Read),
            Err(BlpError::Unassigned(stranger))
        );
    }

    #[test]
    fn state_stays_secure_after_any_granted_sequence() {
        let (mut blp, lo_subj, hi_subj, hi_obj) = setup();
        let entities = [lo_subj, hi_subj, hi_obj];
        for &s in &entities {
            for &o in &entities {
                if s == o {
                    continue;
                }
                let _ = blp.request(s, o, AccessMode::Read);
                let _ = blp.request(s, o, AccessMode::Append);
            }
        }
        assert!(blp.state_secure());
    }
}
